//! Quickstart: run one lossy-network scenario with and without
//! epidemic recovery and compare delivery.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use epidemic_pubsub::gossip::Algorithm;
use epidemic_pubsub::harness::{run_scenario, ScenarioConfig};
use epidemic_pubsub::sim::SimTime;

fn main() {
    // The paper's Figure 2 defaults, shortened: 100 dispatchers on a
    // degree-4 tree, 70 patterns, 2 subscriptions per dispatcher,
    // 50 publish/s each, 10% per-link message loss.
    let base = ScenarioConfig {
        duration: SimTime::from_secs(10),
        warmup: SimTime::from_secs(1),
        cooldown: SimTime::from_secs(2),
        ..ScenarioConfig::default()
    };

    println!("epidemic recovery on a lossy 100-dispatcher overlay (eps = 0.1)");
    println!(
        "{:<16} {:>10} {:>12} {:>14} {:>12}",
        "algorithm", "delivery", "worst bin", "gossip/disp", "recovered"
    );
    for kind in [
        Algorithm::no_recovery(),
        Algorithm::push(),
        Algorithm::combined_pull(),
    ] {
        let result = run_scenario(&base.with_algorithm(kind.clone()));
        println!(
            "{:<16} {:>9.1}% {:>11.1}% {:>14.1} {:>12}",
            kind.name(),
            result.delivery_rate * 100.0,
            result.min_bin_rate * 100.0,
            result.gossip_per_dispatcher,
            result.events_recovered
        );
    }
    println!();
    println!("Recovery delivers the events the best-effort tree dropped;");
    println!("push and combined pull should both sit far above the baseline.");
}
