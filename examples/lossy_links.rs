//! Lossy links: how each strategy copes as the per-link error rate
//! grows — a condensed version of the paper's Figure 3(a) plus the
//! overhead view of Figure 10.
//!
//! ```text
//! cargo run --release --example lossy_links
//! ```

use epidemic_pubsub::gossip::Algorithm;
use epidemic_pubsub::harness::{run_scenario, ScenarioConfig};
use epidemic_pubsub::sim::SimTime;

fn main() {
    let base = ScenarioConfig {
        duration: SimTime::from_secs(8),
        warmup: SimTime::from_secs(1),
        cooldown: SimTime::from_secs(2),
        ..ScenarioConfig::default()
    };

    for eps in [0.01, 0.05, 0.1] {
        println!("== link error rate eps = {eps} ==");
        println!(
            "{:<16} {:>10} {:>14} {:>12}",
            "algorithm", "delivery", "gossip/disp", "gossip/event"
        );
        for kind in Algorithm::paper() {
            let config = ScenarioConfig {
                link_error_rate: eps,
                algorithm: kind.clone(),
                ..base.clone()
            };
            let result = run_scenario(&config);
            println!(
                "{:<16} {:>9.1}% {:>14.1} {:>12.3}",
                kind.name(),
                result.delivery_rate * 100.0,
                result.gossip_per_dispatcher,
                result.gossip_event_ratio
            );
        }
        println!();
    }
    println!("Note how the reactive pull strategies send almost nothing when");
    println!("the network is nearly reliable, while push gossips regardless —");
    println!("the trade-off the paper discusses around its Figure 10.");
}
