//! Mobile scenario: the overlay keeps reconfiguring (links break and
//! are replaced, as when dispatchers move) and events are lost in the
//! disruption windows — the paper's original motivation and its
//! Figure 3(b).
//!
//! ```text
//! cargo run --release --example mobile_reconfiguration
//! ```

use epidemic_pubsub::gossip::Algorithm;
use epidemic_pubsub::harness::{run_scenario, ScenarioConfig};
use epidemic_pubsub::sim::SimTime;

fn main() {
    let base = ScenarioConfig {
        link_error_rate: 0.0, // links are reliable; topology is not
        duration: SimTime::from_secs(10),
        warmup: SimTime::from_secs(1),
        cooldown: SimTime::from_secs(2),
        ..ScenarioConfig::default()
    };

    for (rho_ms, label) in [
        (200u64, "non-overlapping (rho = 0.2 s)"),
        (30, "overlapping (rho = 0.03 s)"),
    ] {
        println!("== reconfigurations every {rho_ms} ms — {label} ==");
        println!(
            "{:<16} {:>10} {:>12} {:>10}",
            "algorithm", "delivery", "worst bin", "reconfigs"
        );
        for kind in [
            Algorithm::no_recovery(),
            Algorithm::random_pull(),
            Algorithm::subscriber_pull(),
            Algorithm::push(),
            Algorithm::combined_pull(),
        ] {
            let config = ScenarioConfig {
                reconfig_interval: Some(SimTime::from_millis(rho_ms)),
                algorithm: kind.clone(),
                ..base.clone()
            };
            let result = run_scenario(&config);
            println!(
                "{:<16} {:>9.1}% {:>11.1}% {:>10}",
                kind.name(),
                result.delivery_rate * 100.0,
                result.min_bin_rate * 100.0,
                result.reconfigurations
            );
        }
        println!();
    }
    println!("The 'worst bin' column is the deepest delivery dip around a");
    println!("reconfiguration: the best algorithms level those spikes out,");
    println!("masking topology changes almost completely (paper, Sec. IV-B).");
}
