//! Adaptive gossip interval: the extension the paper sketches in
//! Section IV-E. Dispatchers with nothing to recover back off their
//! gossip timer exponentially, cutting proactive overhead when the
//! network is healthy — without giving up delivery when it is not.
//!
//! ```text
//! cargo run --release --example adaptive_gossip
//! ```

use epidemic_pubsub::gossip::Algorithm;
use epidemic_pubsub::harness::{run_scenario, AdaptiveGossip, ScenarioConfig};
use epidemic_pubsub::sim::SimTime;

fn main() {
    // Push at a light publish load: the regime where proactive
    // gossip wastes the most (paper, Sec. IV-E) and adaptation pays.
    let base = ScenarioConfig {
        duration: SimTime::from_secs(8),
        warmup: SimTime::from_secs(1),
        cooldown: SimTime::from_secs(2),
        publish_rate: 5.0,
        algorithm: Algorithm::push(),
        ..ScenarioConfig::default()
    };

    println!("push, 5 publish/s, fixed T = 30 ms vs adaptive (30 ms .. 240 ms)");
    println!(
        "{:<8} {:<10} {:>10} {:>14} {:>10}",
        "eps", "mode", "delivery", "gossip/disp", "saving"
    );
    for eps in [0.005, 0.02, 0.1] {
        let fixed = run_scenario(&ScenarioConfig {
            link_error_rate: eps,
            ..base.clone()
        });
        let adaptive = run_scenario(&ScenarioConfig {
            link_error_rate: eps,
            adaptive_gossip: Some(AdaptiveGossip::around(base.gossip_interval)),
            ..base.clone()
        });
        println!(
            "{:<8} {:<10} {:>9.1}% {:>14.1} {:>10}",
            eps,
            "fixed",
            fixed.delivery_rate * 100.0,
            fixed.gossip_per_dispatcher,
            "-"
        );
        let saving = if fixed.gossip_per_dispatcher > 0.0 {
            (1.0 - adaptive.gossip_per_dispatcher / fixed.gossip_per_dispatcher) * 100.0
        } else {
            0.0
        };
        println!(
            "{:<8} {:<10} {:>9.1}% {:>14.1} {:>9.0}%",
            eps,
            "adaptive",
            adaptive.delivery_rate * 100.0,
            adaptive.gossip_per_dispatcher,
            saving
        );
    }
    println!();
    println!("The healthier the network, the more rounds the adaptive timer");
    println!("skips (at the cost of a few delivery points under heavy loss,");
    println!("where requests keep arriving and the timer stays near the floor).");
}
