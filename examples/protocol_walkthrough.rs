//! Protocol walkthrough: drive the publish-subscribe and gossip layers
//! by hand — no simulator — to see exactly what travels where when an
//! event is lost and recovered.
//!
//! Three dispatchers in a line: d0 (publisher) — d1 — d2 (subscriber).
//! The event from d0 is "lost" on the d1→d2 link; d2 detects the gap
//! from the per-(source, pattern) sequence numbers and pulls the event
//! back.
//!
//! ```text
//! cargo run --example protocol_walkthrough
//! ```

use epidemic_pubsub::gossip::{Algorithm, GossipAction, GossipConfig};
use epidemic_pubsub::overlay::NodeId;
use epidemic_pubsub::pubsub::{Dispatcher, DispatcherConfig, PatternId, PubSubMessage};

fn main() {
    let p = PatternId::new(7);
    let (n0, n1, n2) = (NodeId::new(0), NodeId::new(1), NodeId::new(2));
    let config = DispatcherConfig {
        cache_own_published: true,
        ..DispatcherConfig::default()
    };
    let mut d0 = Dispatcher::new(n0, config);
    let mut d1 = Dispatcher::new(n1, config);
    let mut d2 = Dispatcher::new(n2, config);

    // --- Subscription forwarding (paper, Section II) ---------------
    println!("d2 subscribes to {p}; the subscription propagates d2 -> d1 -> d0");
    let out = d2.subscribe_local(p, &[n1]);
    assert_eq!(out.len(), 1);
    let out = d1.on_subscribe(p, n2, &[n0, n2]);
    assert_eq!(out.len(), 1);
    let out = d0.on_subscribe(p, n1, &[n1]);
    assert!(out.is_empty(), "nothing beyond d0 to tell");

    // d0 subscribes too. With a single subscriber, subscriber-based
    // pull has nobody to steer a digest towards — exactly the weakness
    // the paper discusses (and why the combined variant exists). Two
    // subscribers give d2's table a route for its gossip.
    println!("d0 subscribes as well, so gossip digests have a route to follow");
    d0.subscribe_local(p, &[n1]);
    d1.on_subscribe(p, n0, &[n0, n2]);
    d2.on_subscribe(p, n1, &[n1]);

    // --- A first event flows end to end ----------------------------
    let (e0, r) = d0.publish(&[p]);
    println!("d0 publishes {} (pattern seq {:?})", e0.id(), e0.seq_for(p));
    let fwd = &r.forwards[0];
    assert_eq!(fwd.to, n1);
    let r = match &fwd.msg {
        PubSubMessage::Event(e) => d1.on_event(e.clone(), Some(n0)),
        other => panic!("unexpected {other:?}"),
    };
    let fwd = &r.forwards[0];
    let r2 = match &fwd.msg {
        PubSubMessage::Event(e) => d2.on_event(e.clone(), Some(n1)),
        other => panic!("unexpected {other:?}"),
    };
    assert!(r2.delivered);
    println!("d2 delivered {} normally\n", e0.id());

    // --- The second event is lost between d1 and d2 ----------------
    let (e1, r) = d0.publish(&[p]);
    println!("d0 publishes {}; d1 receives it...", e1.id());
    match &r.forwards[0].msg {
        PubSubMessage::Event(e) => {
            d1.on_event(e.clone(), Some(n0));
        }
        other => panic!("unexpected {other:?}"),
    }
    println!("...but the copy to d2 is LOST on the wire\n");

    // --- A third event reveals the gap ------------------------------
    let (e2, r) = d0.publish(&[p]);
    println!(
        "d0 publishes {}; it reaches d2 and exposes the gap",
        e2.id()
    );
    let r = match &r.forwards[0].msg {
        PubSubMessage::Event(e) => d1.on_event(e.clone(), Some(n0)),
        other => panic!("unexpected {other:?}"),
    };
    let receipt = match &r.forwards[0].msg {
        PubSubMessage::Event(e) => d2.on_event(e.clone(), Some(n1)),
        other => panic!("unexpected {other:?}"),
    };
    assert_eq!(receipt.losses.len(), 1);
    println!(
        "d2's loss detector reports: missing {} (seq gap on {p})\n",
        receipt.losses[0]
    );

    // --- Subscriber-based pull recovers it --------------------------
    let mut algo2 = Algorithm::subscriber_pull().build(GossipConfig {
        p_forward: 1.0,
        ..GossipConfig::default()
    });
    let mut algo1 = Algorithm::subscriber_pull().build(GossipConfig::default());
    algo2.on_losses(&receipt.losses);
    let mut rng = eps_sim::Rng::from_seed(42);

    println!("gossip round at d2: negative digest steered towards {p}'s routes");
    let actions = algo2.on_round(&d2, &[n1], &mut rng);
    let (to, msg) = match &actions[0] {
        GossipAction::Forward { to, msg } => (*to, msg.clone()),
        other => panic!("unexpected {other:?}"),
    };
    assert_eq!(to, n1);
    println!("d1 is a pure router (not a subscriber): it cached nothing,");
    println!("so it forwards the digest along {p}'s routes towards d0");
    let mut algo0 = Algorithm::subscriber_pull().build(GossipConfig::default());
    let actions = algo1.on_gossip(&d1, n2, msg, &[n0, n2], &mut rng);
    let (to, msg) = match &actions[0] {
        GossipAction::Forward { to, msg } => (*to, msg.clone()),
        other => panic!("unexpected {other:?}"),
    };
    assert_eq!(to, n0);
    println!("d0 (publisher and subscriber) serves the event from its cache");
    let actions = algo0.on_gossip(&d0, n1, msg, &[n1], &mut rng);
    let events = match &actions[0] {
        GossipAction::Reply { to, events } => {
            assert_eq!(*to, n2);
            events.clone()
        }
        other => panic!("unexpected {other:?}"),
    };
    let receipt = d2.on_recovered_event(events[0].clone());
    assert!(receipt.delivered);
    algo2.on_event_received(&events[0]);
    println!(
        "d2 recovered {} out-of-band; outstanding losses: {}",
        events[0].id(),
        algo2.outstanding_losses()
    );
    println!("\nAll three events delivered: {}", d2.delivered_total());
    assert_eq!(d2.delivered_total(), 3);
}
