//! Integration tests of the reconfiguration machinery interacting
//! with recovery: stale routes, fragmentation windows, and the
//! combination of link loss and topology churn.

use epidemic_pubsub::gossip::Algorithm;
use epidemic_pubsub::harness::{run_scenario, run_scenario_traced, ScenarioConfig, TraceRecord};
use epidemic_pubsub::sim::SimTime;

fn base(kind: Algorithm) -> ScenarioConfig {
    ScenarioConfig {
        nodes: 30,
        duration: SimTime::from_secs(5),
        warmup: SimTime::from_secs(1),
        cooldown: SimTime::from_secs(1),
        publish_rate: 20.0,
        link_error_rate: 0.0,
        reconfig_interval: Some(SimTime::from_millis(200)),
        algorithm: kind,
        ..ScenarioConfig::default()
    }
}

#[test]
fn non_overlapping_reconfigurations_run_to_schedule() {
    let r = run_scenario(&base(Algorithm::no_recovery()));
    // 5 s run, one break every 0.2 s until ticks stop renewing.
    assert!(
        (15..=25).contains(&r.reconfigurations),
        "got {} reconfigurations",
        r.reconfigurations
    );
}

#[test]
fn losses_cluster_around_reconfigurations() {
    // With reliable links, the only losses are reconfiguration
    // windows: the worst bin must be clearly below the average.
    let r = run_scenario(&base(Algorithm::no_recovery()));
    assert!(r.delivery_rate < 1.0);
    assert!(
        r.min_bin_rate < r.delivery_rate - 0.02,
        "expected spiky losses: min {} vs avg {}",
        r.min_bin_rate,
        r.delivery_rate
    );
}

#[test]
fn publisher_pull_survives_stale_routes() {
    // Publisher-based pull steers digests along recorded routes that
    // reconfigurations keep invalidating; it must still recover
    // events rather than wedging or panicking.
    let r = run_scenario(&base(Algorithm::publisher_pull()));
    let baseline = run_scenario(&base(Algorithm::no_recovery()));
    assert!(r.events_recovered > 0, "no recovery despite losses");
    assert!(r.delivery_rate >= baseline.delivery_rate);
}

#[test]
fn combined_pull_masks_reconfigurations_almost_completely() {
    let r = run_scenario(&base(Algorithm::combined_pull()));
    assert!(
        r.delivery_rate > 0.95,
        "combined pull delivered only {}",
        r.delivery_rate
    );
    // At N = 30 a pattern averages < 1 subscriber, so pull steering
    // has little to work with; the paper-scale (N = 100) "leveling to
    // ~100%" claim is checked by the fig3b experiment instead. Here we
    // only require the worst spike to be clearly softened.
    let baseline = run_scenario(&base(Algorithm::no_recovery()));
    assert!(
        r.min_bin_rate > baseline.min_bin_rate,
        "negative spikes not softened: {} vs baseline {}",
        r.min_bin_rate,
        baseline.min_bin_rate
    );
}

#[test]
fn overlapping_reconfigurations_fragment_and_heal() {
    let config = ScenarioConfig {
        reconfig_interval: Some(SimTime::from_millis(30)),
        ..base(Algorithm::push())
    };
    let (r, trace) = run_scenario_traced(&config, 2_000_000);
    let breaks = trace
        .records()
        .iter()
        .filter(|t| matches!(t, TraceRecord::LinkBroken { .. }))
        .count();
    let adds = trace
        .records()
        .iter()
        .filter(|t| matches!(t, TraceRecord::LinkAdded { .. }))
        .count();
    assert!(breaks > 100, "expected an overlapping storm, got {breaks}");
    // Every break is eventually matched by a reconnection (the 0.1 s
    // repair delay means the last few may still be pending at the
    // instant ticks stop, never more than repair_delay/rho + 1 worth).
    assert!(adds >= breaks - 5, "breaks {breaks} vs adds {adds}");
    assert!(
        r.delivery_rate > 0.8,
        "push delivered only {}",
        r.delivery_rate
    );
}

#[test]
fn loss_and_reconfiguration_compose() {
    // Both loss sources at once: lossy links *and* topology churn.
    let config = ScenarioConfig {
        link_error_rate: 0.05,
        ..base(Algorithm::combined_pull())
    };
    let with_recovery = run_scenario(&config);
    let without = run_scenario(&config.with_algorithm(Algorithm::no_recovery()));
    assert!(with_recovery.delivery_rate > without.delivery_rate + 0.05);
}

#[test]
fn repair_heals_delivery_after_the_last_break() {
    // After reconfigurations stop, late bins return to full delivery.
    let config = ScenarioConfig {
        duration: SimTime::from_secs(6),
        reconfig_interval: Some(SimTime::from_secs(10)), // beyond the run
        ..base(Algorithm::no_recovery())
    };
    let r = run_scenario(&config);
    assert_eq!(r.reconfigurations, 0, "rho beyond duration never fires");
    assert!(r.delivery_rate > 0.999);
}
