//! Recovery-latency tests: the paper's Section IV-C observation that
//! "the push approach has a bigger recovery latency than pull ...
//! the pull approach gossips more precise information about the lost
//! event, and hence exhibits a smaller latency."

use epidemic_pubsub::gossip::Algorithm;
use epidemic_pubsub::harness::{run_scenario, ScenarioConfig, ScenarioResult};
use epidemic_pubsub::sim::SimTime;

fn run(kind: Algorithm) -> ScenarioResult {
    run_scenario(&ScenarioConfig {
        nodes: 40,
        duration: SimTime::from_secs(6),
        warmup: SimTime::from_secs(1),
        cooldown: SimTime::from_secs(1),
        publish_rate: 25.0,
        seed: 5,
        algorithm: kind,
        ..ScenarioConfig::default()
    })
}

#[test]
fn latencies_are_positive_and_bounded_by_the_run() {
    for kind in [
        Algorithm::push(),
        Algorithm::subscriber_pull(),
        Algorithm::combined_pull(),
        Algorithm::random_pull(),
    ] {
        let r = run(kind.clone());
        assert!(r.events_recovered > 0, "{kind} recovered nothing");
        assert!(
            r.recovery_latency_mean > 0.0,
            "{kind}: latency must be positive"
        );
        assert!(
            r.recovery_latency_p95 < 7.0,
            "{kind}: p95 {} beyond run length",
            r.recovery_latency_p95
        );
        assert!(r.recovery_latency_mean <= r.recovery_latency_p95);
    }
}

#[test]
fn end_to_end_latencies_are_same_order_across_strategies() {
    // The paper's Section IV-C "push has a bigger recovery latency
    // than pull" compares *post-detection* behavior: pull's digest
    // names exactly the missing event, push waits for the right
    // pattern to come up. Our metric is end-to-end (publish →
    // recovered delivery), which additionally charges pull its
    // detection delay — the wait for the next event on the same
    // (source, pattern) stream — so push can come out ahead
    // end-to-end. What must hold for any strategy: latencies of the
    // same order of magnitude, well within the buffer's persistence.
    let push = run(Algorithm::push());
    let pull = run(Algorithm::combined_pull());
    let ratio = pull.recovery_latency_mean / push.recovery_latency_mean;
    assert!(
        (0.25..=4.0).contains(&ratio),
        "latency ratio out of family: pull {:.3}s vs push {:.3}s",
        pull.recovery_latency_mean,
        push.recovery_latency_mean
    );
}

#[test]
fn no_recovery_has_no_latency_samples() {
    let r = run(Algorithm::no_recovery());
    assert_eq!(r.events_recovered, 0);
    assert_eq!(r.recovery_latency_mean, 0.0);
    assert_eq!(r.recovery_latency_p95, 0.0);
}

#[test]
fn faster_gossip_means_faster_recovery() {
    let slow = run_scenario(&ScenarioConfig {
        gossip_interval: SimTime::from_millis(60),
        ..ScenarioConfig {
            nodes: 40,
            duration: SimTime::from_secs(6),
            warmup: SimTime::from_secs(1),
            cooldown: SimTime::from_secs(1),
            publish_rate: 25.0,
            seed: 5,
            algorithm: Algorithm::combined_pull(),
            ..ScenarioConfig::default()
        }
    });
    let fast = run_scenario(&ScenarioConfig {
        gossip_interval: SimTime::from_millis(10),
        ..ScenarioConfig {
            nodes: 40,
            duration: SimTime::from_secs(6),
            warmup: SimTime::from_secs(1),
            cooldown: SimTime::from_secs(1),
            publish_rate: 25.0,
            seed: 5,
            algorithm: Algorithm::combined_pull(),
            ..ScenarioConfig::default()
        }
    });
    assert!(
        fast.recovery_latency_mean < slow.recovery_latency_mean,
        "T=10ms ({:.3}s) should beat T=60ms ({:.3}s)",
        fast.recovery_latency_mean,
        slow.recovery_latency_mean
    );
}
