//! Failure injection: the system must stay correct (never panic,
//! never report impossible numbers) under hostile configurations the
//! paper does not exercise directly.

use epidemic_pubsub::gossip::{Algorithm, GossipConfig};
use epidemic_pubsub::harness::{run_scenario, ScenarioConfig};
use epidemic_pubsub::overlay::OutOfBandSpec;
use epidemic_pubsub::sim::SimTime;

fn base(kind: Algorithm) -> ScenarioConfig {
    ScenarioConfig {
        nodes: 20,
        duration: SimTime::from_secs(3),
        warmup: SimTime::from_millis(500),
        cooldown: SimTime::from_millis(500),
        publish_rate: 20.0,
        algorithm: kind,
        ..ScenarioConfig::default()
    }
}

#[test]
fn lossy_out_of_band_channel_degrades_gracefully() {
    // The paper assumes the unicast transport is "not necessarily
    // reliable": losing half the requests/replies must reduce, not
    // break, recovery.
    let reliable = run_scenario(&base(Algorithm::combined_pull()));
    let lossy_oob = run_scenario(&ScenarioConfig {
        out_of_band: OutOfBandSpec {
            loss_rate: 0.5,
            ..OutOfBandSpec::default()
        },
        ..base(Algorithm::combined_pull())
    });
    let baseline = run_scenario(&base(Algorithm::no_recovery()));
    assert!(lossy_oob.delivery_rate <= reliable.delivery_rate + 0.01);
    assert!(
        lossy_oob.delivery_rate > baseline.delivery_rate,
        "even a lossy recovery channel should help: {} vs {}",
        lossy_oob.delivery_rate,
        baseline.delivery_rate
    );
}

#[test]
fn fully_lossy_out_of_band_channel_equals_no_recovery_delivery() {
    let dead_oob = run_scenario(&ScenarioConfig {
        out_of_band: OutOfBandSpec {
            loss_rate: 1.0,
            ..OutOfBandSpec::default()
        },
        ..base(Algorithm::subscriber_pull())
    });
    assert_eq!(dead_oob.events_recovered, 0);
}

#[test]
fn zero_capacity_buffers_disable_recovery_but_not_dispatching() {
    let r = run_scenario(&ScenarioConfig {
        buffer_size: 0,
        ..base(Algorithm::combined_pull())
    });
    assert!(r.events_published > 0);
    assert!(r.delivery_rate > 0.2, "dispatching itself must still work");
    assert_eq!(r.events_recovered, 0, "nothing cached, nothing recovered");
}

#[test]
fn tiny_buffers_still_recover_something() {
    let r = run_scenario(&ScenarioConfig {
        buffer_size: 20,
        ..base(Algorithm::combined_pull())
    });
    assert!(r.events_recovered > 0);
}

#[test]
fn extreme_forward_probabilities_are_safe() {
    for p_forward in [0.0, 1.0] {
        let r = run_scenario(&ScenarioConfig {
            gossip: GossipConfig {
                p_forward,
                ..GossipConfig::default()
            },
            ..base(Algorithm::push())
        });
        assert!((0.0..=1.0).contains(&r.delivery_rate));
        assert!(r.gossip_msgs > 0);
    }
}

#[test]
fn p_source_extremes_select_a_single_pull_variant() {
    // p_source = 0 makes combined pull behave like subscriber pull;
    // p_source = 1 steers every round at the publisher (with
    // subscriber fallback when no route is known).
    for p_source in [0.0, 1.0] {
        let r = run_scenario(&ScenarioConfig {
            gossip: GossipConfig {
                p_source,
                ..GossipConfig::default()
            },
            ..base(Algorithm::combined_pull())
        });
        assert!(
            r.events_recovered > 0,
            "p_source={p_source} recovered nothing"
        );
    }
}

#[test]
fn total_link_loss_delivers_only_local_events() {
    let r = run_scenario(&ScenarioConfig {
        link_error_rate: 1.0,
        ..base(Algorithm::no_recovery())
    });
    // Publishers still deliver to their own local subscribers; nothing
    // crosses any link.
    assert!(r.delivery_rate < 0.3, "rate {} too high", r.delivery_rate);
}

#[test]
fn gossip_with_total_link_loss_cannot_recover_anything() {
    // Gossip digests travel the same lossy links; only out-of-band
    // replies could arrive, but no digest ever reaches anyone.
    let r = run_scenario(&ScenarioConfig {
        link_error_rate: 1.0,
        ..base(Algorithm::push())
    });
    assert_eq!(r.events_recovered, 0);
}

#[test]
fn violent_reconfiguration_storm_survives() {
    // Break a link every 10 ms with a 100 ms repair delay: the overlay
    // spends the whole run fragmented. The system must stay alive and
    // deliver what physics allows.
    let r = run_scenario(&ScenarioConfig {
        link_error_rate: 0.0,
        reconfig_interval: Some(SimTime::from_millis(10)),
        ..base(Algorithm::combined_pull())
    });
    assert!(r.reconfigurations > 100);
    assert!(r.delivery_rate > 0.1);
}

#[test]
fn single_node_network_is_a_degenerate_but_valid_case() {
    let r = run_scenario(&ScenarioConfig {
        nodes: 1,
        ..base(Algorithm::combined_pull())
    });
    // One dispatcher: everything it publishes for itself arrives.
    assert_eq!(r.delivery_rate, 1.0);
    assert_eq!(r.event_msgs, 0);
}

#[test]
fn two_node_network_works_for_every_algorithm() {
    for kind in Algorithm::paper() {
        let r = run_scenario(&ScenarioConfig {
            nodes: 2,
            ..base(kind.clone())
        });
        assert!(
            (0.0..=1.0).contains(&r.delivery_rate),
            "{kind} on 2 nodes: {}",
            r.delivery_rate
        );
    }
}
