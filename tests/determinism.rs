//! Determinism: a scenario is a pure function of its configuration.
//! This is what lets the reproduction present single runs (the paper
//! reports 1-2% variation across seeds and also uses single runs).

use epidemic_pubsub::gossip::Algorithm;
use epidemic_pubsub::harness::{run_scenario, ScenarioConfig};
use epidemic_pubsub::sim::SimTime;

fn base(kind: Algorithm, seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        nodes: 25,
        duration: SimTime::from_secs(4),
        warmup: SimTime::from_millis(500),
        cooldown: SimTime::from_millis(500),
        publish_rate: 20.0,
        seed,
        algorithm: kind,
        ..ScenarioConfig::default()
    }
}

#[test]
fn every_algorithm_is_deterministic() {
    for kind in Algorithm::paper() {
        let a = run_scenario(&base(kind.clone(), 7));
        let b = run_scenario(&base(kind.clone(), 7));
        assert_eq!(a.delivery_rate, b.delivery_rate, "{kind}");
        assert_eq!(a.events_published, b.events_published, "{kind}");
        assert_eq!(a.event_msgs, b.event_msgs, "{kind}");
        assert_eq!(a.gossip_msgs, b.gossip_msgs, "{kind}");
        assert_eq!(a.requests, b.requests, "{kind}");
        assert_eq!(a.replies, b.replies, "{kind}");
        assert_eq!(a.events_recovered, b.events_recovered, "{kind}");
        assert_eq!(a.series, b.series, "{kind}");
    }
}

#[test]
fn reconfiguration_scenarios_are_deterministic() {
    let config = ScenarioConfig {
        link_error_rate: 0.0,
        reconfig_interval: Some(SimTime::from_millis(100)),
        ..base(Algorithm::combined_pull(), 11)
    };
    let a = run_scenario(&config);
    let b = run_scenario(&config);
    assert_eq!(a.reconfigurations, b.reconfigurations);
    assert_eq!(a.delivery_rate, b.delivery_rate);
    assert_eq!(a.series, b.series);
}

#[test]
fn seeds_produce_distinct_but_similar_runs() {
    // The paper: "variations are limited, around 1%-2%" across seeds.
    // On our reduced scale, allow a few points of spread.
    let rates: Vec<f64> = (1..=5)
        .map(|seed| run_scenario(&base(Algorithm::combined_pull(), seed)).delivery_rate)
        .collect();
    let min = rates.iter().copied().fold(f64::INFINITY, f64::min);
    let max = rates.iter().copied().fold(0.0f64, f64::max);
    assert!(max > min, "different seeds should differ somewhere");
    assert!(max - min < 0.12, "seed variation too large: {rates:?}");
}

#[test]
fn unrelated_parameters_do_not_perturb_the_workload() {
    // Changing the gossip interval must not change what gets
    // published (stream separation): the published-event count and
    // the intended-recipient statistics stay identical.
    let a = run_scenario(&base(Algorithm::push(), 3));
    let b = run_scenario(&ScenarioConfig {
        gossip_interval: SimTime::from_millis(50),
        ..base(Algorithm::push(), 3)
    });
    assert_eq!(a.events_published, b.events_published);
    assert_eq!(a.receivers_per_event, b.receivers_per_event);
}

#[test]
fn buffer_size_does_not_perturb_the_workload_either() {
    let a = run_scenario(&base(Algorithm::combined_pull(), 3));
    let b = run_scenario(&ScenarioConfig {
        buffer_size: 4000,
        ..base(Algorithm::combined_pull(), 3)
    });
    assert_eq!(a.events_published, b.events_published);
    assert_eq!(a.receivers_per_event, b.receivers_per_event);
    // (event_msgs is NOT compared: gossip and event messages share the
    // physical links, so a different recovery load legitimately shifts
    // which event messages the loss stream drops.)
}
