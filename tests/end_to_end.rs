//! End-to-end integration tests: whole scenarios through the public
//! facade, checking the paper's qualitative claims on reduced scales.

use epidemic_pubsub::gossip::Algorithm;
use epidemic_pubsub::harness::{run_scenario, ScenarioConfig, ScenarioResult};
use epidemic_pubsub::sim::SimTime;

fn small() -> ScenarioConfig {
    ScenarioConfig {
        nodes: 30,
        duration: SimTime::from_secs(5),
        warmup: SimTime::from_secs(1),
        cooldown: SimTime::from_secs(1),
        publish_rate: 25.0,
        seed: 42,
        ..ScenarioConfig::default()
    }
}

fn run(kind: Algorithm) -> ScenarioResult {
    run_scenario(&small().with_algorithm(kind))
}

#[test]
fn all_algorithms_complete_and_report_sane_numbers() {
    for kind in Algorithm::paper() {
        let r = run(kind.clone());
        assert!(
            (0.0..=1.0).contains(&r.delivery_rate),
            "{kind}: rate {}",
            r.delivery_rate
        );
        assert!(
            (0.0..=1.0).contains(&r.min_bin_rate),
            "{kind}: min bin {}",
            r.min_bin_rate
        );
        assert!(r.min_bin_rate <= 1.0 && r.min_bin_rate <= r.delivery_rate + 0.5);
        assert!(r.events_published > 0, "{kind} published nothing");
        assert!(r.event_msgs > 0, "{kind} forwarded nothing");
        assert!(!r.series.is_empty(), "{kind} produced no series");
    }
}

#[test]
fn every_recovery_strategy_beats_the_baseline() {
    let baseline = run(Algorithm::no_recovery());
    for kind in Algorithm::paper() {
        if kind == Algorithm::no_recovery() {
            continue;
        }
        let r = run(kind.clone());
        assert!(
            r.delivery_rate > baseline.delivery_rate + 0.02,
            "{kind}: {} vs baseline {}",
            r.delivery_rate,
            baseline.delivery_rate
        );
    }
}

#[test]
fn push_and_combined_are_the_best_strategies() {
    // The paper's headline finding (Fig. 3a): push and combined pull
    // achieve the highest delivery; each pull variant alone does not.
    let push = run(Algorithm::push()).delivery_rate;
    let combined = run(Algorithm::combined_pull()).delivery_rate;
    let subscriber = run(Algorithm::subscriber_pull()).delivery_rate;
    let publisher = run(Algorithm::publisher_pull()).delivery_rate;
    // At this reduced scale (N = 30) a single pull variant can tie the
    // combined one, so allow a small tolerance; the strict ordering at
    // N = 100 is checked by the fig3a/fig4 experiments.
    let best_single = subscriber.max(publisher);
    assert!(
        push >= best_single - 0.03,
        "push {push} well below best single pull {best_single}"
    );
    assert!(
        combined >= best_single - 0.03,
        "combined {combined} well below best single pull {best_single}"
    );
    assert!(push > 0.85, "push only reached {push}");
    assert!(combined > 0.85, "combined only reached {combined}");
}

#[test]
fn no_recovery_sends_no_recovery_traffic() {
    let r = run(Algorithm::no_recovery());
    assert_eq!(r.gossip_msgs, 0);
    assert_eq!(r.requests, 0);
    assert_eq!(r.replies, 0);
    assert_eq!(r.events_recovered, 0);
}

#[test]
fn recovered_events_show_up_in_both_counters() {
    let r = run(Algorithm::combined_pull());
    assert!(r.events_recovered > 0);
    assert!(
        r.events_retransmitted >= r.events_recovered,
        "retransmissions ({}) must cover recoveries ({})",
        r.events_retransmitted,
        r.events_recovered
    );
    assert!(r.replies > 0);
}

#[test]
fn push_uses_requests_and_pulls_do_not() {
    assert!(run(Algorithm::push()).requests > 0);
    assert_eq!(run(Algorithm::subscriber_pull()).requests, 0);
    assert_eq!(run(Algorithm::combined_pull()).requests, 0);
    assert_eq!(run(Algorithm::random_pull()).requests, 0);
}

#[test]
fn lower_error_rate_means_higher_delivery() {
    let lossy = run_scenario(&ScenarioConfig {
        link_error_rate: 0.1,
        ..small()
    });
    let mild = run_scenario(&ScenarioConfig {
        link_error_rate: 0.02,
        ..small()
    });
    assert!(mild.delivery_rate > lossy.delivery_rate);
}

#[test]
fn bigger_buffers_help_push() {
    let small_buf = run_scenario(&ScenarioConfig {
        buffer_size: 100,
        algorithm: Algorithm::push(),
        ..small()
    });
    let big_buf = run_scenario(&ScenarioConfig {
        buffer_size: 4000,
        algorithm: Algorithm::push(),
        ..small()
    });
    assert!(
        big_buf.delivery_rate > small_buf.delivery_rate,
        "beta=4000 ({}) should beat beta=100 ({})",
        big_buf.delivery_rate,
        small_buf.delivery_rate
    );
}

#[test]
fn faster_gossip_means_more_overhead_and_no_worse_delivery() {
    let slow = run_scenario(&ScenarioConfig {
        gossip_interval: SimTime::from_millis(60),
        algorithm: Algorithm::push(),
        ..small()
    });
    let fast = run_scenario(&ScenarioConfig {
        gossip_interval: SimTime::from_millis(10),
        algorithm: Algorithm::push(),
        ..small()
    });
    assert!(fast.gossip_msgs > slow.gossip_msgs);
    assert!(fast.delivery_rate >= slow.delivery_rate - 0.02);
}

#[test]
fn facade_reexports_compose() {
    // The facade's modules interoperate without importing the
    // underlying crates directly.
    use epidemic_pubsub::overlay::Topology;
    use epidemic_pubsub::pubsub::{Dispatcher, DispatcherConfig};
    use epidemic_pubsub::sim::RngFactory;

    let topo = Topology::random_tree(10, 4, &mut RngFactory::new(1).stream("t"));
    let d = Dispatcher::new(topo.nodes().next().unwrap(), DispatcherConfig::default());
    assert_eq!(d.id().index(), 0);
}
