#!/usr/bin/env bash
# Tier-1 verification, fully offline: release build, the complete test
# suite, and a warnings-as-errors clippy pass over the workspace.
# The default dependency graph has no external crates, so this must
# succeed with no network access at all.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== tier-1: formatting =="
if cargo fmt --version >/dev/null 2>&1; then
    cargo fmt --all --check
else
    echo "rustfmt not installed; skipping format check"
fi

echo "== tier-1: release build =="
# --workspace: the root package makes a bare `cargo build` compile only
# itself (+ member libs); the member *binaries* (net_cluster below)
# need the whole workspace.
cargo build --workspace --release

echo "== tier-1: tests =="
cargo test -q

echo "== tier-1: workspace tests =="
cargo test --workspace -q

echo "== tier-1: microbench (kernel + per-strategy gossip rounds) =="
mkdir -p target/bench
cargo run --release -p eps-bench --bin microbench -- \
    --out target/bench/BENCH_kernel.json \
    --gossip-out target/bench/BENCH_gossip.json \
    --net-out target/bench/BENCH_net.json

echo "== tier-1: scenario bench (end-to-end runs per algorithm) =="
cargo run --release -p eps-bench --bin scenario_bench -- \
    --out target/bench/BENCH_scenario.json

echo "== tier-1: bench compare (kernel gated at 25%, rest advisory) =="
# The kernel microbenches are tight, allocation-free loops — stable
# enough to gate hard with generous headroom. The gossip/scenario/net
# files time whole protocol rounds and end-to-end runs, which are too
# noisy on shared machines to fail CI; those stay advisory, as do the
# one-build-per-iteration topology_build entries inside the kernel
# file. Shared hosts occasionally time-slice the vCPU (steal),
# uniformly doubling every measurement — on a strict failure,
# re-measure once before declaring a real regression.
if ! cargo run --release -p eps-bench --bin bench_compare -- \
    --strict --threshold 25 --advisory-prefix topology_build \
    BENCH_kernel.json target/bench/BENCH_kernel.json; then
    echo "kernel bench regressed; re-measuring once (transient host steal?)"
    sleep 5
    cargo run --release -p eps-bench --bin microbench -- \
        --out target/bench/BENCH_kernel.json \
        --gossip-out target/bench/BENCH_gossip.json \
        --net-out target/bench/BENCH_net.json
    cargo run --release -p eps-bench --bin bench_compare -- \
        --strict --threshold 25 --advisory-prefix topology_build \
        BENCH_kernel.json target/bench/BENCH_kernel.json
fi
echo "== tier-1: net_load (reactor saturation at 1000 dispatchers) =="
# One stage at the committed baseline rate: the full sweep is for
# finding the saturation knee offline; CI re-measures the knee stage
# and merges its entries beside the codec microbenches, where the
# advisory compare below tracks them. Runs after the kernel gate so a
# strict-retry microbench rerun cannot clobber the merged entries.
cargo run --release -p eps-bench --bin net_load -- \
    --nodes 1000 --workers 2 --rates 2 --duration 0.6 --drain 20 \
    --merge-into target/bench/BENCH_net.json

# --advisory-prefix keeps the client-layer matching entries (which
# include one-shot aggregate-filter counts), the sub-µs summary
# map-churn loops, and the whole-cluster net_load saturation numbers
# advisory even if this comparison is ever promoted to --strict.
cargo run --release -p eps-bench --bin bench_compare -- \
    --advisory-prefix table_matching_aggregated \
    --advisory-prefix summary_ \
    --advisory-prefix net_load \
    BENCH_gossip.json target/bench/BENCH_gossip.json \
    BENCH_scenario.json target/bench/BENCH_scenario.json \
    BENCH_net.json target/bench/BENCH_net.json

echo "== tier-1: loopback smoke (3-node tree over real sockets) =="
./target/release/net_cluster --nodes 3 --algorithm push --eps 0.05 \
    --pattern-universe 6 --pi-max 2 --duration 0.8 --drain 2 --seed 11
./target/release/net_cluster --nodes 3 --algorithm combined-pull --eps 0.05 \
    --pattern-universe 6 --pi-max 2 --duration 0.8 --drain 2 --seed 13

echo "== tier-1: reactor smoke (same scenarios on the epoll runtime) =="
./target/release/net_cluster --nodes 3 --algorithm push --eps 0.05 \
    --pattern-universe 6 --pi-max 2 --duration 0.8 --drain 2 --seed 11 \
    --runtime reactor --workers 2
./target/release/net_cluster --nodes 3 --algorithm combined-pull --eps 0.05 \
    --pattern-universe 6 --pi-max 2 --duration 0.8 --drain 2 --seed 13 \
    --runtime reactor --workers 2

echo "== tier-1: overlay scenarios (duplicate-suppression invariant) =="
# On a tree the routing view IS the physical graph: no cross links
# exist, so the duplicate filter must absorb exactly zero redundant
# copies. On the cyclic overlays the cross links replicate every
# matching event, so the suppressed count must be positive.
overlay_dups() {
    ./target/release/simulate --overlay "$1" --max-degree "$2" --nodes 40 \
        --duration 2 --seed 5 -a push 2>/dev/null \
        | awk '/duplicates suppressed/ {print $3; found=1} END {if (!found) print 0}'
}
tree_dups=$(overlay_dups tree 4)
ba_dups=$(overlay_dups ba 6)
ws_dups=$(overlay_dups ws 6)
echo "duplicates suppressed: tree=$tree_dups ba=$ba_dups ws=$ws_dups"
[ "$tree_dups" -eq 0 ] || { echo "FAIL: tree overlay suppressed duplicates"; exit 1; }
[ "$ba_dups" -gt 0 ] || { echo "FAIL: ba overlay suppressed no duplicates"; exit 1; }
[ "$ws_dups" -gt 0 ] || { echo "FAIL: ws overlay suppressed no duplicates"; exit 1; }

echo "== tier-1: aggregation smoke (client layer, covering/merging) =="
# One dispatcher population, 1 vs 100 clients per dispatcher. The
# aggregate layer must not cost delivery (denser subscriptions give
# recovery more to work with, so the multi-client cell reads >= the
# single-client one on this pinned seed), and subscription setup
# traffic must be sublinear in client count: covering collapses 100x
# the client subscriptions into far fewer than 100x the wire messages.
agg_cell() {
    ./target/release/simulate --nodes 40 --duration 2 --seed 5 -a push \
        --clients "$1" 2>/dev/null
}
base_cell=$(agg_cell 1)
multi_cell=$(agg_cell 100)
base_delivery=$(echo "$base_cell" | awk '/delivery rate \(window\)/ {print $4}')
multi_delivery=$(echo "$multi_cell" | awk '/delivery rate \(window\)/ {print $4}')
base_submsgs=$(echo "$base_cell" | awk '/setup subscription msgs/ {print $4}')
multi_submsgs=$(echo "$multi_cell" | awk '/setup subscription msgs/ {print $4}')
multi_subs=$(echo "$multi_cell" | awk '/client subscriptions/ {print $3}')
echo "delivery: clients1=$base_delivery clients100=$multi_delivery;" \
     "setup msgs: clients1=$base_submsgs clients100=$multi_submsgs" \
     "($multi_subs client subscriptions)"
awk -v a="$multi_delivery" -v b="$base_delivery" 'BEGIN {exit !(a >= b)}' \
    || { echo "FAIL: clients=100 delivery dropped below clients=1"; exit 1; }
[ "$multi_submsgs" -lt $((100 * base_submsgs)) ] \
    || { echo "FAIL: subscription wire traffic grew linearly in client count"; exit 1; }

echo "== tier-1: summary reconciliation smoke (wire cost at a 100x cache) =="
# combined-pull vs summary-pull with beta = 150000 (100x the paper's
# 1500). A linear digest is charged the paper's flat one-event rate, so
# its arm provisions the payload for a full-cache announcement:
# header + 96 bits per id for this cache's per-pattern share
# (beta / Pi). The summary arm keeps the 1024-bit default because its
# digests are accounted exactly (a root aggregate plus only the ranges
# that differ). The claim under test is the headline O(C) -> O(log C)
# reduction: summary recovery-control bits (gossip + requests) must be
# under 25% of linear's, at equal-or-better window delivery.
LINEAR_PAYLOAD=$((256 + 96 * 150000 / 70))
cache100_cell() {
    ./target/release/simulate --nodes 40 --duration 2 --seed 5 --eps 0.05 \
        --beta 150000 -a "$1" "${@:2}" 2>/dev/null
}
linear_cell=$(cache100_cell combined-pull --payload-bits "$LINEAR_PAYLOAD")
summary_cell=$(cache100_cell summary-pull)
linear_bits=$(echo "$linear_cell" | awk '/recovery control bits/ {print $4}')
summary_bits=$(echo "$summary_cell" | awk '/recovery control bits/ {print $4}')
linear_delivery=$(echo "$linear_cell" | awk '/delivery rate \(window\)/ {print $4}')
summary_delivery=$(echo "$summary_cell" | awk '/delivery rate \(window\)/ {print $4}')
echo "recovery control bits: linear=$linear_bits summary=$summary_bits;" \
     "delivery: linear=$linear_delivery summary=$summary_delivery"
[ "$((4 * summary_bits))" -lt "$linear_bits" ] \
    || { echo "FAIL: summary wire cost not under 25% of linear at a 100x cache"; exit 1; }
awk -v s="$summary_delivery" -v l="$linear_delivery" 'BEGIN {exit !(s >= l)}' \
    || { echo "FAIL: summary delivery fell below linear"; exit 1; }

echo "== tier-1: extras (proptests; needs registry access) =="
# The extras package pulls proptest/criterion from crates.io, so it
# only builds where the registry is reachable (or vendored). When it
# resolves, run the proptest suites -- including the client-layer
# model equivalence (client_aggregation_proptests) and the summary
# reconciliation properties (summary_reconciliation_proptests).
# Offline hosts still run the in-workspace twins
# (crates/pubsub/tests/client_model.rs,
# crates/gossip/tests/summary_model.rs) in the workspace test pass
# above.
if cargo metadata --manifest-path extras/Cargo.toml --offline >/dev/null 2>&1; then
    cargo test --manifest-path extras/Cargo.toml -q
else
    echo "extras dependencies unavailable offline; skipping (in-workspace model twins cover the client and summary layers)"
fi

echo "== tier-1: docs build =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

echo "== tier-1: clippy (warnings are errors) =="
if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy --workspace --all-targets -- -D warnings
else
    echo "clippy not installed; skipping lint pass"
fi

echo "tier-1 OK"
