#!/usr/bin/env bash
# Tier-1 verification, fully offline: release build, the complete test
# suite, and a warnings-as-errors clippy pass over the workspace.
# The default dependency graph has no external crates, so this must
# succeed with no network access at all.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== tier-1: formatting =="
if cargo fmt --version >/dev/null 2>&1; then
    cargo fmt --all --check
else
    echo "rustfmt not installed; skipping format check"
fi

echo "== tier-1: release build =="
# --workspace: the root package makes a bare `cargo build` compile only
# itself (+ member libs); the member *binaries* (net_cluster below)
# need the whole workspace.
cargo build --workspace --release

echo "== tier-1: tests =="
cargo test -q

echo "== tier-1: workspace tests =="
cargo test --workspace -q

echo "== tier-1: microbench (kernel + per-strategy gossip rounds) =="
mkdir -p target/bench
cargo run --release -p eps-bench --bin microbench -- \
    --out target/bench/BENCH_kernel.json \
    --gossip-out target/bench/BENCH_gossip.json \
    --net-out target/bench/BENCH_net.json

echo "== tier-1: scenario bench (end-to-end runs per algorithm) =="
cargo run --release -p eps-bench --bin scenario_bench -- \
    --out target/bench/BENCH_scenario.json

echo "== tier-1: bench compare (kernel gated at 25%, rest advisory) =="
# The kernel microbenches are tight, allocation-free loops — stable
# enough to gate hard with generous headroom. The gossip/scenario/net
# files time whole protocol rounds and end-to-end runs, which are too
# noisy on shared machines to fail CI; those stay advisory, as do the
# one-build-per-iteration topology_build entries inside the kernel
# file. Shared hosts occasionally time-slice the vCPU (steal),
# uniformly doubling every measurement — on a strict failure,
# re-measure once before declaring a real regression.
if ! cargo run --release -p eps-bench --bin bench_compare -- \
    --strict --threshold 25 --advisory-prefix topology_build \
    BENCH_kernel.json target/bench/BENCH_kernel.json; then
    echo "kernel bench regressed; re-measuring once (transient host steal?)"
    sleep 5
    cargo run --release -p eps-bench --bin microbench -- \
        --out target/bench/BENCH_kernel.json \
        --gossip-out target/bench/BENCH_gossip.json \
        --net-out target/bench/BENCH_net.json
    cargo run --release -p eps-bench --bin bench_compare -- \
        --strict --threshold 25 --advisory-prefix topology_build \
        BENCH_kernel.json target/bench/BENCH_kernel.json
fi
cargo run --release -p eps-bench --bin bench_compare -- \
    BENCH_gossip.json target/bench/BENCH_gossip.json \
    BENCH_scenario.json target/bench/BENCH_scenario.json \
    BENCH_net.json target/bench/BENCH_net.json

echo "== tier-1: loopback smoke (3-node tree over real sockets) =="
./target/release/net_cluster --nodes 3 --algorithm push --eps 0.05 \
    --pattern-universe 6 --pi-max 2 --duration 0.8 --drain 2 --seed 11
./target/release/net_cluster --nodes 3 --algorithm combined-pull --eps 0.05 \
    --pattern-universe 6 --pi-max 2 --duration 0.8 --drain 2 --seed 13

echo "== tier-1: overlay scenarios (duplicate-suppression invariant) =="
# On a tree the routing view IS the physical graph: no cross links
# exist, so the duplicate filter must absorb exactly zero redundant
# copies. On the cyclic overlays the cross links replicate every
# matching event, so the suppressed count must be positive.
overlay_dups() {
    ./target/release/simulate --overlay "$1" --max-degree "$2" --nodes 40 \
        --duration 2 --seed 5 -a push 2>/dev/null \
        | awk '/duplicates suppressed/ {print $3; found=1} END {if (!found) print 0}'
}
tree_dups=$(overlay_dups tree 4)
ba_dups=$(overlay_dups ba 6)
ws_dups=$(overlay_dups ws 6)
echo "duplicates suppressed: tree=$tree_dups ba=$ba_dups ws=$ws_dups"
[ "$tree_dups" -eq 0 ] || { echo "FAIL: tree overlay suppressed duplicates"; exit 1; }
[ "$ba_dups" -gt 0 ] || { echo "FAIL: ba overlay suppressed no duplicates"; exit 1; }
[ "$ws_dups" -gt 0 ] || { echo "FAIL: ws overlay suppressed no duplicates"; exit 1; }

echo "== tier-1: docs build =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

echo "== tier-1: clippy (warnings are errors) =="
if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy --workspace --all-targets -- -D warnings
else
    echo "clippy not installed; skipping lint pass"
fi

echo "tier-1 OK"
