//! Scenario tracing: a bounded log of the interesting moments of a
//! run, for debugging, visualisation, and white-box tests.

use eps_overlay::{LinkId, NodeId};
use eps_pubsub::{ClientId, EventId};
use eps_sim::SimTime;

/// One traced occurrence inside a scenario.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TraceRecord {
    /// A dispatcher published an event with the given number of
    /// intended recipients.
    Publish {
        /// Virtual time.
        at: SimTime,
        /// The publisher.
        node: NodeId,
        /// The event.
        event: EventId,
        /// Intended recipients at publish time.
        expected: u32,
    },
    /// An event was delivered to one of a dispatcher's local clients.
    /// An event reaching a dispatcher with several matching clients
    /// produces one record per client.
    Deliver {
        /// Virtual time.
        at: SimTime,
        /// The subscribing dispatcher.
        node: NodeId,
        /// The local client the delivery counts for.
        client: ClientId,
        /// The event.
        event: EventId,
        /// `true` if it arrived through the recovery machinery rather
        /// than normal dispatching.
        recovered: bool,
    },
    /// A dispatcher's detector reported sequence gaps.
    LossDetected {
        /// Virtual time.
        at: SimTime,
        /// The detecting dispatcher.
        node: NodeId,
        /// How many distinct (source, pattern, seq) gaps.
        count: u32,
    },
    /// An overlay link broke (reconfiguration).
    LinkBroken {
        /// Virtual time.
        at: SimTime,
        /// The broken link.
        link: LinkId,
    },
    /// A replacement link was added and routes rebuilt.
    LinkAdded {
        /// Virtual time.
        at: SimTime,
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
}

impl TraceRecord {
    /// The virtual time of the record.
    pub fn at(&self) -> SimTime {
        match *self {
            TraceRecord::Publish { at, .. }
            | TraceRecord::Deliver { at, .. }
            | TraceRecord::LossDetected { at, .. }
            | TraceRecord::LinkBroken { at, .. }
            | TraceRecord::LinkAdded { at, .. } => at,
        }
    }
}

/// A bounded, in-memory trace. Once `capacity` records have been
/// collected, further ones are counted but dropped, so tracing a long
/// run cannot exhaust memory.
#[derive(Clone, Debug)]
pub struct ScenarioTrace {
    records: Vec<TraceRecord>,
    capacity: usize,
    dropped: u64,
}

impl ScenarioTrace {
    /// Creates a trace buffer for up to `capacity` records.
    pub fn new(capacity: usize) -> Self {
        ScenarioTrace {
            records: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Appends a record (or counts it as dropped when full).
    pub fn push(&mut self, record: TraceRecord) {
        if self.records.len() < self.capacity {
            self.records.push(record);
        } else {
            self.dropped += 1;
        }
    }

    /// The collected records, in occurrence order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// How many records did not fit.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of collected records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn publish(at_ms: u64) -> TraceRecord {
        TraceRecord::Publish {
            at: SimTime::from_millis(at_ms),
            node: NodeId::new(0),
            event: EventId::new(NodeId::new(0), at_ms),
            expected: 1,
        }
    }

    #[test]
    fn capacity_is_respected() {
        let mut trace = ScenarioTrace::new(2);
        for i in 0..5 {
            trace.push(publish(i));
        }
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.dropped(), 3);
    }

    #[test]
    fn records_keep_occurrence_order() {
        let mut trace = ScenarioTrace::new(10);
        trace.push(publish(5));
        trace.push(publish(1));
        assert_eq!(trace.records()[0].at(), SimTime::from_millis(5));
        assert_eq!(trace.records()[1].at(), SimTime::from_millis(1));
        assert!(!trace.is_empty());
    }
}
