//! Shared population assembly: everything a runner needs before any
//! message flows — the overlay tree, the content model, the
//! [`SimNode`] actors with their subscriptions installed and flooded,
//! and the pattern → subscribers index.
//!
//! Hoisted out of the simulator's `Scenario` so the real-socket
//! runtime (`eps-net`) boots the *identical* population for the same
//! [`ScenarioConfig`]: same seed → same topology, same subscriptions,
//! same per-node workload streams — which is what makes sim-vs-wire
//! cross-validation meaningful. Every random draw here comes from a
//! named stream of the config's master seed, so building a population
//! consumes nothing from the streams the runners use afterwards.

use eps_overlay::{NodeId, RoutingView, Topology};
use eps_pubsub::{
    flood_subscriptions_direct, install_client_subscriptions, ClientId, DispatcherConfig,
    PatternId, PatternSpace,
};
use eps_sim::RngFactory;

use crate::config::ScenarioConfig;
use crate::node::SimNode;

/// A fully assembled, quiescent population: subscriptions are
/// installed and flooded, no events have been published yet.
pub struct Population {
    /// The physical overlay graph the dispatchers live on: a tree in
    /// the paper's scenarios, possibly cyclic for the complex-network
    /// overlays. Link loss, breakage, and repair act here.
    pub topology: Topology,
    /// The routing view derived from the physical graph: the spanning
    /// tree events and subscriptions are routed on. Identical to
    /// `topology` (the identity view) when the physical graph is a
    /// tree.
    pub view: RoutingView,
    /// The content model events and subscriptions are drawn from.
    pub space: PatternSpace,
    /// One node actor per dispatcher, indexed by [`NodeId::index`].
    pub nodes: Vec<SimNode>,
    /// Each dispatcher's initial *aggregate* filter (the distinct
    /// union of its clients' patterns), indexed like `nodes`. This is
    /// what routing and cross-link replication see; with one client
    /// per node it coincides with that client's subscription list.
    pub subscriptions: Vec<Vec<PatternId>>,
    /// Per-client initial subscriptions: `[node][client] -> patterns`.
    pub client_subscriptions: Vec<Vec<Vec<PatternId>>>,
    /// Current client-subscriptions of each pattern, indexed by
    /// [`eps_pubsub::PatternId::index`]; each entry is a sorted list
    /// of `(node, client)` pairs.
    pub subscribers_of: Vec<Vec<(NodeId, ClientId)>>,
    /// Subscription messages the setup flood would have sent to reach
    /// quiescence — the wire cost of installing the aggregated
    /// filters. Grows with distinct patterns per node, not with the
    /// client count.
    pub setup_subscription_msgs: u64,
}

/// The cross-replication targets of `node`: its physical neighbors the
/// routing view does not use, each paired with that neighbor's current
/// local subscriptions (so the sender can replicate only events the
/// chord partner has an interest in). Empty on tree overlays, where
/// the view uses every physical link.
pub fn cross_targets_for(
    node: NodeId,
    graph: &Topology,
    view: &RoutingView,
    subscriptions: &[Vec<PatternId>],
) -> Vec<(NodeId, Vec<PatternId>)> {
    view.cross_neighbors(graph, node)
        .into_iter()
        .map(|c| (c, subscriptions[c.index()].clone()))
        .collect()
}

/// Builds the population a scenario (simulated or networked) starts
/// from. Deterministic in `config.seed`.
pub fn build_population(config: &ScenarioConfig) -> Population {
    let factory = RngFactory::new(config.seed);
    let topology = Topology::build(
        config.overlay,
        config.nodes,
        config.max_degree,
        &mut factory.stream("topology"),
    );
    let view = RoutingView::derive(&topology);
    let space = PatternSpace::with_zipf(
        config.pattern_universe,
        config.max_patterns_per_event,
        config.zipf_s,
    );

    // Paper, Section IV-A: "each dispatcher caches only events for
    // which it is either the publisher or a subscriber" — the
    // publisher side of the buffering policy applies to every
    // algorithm, not just publisher-based pull (which *requires*
    // it). Route recording is only paid for when needed.
    let dispatcher_config = DispatcherConfig {
        cache_capacity: config.buffer_size,
        cache_own_published: true,
        record_routes: config.algorithm.needs_route_recording(),
        summary_index: config.algorithm.needs_summary_index(),
        eviction: config.eviction,
        // Size the dense per-pattern tables and neighbor-slot
        // registries from the scenario's pattern space and overlay
        // degree — never from hardcoded paper constants.
        pattern_universe: space.universe() as usize,
        degree_hint: config.max_degree,
    };

    // Tie the `Lost` capacity bound to the event-buffer size β
    // unless the scenario pinned it explicitly: there is no point
    // remembering more losses than a full cache could serve. A
    // zero β (caching disabled) keeps the library default — the
    // bound must stay positive.
    let mut gossip_config = config.gossip;
    if gossip_config.lost_capacity.is_none() && config.buffer_size > 0 {
        gossip_config.lost_capacity = Some(config.buffer_size);
    }

    // Stable subscriptions, flooded to quiescence before the
    // workload starts (the paper's setting). Drawn per client, in
    // node-major order on one stream: with one client per node this
    // consumes exactly the draws the pre-client-layer population did.
    let mut subs_rng = factory.stream("subscriptions");
    let client_subscriptions: Vec<Vec<Vec<PatternId>>> = (0..config.nodes)
        .map(|_| {
            (0..config.clients_per_node)
                .map(|_| space.random_subscriptions(config.pi_max, &mut subs_rng))
                .collect()
        })
        .collect();
    // The broker-level aggregate each dispatcher routes on: distinct
    // union of its clients' patterns (identical to the single client's
    // list when there is one, which `random_subscriptions` already
    // returns sorted and distinct).
    let subscriptions: Vec<Vec<PatternId>> = client_subscriptions
        .iter()
        .map(|per_client| {
            let mut union: Vec<PatternId> = per_client.iter().flatten().copied().collect();
            union.sort_unstable();
            union.dedup();
            union
        })
        .collect();

    let mut nodes: Vec<SimNode> = topology
        .nodes()
        .map(|id| {
            SimNode::new(
                id,
                dispatcher_config,
                config.algorithm.build(gossip_config),
                factory.indexed_stream("workload", id.index() as u64),
                config.gossip_interval,
                subscriptions[id.index()].clone(),
            )
        })
        .collect();
    install_client_subscriptions(&mut nodes, &client_subscriptions);
    // Closed-form fixpoint: O(Π·N) installs instead of a
    // message-at-a-time flood, the setup-time bottleneck at
    // 10⁵–10⁶ nodes. State-identical to the flood (pinned by the
    // eps-pubsub equivalence test and the golden suite). Routing
    // state lives on the view, which is a tree by construction even
    // when the physical graph is cyclic. The returned message count is
    // the flood's wire cost — aggregated filters only, so it measures
    // distinct patterns, never raw client-subscription volume.
    let setup_subscription_msgs = flood_subscriptions_direct(&mut nodes, view.tree());
    for id in topology.nodes() {
        let targets = cross_targets_for(id, &topology, &view, &subscriptions);
        nodes[id.index()].set_cross_targets(targets);
    }

    let mut subscribers_of: Vec<Vec<(NodeId, ClientId)>> =
        vec![Vec::new(); config.pattern_universe as usize];
    for (i, per_client) in client_subscriptions.iter().enumerate() {
        for (c, subs) in per_client.iter().enumerate() {
            for &p in subs {
                subscribers_of[p.index()].push((NodeId::new(i as u32), ClientId::new(c as u32)));
            }
        }
    }

    Population {
        topology,
        view,
        space,
        nodes,
        subscriptions,
        client_subscriptions,
        subscribers_of,
        setup_subscription_msgs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eps_pubsub::DispatcherHost;

    #[test]
    fn same_seed_same_population() {
        let config = ScenarioConfig {
            nodes: 12,
            ..ScenarioConfig::default()
        };
        let a = build_population(&config);
        let b = build_population(&config);
        assert_eq!(a.subscriptions, b.subscriptions);
        assert_eq!(a.subscribers_of, b.subscribers_of);
        let links_a: Vec<_> = a.topology.links().collect();
        let links_b: Vec<_> = b.topology.links().collect();
        assert_eq!(links_a, links_b);
    }

    #[test]
    fn population_is_flooded_and_indexed() {
        let config = ScenarioConfig {
            nodes: 12,
            ..ScenarioConfig::default()
        };
        let pop = build_population(&config);
        assert_eq!(pop.nodes.len(), 12);
        assert!(pop.topology.is_tree());
        assert!(pop.setup_subscription_msgs > 0);
        // The subscribers index matches the installed subscriptions.
        for (i, per_client) in pop.client_subscriptions.iter().enumerate() {
            for (c, subs) in per_client.iter().enumerate() {
                for &p in subs {
                    assert!(pop.subscribers_of[p.index()]
                        .contains(&(NodeId::new(i as u32), ClientId::new(c as u32))));
                }
            }
        }
    }

    #[test]
    fn one_client_population_matches_the_single_subscriber_model() {
        let config = ScenarioConfig {
            nodes: 12,
            ..ScenarioConfig::default()
        };
        let pop = build_population(&config);
        // The aggregate IS the single client's list.
        for (union, per_client) in pop.subscriptions.iter().zip(&pop.client_subscriptions) {
            assert_eq!(per_client.len(), 1);
            assert_eq!(union, &per_client[0]);
        }
    }

    #[test]
    fn multi_client_aggregate_is_the_distinct_union() {
        let config = ScenarioConfig {
            nodes: 8,
            clients_per_node: 6,
            ..ScenarioConfig::default()
        };
        let pop = build_population(&config);
        for (i, union) in pop.subscriptions.iter().enumerate() {
            let mut expected: Vec<PatternId> = pop.client_subscriptions[i]
                .iter()
                .flatten()
                .copied()
                .collect();
            expected.sort_unstable();
            expected.dedup();
            assert_eq!(union, &expected);
            // The dispatcher's routing filter holds exactly the union.
            let aggregate: Vec<PatternId> = pop.nodes[i]
                .dispatcher()
                .clients()
                .aggregate_patterns()
                .collect();
            assert_eq!(&aggregate, union);
        }
        // More clients than patterns per node: aggregation must have
        // compressed at least one node's filter below the raw count.
        let raw: usize = pop.client_subscriptions.iter().flatten().flatten().count();
        let aggregated: usize = pop.subscriptions.iter().map(Vec::len).sum();
        assert!(aggregated < raw);
    }

    #[test]
    fn zipf_population_skews_subscriptions() {
        let uniform = build_population(&ScenarioConfig {
            nodes: 60,
            ..ScenarioConfig::default()
        });
        let skewed = build_population(&ScenarioConfig {
            nodes: 60,
            zipf_s: 1.5,
            ..ScenarioConfig::default()
        });
        let mass_low = |pop: &Population| -> usize {
            pop.subscribers_of
                .iter()
                .take(7)
                .map(Vec::len)
                .sum::<usize>()
        };
        assert!(mass_low(&skewed) > mass_low(&uniform));
    }
}
