//! A tiny deterministic work-stealing pool, built on
//! [`std::thread::scope`] only.
//!
//! Experiment cells — one `(algorithm, sweep point, seed)` scenario
//! each — are independent by construction: every [`crate::run_scenario`]
//! call derives all of its randomness from its own config's master
//! seed, so running cells concurrently cannot change any result.
//! Workers pull the next unclaimed index from a shared atomic counter
//! (cheap work stealing: fast cells finish early and their worker
//! moves on to whatever is left), and results are merged back **in
//! input order**, so the output of [`par_map`] is byte-for-byte the
//! one the serial loop would have produced, regardless of how the
//! cells were scheduled.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// The default worker count: what the OS reports as available
/// parallelism, or 1 when that cannot be determined.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Applies `f` to every item, using up to `jobs` worker threads, and
/// returns the results in input order.
///
/// `jobs` is clamped to `[1, items.len()]`; with `jobs == 1` (or one
/// item) the map runs inline on the caller's thread with no spawns.
/// Panics in `f` propagate to the caller.
///
/// # Examples
///
/// ```
/// use eps_harness::parallel::par_map;
///
/// let squares = par_map(4, &[1, 2, 3, 4, 5], |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16, 25]);
/// ```
pub fn par_map<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let jobs = jobs.clamp(1, items.len().max(1));
    if jobs == 1 {
        return items.iter().map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let mut buckets: Vec<Vec<(usize, R)>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        local.push((i, f(item)));
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(local) => buckets.push(local),
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
    });

    let mut indexed: Vec<(usize, R)> = buckets.into_iter().flatten().collect();
    debug_assert_eq!(indexed.len(), items.len());
    indexed.sort_unstable_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = par_map(8, &items, |&x| x * 2);
        assert_eq!(out, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn matches_serial_for_any_job_count() {
        let items: Vec<u64> = (0..17).collect();
        let serial = par_map(1, &items, |&x| x * x + 1);
        for jobs in [2, 3, 7, 16, 64] {
            assert_eq!(par_map(jobs, &items, |&x| x * x + 1), serial);
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        assert_eq!(par_map(4, &[] as &[u32], |&x| x), Vec::<u32>::new());
        assert_eq!(par_map(4, &[9], |&x| x + 1), vec![10]);
    }

    #[test]
    fn actually_uses_multiple_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        use std::thread::ThreadId;

        let seen: Mutex<HashSet<ThreadId>> = Mutex::new(HashSet::new());
        let barrier = std::sync::Barrier::new(2);
        let items = [0, 1];
        par_map(2, &items, |_| {
            // Both workers must be alive at once to get past this.
            barrier.wait();
            seen.lock().unwrap().insert(std::thread::current().id());
        });
        assert_eq!(seen.lock().unwrap().len(), 2);
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }
}
