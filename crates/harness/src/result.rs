//! What one simulation run measured, and its assembly from the
//! metrics sinks.

use eps_metrics::{DeliveryTracker, MessageCounters};

use crate::config::ScenarioConfig;

/// What one simulation run measured. All delivery rates are in
/// `[0, 1]`; the headline [`ScenarioResult::delivery_rate`] is
/// restricted to events published inside the measurement window.
#[derive(Clone, Debug)]
pub struct ScenarioResult {
    /// Delivery rate over the measurement window.
    pub delivery_rate: f64,
    /// Delivery rate over the full run.
    pub overall_delivery_rate: f64,
    /// Worst per-bin delivery rate inside the measurement window (the
    /// paper's "negative spikes").
    pub min_bin_rate: f64,
    /// Delivery-rate time series: (bin start in seconds, rate).
    pub series: Vec<(f64, f64)>,
    /// Mean intended receivers per published event (Figure 7).
    pub receivers_per_event: f64,
    /// Events published during the run.
    pub events_published: u64,
    /// Event messages sent on overlay links.
    pub event_msgs: u64,
    /// Gossip messages sent on overlay links.
    pub gossip_msgs: u64,
    /// Mean gossip messages sent per dispatcher.
    pub gossip_per_dispatcher: f64,
    /// Gossip messages divided by event messages, system-wide.
    pub gossip_event_ratio: f64,
    /// Out-of-band retransmission requests sent.
    pub requests: u64,
    /// Out-of-band replies sent.
    pub replies: u64,
    /// Event copies carried by replies.
    pub events_retransmitted: u64,
    /// Deliveries that happened through recovery (the event was new to
    /// the receiver when the reply arrived).
    pub events_recovered: u64,
    /// Mean recovery latency in seconds (publish → recovered
    /// delivery), or 0.0 when nothing was recovered.
    pub recovery_latency_mean: f64,
    /// 95th-percentile recovery latency in seconds, or 0.0.
    pub recovery_latency_p95: f64,
    /// `Lost` entries still outstanding at the end, summed over nodes.
    pub outstanding_losses: u64,
    /// `Lost` entries evicted under the buffers' capacity bound,
    /// summed over nodes. Non-zero means loss detection outpaced
    /// recovery badly enough to overflow the buffers.
    pub lost_evictions: u64,
    /// Topological reconfigurations performed.
    pub reconfigurations: u64,
    /// Subscription swaps performed (churn).
    pub churn_events: u64,
    /// Subscription/unsubscription messages sent on overlay links.
    pub subscription_msgs: u64,
    /// Redundant event arrivals suppressed by receivers. Structurally
    /// zero on tree overlays; the redundancy cost of cyclic overlays,
    /// where tree forwards and cross-link copies overlap.
    pub duplicate_suppressed: u64,
    /// Deliveries to dispatchers that subscribed after the event was
    /// published (possible only under churn; not counted in rates).
    pub unexpected_deliveries: u64,
    /// End-of-run client subscriptions, summed over dispatchers — the
    /// raw subscriber-side state the aggregation layer compresses.
    pub client_subscriptions: u64,
    /// End-of-run aggregate-filter patterns, summed over dispatchers —
    /// the state that actually enters the routing layer. Equal to
    /// `client_subscriptions` with one client per node; sublinear in
    /// it as clients share patterns.
    pub aggregate_patterns: u64,
    /// End-of-run subscription-table entries (patterns known, local or
    /// forwarded), summed over dispatchers.
    pub routing_entries: u64,
    /// Subscription messages the setup flood cost to install the
    /// aggregated filters (tracked separately from runtime
    /// [`ScenarioResult::subscription_msgs`]).
    pub setup_subscription_msgs: u64,
    /// Bits of gossip digests put on overlay links. Separates a
    /// summary digest (costed by what it carries) from a linear one
    /// (a flat event payload) — the wire-cost axis the
    /// summary-reconciliation evaluation compares on.
    pub gossip_wire_bits: u64,
    /// Bits of out-of-band requests (event-id requests and summary
    /// range-refinement requests).
    pub request_wire_bits: u64,
    /// Bits of out-of-band replies (the retransmitted event copies).
    pub reply_wire_bits: u64,
}

/// End-of-run routing-state totals, sampled by each runner after its
/// queue drains and handed to [`assemble`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RoutingStats {
    /// Client subscriptions summed over dispatchers.
    pub client_subscriptions: u64,
    /// Aggregate-filter patterns summed over dispatchers.
    pub aggregate_patterns: u64,
    /// Subscription-table entries summed over dispatchers.
    pub routing_entries: u64,
    /// Setup-flood subscription messages (aggregated filters only).
    pub setup_subscription_msgs: u64,
}

impl ScenarioResult {
    /// The column names of [`ScenarioResult::csv_row`], in order — the
    /// one result schema shared by the simulator's drivers and the
    /// real-socket `net_cluster` runner (which appends its runtime
    /// counter columns after these).
    pub fn csv_header() -> &'static [&'static str] {
        &[
            "delivery_rate",
            "overall_delivery_rate",
            "min_bin_rate",
            "receivers_per_event",
            "events_published",
            "event_msgs",
            "gossip_msgs",
            "gossip_per_dispatcher",
            "gossip_event_ratio",
            "requests",
            "replies",
            "events_retransmitted",
            "events_recovered",
            "recovery_latency_mean",
            "recovery_latency_p95",
            "outstanding_losses",
            "lost_evictions",
            "reconfigurations",
            "churn_events",
            "subscription_msgs",
            "duplicate_suppressed",
            "unexpected_deliveries",
            "client_subscriptions",
            "aggregate_patterns",
            "routing_entries",
            "setup_subscription_msgs",
            "gossip_wire_bits",
            "request_wire_bits",
            "reply_wire_bits",
        ]
    }

    /// One CSV row of this result's summary scalars (the time series
    /// is exported separately by the figure drivers).
    pub fn csv_row(&self) -> Vec<String> {
        vec![
            format!("{:.6}", self.delivery_rate),
            format!("{:.6}", self.overall_delivery_rate),
            format!("{:.6}", self.min_bin_rate),
            format!("{:.4}", self.receivers_per_event),
            self.events_published.to_string(),
            self.event_msgs.to_string(),
            self.gossip_msgs.to_string(),
            format!("{:.4}", self.gossip_per_dispatcher),
            format!("{:.6}", self.gossip_event_ratio),
            self.requests.to_string(),
            self.replies.to_string(),
            self.events_retransmitted.to_string(),
            self.events_recovered.to_string(),
            format!("{:.6}", self.recovery_latency_mean),
            format!("{:.6}", self.recovery_latency_p95),
            self.outstanding_losses.to_string(),
            self.lost_evictions.to_string(),
            self.reconfigurations.to_string(),
            self.churn_events.to_string(),
            self.subscription_msgs.to_string(),
            self.duplicate_suppressed.to_string(),
            self.unexpected_deliveries.to_string(),
            self.client_subscriptions.to_string(),
            self.aggregate_patterns.to_string(),
            self.routing_entries.to_string(),
            self.setup_subscription_msgs.to_string(),
            self.gossip_wire_bits.to_string(),
            self.request_wire_bits.to_string(),
            self.reply_wire_bits.to_string(),
        ]
    }

    /// Bits of recovery-control traffic: gossip digests plus
    /// out-of-band requests, excluding the event copies replies carry.
    pub fn recovery_control_bits(&self) -> u64 {
        self.gossip_wire_bits + self.request_wire_bits
    }
}

/// Assembles the result of a finished run from the metrics sinks.
/// Public because the real-socket runtime (`eps-net`) assembles its
/// report through the same code path, so the two emit one schema.
pub fn assemble(
    config: &ScenarioConfig,
    tracker: &DeliveryTracker,
    counters: &MessageCounters,
    outstanding_losses: u64,
    reconfigurations: u64,
    churn_events: u64,
    routing: RoutingStats,
) -> ScenarioResult {
    let window = config.measure_window();
    let series_raw = tracker.rate_series(config.series_bin);
    let series: Vec<(f64, f64)> = series_raw
        .bins()
        .iter()
        .map(|b| (b.start.as_secs_f64(), b.ratio()))
        .collect();
    let min_bin_rate = series_raw
        .bins()
        .iter()
        .filter(|b| b.start >= window.0 && b.start < window.1 && b.denominator > 0.0)
        .map(|b| b.ratio())
        .fold(f64::INFINITY, f64::min);
    ScenarioResult {
        delivery_rate: tracker.delivery_rate(Some(window)),
        overall_delivery_rate: tracker.delivery_rate(None),
        min_bin_rate: if min_bin_rate.is_finite() {
            min_bin_rate
        } else {
            1.0
        },
        series,
        receivers_per_event: tracker.receivers_per_event().mean(),
        events_published: tracker.event_count() as u64,
        event_msgs: counters.event_total(),
        gossip_msgs: counters.gossip_total(),
        gossip_per_dispatcher: counters.gossip_per_dispatcher(),
        gossip_event_ratio: counters.gossip_event_ratio(),
        requests: counters.request_total(),
        replies: counters.reply_total(),
        events_retransmitted: counters.events_retransmitted(),
        events_recovered: counters.events_recovered(),
        recovery_latency_mean: tracker.recovery_latency().mean(),
        recovery_latency_p95: tracker.recovery_latency_quantile(0.95).unwrap_or(0.0),
        outstanding_losses,
        lost_evictions: counters.lost_evictions(),
        reconfigurations,
        churn_events,
        subscription_msgs: counters.subscription_total(),
        duplicate_suppressed: counters.duplicate_suppressed(),
        unexpected_deliveries: tracker.unexpected_total(),
        client_subscriptions: routing.client_subscriptions,
        aggregate_patterns: routing.aggregate_patterns,
        routing_entries: routing.routing_entries,
        setup_subscription_msgs: routing.setup_subscription_msgs,
        gossip_wire_bits: counters.gossip_wire_bits(),
        request_wire_bits: counters.request_wire_bits(),
        reply_wire_bits: counters.reply_wire_bits(),
    }
}
