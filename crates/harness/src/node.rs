//! The node actor: everything one simulated dispatcher owns —
//! protocol logic, recovery algorithm, workload RNG, gossip-timer
//! state, and its subscription list — behind a narrow
//! message-in/messages-out API.
//!
//! A [`SimNode`] never touches the network or the event queue: it
//! consumes an [`Envelope`] (or a timer tick) and returns the
//! [`Outgoing`] messages it wants sent. Routing, delay, loss, and
//! scheduling stay with the runner and its transport. Shared run-wide
//! state a node needs while handling a message — the metrics sinks,
//! the shared gossip RNG, the trace — is lent to it for the duration
//! of one call as a [`NodeCtx`].

use eps_gossip::{Envelope, GossipAction, RecoveryAlgorithm};
use eps_metrics::{DeliverySink, MessageCounters};
use eps_overlay::NodeId;
use eps_pubsub::{
    ClientId, Dispatcher, DispatcherConfig, DispatcherHost, Event, PatternId, PatternSpace,
    PubSubMessage,
};
use eps_sim::{Rng, SimTime};

use crate::config::AdaptiveGossip;
use crate::result::RoutingStats;
use crate::trace::{ScenarioTrace, TraceRecord};

/// One message a node wants the runner to put on a wire. The channel
/// it travels on follows from the envelope ([`Envelope::channel`]).
#[derive(Clone, Debug)]
pub struct Outgoing {
    /// The destination dispatcher.
    pub to: NodeId,
    /// The message.
    pub env: Envelope,
}

/// Run-wide state lent to a node for the duration of one call.
///
/// Everything here is shared between nodes (and therefore cannot live
/// inside [`SimNode`]): the current virtual time and overlay
/// neighborhood, the pattern space, the metrics sinks, the shared
/// gossip RNG — shared so that the sequence of gossip decisions, not
/// a per-node stream position, is what the seed pins down — and the
/// optional trace.
pub struct NodeCtx<'a> {
    /// Current virtual time.
    pub now: SimTime,
    /// The node's neighbors in the routing view (the dispatching
    /// tree): where subscriptions and events are forwarded.
    pub neighbors: &'a [NodeId],
    /// The node's neighbors in the physical overlay graph: the
    /// neighborhood gossip rounds draw partners from. On tree
    /// overlays this is the same slice as `neighbors`; on cyclic
    /// overlays it additionally holds the cross links.
    pub graph_neighbors: &'a [NodeId],
    /// The content model (for drawing event content).
    pub space: &'a PatternSpace,
    /// Current client-subscriptions of each pattern, indexed by
    /// [`PatternId`]: sorted `(node, client)` pairs.
    pub subscribers_of: &'a [Vec<(NodeId, ClientId)>],
    /// The shared gossip-decision RNG stream.
    pub gossip_rng: &'a mut Rng,
    /// Delivery bookkeeping: the live tracker in the serial runner, a
    /// per-shard [`eps_metrics::DeliveryLog`] in the sharded one.
    pub tracker: &'a mut dyn DeliverySink,
    /// Message counting.
    pub counters: &'a mut MessageCounters,
    /// Optional bounded trace of interesting moments.
    pub trace: &'a mut Option<ScenarioTrace>,
}

impl NodeCtx<'_> {
    fn record(&mut self, record: TraceRecord) {
        if let Some(trace) = self.trace.as_mut() {
            trace.push(record);
        }
    }
}

/// One simulated dispatcher as an actor: the pub-sub [`Dispatcher`],
/// its [`RecoveryAlgorithm`], its workload RNG, its (possibly
/// adaptive) gossip-timer state, and its current subscription list.
pub struct SimNode {
    id: NodeId,
    dispatcher: Dispatcher,
    algorithm: Box<dyn RecoveryAlgorithm>,
    workload_rng: Rng,
    gossip_delay: SimTime,
    subscriptions: Vec<PatternId>,
    /// The node's physical neighbors outside the routing view, each
    /// with its current local subscriptions: the targets of
    /// cross-link event replication. Empty on tree overlays.
    cross_targets: Vec<(NodeId, Vec<PatternId>)>,
    /// Reusable buffer for drawn event content, so the publish tick
    /// does not allocate in steady state.
    content_scratch: Vec<PatternId>,
    /// Reusable buffer for local-client fan-out on delivery.
    client_scratch: Vec<ClientId>,
}

impl SimNode {
    /// Creates a node actor. `subscriptions` is the node's initial
    /// local subscription list; installing it into the dispatcher (and
    /// flooding it) is the caller's job, via the [`DispatcherHost`]
    /// assembly helpers.
    pub fn new(
        id: NodeId,
        dispatcher_config: DispatcherConfig,
        algorithm: Box<dyn RecoveryAlgorithm>,
        workload_rng: Rng,
        gossip_interval: SimTime,
        subscriptions: Vec<PatternId>,
    ) -> Self {
        SimNode {
            id,
            dispatcher: Dispatcher::new(id, dispatcher_config),
            algorithm,
            workload_rng,
            gossip_delay: gossip_interval,
            subscriptions,
            cross_targets: Vec::new(),
            content_scratch: Vec::new(),
            client_scratch: Vec::new(),
        }
    }

    /// Installs the node's cross-replication targets (its physical
    /// cross-link neighbors with their local interests). Called at
    /// assembly and again whenever the routing view is re-derived.
    pub fn set_cross_targets(&mut self, targets: Vec<(NodeId, Vec<PatternId>)>) {
        self.cross_targets = targets;
    }

    /// Updates the stored interest of one cross-link partner (after
    /// that partner churned a subscription). A no-op if `partner` is
    /// not a cross neighbor of this node.
    pub fn update_cross_partner(&mut self, partner: NodeId, interest: Vec<PatternId>) {
        for (chord, stored) in &mut self.cross_targets {
            if *chord == partner {
                *stored = interest;
                return;
            }
        }
    }

    /// The node's overlay identity.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The dispatcher's current aggregate filter — the distinct union
    /// of its clients' subscriptions (kept current under churn).
    pub fn subscriptions(&self) -> &[PatternId] {
        &self.subscriptions
    }

    /// The current subscriptions of one local client, ascending.
    pub fn client_patterns(&self, client: ClientId) -> Vec<PatternId> {
        self.dispatcher.clients().patterns_of(client).collect()
    }

    /// `Lost` entries the recovery algorithm is still chasing.
    pub fn outstanding_losses(&self) -> usize {
        self.algorithm.outstanding_losses()
    }

    /// `Lost` entries the recovery algorithm evicted under its
    /// capacity bound.
    pub fn lost_evictions(&self) -> u64 {
        self.algorithm.lost_evictions()
    }

    /// Handles one arriving message and returns the messages to send
    /// in response.
    pub fn handle(&mut self, from: NodeId, env: Envelope, ctx: &mut NodeCtx) -> Vec<Outgoing> {
        match env {
            Envelope::PubSub(PubSubMessage::Event(event)) | Envelope::CrossEvent(event) => {
                let receipt = self.dispatcher.on_event(event.clone(), Some(from));
                if receipt.duplicate {
                    // A redundant arrival: on cyclic overlays the same
                    // event reaches a node both through the view and
                    // over a cross link; suppress and count it.
                    ctx.counters.count_duplicate_suppressed();
                    return Vec::new();
                }
                if receipt.delivered {
                    self.deliver_local(&event, false, ctx);
                }
                self.algorithm.on_event_received(&event);
                if !receipt.losses.is_empty() {
                    self.algorithm.on_losses(&receipt.losses);
                    ctx.record(TraceRecord::LossDetected {
                        at: ctx.now,
                        node: self.id,
                        count: receipt.losses.len() as u32,
                    });
                }
                let mut out = pubsub_out(receipt.forwards);
                // First sight of this event here: besides the view
                // forwards, replicate it over interested cross links
                // (excluding the link it just arrived on).
                self.replicate_cross(&event, from, &mut out);
                out
            }
            Envelope::PubSub(PubSubMessage::Subscribe(p)) => {
                pubsub_out(self.dispatcher.on_subscribe(p, from, ctx.neighbors))
            }
            Envelope::PubSub(PubSubMessage::Unsubscribe(p)) => {
                pubsub_out(self.dispatcher.on_unsubscribe(p, from, ctx.neighbors))
            }
            Envelope::Gossip(msg) => {
                // Gossip spreads over the whole physical
                // neighborhood, cross links included.
                let actions = self.algorithm.on_gossip(
                    &self.dispatcher,
                    from,
                    msg,
                    ctx.graph_neighbors,
                    ctx.gossip_rng,
                );
                self.convert(actions, ctx.counters)
            }
            Envelope::Request(ids) => {
                let actions = self.algorithm.on_request(&self.dispatcher, from, &ids);
                self.convert(actions, ctx.counters)
            }
            Envelope::RangeRequest { pattern, ranges } => {
                // A summary-refinement request: queued by the
                // algorithm, answered inside its next gossip round.
                self.algorithm.on_range_request(from, pattern, &ranges);
                Vec::new()
            }
            Envelope::Reply(events) => {
                for event in events {
                    let receipt = self.dispatcher.on_recovered_event(event.clone());
                    if receipt.duplicate {
                        continue;
                    }
                    if receipt.delivered {
                        ctx.counters.count_recovered();
                        self.deliver_local(&event, true, ctx);
                    }
                    self.algorithm.on_event_received(&event);
                    if !receipt.losses.is_empty() {
                        self.algorithm.on_losses(&receipt.losses);
                    }
                }
                Vec::new()
            }
        }
    }

    /// Publishes one event of random content and returns the resulting
    /// messages plus the exponential delay until this node's next
    /// publication (Poisson process). Renewing the tick is the
    /// runner's job.
    pub fn tick_publish(
        &mut self,
        publish_rate: f64,
        ctx: &mut NodeCtx,
    ) -> (Vec<Outgoing>, SimTime) {
        ctx.space
            .random_content_into(&mut self.workload_rng, &mut self.content_scratch);
        let expected = count_subscribers(ctx.subscribers_of, &self.content_scratch);
        let (event, receipt) = self.dispatcher.publish(&self.content_scratch);
        ctx.tracker.published(event.id(), ctx.now, expected);
        ctx.record(TraceRecord::Publish {
            at: ctx.now,
            node: self.id,
            event: event.id(),
            expected,
        });
        if receipt.delivered {
            self.deliver_local(&event, false, ctx);
        }
        let mut out = pubsub_out(receipt.forwards);
        // A fresh event starts on every interested cross link too.
        self.replicate_cross(&event, self.id, &mut out);
        let delay = self.next_publish_delay(publish_rate);
        (out, delay)
    }

    /// Accounts one delivery per matching local client: the event is
    /// "delivered" to each interested client exactly once, so delivery
    /// ratios are measured at client-subscription granularity. With
    /// one client per dispatcher this is a single `c0` record — the
    /// paper's per-dispatcher accounting.
    fn deliver_local(&mut self, event: &Event, recovered: bool, ctx: &mut NodeCtx) {
        self.dispatcher
            .matching_clients_into(event, &mut self.client_scratch);
        for i in 0..self.client_scratch.len() {
            let client = self.client_scratch[i];
            if recovered {
                ctx.tracker.recovered(event.id(), self.id, client, ctx.now);
            } else {
                ctx.tracker.delivered(event.id(), self.id, client, ctx.now);
            }
            ctx.record(TraceRecord::Deliver {
                at: ctx.now,
                node: self.id,
                client,
                event: event.id(),
                recovered,
            });
        }
    }

    /// Appends a [`Envelope::CrossEvent`] copy of `event` for every
    /// cross-link partner whose stored interest matches it, except
    /// `arrived_from` (no point echoing an event straight back).
    /// Counting happens at the send layer, like tree event forwards.
    fn replicate_cross(&self, event: &Event, arrived_from: NodeId, out: &mut Vec<Outgoing>) {
        for (chord, interest) in &self.cross_targets {
            if *chord != arrived_from && event.matches_any(interest.iter().copied()) {
                out.push(Outgoing {
                    to: *chord,
                    env: Envelope::CrossEvent(event.clone()),
                });
            }
        }
    }

    /// Exponential inter-arrival delay for this node's Poisson publish
    /// process. Also used to seed the very first tick.
    pub fn next_publish_delay(&mut self, publish_rate: f64) -> SimTime {
        let u: f64 = self.workload_rng.random_range(0.0..1.0);
        SimTime::from_secs_f64(-(1.0 - u).ln() / publish_rate)
    }

    /// Runs one gossip round and returns the resulting messages plus
    /// the delay until this node's next round.
    ///
    /// With adaptive control (extension, paper Sec. IV-E): while the
    /// strategy sees no evidence of recovery work (empty `Lost` buffer
    /// for pull, no incoming requests for push), the timer backs off
    /// exponentially; any sign of work snaps it back.
    pub fn tick_gossip(
        &mut self,
        interval: SimTime,
        adaptive: Option<AdaptiveGossip>,
        ctx: &mut NodeCtx,
    ) -> (Vec<Outgoing>, SimTime) {
        let actions =
            self.algorithm
                .on_round(&self.dispatcher, ctx.graph_neighbors, ctx.gossip_rng);
        let next = match adaptive {
            None => interval,
            Some(adaptive) => {
                let next = if self.algorithm.is_idle() {
                    self.gossip_delay
                        .mul_f64(adaptive.backoff)
                        .min(adaptive.max_interval)
                } else {
                    adaptive.min_interval
                };
                self.gossip_delay = next;
                next
            }
        };
        let out = self.convert(actions, ctx.counters);
        (out, next)
    }

    /// Swaps one local client's subscription `old` for `new` and
    /// returns the (un)subscription messages to propagate, plus
    /// whether the dispatcher's aggregate filter actually changed.
    /// Routing state is only touched on refcount transitions: the
    /// unsubscribe retracts `old` from the tree only when this client
    /// was its last local holder, and the subscribe announces `new`
    /// only when no other local client already covers it — so the
    /// caller skips index and cross-partner updates when nothing
    /// changed at broker level. The caller keeps the pattern →
    /// subscribers index current.
    pub fn apply_churn(
        &mut self,
        client: ClientId,
        old: PatternId,
        new: PatternId,
        neighbors: &[NodeId],
    ) -> (Vec<Outgoing>, bool) {
        let retracts = self.dispatcher.clients().refcount(old) == 1;
        let announces = !self.dispatcher.clients().covers(new);
        let unsubs = self.dispatcher.client_unsubscribe(client, old, neighbors);
        let subs = self
            .dispatcher
            .client_subscribe_late(client, new, neighbors);
        let out = pubsub_out(unsubs.into_iter().chain(subs).collect());
        if retracts {
            self.subscriptions.retain(|&p| p != old);
        }
        if announces {
            self.subscriptions.push(new);
            self.subscriptions.sort();
        }
        (out, retracts || announces)
    }

    /// Converts gossip actions into envelopes, counting each at the
    /// moment the node decides to send it (so broken links don't
    /// change the overhead figures).
    fn convert(&self, actions: Vec<GossipAction>, counters: &mut MessageCounters) -> Vec<Outgoing> {
        actions
            .into_iter()
            .map(|action| match action {
                GossipAction::Forward { to, msg } => {
                    counters.count_gossip(self.id);
                    Outgoing {
                        to,
                        env: Envelope::Gossip(msg),
                    }
                }
                GossipAction::Request { to, ids } => {
                    counters.count_request(self.id);
                    Outgoing {
                        to,
                        env: Envelope::Request(ids),
                    }
                }
                GossipAction::Reply { to, events } => {
                    counters.count_reply(self.id, events.len() as u64);
                    Outgoing {
                        to,
                        env: Envelope::Reply(events),
                    }
                }
                GossipAction::RequestDetail {
                    to,
                    pattern,
                    ranges,
                } => {
                    counters.count_request(self.id);
                    Outgoing {
                        to,
                        env: Envelope::RangeRequest { pattern, ranges },
                    }
                }
            })
            .collect()
    }
}

impl DispatcherHost for SimNode {
    fn dispatcher(&self) -> &Dispatcher {
        &self.dispatcher
    }
    fn dispatcher_mut(&mut self) -> &mut Dispatcher {
        &mut self.dispatcher
    }
}

/// Samples end-of-run routing-state totals over a population: raw
/// client subscriptions, the aggregate filters they compress into, and
/// the subscription-table entries those filters induce overlay-wide.
pub fn routing_stats<'a>(
    nodes: impl IntoIterator<Item = &'a SimNode>,
    setup_subscription_msgs: u64,
) -> RoutingStats {
    let mut stats = RoutingStats {
        setup_subscription_msgs,
        ..RoutingStats::default()
    };
    for node in nodes {
        stats.client_subscriptions += node.dispatcher.clients().len() as u64;
        stats.aggregate_patterns += node.dispatcher.clients().aggregate_len() as u64;
        stats.routing_entries += node.dispatcher.table().len() as u64;
    }
    stats
}

fn pubsub_out(forwards: Vec<eps_pubsub::Forward>) -> Vec<Outgoing> {
    forwards
        .into_iter()
        .map(|f| Outgoing {
            to: f.to,
            env: Envelope::PubSub(f.msg),
        })
        .collect()
}

fn count_subscribers(subscribers_of: &[Vec<(NodeId, ClientId)>], content: &[PatternId]) -> u32 {
    let mut subscribers: Vec<(NodeId, ClientId)> = content
        .iter()
        .flat_map(|p| subscribers_of[p.index()].iter().copied())
        .collect();
    subscribers.sort_unstable();
    subscribers.dedup();
    subscribers.len() as u32
}
