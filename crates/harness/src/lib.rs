//! # eps-harness — the experiment harness
//!
//! Assembles the kernel (`eps-sim`), overlay (`eps-overlay`),
//! publish-subscribe substrate (`eps-pubsub`), recovery algorithms
//! (`eps-gossip`) and metrics (`eps-metrics`) into runnable scenarios,
//! and regenerates every figure of the paper's evaluation section.
//!
//! - [`ScenarioConfig`] — one run's parameters (defaults = the paper's
//!   Figure 2);
//! - [`run_scenario`] — executes a run deterministically and returns a
//!   [`ScenarioResult`];
//! - [`run_scenario_sharded`] — the same scenario partitioned across
//!   worker threads under a conservative time-window barrier;
//!   bit-identical for every shard count, built for 10⁵–10⁶ nodes;
//! - [`experiments`] — one driver per paper figure (3a, 3b, 4, 5, 6,
//!   7, 8, 9, 10), each printing the series the paper plots and
//!   writing CSVs under `results/`.
//!
//! The `repro` binary exposes all of this on the command line:
//!
//! ```text
//! cargo run --release -p eps-harness --bin repro -- all --quick
//! cargo run --release -p eps-harness --bin repro -- fig3a
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod config;
pub mod experiments;
pub mod node;
pub mod parallel;
pub mod population;
mod result;
mod scenario;
mod sharded;
mod trace;

pub use config::{AdaptiveGossip, ScenarioConfig};
pub use node::{routing_stats, NodeCtx, Outgoing, SimNode};
pub use population::{build_population, Population};
pub use result::{assemble, RoutingStats, ScenarioResult};
pub use scenario::{run_scenario, run_scenario_traced};
pub use sharded::{run_scenario_sharded, run_scenario_sharded_with_stats, ShardedRunStats};
pub use trace::{ScenarioTrace, TraceRecord};
