//! Figure 2: the simulation parameters and their default values.

use eps_metrics::CsvTable;

use super::common::{base_config, ExperimentOptions, ExperimentOutput};

/// Emits the parameter table, echoing the configured defaults so the
/// reproduction's Figure 2 is generated from the same source of truth
/// the simulations use.
pub fn run(opts: &ExperimentOptions) -> ExperimentOutput {
    let config = base_config(opts);
    let rows: Vec<(&str, String, &str)> = vec![
        ("number of dispatchers", config.nodes.to_string(), "N = 100"),
        (
            "maximum number of patterns per subscriber",
            config.pi_max.to_string(),
            "pi_max = 2",
        ),
        (
            "publish rate (per dispatcher)",
            format!("{} publish/s", config.publish_rate),
            "50 publish/s",
        ),
        (
            "link error rate",
            config.link_error_rate.to_string(),
            "epsilon = 0.1",
        ),
        (
            "interval between topological reconfigurations",
            match config.reconfig_interval {
                None => "infinity".to_owned(),
                Some(rho) => format!("{rho}"),
            },
            "rho = infinity",
        ),
        ("buffer size", config.buffer_size.to_string(), "beta = 1500"),
        (
            "gossip interval",
            format!("{}", config.gossip_interval),
            "T = 0.03 s",
        ),
        (
            "pattern universe (Section IV-A)",
            config.pattern_universe.to_string(),
            "Pi = 70",
        ),
        (
            "max patterns per event (footnote 5)",
            config.max_patterns_per_event.to_string(),
            "3",
        ),
        (
            "subscribers per pattern N_pi (derived)",
            format!("{:.2}", config.subscribers_per_pattern()),
            "2.85",
        ),
    ];
    let mut table = CsvTable::new(vec!["parameter".into(), "value".into(), "paper".into()]);
    let mut text = String::from("Figure 2 — simulation parameters and their default values\n\n");
    for (name, value, paper) in rows {
        text.push_str(&format!("  {name:<48} {value:<16} (paper: {paper})\n"));
        table.push_row(vec![name.into(), value, paper.into()]);
    }
    ExperimentOutput {
        id: "fig2",
        title: "Figure 2: simulation parameters and their default values",
        tables: vec![("parameters".into(), table)],
        text,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_lists_all_parameters() {
        let out = run(&ExperimentOptions::default());
        assert_eq!(out.id, "fig2");
        assert_eq!(out.tables.len(), 1);
        assert_eq!(out.tables[0].1.len(), 10);
        assert!(out.text.contains("N = 100"));
        assert!(out.text.contains("2.85"));
    }
}
