//! Extension experiment: graph-general overlays.
//!
//! The paper evaluates every algorithm on a degree-bounded random
//! tree, where the overlay and the routing structure coincide. This
//! experiment re-runs the Figure 3-style delivery and overhead axes on
//! the two cyclic overlays from Ferretti's complex-network gossip
//! study (arXiv 1112.0416): Barabási–Albert preferential attachment
//! and Watts–Strogatz small-world rewiring. Events route on the BFS
//! spanning view; the physical cross links replicate redundant copies
//! that the dispatcher's duplicate filter suppresses — the
//! `dup_suppressed` column quantifies that redundancy, the price a
//! cyclic overlay pays for its extra delivery paths.
//!
//! Expectation: the cross-link copies act as free positive
//! forwarding, so the cyclic overlays close most of the delivery gap
//! the lossy tree leaves before gossip recovery engages, at the cost
//! of `O(cross links)` duplicate events per publication.

use eps_gossip::Algorithm;
use eps_metrics::{ascii_chart, Series};
use eps_overlay::OverlayKind;

use super::common::{
    base_config, delivery_algorithms, f0, f1, f3, time_series_table, ExperimentOptions,
    ExperimentOutput, Metric, SweepGrid,
};
use crate::config::ScenarioConfig;

/// The compared overlays with their degree bounds: the tree keeps the
/// paper's bound of 4; Watts–Strogatz needs one slot above its ring
/// lattice (degree 4) for rewired links, so both cyclic overlays get
/// headroom 6 to keep their comparison symmetric.
fn overlays() -> [(OverlayKind, usize); 3] {
    [
        (OverlayKind::Tree, 4),
        (OverlayKind::BarabasiAlbert, 6),
        (OverlayKind::WattsStrogatz, 6),
    ]
}

/// Runs the overlay × algorithm grid once and renders every panel
/// from its cells: the summary table, and one delivery-vs-time panel
/// per headline algorithm with one series per overlay.
pub fn run(opts: &ExperimentOptions) -> ExperimentOutput {
    let algorithms = delivery_algorithms();
    let base = base_config(opts);
    let configs: Vec<ScenarioConfig> = overlays()
        .iter()
        .flat_map(|&(overlay, max_degree)| {
            let base = base.clone();
            algorithms.iter().map(move |kind| ScenarioConfig {
                overlay,
                max_degree,
                ..base.with_algorithm(kind.clone())
            })
        })
        .collect();
    let grid = SweepGrid::run(
        opts,
        "overlay",
        overlays()
            .iter()
            .map(|(o, _)| o.name().to_owned())
            .collect(),
        algorithms.iter().map(|a| a.name().to_owned()).collect(),
        configs,
    );

    let mut text = String::from(
        "Extension — graph-general overlays: the paper's algorithms on the\n\
         random tree vs. Barabasi-Albert and Watts-Strogatz graphs.\n\
         Events route on the BFS spanning view; physical cross links\n\
         replicate copies that the duplicate filter absorbs\n\
         (dup_suppressed). Tree rows suppress exactly zero.\n\n",
    );
    let mut tables = Vec::new();

    for (col, kind) in algorithms.iter().enumerate() {
        if *kind != Algorithm::push() && *kind != Algorithm::combined_pull() {
            continue;
        }
        let names: Vec<String> = overlays()
            .iter()
            .map(|(o, _)| o.name().to_owned())
            .collect();
        let series: Vec<Vec<(f64, f64)>> = (0..overlays().len())
            .map(|x| grid.cell(x, col).series.clone())
            .collect();
        tables.push((
            format!("delivery_vs_time_{}", kind.name()),
            time_series_table(&names, &series),
        ));
        let (w0, w1) = base.measure_window();
        let chart_series: Vec<Series> = names
            .iter()
            .zip(&series)
            .map(|(name, s)| Series {
                name: name.clone(),
                values: s
                    .iter()
                    .filter(|&&(t, _)| t >= w0.as_secs_f64() && t < w1.as_secs_f64())
                    .map(|&(_, r)| r)
                    .collect(),
            })
            .collect();
        text.push_str(&ascii_chart(
            &format!("delivery rate vs time per overlay, {}", kind.name()),
            &chart_series,
            0.4,
            1.0,
        ));
        text.push('\n');
    }

    for (x, (overlay, _)) in overlays().iter().enumerate() {
        for (col, kind) in algorithms.iter().enumerate() {
            let r = grid.cell(x, col);
            let dup_per_event = if r.events_published == 0 {
                0.0
            } else {
                r.duplicate_suppressed as f64 / r.events_published as f64
            };
            text.push_str(&format!(
                "  {:<4} {:<16} delivery={:.3} gossip/disp={:<7.1} dup/event={:.2}\n",
                overlay.name(),
                kind.name(),
                r.delivery_rate,
                r.gossip_per_dispatcher,
                dup_per_event,
            ));
        }
    }

    let metrics = [
        Metric::delivery(),
        Metric {
            suffix: "gossip_per_disp",
            fmt: f1,
            extract: |r| r.gossip_per_dispatcher,
        },
        Metric {
            suffix: "dup_suppressed",
            fmt: f0,
            extract: |r| r.duplicate_suppressed as f64,
        },
    ];
    tables.push(("overlay_grid".to_owned(), grid.table(&metrics)));
    text.push('\n');
    text.push_str(&grid.text_block(
        "delivery rate per overlay, one series per algorithm",
        &Metric::delivery(),
        f3,
        0.4,
        1.0,
    ));

    ExperimentOutput {
        id: "ext-overlays",
        title: "Extension: delivery and overhead on cyclic overlays",
        tables,
        text,
    }
}
