//! Figure 6: delivery as the system size N increases.

use super::common::{
    base_config, delivery_algorithms, f3, grid, ExperimentOptions, ExperimentOutput, Metric,
    SweepGrid,
};
use crate::config::ScenarioConfig;

/// Buffer size giving every event roughly `seconds` of cache
/// persistence: the per-node cache insert rate is the publish rate
/// plus the matching-event receive rate, which grows linearly in `N`
/// (the paper: "we increased the buffer size accordingly, so that a
/// given event persists in the buffer for a constant time of about
/// 4 s" — a conservative linear scaling).
pub fn buffer_for_persistence(config: &ScenarioConfig, n: usize, seconds: f64) -> usize {
    let p_match = 1.0
        - (1.0 - config.pi_max as f64 / config.pattern_universe as f64)
            .powi(config.max_patterns_per_event as i32);
    let insert_rate = config.publish_rate * (1.0 + n as f64 * p_match);
    (seconds * insert_rate).round() as usize
}

/// Figure 6: delivery vs. N ∈ 20..200, β scaled for ≈ 4 s persistence.
pub fn run(opts: &ExperimentOptions) -> ExperimentOutput {
    let sizes = grid(
        opts,
        &[20usize, 60, 100, 140, 200],
        &[20, 40, 60, 80, 100, 120, 140, 160, 180, 200],
    );
    let algorithms = delivery_algorithms();
    let configs: Vec<ScenarioConfig> = sizes
        .iter()
        .flat_map(|&n| algorithms.iter().map(move |kind| (n, kind)))
        .map(|(n, kind)| {
            let mut config = base_config(opts).with_algorithm(kind.clone());
            config.nodes = n;
            config.buffer_size = buffer_for_persistence(&config, n, 4.0);
            config
        })
        .collect();
    let cells = SweepGrid::run(
        opts,
        "N (number of dispatchers)",
        sizes.iter().map(|n| n.to_string()).collect(),
        algorithms.iter().map(|k| k.name().to_owned()).collect(),
        configs,
    );
    let metric = Metric::delivery();
    let table = cells.table(&[metric]);
    let mut text = String::from(
        "Figure 6 — delivery as the system size increases\n\
         (paper: push and combined pull stay best and scale flat; push\n\
         becomes more convenient as N grows since the constant pattern\n\
         universe makes each pattern gossiped more often)\n\n",
    );
    text.push_str(&cells.text_block(
        "delivery rate vs N (beta scaled to ~4s persistence)",
        &metric,
        f3,
        0.4,
        1.0,
    ));
    ExperimentOutput {
        id: "fig6",
        title: "Figure 6: delivery vs system size",
        tables: vec![("delivery_vs_n".into(), table)],
        text,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_scaling_is_linear_in_n() {
        let config = ScenarioConfig::default();
        let b100 = buffer_for_persistence(&config, 100, 4.0);
        let b200 = buffer_for_persistence(&config, 200, 4.0);
        // Paper default: ~4s persistence at N=100 is close to the
        // default beta=1500 (which gives ~3.2s).
        assert!((1500..2200).contains(&b100), "b100 = {b100}");
        assert!(b200 > (b100 * 3) / 2, "scaling too weak: {b100} -> {b200}");
    }
}
