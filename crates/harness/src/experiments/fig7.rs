//! Figure 7: how many dispatchers receive an event as π_max grows.

use eps_gossip::Algorithm;
use eps_metrics::{ascii_chart, CsvTable, Series};
use eps_sim::SimTime;

use super::common::{base_config, grid, run_cells, ExperimentOptions, ExperimentOutput};
use crate::config::ScenarioConfig;

/// Figure 7: receivers per event vs. π_max ∈ 1..30.
///
/// This measures the dissemination model itself (recovery does not
/// change who an event is *for*), so it runs the no-recovery baseline
/// on a loss-free network and reports intended receivers. The paper's
/// closed-form expectation is `N · (1 - (1 - π_max/Π)^k)` with `k` = 3
/// patterns per event; the curve should hit ≈ 25 % of dispatchers at
/// π_max = 5 and ≈ 80 % at π_max = 30.
pub fn run(opts: &ExperimentOptions) -> ExperimentOutput {
    let pi_values = grid(
        opts,
        &[1usize, 2, 3, 5, 8, 12, 16, 20, 25, 30],
        &[1, 2, 3, 4, 5, 6, 8, 10, 12, 14, 16, 18, 20, 22, 25, 28, 30],
    );
    let mut table = CsvTable::new(vec![
        "pi_max".into(),
        "receivers_per_event".into(),
        "expected_analytical".into(),
    ]);
    let mut measured = Vec::new();
    let mut analytical = Vec::new();
    let configs: Vec<ScenarioConfig> = pi_values
        .iter()
        .map(|&pi_max| {
            let mut config = base_config(opts).with_algorithm(Algorithm::no_recovery());
            config.pi_max = pi_max;
            config.link_error_rate = 0.0;
            // Short runs suffice: the statistic is per published event.
            config.duration = SimTime::from_secs(3);
            config.warmup = SimTime::from_millis(500);
            config.cooldown = SimTime::from_millis(500);
            config
        })
        .collect();
    let results = run_cells(opts, &configs);
    for ((&pi_max, config), result) in pi_values.iter().zip(&configs).zip(results) {
        let expected = config.nodes as f64
            * (1.0
                - (1.0 - pi_max as f64 / config.pattern_universe as f64)
                    .powi(config.max_patterns_per_event as i32));
        measured.push(result.receivers_per_event);
        analytical.push(expected);
        table.push_row(vec![
            pi_max.to_string(),
            format!("{:.2}", result.receivers_per_event),
            format!("{expected:.2}"),
        ]);
    }
    let mut text = String::from(
        "Figure 7 — dispatchers receiving an event vs pi_max\n\
         (paper: ~25% of dispatchers at pi_max=5, ~80% at pi_max=30 —\n\
         content-based dissemination becomes broadcast-like)\n\n",
    );
    text.push_str(&ascii_chart(
        "receivers per event vs pi_max",
        &[
            Series {
                name: "measured".into(),
                values: measured.clone(),
            },
            Series {
                name: "N(1-(1-pi/Pi)^3)".into(),
                values: analytical.clone(),
            },
        ],
        0.0,
        100.0,
    ));
    for (&pi, (m, a)) in pi_values.iter().zip(measured.iter().zip(&analytical)) {
        text.push_str(&format!(
            "  pi_max={pi:<3} receivers/event={m:>6.2}  (analytical {a:.2})\n"
        ));
    }
    ExperimentOutput {
        id: "fig7",
        title: "Figure 7: receivers per event vs pi_max",
        tables: vec![("receivers_vs_pi_max".into(), table)],
        text,
    }
}
