//! Shared plumbing for the experiment drivers.

use std::path::PathBuf;

use eps_gossip::AlgorithmKind;
use eps_metrics::CsvTable;
use eps_sim::SimTime;

use crate::config::ScenarioConfig;
use crate::parallel::{default_jobs, par_map};
use crate::scenario::{run_scenario, ScenarioResult};

/// Options shared by all experiments.
#[derive(Clone, Debug)]
pub struct ExperimentOptions {
    /// Quick mode: shorter runs and coarser sweeps — same shapes,
    /// minutes instead of an hour. Full mode uses the paper's 25 s
    /// runs and fine-grained sweeps.
    pub quick: bool,
    /// Directory that receives `<figure-id>/<table>.csv` files.
    pub out_dir: PathBuf,
    /// Master seed.
    pub seed: u64,
    /// Worker threads for independent scenario cells; `None` means
    /// "use the machine's available parallelism". Output is identical
    /// for every value (see [`crate::parallel`]).
    pub jobs: Option<usize>,
}

impl Default for ExperimentOptions {
    fn default() -> Self {
        ExperimentOptions {
            quick: true,
            out_dir: PathBuf::from("results"),
            seed: 1,
            jobs: None,
        }
    }
}

impl ExperimentOptions {
    /// The resolved worker count: `jobs` if set (0 is treated as 1),
    /// otherwise the available parallelism.
    pub fn effective_jobs(&self) -> usize {
        self.jobs.unwrap_or_else(default_jobs).max(1)
    }
}

/// Runs a batch of independent scenario cells, fanned across
/// [`ExperimentOptions::effective_jobs`] worker threads, returning the
/// results in input order — so driver code that renders tables row by
/// row produces the exact bytes the serial loop would.
pub fn run_cells(opts: &ExperimentOptions, configs: &[ScenarioConfig]) -> Vec<ScenarioResult> {
    par_map(opts.effective_jobs(), configs, run_scenario)
}

/// What an experiment produced: named CSV tables (written by the
/// runner) and human-readable text (series + charts + commentary).
#[derive(Clone, Debug)]
pub struct ExperimentOutput {
    /// The figure id (`fig3a`, …).
    pub id: &'static str,
    /// The paper artifact reproduced.
    pub title: &'static str,
    /// Named result tables.
    pub tables: Vec<(String, CsvTable)>,
    /// Rendered report text for the terminal.
    pub text: String,
}

/// The baseline configuration every experiment starts from: the
/// paper's Figure 2 defaults, shortened in quick mode.
pub fn base_config(opts: &ExperimentOptions) -> ScenarioConfig {
    let mut config = ScenarioConfig {
        seed: opts.seed,
        ..ScenarioConfig::default()
    };
    if opts.quick {
        config.duration = SimTime::from_secs(8);
        config.warmup = SimTime::from_secs(1);
        config.cooldown = SimTime::from_secs(2);
    }
    config
}

/// The algorithms the delivery figures compare, in the paper's legend
/// order.
pub fn delivery_algorithms() -> [AlgorithmKind; 6] {
    AlgorithmKind::ALL
}

/// The two best algorithms, compared in the overhead figures.
pub fn overhead_algorithms() -> [AlgorithmKind; 2] {
    [AlgorithmKind::Push, AlgorithmKind::CombinedPull]
}

/// Picks the quick or full variant of a sweep grid.
pub fn grid<T: Copy>(opts: &ExperimentOptions, quick: &[T], full: &[T]) -> Vec<T> {
    if opts.quick {
        quick.to_vec()
    } else {
        full.to_vec()
    }
}

/// Formats a float with three decimals for tables.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mode_shortens_runs() {
        let quick = base_config(&ExperimentOptions::default());
        let full = base_config(&ExperimentOptions {
            quick: false,
            ..ExperimentOptions::default()
        });
        assert!(quick.duration < full.duration);
        assert_eq!(full.duration, SimTime::from_secs(25));
        quick.validate();
        full.validate();
    }

    #[test]
    fn grid_selects_by_mode() {
        let opts = ExperimentOptions::default();
        assert_eq!(grid(&opts, &[1], &[1, 2, 3]), vec![1]);
        let full = ExperimentOptions {
            quick: false,
            ..opts
        };
        assert_eq!(grid(&full, &[1], &[1, 2, 3]), vec![1, 2, 3]);
    }
}
