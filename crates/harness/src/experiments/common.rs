//! Shared plumbing for the experiment drivers.

use std::path::PathBuf;

use eps_gossip::Algorithm;
use eps_metrics::{ascii_chart, CsvTable, Series};
use eps_sim::SimTime;

use crate::config::ScenarioConfig;
use crate::parallel::{default_jobs, par_map};
use crate::result::ScenarioResult;
use crate::scenario::run_scenario;

/// Options shared by all experiments.
#[derive(Clone, Debug)]
pub struct ExperimentOptions {
    /// Quick mode: shorter runs and coarser sweeps — same shapes,
    /// minutes instead of an hour. Full mode uses the paper's 25 s
    /// runs and fine-grained sweeps.
    pub quick: bool,
    /// Directory that receives `<figure-id>/<table>.csv` files.
    pub out_dir: PathBuf,
    /// Master seed.
    pub seed: u64,
    /// Worker threads for independent scenario cells; `None` means
    /// "use the machine's available parallelism". Output is identical
    /// for every value (see [`crate::parallel`]).
    pub jobs: Option<usize>,
    /// When set, every cell runs through
    /// [`crate::run_scenario_sharded`] with this shard count instead
    /// of the serial [`run_scenario`]. The sharded runner is its own
    /// deterministic semantics (per-node RNG streams instead of shared
    /// ones), so results differ bitwise from the serial runner — but
    /// are identical for every shard count.
    pub shards: Option<usize>,
}

impl Default for ExperimentOptions {
    fn default() -> Self {
        ExperimentOptions {
            quick: true,
            out_dir: PathBuf::from("results"),
            seed: 1,
            jobs: None,
            shards: None,
        }
    }
}

impl ExperimentOptions {
    /// The resolved worker count: `jobs` if set (0 is treated as 1),
    /// otherwise the available parallelism.
    pub fn effective_jobs(&self) -> usize {
        self.jobs.unwrap_or_else(default_jobs).max(1)
    }
}

/// Runs a batch of independent scenario cells, fanned across
/// [`ExperimentOptions::effective_jobs`] worker threads, returning the
/// results in input order — so driver code that renders tables row by
/// row produces the exact bytes the serial loop would.
pub fn run_cells(opts: &ExperimentOptions, configs: &[ScenarioConfig]) -> Vec<ScenarioResult> {
    match opts.shards {
        Some(shards) => par_map(opts.effective_jobs(), configs, |config| {
            crate::run_scenario_sharded(config, shards)
        }),
        None => par_map(opts.effective_jobs(), configs, run_scenario),
    }
}

/// What an experiment produced: named CSV tables (written by the
/// runner) and human-readable text (series + charts + commentary).
#[derive(Clone, Debug)]
pub struct ExperimentOutput {
    /// The figure id (`fig3a`, …).
    pub id: &'static str,
    /// The paper artifact reproduced.
    pub title: &'static str,
    /// Named result tables.
    pub tables: Vec<(String, CsvTable)>,
    /// Rendered report text for the terminal.
    pub text: String,
}

/// The baseline configuration every experiment starts from: the
/// paper's Figure 2 defaults, shortened in quick mode.
pub fn base_config(opts: &ExperimentOptions) -> ScenarioConfig {
    let mut config = ScenarioConfig {
        seed: opts.seed,
        ..ScenarioConfig::default()
    };
    if opts.quick {
        config.duration = SimTime::from_secs(8);
        config.warmup = SimTime::from_secs(1);
        config.cooldown = SimTime::from_secs(2);
    }
    config
}

/// The algorithms the delivery figures compare, in the paper's legend
/// order.
pub fn delivery_algorithms() -> Vec<Algorithm> {
    Algorithm::paper()
}

/// The two best algorithms, compared in the overhead figures.
pub fn overhead_algorithms() -> [Algorithm; 2] {
    [Algorithm::push(), Algorithm::combined_pull()]
}

/// Picks the quick or full variant of a sweep grid.
pub fn grid<T: Copy>(opts: &ExperimentOptions, quick: &[T], full: &[T]) -> Vec<T> {
    if opts.quick {
        quick.to_vec()
    } else {
        full.to_vec()
    }
}

/// Formats a float with three decimals for tables.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a float rounded to an integer, for compact text listings.
pub fn f0(x: f64) -> String {
    format!("{x:.0}")
}

/// Formats a float with one decimal for tables.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Formats a float with four decimals for tables.
pub fn f4(x: f64) -> String {
    format!("{x:.4}")
}

/// One reported metric of a sweep: how to pull it out of a
/// [`ScenarioResult`], how to format a CSV cell, and the header suffix
/// appended to the column name (empty keeps the bare column name).
#[derive(Clone, Copy)]
pub struct Metric {
    /// Header suffix: `""` → the column header is the column name;
    /// otherwise `"{name}_{suffix}"`.
    pub suffix: &'static str,
    /// CSV cell formatter.
    pub fmt: fn(f64) -> String,
    /// Extracts the metric from one cell's result.
    pub extract: fn(&ScenarioResult) -> f64,
}

impl Metric {
    /// The headline delivery rate, three decimals — what most delivery
    /// figures tabulate.
    pub fn delivery() -> Self {
        Metric {
            suffix: "",
            fmt: f3,
            extract: |r| r.delivery_rate,
        }
    }
}

/// An `xs × columns` grid of scenario cells — rows are sweep points,
/// columns the compared configurations (strategies, buffer sizes, …) —
/// run in one parallel batch and rendered into the CSV tables and
/// ASCII-chart text blocks every figure driver repeats.
pub struct SweepGrid {
    x_header: String,
    x_labels: Vec<String>,
    col_names: Vec<String>,
    results: Vec<ScenarioResult>, // row-major: x0c0, x0c1, …
}

impl SweepGrid {
    /// Runs one config per `(x, column)` cell (row-major order: all
    /// columns of the first sweep point first) across the option's
    /// worker threads.
    ///
    /// # Panics
    ///
    /// Panics if `configs.len() != x_labels.len() * col_names.len()`.
    pub fn run(
        opts: &ExperimentOptions,
        x_header: impl Into<String>,
        x_labels: Vec<String>,
        col_names: Vec<String>,
        configs: Vec<ScenarioConfig>,
    ) -> Self {
        assert_eq!(
            configs.len(),
            x_labels.len() * col_names.len(),
            "one config per (x, column) cell"
        );
        let results = run_cells(opts, &configs);
        SweepGrid {
            x_header: x_header.into(),
            x_labels,
            col_names,
            results,
        }
    }

    /// The result of one cell.
    pub fn cell(&self, x: usize, col: usize) -> &ScenarioResult {
        &self.results[x * self.col_names.len() + col]
    }

    /// One metric down one column, in sweep order.
    pub fn column(&self, col: usize, extract: fn(&ScenarioResult) -> f64) -> Vec<f64> {
        (0..self.x_labels.len())
            .map(|x| extract(self.cell(x, col)))
            .collect()
    }

    /// The CSV table: the x column plus one column per (grid column,
    /// metric) pair, metrics adjacent per column.
    pub fn table(&self, metrics: &[Metric]) -> CsvTable {
        let mut headers = vec![self.x_header.clone()];
        for name in &self.col_names {
            for m in metrics {
                headers.push(if m.suffix.is_empty() {
                    name.clone()
                } else {
                    format!("{name}_{}", m.suffix)
                });
            }
        }
        let mut table = CsvTable::new(headers);
        for (x, x_label) in self.x_labels.iter().enumerate() {
            let mut row = vec![x_label.clone()];
            for col in 0..self.col_names.len() {
                for m in metrics {
                    row.push((m.fmt)((m.extract)(self.cell(x, col))));
                }
            }
            table.push_row(row);
        }
        table
    }

    /// A chart ceiling of 1.1 × the metric's maximum, at least
    /// `floor` before scaling.
    pub fn auto_hi(&self, metric: &Metric, floor: f64) -> f64 {
        let max = self
            .results
            .iter()
            .map(metric.extract)
            .fold(0.0f64, f64::max);
        max.max(floor) * 1.1
    }

    /// An ASCII chart of one metric (one series per column) followed
    /// by per-column value lines, `value_fmt` formatting the listed
    /// numbers.
    pub fn text_block(
        &self,
        title: &str,
        metric: &Metric,
        value_fmt: fn(f64) -> String,
        lo: f64,
        hi: f64,
    ) -> String {
        let columns: Vec<Vec<f64>> = (0..self.col_names.len())
            .map(|c| self.column(c, metric.extract))
            .collect();
        let series: Vec<Series> = self
            .col_names
            .iter()
            .zip(&columns)
            .map(|(name, values)| Series {
                name: name.clone(),
                values: values.clone(),
            })
            .collect();
        let mut text = ascii_chart(title, &series, lo, hi);
        for (name, values) in self.col_names.iter().zip(&columns) {
            let rendered: Vec<String> = values.iter().map(|&v| value_fmt(v)).collect();
            text.push_str(&format!("  {name:<16} [{}]\n", rendered.join(", ")));
        }
        text
    }
}

/// Tabulates per-column delivery-rate time series on the union of bin
/// starts (all series share binning) — the Figure 3 CSV layout:
/// a `seconds` column plus one three-decimal rate column per series.
pub fn time_series_table(names: &[String], series: &[Vec<(f64, f64)>]) -> CsvTable {
    let xs: Vec<f64> = series
        .iter()
        .map(|s| s.iter().map(|&(t, _)| t).collect::<Vec<_>>())
        .max_by_key(Vec::len)
        .unwrap_or_default();
    let mut headers = vec!["seconds".to_owned()];
    headers.extend(names.iter().cloned());
    let mut table = CsvTable::new(headers);
    for (i, &t) in xs.iter().enumerate() {
        let mut row = vec![format!("{t:.2}")];
        for s in series {
            row.push(s.get(i).map(|&(_, r)| f3(r)).unwrap_or_default());
        }
        table.push_row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mode_shortens_runs() {
        let quick = base_config(&ExperimentOptions::default());
        let full = base_config(&ExperimentOptions {
            quick: false,
            ..ExperimentOptions::default()
        });
        assert!(quick.duration < full.duration);
        assert_eq!(full.duration, SimTime::from_secs(25));
        quick.validate();
        full.validate();
    }

    #[test]
    fn grid_selects_by_mode() {
        let opts = ExperimentOptions::default();
        assert_eq!(grid(&opts, &[1], &[1, 2, 3]), vec![1]);
        let full = ExperimentOptions {
            quick: false,
            ..opts
        };
        assert_eq!(grid(&full, &[1], &[1, 2, 3]), vec![1, 2, 3]);
    }

    #[test]
    fn time_series_table_pads_short_series() {
        let names = vec!["a".to_owned(), "b".to_owned()];
        let series = vec![vec![(0.0, 1.0), (0.1, 0.5)], vec![(0.0, 0.25)]];
        let table = time_series_table(&names, &series);
        assert_eq!(table.len(), 2);
        let csv = table.to_csv();
        assert!(csv.starts_with("seconds,a,b\n"));
        assert!(csv.contains("0.00,1.000,0.250\n"));
        assert!(csv.contains("0.10,0.500,\n"));
    }
}
