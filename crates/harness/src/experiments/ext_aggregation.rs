//! Extension experiment: the client layer at 10×–1000× the paper's
//! subscriber scale.
//!
//! The paper evaluates one subscriber per dispatcher. This experiment
//! attaches 1–1000 end-user clients to every dispatcher (so the
//! heaviest cell fronts 1000× the paper's subscriber count) and
//! measures what the covering/merging aggregation layer does to the
//! broker-level state: client subscriptions collapse into at most
//! Π aggregate filters per dispatcher, so routing-table size and
//! subscription wire traffic must grow *sublinearly* in subscriber
//! count — the `agg_filters`, `routing_entries`, and `sub_wire_bytes`
//! columns against the linearly-growing `client_subs` column are the
//! result. The sweep runs the uniform content model and a Zipf-skewed
//! one (s = 1.2) side by side: skew concentrates clients on few hot
//! patterns, so aggregation compresses *harder* under realistic
//! popularity distributions.
//!
//! Expectation: `client_subs` grows ~linearly in the client count
//! while `agg_filters` saturates near `min(clients · π_max, Π)` per
//! dispatcher and `sub_wire_bytes` tracks the aggregate, not the
//! clients — with the Zipf column saturating earlier at a smaller
//! aggregate. Delivery, accounted per client-subscription, must not
//! degrade as clients multiply.

use eps_gossip::{codec, Algorithm, Envelope};
use eps_pubsub::{PatternId, PubSubMessage};

use super::common::{base_config, f0, f3, ExperimentOptions, ExperimentOutput, Metric, SweepGrid};
use crate::config::ScenarioConfig;

/// Clients per dispatcher: the paper's baseline, then 10×, 100×,
/// 1000× its subscriber count.
const CLIENTS: [usize; 4] = [1, 10, 100, 1000];

/// The compared pattern-popularity models: the paper's uniform draw
/// and a Zipf-skewed one.
const DISTRIBUTIONS: [(&str, f64); 2] = [("uniform", 0.0), ("zipf1.2", 1.2)];

/// Bytes one aggregated `Subscribe` envelope occupies on the wire
/// (the codec's framed size, which the net runtime asserts equals
/// `wire_bits / 8` on every send).
fn subscribe_bytes(payload_bits: u64) -> u64 {
    let env = Envelope::PubSub(PubSubMessage::Subscribe(PatternId::new(0)));
    codec::encode(&env, payload_bits)
        .expect("subscribe envelope encodes")
        .len() as u64
}

/// Runs the clients × distribution grid and renders the aggregation
/// table: routing-table size and subscription wire bytes vs.
/// subscriber count, uniform vs. Zipf.
pub fn run(opts: &ExperimentOptions) -> ExperimentOutput {
    let base = base_config(opts);
    let configs: Vec<ScenarioConfig> = CLIENTS
        .iter()
        .flat_map(|&clients| {
            let base = base.clone();
            DISTRIBUTIONS.iter().map(move |&(_, s)| ScenarioConfig {
                clients_per_node: clients,
                zipf_s: s,
                algorithm: Algorithm::push(),
                ..base.clone()
            })
        })
        .collect();
    let grid = SweepGrid::run(
        opts,
        "clients_per_node",
        CLIENTS.iter().map(|c| c.to_string()).collect(),
        DISTRIBUTIONS.iter().map(|(n, _)| (*n).to_owned()).collect(),
        configs,
    );

    let wire_bytes_per_msg = subscribe_bytes(base.event_payload_bits);
    let mut text = String::from(
        "Extension — subscription aggregation: 1-1000 end-user clients per\n\
         dispatcher, uniform vs Zipf(1.2) pattern popularity. Client\n\
         subscriptions grow linearly; the covering/merging aggregate the\n\
         routing layer sees (agg_filters, routing_entries) and the\n\
         subscription setup traffic (sub_wire_bytes) must not.\n\n",
    );
    for (x, &clients) in CLIENTS.iter().enumerate() {
        for (col, (name, _)) in DISTRIBUTIONS.iter().enumerate() {
            let r = grid.cell(x, col);
            text.push_str(&format!(
                "  clients={:<5} {:<8} client_subs={:<8} agg_filters={:<7} \
                 routing_entries={:<7} sub_wire_bytes={:<9} delivery={:.3}\n",
                clients,
                name,
                r.client_subscriptions,
                r.aggregate_patterns,
                r.routing_entries,
                r.setup_subscription_msgs * wire_bytes_per_msg,
                r.delivery_rate,
            ));
        }
    }
    text.push('\n');
    text.push_str(
        "sublinearity: per 1000x client growth, aggregate filters and wire\n\
         bytes grow by the table's ratio only (bounded by the pattern\n\
         universe), while per-event matching stays on the aggregate —\n\
         see table_matching_aggregated in BENCH_gossip.json.\n",
    );

    // `sub_wire_bytes` folds the constant per-message envelope size in
    // via a closure-free metric: the messages column is exact; the
    // bytes column is messages × the codec's framed Subscribe size,
    // rendered in the text block above and derivable from the CSV.
    let metrics = [
        Metric {
            suffix: "client_subs",
            fmt: f0,
            extract: |r| r.client_subscriptions as f64,
        },
        Metric {
            suffix: "agg_filters",
            fmt: f0,
            extract: |r| r.aggregate_patterns as f64,
        },
        Metric {
            suffix: "routing_entries",
            fmt: f0,
            extract: |r| r.routing_entries as f64,
        },
        Metric {
            suffix: "sub_msgs",
            fmt: f0,
            extract: |r| r.setup_subscription_msgs as f64,
        },
        Metric {
            suffix: "delivery",
            fmt: f3,
            extract: |r| r.delivery_rate,
        },
    ];
    let mut tables = vec![("aggregation_grid".to_owned(), grid.table(&metrics))];
    // A companion single-column table pinning the wire-byte constant
    // so the committed CSV is self-contained.
    let mut wire = eps_metrics::CsvTable::new(vec![
        "subscribe_envelope_bytes".to_owned(),
        "payload_bits".to_owned(),
    ]);
    wire.push_row(vec![
        wire_bytes_per_msg.to_string(),
        base.event_payload_bits.to_string(),
    ]);
    tables.push(("subscribe_envelope".to_owned(), wire));

    ExperimentOutput {
        id: "ext-aggregation",
        title: "Extension: routing state vs subscriber count under aggregation",
        tables,
        text,
    }
}
