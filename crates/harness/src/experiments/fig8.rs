//! Figure 8: delivery as the number of subscriptions per dispatcher
//! increases, under low and high publish load.

use eps_gossip::AlgorithmKind;
use eps_metrics::{ascii_chart, CsvTable, Series};
use eps_sim::SimTime;

use super::common::{base_config, f3, grid, run_cells, ExperimentOptions, ExperimentOutput};
use crate::config::ScenarioConfig;

/// The strategies Figure 8 compares (the paper omits the publisher and
/// random variants here).
const ALGORITHMS: [AlgorithmKind; 4] = [
    AlgorithmKind::NoRecovery,
    AlgorithmKind::SubscriberPull,
    AlgorithmKind::Push,
    AlgorithmKind::CombinedPull,
];

/// Figure 8: delivery vs. π_max with β = 4000, at 5 publish/s (top)
/// and 50 publish/s (bottom).
pub fn run(opts: &ExperimentOptions) -> ExperimentOutput {
    let pi_values = grid(opts, &[2usize, 6, 12, 20, 30], &[1, 2, 4, 6, 8, 12, 16, 20, 25, 30]);
    let mut tables = Vec::new();
    let mut text = String::from(
        "Figure 8 — delivery vs pi_max under low (top) and high (bottom) load\n\
         (paper: at 5 publish/s push and combined are flat; at 50 publish/s\n\
         combined improves for pi_max<6 while push worsens, then every\n\
         strategy decays because beta=4000 cannot keep up)\n\n",
    );
    let rates = [(5.0, "low load (5 publish/s)"), (50.0, "high load (50 publish/s)")];
    let cell = |rate: f64, pi_max: usize, kind: AlgorithmKind| {
        let mut config = base_config(opts).with_algorithm(kind);
        config.pi_max = pi_max;
        config.publish_rate = rate;
        config.buffer_size = 4000;
        if opts.quick {
            // High pi_max runs flood the network; keep quick
            // mode quick without losing the steady state. Low
            // load needs a longer window: with ~0.2 events/s
            // per (source, pattern) stream, sequence-gap
            // detection alone takes ~5 s, so pull recovery
            // barely starts inside a 6 s run.
            config.duration = SimTime::from_secs(if rate < 10.0 { 14 } else { 6 });
        }
        if rate < 10.0 {
            // The cooldown must cover pull detection latency:
            // at ~0.2 events/s per (source, pattern) stream
            // the gap for an event published near the end
            // only becomes visible seconds after the run
            // stops, which would count as loss artificially.
            config.cooldown = SimTime::from_secs(6);
        }
        config
    };
    let configs: Vec<ScenarioConfig> = rates
        .iter()
        .flat_map(|&(rate, _)| {
            pi_values.iter().flat_map(move |&pi_max| {
                ALGORITHMS.iter().map(move |&kind| (rate, pi_max, kind))
            })
        })
        .map(|(rate, pi_max, kind)| cell(rate, pi_max, kind))
        .collect();
    let mut results = run_cells(opts, &configs).into_iter();
    for &(rate, label) in &rates {
        let mut headers = vec!["pi_max".to_owned()];
        headers.extend(ALGORITHMS.iter().map(|k| k.name().to_owned()));
        let mut table = CsvTable::new(headers);
        let mut columns: Vec<Vec<f64>> = vec![Vec::new(); ALGORITHMS.len()];
        for &pi_max in &pi_values {
            let mut row = vec![pi_max.to_string()];
            for (i, _) in ALGORITHMS.iter().enumerate() {
                let result = results.next().expect("one result per cell");
                row.push(f3(result.delivery_rate));
                columns[i].push(result.delivery_rate);
            }
            table.push_row(row);
        }
        let series: Vec<Series> = ALGORITHMS
            .iter()
            .zip(&columns)
            .map(|(kind, values)| Series {
                name: kind.name().to_owned(),
                values: values.clone(),
            })
            .collect();
        text.push_str(&ascii_chart(
            &format!("delivery rate vs pi_max, {label}"),
            &series,
            0.4,
            1.0,
        ));
        for (kind, values) in ALGORITHMS.iter().zip(&columns) {
            let rendered: Vec<String> = values.iter().map(|&v| f3(v)).collect();
            text.push_str(&format!("  {:<16} [{}]\n", kind.name(), rendered.join(", ")));
        }
        text.push('\n');
        let name = if rate < 10.0 { "low_load" } else { "high_load" };
        tables.push((format!("delivery_vs_pi_max_{name}"), table));
    }
    ExperimentOutput {
        id: "fig8",
        title: "Figure 8: delivery vs pi_max under low and high load",
        tables,
        text,
    }
}
