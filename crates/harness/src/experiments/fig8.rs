//! Figure 8: delivery as the number of subscriptions per dispatcher
//! increases, under low and high publish load.

use eps_gossip::Algorithm;
use eps_sim::SimTime;

use super::common::{
    base_config, f3, grid, ExperimentOptions, ExperimentOutput, Metric, SweepGrid,
};
use crate::config::ScenarioConfig;

/// The strategies Figure 8 compares (the paper omits the publisher and
/// random variants here).
fn algorithms() -> [Algorithm; 4] {
    [
        Algorithm::no_recovery(),
        Algorithm::subscriber_pull(),
        Algorithm::push(),
        Algorithm::combined_pull(),
    ]
}

/// Figure 8: delivery vs. π_max with β = 4000, at 5 publish/s (top)
/// and 50 publish/s (bottom).
pub fn run(opts: &ExperimentOptions) -> ExperimentOutput {
    let pi_values = grid(
        opts,
        &[2usize, 6, 12, 20, 30],
        &[1, 2, 4, 6, 8, 12, 16, 20, 25, 30],
    );
    let mut tables = Vec::new();
    let mut text = String::from(
        "Figure 8 — delivery vs pi_max under low (top) and high (bottom) load\n\
         (paper: at 5 publish/s push and combined are flat; at 50 publish/s\n\
         combined improves for pi_max<6 while push worsens, then every\n\
         strategy decays because beta=4000 cannot keep up)\n\n",
    );
    let rates = [
        (5.0, "low load (5 publish/s)"),
        (50.0, "high load (50 publish/s)"),
    ];
    let cell = |rate: f64, pi_max: usize, algo: &Algorithm| {
        let mut config = base_config(opts).with_algorithm(algo.clone());
        config.pi_max = pi_max;
        config.publish_rate = rate;
        config.buffer_size = 4000;
        if opts.quick {
            // High pi_max runs flood the network; keep quick
            // mode quick without losing the steady state. Low
            // load needs a longer window: with ~0.2 events/s
            // per (source, pattern) stream, sequence-gap
            // detection alone takes ~5 s, so pull recovery
            // barely starts inside a 6 s run.
            config.duration = SimTime::from_secs(if rate < 10.0 { 14 } else { 6 });
        }
        if rate < 10.0 {
            // The cooldown must cover pull detection latency:
            // at ~0.2 events/s per (source, pattern) stream
            // the gap for an event published near the end
            // only becomes visible seconds after the run
            // stops, which would count as loss artificially.
            config.cooldown = SimTime::from_secs(6);
        }
        config
    };
    for &(rate, label) in &rates {
        let algorithms = algorithms();
        let configs: Vec<ScenarioConfig> = pi_values
            .iter()
            .flat_map(|&pi_max| algorithms.iter().map(move |algo| (pi_max, algo)))
            .map(|(pi_max, algo)| cell(rate, pi_max, algo))
            .collect();
        let cells = SweepGrid::run(
            opts,
            "pi_max",
            pi_values.iter().map(|p| p.to_string()).collect(),
            algorithms.iter().map(|a| a.name().to_owned()).collect(),
            configs,
        );
        let metric = Metric::delivery();
        text.push_str(&cells.text_block(
            &format!("delivery rate vs pi_max, {label}"),
            &metric,
            f3,
            0.4,
            1.0,
        ));
        text.push('\n');
        let name = if rate < 10.0 { "low_load" } else { "high_load" };
        tables.push((format!("delivery_vs_pi_max_{name}"), cells.table(&[metric])));
    }
    ExperimentOutput {
        id: "fig8",
        title: "Figure 8: delivery vs pi_max under low and high load",
        tables,
        text,
    }
}
