//! The headline comparison: every strategy at the paper's Figure 2
//! defaults, one row each — delivery, overhead, recovery volume and
//! latency. Not a single paper figure, but the table a reader wants
//! first; every number also appears in its figure's context.

use eps_metrics::CsvTable;

use super::common::{
    base_config, delivery_algorithms, run_cells, ExperimentOptions, ExperimentOutput,
};
use crate::config::ScenarioConfig;

/// Runs all six strategies at the default configuration and tabulates
/// the headline metrics.
pub fn run(opts: &ExperimentOptions) -> ExperimentOutput {
    let mut table = CsvTable::new(vec![
        "algorithm".into(),
        "delivery".into(),
        "worst_bin".into(),
        "gossip_per_dispatcher".into(),
        "gossip_event_ratio".into(),
        "events_recovered".into(),
        "recovery_latency_mean_s".into(),
        "recovery_latency_p95_s".into(),
    ]);
    let mut text = String::from(
        "Headline comparison — Figure 2 defaults (N=100, eps=0.1,\n\
         beta=1500, T=0.03s, 50 publish/s)\n\n",
    );
    text.push_str(&format!(
        "{:<16} {:>9} {:>9} {:>12} {:>8} {:>10} {:>9} {:>9}\n",
        "algorithm",
        "delivery",
        "worstbin",
        "gossip/disp",
        "g/e",
        "recovered",
        "lat-mean",
        "lat-p95"
    ));
    let configs: Vec<ScenarioConfig> = delivery_algorithms()
        .iter()
        .map(|kind| base_config(opts).with_algorithm(kind.clone()))
        .collect();
    let mut results = run_cells(opts, &configs).into_iter();
    for kind in delivery_algorithms() {
        let r = results.next().expect("one result per cell");
        table.push_row(vec![
            kind.name().into(),
            format!("{:.3}", r.delivery_rate),
            format!("{:.3}", r.min_bin_rate),
            format!("{:.1}", r.gossip_per_dispatcher),
            format!("{:.3}", r.gossip_event_ratio),
            r.events_recovered.to_string(),
            format!("{:.3}", r.recovery_latency_mean),
            format!("{:.3}", r.recovery_latency_p95),
        ]);
        text.push_str(&format!(
            "{:<16} {:>9.3} {:>9.3} {:>12.1} {:>8.3} {:>10} {:>8.3}s {:>8.3}s\n",
            kind.name(),
            r.delivery_rate,
            r.min_bin_rate,
            r.gossip_per_dispatcher,
            r.gossip_event_ratio,
            r.events_recovered,
            r.recovery_latency_mean,
            r.recovery_latency_p95,
        ));
    }
    text.push_str(
        "\n(The paper's qualitative ordering: push ~ combined-pull >>\n\
         single pulls and random-pull >> no recovery.)\n",
    );
    ExperimentOutput {
        id: "summary",
        title: "Headline comparison at the Figure 2 defaults",
        tables: vec![("summary".into(), table)],
        text,
    }
}
