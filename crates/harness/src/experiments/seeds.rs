//! Randomization-effect experiment (paper, Section IV-A): "The
//! results of 10 simulations ran with different random seeds showed
//! that ... variations are limited, around 1%-2%. Hence, we present
//! here the results of a single simulation."

use eps_gossip::Algorithm;
use eps_metrics::CsvTable;
use eps_sim::Summary;

use super::common::{base_config, run_cells, ExperimentOptions, ExperimentOutput};
use crate::config::ScenarioConfig;

/// Runs the default scenario under several seeds and reports the
/// spread of the delivery rate, validating the paper's
/// single-run-presentation methodology.
pub fn run(opts: &ExperimentOptions) -> ExperimentOutput {
    let seed_count = if opts.quick { 5 } else { 10 };
    let algorithms = [Algorithm::push(), Algorithm::combined_pull()];
    let mut table = CsvTable::new(vec!["algorithm".into(), "seed".into(), "delivery".into()]);
    let mut text = format!(
        "Randomization effect (paper Sec. IV-A) — {seed_count} seeds\n\
         (paper: variation across seeds is limited, around 1-2%,\n\
         justifying single-run presentation)\n\n",
    );
    let configs: Vec<ScenarioConfig> = algorithms
        .iter()
        .flat_map(|kind| (1..=seed_count).map(move |seed| (kind.clone(), seed)))
        .map(|(kind, seed)| {
            base_config(&ExperimentOptions {
                seed: seed as u64,
                ..opts.clone()
            })
            .with_algorithm(kind)
        })
        .collect();
    let mut results = run_cells(opts, &configs).into_iter();
    for kind in algorithms {
        let mut summary = Summary::new();
        for seed in 1..=seed_count {
            let r = results.next().expect("one result per cell");
            summary.record(r.delivery_rate);
            table.push_row(vec![
                kind.name().into(),
                seed.to_string(),
                format!("{:.4}", r.delivery_rate),
            ]);
        }
        let spread = summary.max().unwrap_or(0.0) - summary.min().unwrap_or(0.0);
        text.push_str(&format!(
            "  {:<14} mean={:.4} stddev={:.4} spread={:.4} ({:.1}% of mean)\n",
            kind.name(),
            summary.mean(),
            summary.stddev(),
            spread,
            spread / summary.mean() * 100.0
        ));
    }
    ExperimentOutput {
        id: "seeds",
        title: "Randomization effect: delivery spread across seeds (Sec. IV-A)",
        tables: vec![("seed_spread".into(), table)],
        text,
    }
}
