//! Figure 5: the interplay of buffer size β and gossip interval T for
//! the combined pull strategy.

use eps_gossip::Algorithm;
use eps_sim::SimTime;

use super::common::{
    base_config, f3, grid, ExperimentOptions, ExperimentOutput, Metric, SweepGrid,
};
use crate::config::ScenarioConfig;

/// Figure 5: delivery vs. T for β ∈ {500, 1500, 2500, 3500}
/// (combined pull; the paper notes push behaves similarly).
pub fn run(opts: &ExperimentOptions) -> ExperimentOutput {
    let intervals = grid(
        opts,
        &[0.01, 0.02, 0.03, 0.045, 0.055],
        &[
            0.01, 0.015, 0.02, 0.025, 0.03, 0.035, 0.04, 0.045, 0.05, 0.055,
        ],
    );
    let betas = [500usize, 1500, 2500, 3500];

    let configs: Vec<ScenarioConfig> = intervals
        .iter()
        .flat_map(|&t| betas.iter().map(move |&beta| (t, beta)))
        .map(|(t, beta)| ScenarioConfig {
            buffer_size: beta,
            gossip_interval: SimTime::from_secs_f64(t),
            algorithm: Algorithm::combined_pull(),
            ..base_config(opts)
        })
        .collect();
    let cells = SweepGrid::run(
        opts,
        "T (gossip interval)",
        intervals.iter().map(|t| format!("{t}")).collect(),
        betas.iter().map(|b| format!("beta={b}")).collect(),
        configs,
    );
    let metric = Metric::delivery();
    let table = cells.table(&[metric]);
    let mut text = String::from(
        "Figure 5 — combined pull: simultaneous changes to beta and T\n\
         (paper: buffer increments stop mattering past a threshold;\n\
         sensitivity to T is greatest when the buffer is small)\n\n",
    );
    text.push_str(&cells.text_block(
        "delivery rate vs T, per beta (combined pull)",
        &metric,
        f3,
        0.4,
        1.0,
    ));
    ExperimentOutput {
        id: "fig5",
        title: "Figure 5: combined pull, beta x T interplay",
        tables: vec![("delivery_vs_t_by_beta".into(), table)],
        text,
    }
}
