//! Figure 5: the interplay of buffer size β and gossip interval T for
//! the combined pull strategy.

use eps_gossip::AlgorithmKind;
use eps_metrics::{ascii_chart, CsvTable, Series};
use eps_sim::SimTime;

use super::common::{base_config, f3, grid, run_cells, ExperimentOptions, ExperimentOutput};
use crate::config::ScenarioConfig;

/// Figure 5: delivery vs. T for β ∈ {500, 1500, 2500, 3500}
/// (combined pull; the paper notes push behaves similarly).
pub fn run(opts: &ExperimentOptions) -> ExperimentOutput {
    let intervals = grid(
        opts,
        &[0.01, 0.02, 0.03, 0.045, 0.055],
        &[0.01, 0.015, 0.02, 0.025, 0.03, 0.035, 0.04, 0.045, 0.05, 0.055],
    );
    let betas = [500usize, 1500, 2500, 3500];

    let mut headers = vec!["T (gossip interval)".to_owned()];
    headers.extend(betas.iter().map(|b| format!("beta={b}")));
    let mut table = CsvTable::new(headers);
    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); betas.len()];
    let configs: Vec<ScenarioConfig> = intervals
        .iter()
        .flat_map(|&t| betas.iter().map(move |&beta| (t, beta)))
        .map(|(t, beta)| ScenarioConfig {
            buffer_size: beta,
            gossip_interval: SimTime::from_secs_f64(t),
            algorithm: AlgorithmKind::CombinedPull,
            ..base_config(opts)
        })
        .collect();
    let mut results = run_cells(opts, &configs).into_iter();
    for &t in &intervals {
        let mut row = vec![format!("{t}")];
        for (i, _) in betas.iter().enumerate() {
            let result = results.next().expect("one result per cell");
            row.push(f3(result.delivery_rate));
            columns[i].push(result.delivery_rate);
        }
        table.push_row(row);
    }

    let series: Vec<Series> = betas
        .iter()
        .zip(&columns)
        .map(|(beta, values)| Series {
            name: format!("beta={beta}"),
            values: values.clone(),
        })
        .collect();
    let mut text = String::from(
        "Figure 5 — combined pull: simultaneous changes to beta and T\n\
         (paper: buffer increments stop mattering past a threshold;\n\
         sensitivity to T is greatest when the buffer is small)\n\n",
    );
    text.push_str(&ascii_chart(
        "delivery rate vs T, per beta (combined pull)",
        &series,
        0.4,
        1.0,
    ));
    for (beta, values) in betas.iter().zip(&columns) {
        let rendered: Vec<String> = values.iter().map(|&v| f3(v)).collect();
        text.push_str(&format!("  beta={beta:<5} [{}]\n", rendered.join(", ")));
    }
    ExperimentOutput {
        id: "fig5",
        title: "Figure 5: combined pull, beta x T interplay",
        tables: vec![("delivery_vs_t_by_beta".into(), table)],
        text,
    }
}
