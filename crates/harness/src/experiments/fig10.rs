//! Figure 10: gossip overhead versus the link error rate, under high
//! and low publish load.

use eps_metrics::{ascii_chart, CsvTable, Series};

use super::common::{
    base_config, grid, overhead_algorithms, run_cells, ExperimentOptions, ExperimentOutput,
};
use crate::config::ScenarioConfig;

/// Figure 10: gossip messages per dispatcher vs. ε ∈ 0.01..0.1, at
/// 50 publish/s (top) and 5 publish/s (bottom).
///
/// The paper's point: the reactive pull triggers communication only
/// when a recovery is needed, so at low error rates and low load its
/// overhead drops to a fraction of push's (about one third at
/// ε = 0.01, 5 publish/s), while push gossips proactively no matter
/// what.
pub fn run(opts: &ExperimentOptions) -> ExperimentOutput {
    let epsilons = grid(
        opts,
        &[0.01, 0.03, 0.05, 0.075, 0.1],
        &[0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.07, 0.08, 0.09, 0.1],
    );
    let algorithms = overhead_algorithms();
    let mut tables = Vec::new();
    let mut text = String::from(
        "Figure 10 — overhead vs link error rate, high (top) and low\n\
         (bottom) publish load\n\
         (paper: push overhead is roughly constant in eps; pull overhead\n\
         grows with eps and sits far below push at low eps / low load)\n\n",
    );
    let rates = [(50.0, "high load (50 publish/s)"), (5.0, "low load (5 publish/s)")];
    let mut configs: Vec<ScenarioConfig> = Vec::new();
    for &(rate, _) in &rates {
        for &eps in &epsilons {
            for &kind in &algorithms {
                let mut config = base_config(opts).with_algorithm(kind);
                config.link_error_rate = eps;
                config.publish_rate = rate;
                configs.push(config);
            }
        }
    }
    let mut results = run_cells(opts, &configs).into_iter();
    for &(rate, label) in &rates {
        let mut headers = vec!["epsilon (link error rate)".to_owned()];
        headers.extend(
            algorithms
                .iter()
                .map(|k| format!("{}_msgs_per_dispatcher", k.name())),
        );
        let mut table = CsvTable::new(headers);
        let mut columns: Vec<Vec<f64>> = vec![Vec::new(); algorithms.len()];
        for &eps in &epsilons {
            let mut row = vec![format!("{eps}")];
            for (i, _) in algorithms.iter().enumerate() {
                let result = results.next().expect("one result per cell");
                row.push(format!("{:.1}", result.gossip_per_dispatcher));
                columns[i].push(result.gossip_per_dispatcher);
            }
            table.push_row(row);
        }
        let max_y = columns
            .iter()
            .flatten()
            .fold(0.0f64, |a, &b| a.max(b))
            .max(1.0);
        text.push_str(&ascii_chart(
            &format!("gossip msgs per dispatcher vs eps, {label}"),
            &algorithms
                .iter()
                .zip(&columns)
                .map(|(kind, values)| Series {
                    name: kind.name().to_owned(),
                    values: values.clone(),
                })
                .collect::<Vec<_>>(),
            0.0,
            max_y * 1.1,
        ));
        for (kind, values) in algorithms.iter().zip(&columns) {
            let rendered: Vec<String> = values.iter().map(|v| format!("{v:.0}")).collect();
            text.push_str(&format!("  {:<14} [{}]\n", kind.name(), rendered.join(", ")));
        }
        text.push('\n');
        let name = if rate < 10.0 { "low_load" } else { "high_load" };
        tables.push((format!("overhead_vs_eps_{name}"), table));
    }
    ExperimentOutput {
        id: "fig10",
        title: "Figure 10: overhead vs link error rate",
        tables,
        text,
    }
}
