//! Figure 10: gossip overhead versus the link error rate, under high
//! and low publish load.

use super::common::{
    base_config, f0, f1, grid, overhead_algorithms, ExperimentOptions, ExperimentOutput, Metric,
    SweepGrid,
};
use crate::config::ScenarioConfig;

/// Figure 10: gossip messages per dispatcher vs. ε ∈ 0.01..0.1, at
/// 50 publish/s (top) and 5 publish/s (bottom).
///
/// The paper's point: the reactive pull triggers communication only
/// when a recovery is needed, so at low error rates and low load its
/// overhead drops to a fraction of push's (about one third at
/// ε = 0.01, 5 publish/s), while push gossips proactively no matter
/// what.
pub fn run(opts: &ExperimentOptions) -> ExperimentOutput {
    let epsilons = grid(
        opts,
        &[0.01, 0.03, 0.05, 0.075, 0.1],
        &[0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.07, 0.08, 0.09, 0.1],
    );
    let algorithms = overhead_algorithms();
    let mut tables = Vec::new();
    let mut text = String::from(
        "Figure 10 — overhead vs link error rate, high (top) and low\n\
         (bottom) publish load\n\
         (paper: push overhead is roughly constant in eps; pull overhead\n\
         grows with eps and sits far below push at low eps / low load)\n\n",
    );
    let rates = [
        (50.0, "high load (50 publish/s)"),
        (5.0, "low load (5 publish/s)"),
    ];
    for &(rate, label) in &rates {
        let configs: Vec<ScenarioConfig> = epsilons
            .iter()
            .flat_map(|&eps| algorithms.iter().map(move |kind| (eps, kind)))
            .map(|(eps, kind)| {
                let mut config = base_config(opts).with_algorithm(kind.clone());
                config.link_error_rate = eps;
                config.publish_rate = rate;
                config
            })
            .collect();
        let cells = SweepGrid::run(
            opts,
            "epsilon (link error rate)",
            epsilons.iter().map(|eps| format!("{eps}")).collect(),
            algorithms.iter().map(|k| k.name().to_owned()).collect(),
            configs,
        );
        let msgs = Metric {
            suffix: "msgs_per_dispatcher",
            fmt: f1,
            extract: |r| r.gossip_per_dispatcher,
        };
        text.push_str(&cells.text_block(
            &format!("gossip msgs per dispatcher vs eps, {label}"),
            &msgs,
            f0,
            0.0,
            cells.auto_hi(&msgs, 1.0),
        ));
        text.push('\n');
        let name = if rate < 10.0 { "low_load" } else { "high_load" };
        tables.push((format!("overhead_vs_eps_{name}"), cells.table(&[msgs])));
    }
    ExperimentOutput {
        id: "fig10",
        title: "Figure 10: overhead vs link error rate",
        tables,
        text,
    }
}
