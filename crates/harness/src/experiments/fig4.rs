//! Figure 4: effect of the buffer size β (top) and the gossip
//! interval T (bottom) on delivery.

use eps_metrics::CsvTable;
use eps_sim::SimTime;

use super::common::{
    base_config, delivery_algorithms, f3, grid, ExperimentOptions, ExperimentOutput, Metric,
    SweepGrid,
};
use crate::config::ScenarioConfig;

/// Figure 4 top: delivery vs. β ∈ 500..4000 for all strategies.
pub fn run_buffer(opts: &ExperimentOptions) -> ExperimentOutput {
    let betas = grid(
        opts,
        &[500usize, 1500, 2500, 4000],
        &[500, 1000, 1500, 2000, 2500, 3000, 3500, 4000],
    );
    let (table, text) = sweep(
        opts,
        "beta (buffer size)",
        &betas.iter().map(|&b| b as f64).collect::<Vec<_>>(),
        |config, &beta| {
            config.buffer_size = beta as usize;
        },
        "Figure 4 (top) — effect of buffer size on delivery\n\
         (paper: subscriber pull plateaus ~78%; push overtakes combined\n\
         pull as beta grows; combined pull better at small buffers)\n\n",
    );
    ExperimentOutput {
        id: "fig4a",
        title: "Figure 4 top: delivery vs buffer size",
        tables: vec![("delivery_vs_beta".into(), table)],
        text,
    }
}

/// Figure 4 bottom: delivery vs. T ∈ 0.01..0.055 s for all strategies.
pub fn run_interval(opts: &ExperimentOptions) -> ExperimentOutput {
    let intervals = grid(
        opts,
        &[0.01, 0.02, 0.03, 0.045, 0.055],
        &[
            0.01, 0.015, 0.02, 0.025, 0.03, 0.035, 0.04, 0.045, 0.05, 0.055,
        ],
    );
    let (table, text) = sweep(
        opts,
        "T (gossip interval)",
        &intervals,
        |config, &t| {
            config.gossip_interval = SimTime::from_secs_f64(t);
        },
        "Figure 4 (bottom) — effect of gossip interval on delivery\n\
         (paper: delivery decreases as T grows; push degrades faster;\n\
         subscriber pull stuck around 78%)\n\n",
    );
    ExperimentOutput {
        id: "fig4b",
        title: "Figure 4 bottom: delivery vs gossip interval",
        tables: vec![("delivery_vs_interval".into(), table)],
        text,
    }
}

/// Sweeps one parameter for every strategy and renders table + chart.
fn sweep<F: Fn(&mut ScenarioConfig, &f64)>(
    opts: &ExperimentOptions,
    x_label: &str,
    xs: &[f64],
    apply: F,
    intro: &str,
) -> (CsvTable, String) {
    let algorithms = delivery_algorithms();
    let configs: Vec<ScenarioConfig> = xs
        .iter()
        .flat_map(|&x| algorithms.iter().map(move |kind| (x, kind)))
        .map(|(x, kind)| {
            let mut config = base_config(opts).with_algorithm(kind.clone());
            apply(&mut config, &x);
            config
        })
        .collect();
    let cells = SweepGrid::run(
        opts,
        x_label,
        xs.iter().map(|x| format!("{x}")).collect(),
        algorithms.iter().map(|k| k.name().to_owned()).collect(),
        configs,
    );
    let metric = Metric::delivery();
    let table = cells.table(&[metric]);
    let mut text = intro.to_owned();
    text.push_str(&cells.text_block(
        &format!("delivery rate vs {x_label}"),
        &metric,
        f3,
        0.4,
        1.0,
    ));
    (table, text)
}
