//! One experiment driver per figure of the paper's evaluation
//! (Section IV). Each driver sweeps the relevant parameter, prints the
//! series the paper plots, and writes CSVs under the output directory.
//!
//! | id | paper artifact | sweep |
//! |----|----------------|-------|
//! | `fig2`  | Figure 2 (parameter table) | — |
//! | `fig3a` | Figure 3(a) | delivery vs. time, ε ∈ {0.05, 0.1} |
//! | `fig3b` | Figure 3(b) | delivery vs. time, ρ ∈ {0.2 s, 0.03 s} |
//! | `fig4a` | Figure 4 top | delivery vs. buffer size β |
//! | `fig4b` | Figure 4 bottom | delivery vs. gossip interval T |
//! | `fig5`  | Figure 5 | combined pull: T sweep × β |
//! | `fig6`  | Figure 6 | delivery vs. system size N |
//! | `fig7`  | Figure 7 | receivers per event vs. π_max |
//! | `fig8`  | Figure 8 | delivery vs. π_max, low & high load |
//! | `fig9a` | Figure 9(a) | overhead vs. N |
//! | `fig9b` | Figure 9(b) | overhead vs. π_max |
//! | `fig10` | Figure 10 | overhead vs. ε, high & low load |
//! | `seeds` | Sec. IV-A claim | delivery spread across seeds |
//! | `ext-adaptive` | extension (Sec. IV-E) | adaptive gossip interval |
//! | `ext-buffers`  | extension (ref \[13\])  | buffer replacement policies |
//! | `ext-hybrid`   | extension (registry)   | push-pull hybrid vs combined pull |
//! | `ext-overlays` | extension (arXiv 1112.0416) | tree vs BA vs WS overlays |
//! | `ext-aggregation` | extension (arXiv 1811.07088) | routing state vs clients per dispatcher |
//! | `ext-summary` | extension (ROADMAP item 2) | summary-reconciliation wire cost vs cache size |

mod common;
mod ext_adaptive;
mod ext_aggregation;
mod ext_buffers;
mod ext_hybrid;
mod ext_overlays;
mod ext_summary;
mod fig10;
mod fig2;
mod fig3;
mod fig4;
mod fig5;
mod fig6;
mod fig7;
mod fig8;
mod fig9;
mod seeds;
mod summary;

use std::path::PathBuf;

pub use common::{time_series_table, ExperimentOptions, ExperimentOutput, Metric, SweepGrid};

/// The available experiment ids: the paper's figures in order,
/// followed by the extension studies.
pub const ALL_EXPERIMENTS: [&str; 20] = [
    "summary",
    "fig2",
    "fig3a",
    "fig3b",
    "fig4a",
    "fig4b",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9a",
    "fig9b",
    "fig10",
    "seeds",
    "ext-adaptive",
    "ext-buffers",
    "ext-hybrid",
    "ext-overlays",
    "ext-aggregation",
    "ext-summary",
];

/// Runs the experiment with the given id and writes its CSV tables
/// under `opts.out_dir/<id>/`.
///
/// # Errors
///
/// Returns an error string for unknown ids or output I/O failures.
pub fn run_experiment(id: &str, opts: &ExperimentOptions) -> Result<ExperimentOutput, String> {
    let output = match id {
        "fig2" => fig2::run(opts),
        "fig3a" => fig3::run_lossy(opts),
        "fig3b" => fig3::run_reconfig(opts),
        "fig4a" => fig4::run_buffer(opts),
        "fig4b" => fig4::run_interval(opts),
        "fig5" => fig5::run(opts),
        "fig6" => fig6::run(opts),
        "fig7" => fig7::run(opts),
        "fig8" => fig8::run(opts),
        "fig9a" => fig9::run_nodes(opts),
        "fig9b" => fig9::run_pi_max(opts),
        "fig10" => fig10::run(opts),
        "summary" => summary::run(opts),
        "seeds" => seeds::run(opts),
        "ext-adaptive" => ext_adaptive::run(opts),
        "ext-buffers" => ext_buffers::run(opts),
        "ext-hybrid" => ext_hybrid::run(opts),
        "ext-overlays" => ext_overlays::run(opts),
        "ext-aggregation" => ext_aggregation::run(opts),
        "ext-summary" => ext_summary::run(opts),
        other => return Err(format!("unknown experiment '{other}'")),
    };
    for (name, table) in &output.tables {
        let path: PathBuf = opts.out_dir.join(output.id).join(format!("{name}.csv"));
        table
            .write_to(&path)
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
    }
    Ok(output)
}
