//! Figure 9: gossip overhead versus system size (a) and subscriptions
//! per dispatcher (b), in absolute and relative terms.

use eps_metrics::CsvTable;
use eps_sim::SimTime;

use super::common::{
    base_config, f0, f1, f3, f4, grid, overhead_algorithms, ExperimentOptions, ExperimentOutput,
    Metric, SweepGrid,
};
use crate::config::ScenarioConfig;
use crate::experiments::fig6::buffer_for_persistence;

/// Figure 9(a): overhead vs. N for push and combined pull —
/// gossip messages per dispatcher (left) and the gossip/event message
/// ratio (right).
pub fn run_nodes(opts: &ExperimentOptions) -> ExperimentOutput {
    let sizes = grid(
        opts,
        &[40usize, 80, 120, 160, 200],
        &[20, 40, 60, 80, 100, 120, 140, 160, 180, 200],
    );
    let (tables, text) = overhead_sweep(
        opts,
        "N (number of dispatchers)",
        &sizes.iter().map(|&n| n as f64).collect::<Vec<_>>(),
        |config, &x| {
            config.nodes = x as usize;
            config.buffer_size = buffer_for_persistence(config, x as usize, 4.0);
        },
        "Figure 9(a) — overhead vs system size\n\
         (paper: gossip msgs/dispatcher grows well below linearly;\n\
         the gossip/event ratio falls from ~28% at N=40 to ~20% at N=200)\n\n",
    );
    ExperimentOutput {
        id: "fig9a",
        title: "Figure 9(a): overhead vs system size",
        tables,
        text,
    }
}

/// Figure 9(b): overhead vs. π_max for push and combined pull.
pub fn run_pi_max(opts: &ExperimentOptions) -> ExperimentOutput {
    let pi_values = grid(
        opts,
        &[2usize, 6, 12, 20, 30],
        &[1, 2, 4, 6, 8, 12, 16, 20, 25, 30],
    );
    let (tables, text) = overhead_sweep(
        opts,
        "pi_max (subscriptions per dispatcher)",
        &pi_values.iter().map(|&p| p as f64).collect::<Vec<_>>(),
        |config, &x| {
            config.pi_max = x as usize;
            config.buffer_size = 4000;
            if opts_is_quick(config.duration) {
                config.duration = SimTime::from_secs(6);
            }
        },
        "Figure 9(b) — overhead vs subscriptions per dispatcher\n\
         (paper: msgs/dispatcher only marginally affected, decreasing\n\
         slightly; the gossip/event ratio decreases markedly since the\n\
         number of event messages rises much faster)\n\n",
    );
    ExperimentOutput {
        id: "fig9b",
        title: "Figure 9(b): overhead vs pi_max",
        tables,
        text,
    }
}

/// `true` when the configured duration is the quick-mode one (helper
/// so the closure does not need to capture the options).
fn opts_is_quick(duration: SimTime) -> bool {
    duration < SimTime::from_secs(25)
}

type NamedTables = Vec<(String, CsvTable)>;

/// Runs push and combined pull over a sweep, reporting both overhead
/// views.
fn overhead_sweep<F: Fn(&mut ScenarioConfig, &f64)>(
    opts: &ExperimentOptions,
    x_label: &str,
    xs: &[f64],
    apply: F,
    intro: &str,
) -> (NamedTables, String) {
    let algorithms = overhead_algorithms();
    let configs: Vec<ScenarioConfig> = xs
        .iter()
        .flat_map(|&x| algorithms.iter().map(move |kind| (x, kind.clone())))
        .map(|(x, kind)| {
            let mut config = base_config(opts).with_algorithm(kind);
            apply(&mut config, &x);
            config
        })
        .collect();
    let cells = SweepGrid::run(
        opts,
        x_label,
        xs.iter().map(|x| format!("{x}")).collect(),
        algorithms.iter().map(|k| k.name().to_owned()).collect(),
        configs,
    );
    let msgs = Metric {
        suffix: "msgs_per_dispatcher",
        fmt: f1,
        extract: |r| r.gossip_per_dispatcher,
    };
    let ratio = Metric {
        suffix: "gossip_event_ratio",
        fmt: f4,
        extract: |r| r.gossip_event_ratio,
    };
    let table = cells.table(&[msgs, ratio]);
    let mut text = intro.to_owned();
    text.push_str(&cells.text_block(
        &format!("gossip msgs per dispatcher vs {x_label}"),
        &msgs,
        f0,
        0.0,
        cells.auto_hi(&msgs, 1.0),
    ));
    text.push_str(&cells.text_block(
        &format!("gossip msgs / event msgs vs {x_label}"),
        &ratio,
        f3,
        0.0,
        cells.auto_hi(&ratio, 0.01),
    ));
    (vec![("overhead".into(), table)], text)
}
