//! Figure 9: gossip overhead versus system size (a) and subscriptions
//! per dispatcher (b), in absolute and relative terms.

use eps_metrics::{ascii_chart, CsvTable, Series};
use eps_sim::SimTime;

use super::common::{
    base_config, grid, overhead_algorithms, run_cells, ExperimentOptions, ExperimentOutput,
};
use crate::config::ScenarioConfig;
use crate::experiments::fig6::buffer_for_persistence;

/// Figure 9(a): overhead vs. N for push and combined pull —
/// gossip messages per dispatcher (left) and the gossip/event message
/// ratio (right).
pub fn run_nodes(opts: &ExperimentOptions) -> ExperimentOutput {
    let sizes = grid(opts, &[40usize, 80, 120, 160, 200], &[20, 40, 60, 80, 100, 120, 140, 160, 180, 200]);
    let (tables, text) = overhead_sweep(
        opts,
        "N (number of dispatchers)",
        &sizes.iter().map(|&n| n as f64).collect::<Vec<_>>(),
        |config, &x| {
            config.nodes = x as usize;
            config.buffer_size = buffer_for_persistence(config, x as usize, 4.0);
        },
        "Figure 9(a) — overhead vs system size\n\
         (paper: gossip msgs/dispatcher grows well below linearly;\n\
         the gossip/event ratio falls from ~28% at N=40 to ~20% at N=200)\n\n",
    );
    ExperimentOutput {
        id: "fig9a",
        title: "Figure 9(a): overhead vs system size",
        tables,
        text,
    }
}

/// Figure 9(b): overhead vs. π_max for push and combined pull.
pub fn run_pi_max(opts: &ExperimentOptions) -> ExperimentOutput {
    let pi_values = grid(opts, &[2usize, 6, 12, 20, 30], &[1, 2, 4, 6, 8, 12, 16, 20, 25, 30]);
    let (tables, text) = overhead_sweep(
        opts,
        "pi_max (subscriptions per dispatcher)",
        &pi_values.iter().map(|&p| p as f64).collect::<Vec<_>>(),
        |config, &x| {
            config.pi_max = x as usize;
            config.buffer_size = 4000;
            if opts_is_quick(config.duration) {
                config.duration = SimTime::from_secs(6);
            }
        },
        "Figure 9(b) — overhead vs subscriptions per dispatcher\n\
         (paper: msgs/dispatcher only marginally affected, decreasing\n\
         slightly; the gossip/event ratio decreases markedly since the\n\
         number of event messages rises much faster)\n\n",
    );
    ExperimentOutput {
        id: "fig9b",
        title: "Figure 9(b): overhead vs pi_max",
        tables,
        text,
    }
}

/// `true` when the configured duration is the quick-mode one (helper
/// so the closure does not need to capture the options).
fn opts_is_quick(duration: SimTime) -> bool {
    duration < SimTime::from_secs(25)
}

type NamedTables = Vec<(String, CsvTable)>;

/// Runs push and combined pull over a sweep, reporting both overhead
/// views.
fn overhead_sweep<F: Fn(&mut ScenarioConfig, &f64)>(
    opts: &ExperimentOptions,
    x_label: &str,
    xs: &[f64],
    apply: F,
    intro: &str,
) -> (NamedTables, String) {
    let algorithms = overhead_algorithms();
    let mut headers = vec![x_label.to_owned()];
    for kind in &algorithms {
        headers.push(format!("{}_msgs_per_dispatcher", kind.name()));
        headers.push(format!("{}_gossip_event_ratio", kind.name()));
    }
    let mut table = CsvTable::new(headers);
    let mut per_dispatcher: Vec<Vec<f64>> = vec![Vec::new(); algorithms.len()];
    let mut ratios: Vec<Vec<f64>> = vec![Vec::new(); algorithms.len()];
    let configs: Vec<ScenarioConfig> = xs
        .iter()
        .flat_map(|&x| algorithms.iter().map(move |&kind| (x, kind)))
        .map(|(x, kind)| {
            let mut config = base_config(opts).with_algorithm(kind);
            apply(&mut config, &x);
            config
        })
        .collect();
    let mut results = run_cells(opts, &configs).into_iter();
    for &x in xs {
        let mut row = vec![format!("{x}")];
        for (i, _) in algorithms.iter().enumerate() {
            let result = results.next().expect("one result per cell");
            row.push(format!("{:.1}", result.gossip_per_dispatcher));
            row.push(format!("{:.4}", result.gossip_event_ratio));
            per_dispatcher[i].push(result.gossip_per_dispatcher);
            ratios[i].push(result.gossip_event_ratio);
        }
        table.push_row(row);
    }
    let mut text = intro.to_owned();
    let max_abs = per_dispatcher
        .iter()
        .flatten()
        .fold(0.0f64, |a, &b| a.max(b))
        .max(1.0);
    text.push_str(&ascii_chart(
        &format!("gossip msgs per dispatcher vs {x_label}"),
        &algorithms
            .iter()
            .zip(&per_dispatcher)
            .map(|(kind, values)| Series {
                name: kind.name().to_owned(),
                values: values.clone(),
            })
            .collect::<Vec<_>>(),
        0.0,
        max_abs * 1.1,
    ));
    let max_ratio = ratios
        .iter()
        .flatten()
        .fold(0.0f64, |a, &b| a.max(b))
        .max(0.01);
    text.push_str(&ascii_chart(
        &format!("gossip msgs / event msgs vs {x_label}"),
        &algorithms
            .iter()
            .zip(&ratios)
            .map(|(kind, values)| Series {
                name: kind.name().to_owned(),
                values: values.clone(),
            })
            .collect::<Vec<_>>(),
        0.0,
        max_ratio * 1.1,
    ));
    for (i, kind) in algorithms.iter().enumerate() {
        let abs: Vec<String> = per_dispatcher[i].iter().map(|v| format!("{v:.0}")).collect();
        let rel: Vec<String> = ratios[i].iter().map(|v| format!("{v:.3}")).collect();
        text.push_str(&format!(
            "  {:<14} msgs/dispatcher [{}]  ratio [{}]\n",
            kind.name(),
            abs.join(", "),
            rel.join(", ")
        ));
    }
    (vec![("overhead".into(), table)], text)
}
