//! Extension experiment: the push-pull hybrid, composed — not coded.
//!
//! `push-pull` exists only as a registry entry: an
//! [`AlternatingDigest`](eps_gossip::AlternatingDigest) (push rounds
//! interleaved with pull rounds) steered along the subscription tree.
//! No new wire form, no new algorithm module — the composition is the
//! whole implementation. This experiment measures whether the hybrid
//! earns its keep against the paper's best all-rounder, combined
//! pull, on the two axes the paper uses for that comparison:
//! Figure 3(a)'s delivery-over-time panels under lossy links, and
//! Figure 5's β × T interplay.
//!
//! Expectation: the hybrid inherits push's proactive coverage at half
//! the digest rate, so it should sit between push and the pure pulls
//! in delivery while sending fewer gossip messages than push. Where
//! combined pull leans on publisher-side buffers, push-pull needs no
//! route recording at all.

use eps_gossip::Algorithm;
use eps_metrics::{ascii_chart, CsvTable, Series};
use eps_sim::SimTime;

use super::common::{
    base_config, f3, grid, run_cells, time_series_table, ExperimentOptions, ExperimentOutput,
    Metric, SweepGrid,
};
use crate::config::ScenarioConfig;
use crate::result::ScenarioResult;

/// The hybrid, its two component strategies, and the paper's
/// reference point.
fn algorithms() -> [Algorithm; 4] {
    [
        Algorithm::push(),
        Algorithm::subscriber_pull(),
        Algorithm::combined_pull(),
        Algorithm::push_pull(),
    ]
}

/// Runs both panels: delivery vs. time under lossy links (Fig. 3(a)
/// axes) and delivery vs. T per β (Fig. 5 axes).
pub fn run(opts: &ExperimentOptions) -> ExperimentOutput {
    let mut tables = Vec::new();
    let mut text = String::from(
        "Extension — push-pull hybrid (AlternatingDigest x PatternSteering,\n\
         a pure registry composition) vs. its components and combined pull.\n\
         Expectation: between push and the pure pulls on delivery, cheaper\n\
         than push on gossip overhead, no publisher-side infrastructure.\n\n",
    );

    for (name, label, eps) in [
        ("delivery_vs_time_eps5", "eps=0.05", 0.05),
        ("delivery_vs_time_eps10", "eps=0.1", 0.1),
    ] {
        let config = ScenarioConfig {
            link_error_rate: eps,
            ..base_config(opts)
        };
        let (table, chart, summary) = lossy_panel(opts, &config, label);
        text.push_str(&chart);
        text.push_str(&summary);
        text.push('\n');
        tables.push((name.to_owned(), table));
    }

    let (table, block) = beta_t_grid(opts);
    text.push_str(&block);
    tables.push(("delivery_vs_t_by_beta".to_owned(), table));

    ExperimentOutput {
        id: "ext-hybrid",
        title: "Extension: push-pull hybrid vs combined pull",
        tables,
        text,
    }
}

/// One Figure 3(a)-style panel: delivery over time for the four
/// strategies under the given loss rate.
fn lossy_panel(
    opts: &ExperimentOptions,
    config: &ScenarioConfig,
    label: &str,
) -> (CsvTable, String, String) {
    let algorithms = algorithms();
    let configs: Vec<ScenarioConfig> = algorithms
        .iter()
        .map(|kind| config.with_algorithm(kind.clone()))
        .collect();
    let results: Vec<ScenarioResult> = run_cells(opts, &configs);

    let mut names = Vec::new();
    let mut all_series = Vec::new();
    let mut summary = String::new();
    for (kind, result) in algorithms.iter().zip(results) {
        summary.push_str(&format!(
            "  {label} {:<16} delivery={:.3} gossip/disp={:.1}\n",
            kind.name(),
            result.delivery_rate,
            result.gossip_per_dispatcher,
        ));
        names.push(kind.name().to_owned());
        all_series.push(result.series);
    }
    let table = time_series_table(&names, &all_series);
    let (w0, w1) = config.measure_window();
    let chart_series: Vec<Series> = names
        .iter()
        .zip(&all_series)
        .map(|(name, s)| Series {
            name: name.clone(),
            values: s
                .iter()
                .filter(|&&(t, _)| t >= w0.as_secs_f64() && t < w1.as_secs_f64())
                .map(|&(_, r)| r)
                .collect(),
        })
        .collect();
    let chart = ascii_chart(
        &format!("delivery rate vs time, {label} (hybrid panel)"),
        &chart_series,
        0.4,
        1.0,
    );
    (table, chart, summary)
}

/// The Figure 5 axes, hybrid vs. combined pull: delivery vs. T for
/// each β, the two strategies side by side per column.
fn beta_t_grid(opts: &ExperimentOptions) -> (CsvTable, String) {
    let intervals = grid(
        opts,
        &[0.01, 0.02, 0.03, 0.045, 0.055],
        &[
            0.01, 0.015, 0.02, 0.025, 0.03, 0.035, 0.04, 0.045, 0.05, 0.055,
        ],
    );
    let betas = [500usize, 1500, 2500];
    let pair = [Algorithm::combined_pull(), Algorithm::push_pull()];

    let configs: Vec<ScenarioConfig> = intervals
        .iter()
        .flat_map(|&t| {
            betas.iter().flat_map({
                let pair = pair.clone();
                move |&beta| {
                    pair.clone()
                        .into_iter()
                        .map(move |kind| (t, beta, kind.clone()))
                }
            })
        })
        .map(|(t, beta, kind)| ScenarioConfig {
            buffer_size: beta,
            gossip_interval: SimTime::from_secs_f64(t),
            algorithm: kind,
            ..base_config(opts)
        })
        .collect();
    let columns: Vec<String> = betas
        .iter()
        .flat_map(|&beta| {
            pair.iter()
                .map(move |kind| format!("{} beta={beta}", kind.name()))
        })
        .collect();
    let cells = SweepGrid::run(
        opts,
        "T (gossip interval)",
        intervals.iter().map(|t| format!("{t}")).collect(),
        columns,
        configs,
    );
    let metric = Metric::delivery();
    let table = cells.table(&[metric]);
    let block = cells.text_block(
        "delivery rate vs T: combined-pull | push-pull, per beta",
        &metric,
        f3,
        0.4,
        1.0,
    );
    (table, block)
}
