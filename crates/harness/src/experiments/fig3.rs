//! Figure 3: event delivery over time, for lossy links (a) and
//! topological reconfigurations (b).

use eps_metrics::{ascii_chart, CsvTable, Series};
use eps_sim::SimTime;

use super::common::{
    base_config, delivery_algorithms, run_cells, time_series_table, ExperimentOptions,
    ExperimentOutput,
};
use crate::config::ScenarioConfig;
use crate::result::ScenarioResult;

/// Figure 3(a): delivery rate vs. time with lossy links, for
/// ε = 0.05 (left) and ε = 0.1 (right), all six strategies.
pub fn run_lossy(opts: &ExperimentOptions) -> ExperimentOutput {
    let mut tables = Vec::new();
    let mut text = String::from(
        "Figure 3(a) — event delivery under lossy links\n\
         (paper: baseline ~75% at eps=0.05, ~55% at eps=0.1; push and\n\
         combined pull ~90-98%, single pulls insufficient)\n\n",
    );
    let panels: Vec<(String, String, ScenarioConfig)> = [0.05, 0.1]
        .iter()
        .map(|&eps| {
            (
                format!("delivery_eps{}", (eps * 100.0) as u32),
                format!("eps={eps}"),
                ScenarioConfig {
                    link_error_rate: eps,
                    ..base_config(opts)
                },
            )
        })
        .collect();
    for (name, table, chart, summary) in run_panels(opts, panels) {
        text.push_str(&chart);
        text.push_str(&summary);
        text.push('\n');
        tables.push((name, table));
    }
    ExperimentOutput {
        id: "fig3a",
        title: "Figure 3(a): event delivery, lossy links",
        tables,
        text,
    }
}

/// Figure 3(b): delivery rate vs. time under topological
/// reconfigurations over fully reliable links, for ρ = 0.2 s
/// (non-overlapping) and ρ = 0.03 s (overlapping).
pub fn run_reconfig(opts: &ExperimentOptions) -> ExperimentOutput {
    let mut tables = Vec::new();
    let mut text = String::from(
        "Figure 3(b) — event delivery under topological reconfigurations\n\
         (paper: baseline dips to ~70% (rho=0.2s) / ~60% (rho=0.03s) around\n\
         reconfigurations; push and combined pull level the rate near 100%)\n\n",
    );
    let panels: Vec<(String, String, ScenarioConfig)> = [(200u64, "rho=0.2s"), (30, "rho=0.03s")]
        .iter()
        .map(|&(rho_ms, label)| {
            (
                format!("delivery_rho{rho_ms}ms"),
                label.to_owned(),
                ScenarioConfig {
                    link_error_rate: 0.0,
                    reconfig_interval: Some(SimTime::from_millis(rho_ms)),
                    ..base_config(opts)
                },
            )
        })
        .collect();
    for (name, table, chart, summary) in run_panels(opts, panels) {
        text.push_str(&chart);
        text.push_str(&summary);
        text.push('\n');
        tables.push((name, table));
    }
    ExperimentOutput {
        id: "fig3b",
        title: "Figure 3(b): event delivery, topological reconfigurations",
        tables,
        text,
    }
}

/// Runs every (panel, strategy) cell of a figure in one parallel
/// batch and renders each panel: a CSV table plus an ASCII chart and
/// summary lines, keyed by the panel's table name.
fn run_panels(
    opts: &ExperimentOptions,
    panels: Vec<(String, String, ScenarioConfig)>,
) -> Vec<(String, CsvTable, String, String)> {
    let algorithms = delivery_algorithms();
    let configs: Vec<ScenarioConfig> = panels
        .iter()
        .flat_map(|(_, _, config)| {
            algorithms
                .iter()
                .map(|kind| config.with_algorithm(kind.clone()))
        })
        .collect();
    let mut results = run_cells(opts, &configs).into_iter();
    panels
        .into_iter()
        .map(|(name, label, config)| {
            let panel: Vec<ScenarioResult> = algorithms
                .iter()
                .map(|_| results.next().expect("one result per cell"))
                .collect();
            let (table, chart, summary) = time_series_panel(&config, &label, panel);
            (name, table, chart, summary)
        })
        .collect()
}

/// Renders one panel's six per-strategy results as a delivery-rate
/// time-series CSV table plus an ASCII chart and summary lines.
fn time_series_panel(
    config: &ScenarioConfig,
    label: &str,
    results: Vec<ScenarioResult>,
) -> (CsvTable, String, String) {
    let algorithms = delivery_algorithms();
    let mut names: Vec<String> = Vec::new();
    let mut all_series: Vec<Vec<(f64, f64)>> = Vec::new();
    let mut summary = String::new();
    for (kind, result) in algorithms.iter().zip(results) {
        summary.push_str(&format!(
            "  {label} {:<16} delivery={:.3} (min bin {:.3})\n",
            kind.name(),
            result.delivery_rate,
            result.min_bin_rate
        ));
        names.push(kind.name().to_owned());
        all_series.push(result.series);
    }

    let table = time_series_table(&names, &all_series);
    let (w0, w1) = config.measure_window();
    let chart_series: Vec<Series> = names
        .iter()
        .zip(&all_series)
        .map(|(name, s)| Series {
            name: name.clone(),
            values: s
                .iter()
                .filter(|&&(t, _)| t >= w0.as_secs_f64() && t < w1.as_secs_f64())
                .map(|&(_, r)| r)
                .collect(),
        })
        .collect();
    let chart = ascii_chart(
        &format!("delivery rate vs time, {label}"),
        &chart_series,
        0.4,
        1.0,
    );
    (table, chart, summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentOptions {
        ExperimentOptions {
            quick: true,
            out_dir: std::env::temp_dir().join("eps-fig3-test"),
            seed: 3,
            ..ExperimentOptions::default()
        }
    }

    /// End-to-end smoke test on a reduced panel: one epsilon, shapes
    /// hold (recovery beats baseline).
    #[test]
    fn panel_produces_series_for_all_algorithms() {
        let opts = tiny();
        let config = ScenarioConfig {
            nodes: 20,
            duration: SimTime::from_secs(3),
            warmup: SimTime::from_millis(500),
            cooldown: SimTime::from_millis(500),
            publish_rate: 20.0,
            ..base_config(&opts)
        };
        let panels = vec![("test_table".to_owned(), "test".to_owned(), config)];
        let (_, table, chart, summary) = run_panels(&opts, panels).pop().unwrap();
        assert!(
            table.len() > 10,
            "expected a time series, got {}",
            table.len()
        );
        assert!(chart.contains("delivery rate vs time"));
        assert!(summary.contains("no-recovery"));
        assert!(summary.contains("combined-pull"));
    }
}
