//! Extension experiment: adaptive gossip interval.
//!
//! The paper (Section IV-E) notes that push "must proactively push at
//! each gossip round" and suggests "an adaptive approach ... where the
//! gossip interval T is changed dynamically according to the current
//! state of the system, as suggested in [14]". This experiment
//! measures what that buys: fixed-`T` vs. backoff-adaptive gossip,
//! across error rates, for push and combined pull.

use eps_metrics::CsvTable;

use super::common::{
    base_config, grid, overhead_algorithms, run_cells, ExperimentOptions, ExperimentOutput,
};
use crate::config::{AdaptiveGossip, ScenarioConfig};

/// Runs the adaptive-gossip ablation: delivery and overhead with and
/// without interval adaptation, across link error rates.
pub fn run(opts: &ExperimentOptions) -> ExperimentOutput {
    let epsilons = grid(opts, &[0.01, 0.05, 0.1], &[0.01, 0.02, 0.05, 0.08, 0.1]);
    let mut table = CsvTable::new(vec![
        "publish_rate".into(),
        "epsilon".into(),
        "algorithm".into(),
        "mode".into(),
        "delivery".into(),
        "gossip_msgs_per_dispatcher".into(),
    ]);
    let mut text = String::from(
        "Extension — adaptive gossip interval (paper Sec. IV-E, ref [14])\n\
         Dispatchers with no evidence of recovery work (empty Lost\n\
         buffer for pull, no incoming requests for push) back off from\n\
         T to 8T; any sign of work snaps the timer back.\n\
         Expectation: large savings on healthy/lightly-loaded networks,\n\
         convergence to fixed behavior under heavy loss.\n\n",
    );
    let rates = [(50.0, "high load"), (5.0, "low load")];
    let mut configs: Vec<ScenarioConfig> = Vec::new();
    for &(rate, _) in &rates {
        for kind in overhead_algorithms() {
            for &eps in &epsilons {
                let mut fixed = base_config(opts).with_algorithm(kind.clone());
                fixed.link_error_rate = eps;
                fixed.publish_rate = rate;
                let mut adaptive = fixed.clone();
                adaptive.adaptive_gossip = Some(AdaptiveGossip::around(fixed.gossip_interval));
                configs.push(fixed);
                configs.push(adaptive);
            }
        }
    }
    let mut results = run_cells(opts, &configs).into_iter();
    for &(rate, rate_label) in &rates {
        for kind in overhead_algorithms() {
            for &eps in &epsilons {
                let r_fixed = results.next().expect("one result per cell");
                let r_adaptive = results.next().expect("one result per cell");
                for (mode, r) in [("fixed", &r_fixed), ("adaptive", &r_adaptive)] {
                    table.push_row(vec![
                        rate.to_string(),
                        eps.to_string(),
                        kind.name().into(),
                        mode.into(),
                        format!("{:.3}", r.delivery_rate),
                        format!("{:.1}", r.gossip_per_dispatcher),
                    ]);
                }
                let saving = if r_fixed.gossip_per_dispatcher > 0.0 {
                    1.0 - r_adaptive.gossip_per_dispatcher / r_fixed.gossip_per_dispatcher
                } else {
                    0.0
                };
                text.push_str(&format!(
                "  {rate_label:<9} {:<14} eps={eps:<5} delivery {:.3} -> {:.3}, gossip/disp {:>7.1} -> {:>7.1} ({:+.0}% traffic)\n",
                kind.name(),
                r_fixed.delivery_rate,
                r_adaptive.delivery_rate,
                r_fixed.gossip_per_dispatcher,
                r_adaptive.gossip_per_dispatcher,
                -saving * 100.0
            ));
            }
        }
    }
    ExperimentOutput {
        id: "ext-adaptive",
        title: "Extension: adaptive gossip interval (Sec. IV-E)",
        tables: vec![("adaptive_vs_fixed".into(), table)],
        text,
    }
}
