//! Extension experiment: summary reconciliation — anti-entropy wire
//! cost as the cache grows.
//!
//! The paper's digests announce the cache *linearly*: the wire cost of
//! a push or pull round grows O(C) with cache size C. The
//! `summary-push` / `summary-pull` registry entries replace the id
//! list with hash-range tree aggregates (see [`eps_pubsub::summary`]),
//! reaching O(log C + Δ) bits for Δ differing events. This experiment
//! sweeps the buffer size β across two orders of magnitude and
//! compares the recovery-control wire bits (gossip digests plus
//! out-of-band requests) of both families.
//!
//! Accounting rule: a linear digest is charged the paper's flat
//! one-event rate, so its arm provisions the payload for a full-cache
//! announcement — header plus 96 bits per id for the cache's
//! per-pattern share (β / Π), never below the 1024-bit default. The
//! summary arms keep the default payload because their digests are
//! accounted exactly (`Envelope::wire_bits` sums the actual ranges and
//! details on the wire). Replies carry event copies in both families
//! and are excluded from the control figure.
//!
//! Expectation (the headline claim): linear control bits grow ≈100×
//! when β grows 100×; summary control bits stay within ~2× — at
//! equal-or-better window delivery.

use eps_gossip::Algorithm;
use eps_metrics::CsvTable;

use super::common::{base_config, f3, grid, run_cells, ExperimentOptions, ExperimentOutput};
use crate::config::ScenarioConfig;
use crate::result::ScenarioResult;

/// The flat per-digest payload a linear arm is provisioned with at
/// cache size `beta`: header + 96 bits per id of the per-pattern cache
/// share, floored at the scenario default.
fn linear_payload_bits(beta: usize, pattern_universe: u16) -> u64 {
    let ids = beta as u64 / u64::from(pattern_universe);
    (256 + 96 * ids).max(1024)
}

/// The compared arms: each linear digest family next to its summary
/// counterpart. `true` marks the arms whose payload scales with β.
fn arms() -> [(Algorithm, bool); 4] {
    [
        (Algorithm::push(), true),
        (Algorithm::summary_push(), false),
        (Algorithm::combined_pull(), true),
        (Algorithm::summary_pull(), false),
    ]
}

/// Runs the β sweep and tabulates control bits + delivery per arm.
pub fn run(opts: &ExperimentOptions) -> ExperimentOutput {
    let betas = grid(
        opts,
        &[1_500usize, 15_000, 150_000],
        &[1_500, 5_000, 15_000, 50_000, 150_000],
    );
    let mut text = String::from(
        "Extension — summary reconciliation (hash-range tree digests,\n\
         ROADMAP item 2): anti-entropy wire cost vs. cache size.\n\
         Linear arms are provisioned for a full-cache announcement\n\
         (flat payload = 256 + 96*beta/Pi bits); summary arms are\n\
         accounted exactly at the default payload. Control bits =\n\
         gossip digests + out-of-band requests, replies excluded.\n\n",
    );

    let configs: Vec<ScenarioConfig> = betas
        .iter()
        .flat_map(|&beta| {
            arms().into_iter().map(move |(algorithm, linear)| {
                let mut config = base_config(opts).with_algorithm(algorithm);
                config.buffer_size = beta;
                config.link_error_rate = 0.05;
                if linear {
                    config.event_payload_bits = linear_payload_bits(beta, config.pattern_universe);
                }
                config
            })
        })
        .collect();
    let results = run_cells(opts, &configs);
    let cell = |x: usize, col: usize| -> &ScenarioResult { &results[x * arms().len() + col] };

    let mut headers = vec!["beta".to_owned()];
    for (algorithm, _) in arms() {
        headers.push(format!("{}_control_bits", algorithm.name()));
        headers.push(format!("{}_delivery", algorithm.name()));
    }
    let mut table = CsvTable::new(headers);
    for (x, &beta) in betas.iter().enumerate() {
        let mut row = vec![beta.to_string()];
        for col in 0..arms().len() {
            let r = cell(x, col);
            row.push(r.recovery_control_bits().to_string());
            row.push(f3(r.delivery_rate));
        }
        table.push_row(row);
    }

    for (col, (algorithm, linear)) in arms().into_iter().enumerate() {
        let first = cell(0, col).recovery_control_bits().max(1);
        let last = cell(betas.len() - 1, col).recovery_control_bits();
        let family = if linear { "linear " } else { "summary" };
        text.push_str(&format!(
            "  {family} {:<14} control bits {} -> {} ({:.1}x over a {}x cache)\n",
            algorithm.name(),
            first,
            last,
            last as f64 / first as f64,
            betas[betas.len() - 1] / betas[0],
        ));
        let deliveries: Vec<String> = (0..betas.len())
            .map(|x| f3(cell(x, col).delivery_rate))
            .collect();
        text.push_str(&format!(
            "          {:<14} delivery [{}]\n",
            algorithm.name(),
            deliveries.join(", "),
        ));
    }

    ExperimentOutput {
        id: "ext-summary",
        title: "Extension: summary reconciliation wire cost (ROADMAP item 2)",
        tables: vec![("wire_vs_beta".into(), table)],
        text,
    }
}
