//! Extension experiment: buffer replacement policies.
//!
//! The paper uses plain FIFO buffers and flags buffer optimization
//! (its reference \[13\], Ozkasap et al., "Efficient Buffering in
//! Reliable Multicast Protocols") as ongoing work. This experiment
//! compares FIFO against random eviction and a source-biased policy
//! that protects self-published events, at buffer sizes small enough
//! for the policy to matter.

use eps_gossip::Algorithm;
use eps_metrics::CsvTable;
use eps_pubsub::EvictionPolicy;

use super::common::{base_config, grid, run_cells, ExperimentOptions, ExperimentOutput};
use crate::config::ScenarioConfig;

const POLICIES: [(&str, EvictionPolicy); 3] = [
    ("fifo", EvictionPolicy::Fifo),
    ("random", EvictionPolicy::Random { seed: 0x5eed }),
    (
        "source-biased",
        EvictionPolicy::SourceBiased { own_permille: 300 },
    ),
];

/// Runs the buffer-policy ablation: delivery per eviction policy at
/// small buffer sizes, for push and combined pull.
pub fn run(opts: &ExperimentOptions) -> ExperimentOutput {
    let betas = grid(opts, &[250usize, 500, 1000], &[150, 250, 500, 1000, 1500]);
    let algorithms = [Algorithm::push(), Algorithm::combined_pull()];
    let mut table = CsvTable::new(vec![
        "beta".into(),
        "algorithm".into(),
        "policy".into(),
        "delivery".into(),
        "events_recovered".into(),
    ]);
    let mut text = String::from(
        "Extension — buffer replacement policies (paper cites [13] as\n\
         ongoing work; the evaluation itself is FIFO-only)\n\
         source-biased reserves 30% of beta for self-published events —\n\
         the copies only the publisher can serve to publisher-bound\n\
         gossip. Expectation: it helps combined pull at small beta;\n\
         random eviction trades tail retention against recency.\n\n",
    );
    let configs: Vec<ScenarioConfig> = algorithms
        .iter()
        .flat_map(|kind| {
            betas.iter().flat_map(move |&beta| {
                POLICIES
                    .iter()
                    .map(move |&(_, policy)| (kind.clone(), beta, policy))
            })
        })
        .map(|(kind, beta, policy)| {
            let mut config = base_config(opts).with_algorithm(kind);
            config.buffer_size = beta;
            config.eviction = policy;
            config
        })
        .collect();
    let mut results = run_cells(opts, &configs).into_iter();
    for kind in algorithms {
        for &beta in &betas {
            let mut line = format!("  {:<14} beta={beta:<5}", kind.name());
            for (name, _) in POLICIES {
                let r = results.next().expect("one result per cell");
                table.push_row(vec![
                    beta.to_string(),
                    kind.name().into(),
                    name.into(),
                    format!("{:.3}", r.delivery_rate),
                    r.events_recovered.to_string(),
                ]);
                line.push_str(&format!(" {name}={:.3}", r.delivery_rate));
            }
            line.push('\n');
            text.push_str(&line);
        }
    }
    ExperimentOutput {
        id: "ext-buffers",
        title: "Extension: buffer replacement policies (ref [13])",
        tables: vec![("policies".into(), table)],
        text,
    }
}
