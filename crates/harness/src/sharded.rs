//! The sharded scenario runner: one scenario's node population
//! partitioned across worker threads under a conservative time-window
//! barrier — the intra-run parallelism that takes single runs to
//! 10⁵–10⁶ dispatchers on one machine.
//!
//! # Architecture
//!
//! The population is split into contiguous node ranges, one
//! [`Shard`] per range. Each shard owns its nodes, a local
//! [`KeyedEngine`] event queue, a local transport (every directed link
//! `(from, to)` is touched only by the shard owning `from`), and
//! per-node RNG streams. A coordinator advances the run in half-open
//! windows `[m, min(m + W, g))` where `m` is the earliest pending node
//! event anywhere, `g` the next coordinator-level event (link break,
//! repair, churn), and `W` the *lookahead*: the smallest delay any
//! channel can add to a message ([`ShardTransport::min_delay`] — the
//! link propagation delay in the paper's setup). No send made inside a
//! window can arrive before the window ends, so shards execute a
//! window concurrently without ever seeing each other's in-window
//! traffic; envelopes crossing shard boundaries are exchanged at the
//! barrier.
//!
//! # Determinism
//!
//! Results are bit-identical for every shard count, by construction:
//!
//! - Same-instant events are ordered by an event-derived key
//!   (`(class, to, from, per-sender sequence)`), never by insertion
//!   order, so each node processes its events in a shard-invariant
//!   order ([`KeyedEngine`]).
//! - Every random draw comes from a per-node stream (gossip decisions,
//!   link loss, workload) or a coordinator-only stream (reconfig,
//!   churn), so no draw order depends on the partition.
//! - Metrics are journaled per shard ([`DeliveryLog`]) and replayed
//!   into one tracker in canonical sorted order after the run; message
//!   counters are absorbed in shard-id order.
//!
//! The sharded runner is a second deterministic semantics, *not* a
//! re-implementation of [`crate::run_scenario`]'s exact event
//! interleaving: the serial runner uses shared RNG streams and FIFO
//! tie-breaking, which are inherently partition-dependent, so its
//! byte-level outputs are pinned separately. Shard-count invariance of
//! this runner is pinned by the golden suite.

use std::sync::mpsc;
use std::sync::Arc;

use eps_gossip::{Channel, Envelope};
use eps_metrics::{DeliveryLog, DeliveryTracker, MessageCounters};
use eps_overlay::{plan_reconnection, LinkSpec, NodeId, RoutingView, ShardTransport, Topology};
use eps_pubsub::{rebuild_subscription_routes, ClientId, PatternId, PatternSpace, PubSubMessage};
use eps_sim::{Engine, KeyedEngine, Rng, RngFactory, SimTime};

use crate::config::ScenarioConfig;
use crate::node::{routing_stats, NodeCtx, Outgoing, SimNode};
use crate::population::{build_population, cross_targets_for, Population};
use crate::result::{assemble, ScenarioResult};
use crate::trace::ScenarioTrace;

/// Runs one scenario split across `shards` worker shards.
///
/// Deterministic: the same configuration produces the same result, bit
/// for bit, **for every `shards` value** — `shards` only chooses how
/// the work is executed. A value of 1 runs the windowed semantics
/// inline without threads; larger values use one worker thread per
/// shard. `shards` is clamped to the node count.
///
/// # Examples
///
/// ```
/// use eps_harness::{run_scenario_sharded, ScenarioConfig};
/// use eps_sim::SimTime;
///
/// let config = ScenarioConfig {
///     nodes: 20,
///     duration: SimTime::from_secs(3),
///     warmup: SimTime::from_millis(500),
///     cooldown: SimTime::from_millis(500),
///     ..ScenarioConfig::default()
/// };
/// let serial = run_scenario_sharded(&config, 1);
/// let split = run_scenario_sharded(&config, 2);
/// assert_eq!(serial.delivery_rate.to_bits(), split.delivery_rate.to_bits());
/// ```
pub fn run_scenario_sharded(config: &ScenarioConfig, shards: usize) -> ScenarioResult {
    run_scenario_sharded_with_stats(config, shards).0
}

/// Execution statistics of one sharded run, for throughput reporting.
#[derive(Clone, Copy, Debug)]
pub struct ShardedRunStats {
    /// Node-level events processed, summed over shards.
    pub events_processed: u64,
    /// Barrier windows executed.
    pub windows: u64,
    /// Shards actually used (after clamping to the node count).
    pub shards: usize,
    /// Wall-clock time spent building the population and partitioning
    /// it into shards (independent of the shard count).
    pub setup_wall: std::time::Duration,
    /// Wall-clock time spent in the windowed event loop — the part a
    /// higher shard count can speed up.
    pub loop_wall: std::time::Duration,
}

/// Like [`run_scenario_sharded`], also returning execution statistics.
pub fn run_scenario_sharded_with_stats(
    config: &ScenarioConfig,
    shards: usize,
) -> (ScenarioResult, ShardedRunStats) {
    config.validate();
    assert!(shards >= 1, "need at least one shard");
    let setup_started = std::time::Instant::now();
    let shard_count = shards.min(config.nodes);

    let factory = RngFactory::new(config.seed);
    let Population {
        topology,
        view,
        space,
        nodes,
        subscriptions: _,
        client_subscriptions: _,
        subscribers_of,
        setup_subscription_msgs,
    } = build_population(config);

    let link = LinkSpec {
        bandwidth_bps: 10_000_000,
        propagation: SimTime::from_micros(50),
        loss_rate: config.link_error_rate,
    };

    // Partition into contiguous ranges of ⌈N/K⌉ nodes; trailing shards
    // may be smaller (or elided entirely when K does not divide N).
    let n = config.nodes;
    let per = n.div_ceil(shard_count);
    let mut shard_list: Vec<Option<Box<Shard>>> = Vec::new();
    let mut node_iter = nodes.into_iter();
    let mut base = 0usize;
    while base < n {
        let count = per.min(n - base);
        let shard_nodes: Vec<SimNode> = node_iter.by_ref().take(count).collect();
        let mut shard = Box::new(Shard::new(base as u32, shard_nodes, link, config, &factory));
        shard.seed_ticks(config, &factory);
        shard_list.push(Some(shard));
        base += count;
    }
    let lookahead = shard_list[0]
        .as_ref()
        .expect("shard present")
        .transport
        .min_delay();
    assert!(
        lookahead > SimTime::ZERO,
        "sharded runner needs a positive minimum channel delay for its lookahead window"
    );

    let mut global: Engine<GlobalEvent> = Engine::new();
    if let Some(rho) = config.reconfig_interval {
        if rho < config.duration {
            global.schedule(rho, GlobalEvent::Break);
        }
    }
    if let Some(churn) = config.churn_interval {
        if churn < config.duration {
            global.schedule(churn, GlobalEvent::ChurnTick);
        }
    }

    let mut coord = Coordinator {
        config,
        shared: Arc::new(RunShared {
            topology,
            view,
            tree_overlay: config.overlay.is_tree(),
            space,
            subscribers_of,
        }),
        shards: shard_list,
        per,
        lookahead,
        global,
        reconfig_rng: factory.stream("reconfig"),
        churn_rng: factory.stream("churn"),
        reconfigurations: 0,
        churn_events: 0,
        windows: 0,
    };

    let setup_wall = setup_started.elapsed();
    let loop_started = std::time::Instant::now();

    if coord.shards.len() == 1 {
        // Inline fast path: identical windowed semantics, no threads.
        coord.run(|shards, shared, config, end| {
            shards[0]
                .as_mut()
                .expect("shard home at the barrier")
                .run_window(shared, config, end);
        });
    } else {
        let worker_count = coord.shards.len();
        std::thread::scope(|scope| {
            let (res_tx, res_rx) = mpsc::sync_channel::<(usize, Box<Shard>)>(worker_count);
            let mut job_txs: Vec<mpsc::SyncSender<Job>> = Vec::with_capacity(worker_count);
            for i in 0..worker_count {
                let (tx, rx) = mpsc::sync_channel::<Job>(1);
                let res_tx = res_tx.clone();
                scope.spawn(move || {
                    while let Ok(job) = rx.recv() {
                        let Job {
                            mut shard,
                            shared,
                            window_end,
                        } = job;
                        shard.run_window(&shared, config, window_end);
                        // Release the shared-state handle *before*
                        // reporting back: the coordinator mutates the
                        // topology and subscriber index between
                        // windows via `Arc::get_mut`, which requires
                        // that no worker still holds a clone.
                        drop(shared);
                        res_tx.send((i, shard)).expect("coordinator receives");
                    }
                });
                job_txs.push(tx);
            }
            coord.run(|shards, shared, _config, end| {
                let mut dispatched = 0usize;
                for (i, slot) in shards.iter_mut().enumerate() {
                    let busy = slot
                        .as_ref()
                        .expect("shard home at the barrier")
                        .engine
                        .peek_time()
                        .is_some_and(|t| t < end);
                    if busy {
                        let shard = slot.take().expect("shard present");
                        job_txs[i]
                            .send(Job {
                                shard,
                                shared: Arc::clone(shared),
                                window_end: end,
                            })
                            .expect("worker alive");
                        dispatched += 1;
                    }
                }
                for _ in 0..dispatched {
                    let (i, shard) = res_rx.recv().expect("worker replies");
                    shards[i] = Some(shard);
                }
            });
            // Dropping the job senders ends the worker loops.
            drop(job_txs);
        });
    }

    let loop_wall = loop_started.elapsed();

    let shards_done: Vec<Box<Shard>> = coord
        .shards
        .into_iter()
        .map(|s| s.expect("all shards home after the run"))
        .collect();
    let routing = routing_stats(
        shards_done.iter().flat_map(|s| s.nodes.iter()),
        setup_subscription_msgs,
    );
    let outstanding: u64 = shards_done
        .iter()
        .flat_map(|s| s.nodes.iter())
        .map(|n| n.outstanding_losses() as u64)
        .sum();
    let evictions: u64 = shards_done
        .iter()
        .flat_map(|s| s.nodes.iter())
        .map(|n| n.lost_evictions())
        .sum();
    let mut counters = MessageCounters::new(config.nodes);
    let mut events_processed = 0u64;
    let mut logs = Vec::with_capacity(shards_done.len());
    for shard in shards_done {
        counters.absorb(&shard.counters);
        events_processed += shard.engine.processed_total();
        logs.push(shard.log);
    }
    counters.count_lost_evictions(evictions);
    let mut tracker = if config.churn_interval.is_some() {
        DeliveryTracker::new_tolerant()
    } else {
        DeliveryTracker::new()
    };
    DeliveryLog::replay_into(logs, &mut tracker);
    let result = assemble(
        config,
        &tracker,
        &counters,
        outstanding,
        coord.reconfigurations,
        coord.churn_events,
        routing,
    );
    let stats = ShardedRunStats {
        events_processed,
        windows: coord.windows,
        shards: shard_count,
        setup_wall,
        loop_wall,
    };
    (result, stats)
}

/// Total order for same-instant events, a pure function of the event:
/// `(class, destination, sender, per-sender sequence)`. Classes order
/// publish ticks before gossip ticks before deliveries; the per-sender
/// sequence makes keys unique (one monotone counter per node covers
/// its ticks and its sends).
type EvtKey = (u8, u32, u32, u64);

const CLASS_PUBLISH: u8 = 0;
const CLASS_GOSSIP: u8 = 1;
const CLASS_DELIVER: u8 = 2;

enum ShardEvent {
    Deliver {
        from: NodeId,
        to: NodeId,
        env: Envelope,
    },
    PublishTick(NodeId),
    GossipTick(NodeId),
}

/// Coordinator-level events: everything that mutates state shared
/// between shards, executed single-threaded between windows.
enum GlobalEvent {
    ChurnTick,
    Break,
    Repair,
}

/// Immutable-during-windows run state shared by every shard. Mutated
/// only at barriers (break/repair/churn), when the coordinator holds
/// the sole `Arc` handle.
struct RunShared {
    /// The physical overlay graph (link model, breakage, gossip
    /// neighborhoods).
    topology: Topology,
    /// The routing view derived from it. On tree overlays the
    /// physical topology is used directly instead (`tree_overlay`),
    /// so view and graph stay one object through break/repair.
    view: RoutingView,
    /// `true` when the configured overlay is acyclic.
    tree_overlay: bool,
    space: PatternSpace,
    subscribers_of: Vec<Vec<(NodeId, ClientId)>>,
}

/// One worker's slice of the run: a contiguous node range plus
/// everything those nodes touch on the hot path.
struct Shard {
    base: u32,
    nodes: Vec<SimNode>,
    engine: KeyedEngine<EvtKey, ShardEvent>,
    transport: ShardTransport,
    /// Per-node gossip-decision streams (`gossip-node`, one per node,
    /// local index = id − base), so decision draws are a function of
    /// the node's own event sequence only.
    gossip_rngs: Vec<Rng>,
    /// Per-node link-loss / out-of-band streams (`net-node`), drawn in
    /// the node's deterministic send order.
    net_rngs: Vec<Rng>,
    /// Per-node monotone sequence for event keys.
    send_seq: Vec<u64>,
    log: DeliveryLog,
    counters: MessageCounters,
    /// Deliveries destined for other shards, exchanged at the barrier.
    outbox: Vec<(SimTime, EvtKey, ShardEvent)>,
    /// The sharded runner does not support tracing; `NodeCtx` wants a
    /// place to look anyway.
    no_trace: Option<ScenarioTrace>,
}

impl Shard {
    fn new(
        base: u32,
        nodes: Vec<SimNode>,
        link: LinkSpec,
        config: &ScenarioConfig,
        factory: &RngFactory,
    ) -> Self {
        let count = nodes.len();
        let gossip_rngs = (0..count)
            .map(|i| factory.indexed_stream("gossip-node", base as u64 + i as u64))
            .collect();
        let net_rngs = (0..count)
            .map(|i| factory.indexed_stream("net-node", base as u64 + i as u64))
            .collect();
        Shard {
            base,
            nodes,
            engine: KeyedEngine::new(),
            transport: ShardTransport::new(link, config.out_of_band),
            gossip_rngs,
            net_rngs,
            send_seq: vec![0; count],
            log: DeliveryLog::new(),
            counters: MessageCounters::new(config.nodes),
            outbox: Vec::new(),
            no_trace: None,
        }
    }

    fn local(&self, node: NodeId) -> usize {
        node.index() - self.base as usize
    }

    fn owns(&self, node: NodeId) -> bool {
        let i = node.index();
        i >= self.base as usize && i < self.base as usize + self.nodes.len()
    }

    fn next_key(&mut self, class: u8, to: NodeId, from: NodeId) -> EvtKey {
        let seq = &mut self.send_seq[(from.index()) - self.base as usize];
        let k = *seq;
        *seq += 1;
        (class, to.index() as u32, from.index() as u32, k)
    }

    /// Schedules each node's first publish and gossip ticks. Draws
    /// come from per-node streams (the workload stream seeded by the
    /// population builder, and one `gossip-phase` stream per node), so
    /// seeding is independent of the partition.
    fn seed_ticks(&mut self, config: &ScenarioConfig, factory: &RngFactory) {
        for i in 0..self.nodes.len() {
            let id = NodeId::new(self.base + i as u32);
            if config.publish_rate > 0.0 {
                let delay = self.nodes[i].next_publish_delay(config.publish_rate);
                let key = self.next_key(CLASS_PUBLISH, id, id);
                self.engine
                    .schedule_at(delay, key, ShardEvent::PublishTick(id));
            }
            let phase = config.gossip_interval.mul_f64(
                factory
                    .indexed_stream("gossip-phase", id.index() as u64)
                    .random_range(0.0..1.0),
            );
            let key = self.next_key(CLASS_GOSSIP, id, id);
            self.engine
                .schedule_at(phase, key, ShardEvent::GossipTick(id));
        }
    }

    /// Drains this shard's queue strictly up to `window_end`. Sends
    /// made here arrive no earlier than `window_end` (conservative
    /// lookahead), so they can never need processing inside this
    /// window; cross-shard ones accumulate in the outbox.
    fn run_window(&mut self, shared: &RunShared, config: &ScenarioConfig, window_end: SimTime) {
        while let Some((t, _key, ev)) = self.engine.pop_before(window_end) {
            match ev {
                ShardEvent::Deliver { from, to, env } => {
                    let out = self.with_ctx(to, t, shared, |node, ctx| node.handle(from, env, ctx));
                    self.send(to, t, out, shared, config);
                }
                ShardEvent::PublishTick(node) => {
                    // Mirrors the serial runner: the workload ends at
                    // `duration`, so a first tick scheduled past the
                    // end (possible at very low publish rates) does
                    // not fire.
                    if t >= config.duration {
                        continue;
                    }
                    let (out, delay) = self.with_ctx(node, t, shared, |n, ctx| {
                        n.tick_publish(config.publish_rate, ctx)
                    });
                    self.send(node, t, out, shared, config);
                    if t + delay < config.duration {
                        let key = self.next_key(CLASS_PUBLISH, node, node);
                        self.engine
                            .schedule_at(t + delay, key, ShardEvent::PublishTick(node));
                    }
                }
                ShardEvent::GossipTick(node) => {
                    let (out, next) = self.with_ctx(node, t, shared, |n, ctx| {
                        n.tick_gossip(config.gossip_interval, config.adaptive_gossip, ctx)
                    });
                    self.send(node, t, out, shared, config);
                    if t + next < config.duration {
                        let key = self.next_key(CLASS_GOSSIP, node, node);
                        self.engine
                            .schedule_at(t + next, key, ShardEvent::GossipTick(node));
                    }
                }
            }
        }
    }

    fn with_ctx<R>(
        &mut self,
        node: NodeId,
        now: SimTime,
        shared: &RunShared,
        f: impl FnOnce(&mut SimNode, &mut NodeCtx) -> R,
    ) -> R {
        let li = self.local(node);
        let mut ctx = NodeCtx {
            now,
            neighbors: if shared.tree_overlay {
                shared.topology.neighbors(node)
            } else {
                shared.view.neighbors(node)
            },
            graph_neighbors: shared.topology.neighbors(node),
            space: &shared.space,
            subscribers_of: &shared.subscribers_of,
            gossip_rng: &mut self.gossip_rngs[li],
            tracker: &mut self.log,
            counters: &mut self.counters,
            trace: &mut self.no_trace,
        };
        f(&mut self.nodes[li], &mut ctx)
    }

    /// Counts and transmits a node's outgoing messages, scheduling
    /// arrivals locally or into the outbox. Mirrors the serial
    /// runner's `Scenario::send`, with loss drawn from the *sender's*
    /// stream.
    fn send(
        &mut self,
        from: NodeId,
        now: SimTime,
        out: Vec<Outgoing>,
        shared: &RunShared,
        config: &ScenarioConfig,
    ) {
        let li = self.local(from);
        for Outgoing { to, env } in out {
            let arrival = match env.channel() {
                Channel::Tree => {
                    let bits = env.wire_bits(config.event_payload_bits);
                    match &env {
                        Envelope::PubSub(PubSubMessage::Event(_)) => {
                            self.counters.count_event(from)
                        }
                        Envelope::PubSub(_) => self.counters.count_subscription(from),
                        // Gossip *messages* are counted at the action
                        // level; their wire *bits* are charged here —
                        // mirrors the serial runner: before link state,
                        // a digest lost to a broken link was still sent.
                        Envelope::Gossip(_) => self.counters.count_gossip_bits(bits),
                        _ => {}
                    }
                    if !shared.topology.has_link(from, to) {
                        // Broken link or stale route: the message is lost.
                        continue;
                    }
                    self.transport
                        .send_link(from, to, bits, now, &mut self.net_rngs[li])
                }
                Channel::Cross => {
                    // A cross-link event copy: same link model as the
                    // tree (the chord is a physical link like any
                    // other), counted as an event message.
                    self.counters.count_event(from);
                    if !shared.topology.has_link(from, to) {
                        // Broken chord or stale cross target: lost.
                        continue;
                    }
                    let bits = env.wire_bits(config.event_payload_bits);
                    self.transport
                        .send_link(from, to, bits, now, &mut self.net_rngs[li])
                }
                Channel::OutOfBand => {
                    let bits = env.wire_bits(config.event_payload_bits);
                    match &env {
                        Envelope::Request(_) | Envelope::RangeRequest { .. } => {
                            self.counters.count_request_bits(bits)
                        }
                        Envelope::Reply(_) => self.counters.count_reply_bits(bits),
                        _ => {}
                    }
                    self.transport
                        .send_oob(from, to, bits, now, &mut self.net_rngs[li])
                }
            };
            if let Some(at) = arrival {
                let key = self.next_key(CLASS_DELIVER, to, from);
                let ev = ShardEvent::Deliver { from, to, env };
                if self.owns(to) {
                    self.engine.schedule_at(at, key, ev);
                } else {
                    self.outbox.push((at, key, ev));
                }
            }
        }
    }
}

struct Job {
    shard: Box<Shard>,
    shared: Arc<RunShared>,
    window_end: SimTime,
}

struct Coordinator<'a> {
    config: &'a ScenarioConfig,
    shared: Arc<RunShared>,
    shards: Vec<Option<Box<Shard>>>,
    per: usize,
    lookahead: SimTime,
    global: Engine<GlobalEvent>,
    reconfig_rng: Rng,
    churn_rng: Rng,
    reconfigurations: u64,
    churn_events: u64,
    windows: u64,
}

impl Coordinator<'_> {
    fn shard_of(&self, node: NodeId) -> usize {
        node.index() / self.per
    }

    fn shard_mut(&mut self, i: usize) -> &mut Shard {
        self.shards[i].as_mut().expect("shard home at the barrier")
    }

    /// The main loop. Node windows run through `exec` (inline or
    /// fanned across workers); coordinator events run here whenever
    /// the next one is not strictly after the earliest node event —
    /// so a global event at time `g` sees every node's state up to
    /// `g`, and node events at the same instant run after it.
    fn run<F>(&mut self, mut exec: F)
    where
        F: FnMut(&mut Vec<Option<Box<Shard>>>, &Arc<RunShared>, &ScenarioConfig, SimTime),
    {
        loop {
            let m = self
                .shards
                .iter()
                .filter_map(|s| s.as_ref().expect("shard home").engine.peek_time())
                .min();
            let g = self.global.peek_time();
            match (m, g) {
                (None, None) => break,
                (Some(m), g) if g.is_none_or(|g| g > m) => {
                    let cap = m + self.lookahead;
                    let end = g.map_or(cap, |g| cap.min(g));
                    self.windows += 1;
                    exec(&mut self.shards, &self.shared, self.config, end);
                    self.route_outboxes();
                }
                _ => {
                    self.run_global_event();
                    self.route_outboxes();
                }
            }
        }
    }

    /// Moves cross-shard deliveries into their destination queues, in
    /// shard-id order. Arrival times are at or past the barrier, so
    /// insertion order cannot affect execution order (the keyed queue
    /// orders by `(time, key)` alone).
    fn route_outboxes(&mut self) {
        for i in 0..self.shards.len() {
            let outbox = std::mem::take(&mut self.shard_mut(i).outbox);
            for (at, key, ev) in outbox {
                let to = match &ev {
                    ShardEvent::Deliver { to, .. } => *to,
                    _ => unreachable!("only deliveries cross shard boundaries"),
                };
                let target = self.shard_of(to);
                self.shard_mut(target).engine.schedule_at(at, key, ev);
            }
        }
    }

    fn run_global_event(&mut self) {
        let (now, event) = self.global.pop().expect("a global event is pending");
        match event {
            GlobalEvent::Break => self.handle_break(now),
            GlobalEvent::Repair => self.handle_repair(),
            GlobalEvent::ChurnTick => self.handle_churn(now),
        }
    }

    /// Exclusive access to the shared run state. Sound because global
    /// events only run between windows, when every worker has dropped
    /// its handle (workers drop before reporting their shard back).
    fn shared_mut(&mut self) -> &mut RunShared {
        Arc::get_mut(&mut self.shared).expect("no worker holds the shared state at a barrier")
    }

    fn handle_break(&mut self, now: SimTime) {
        if now >= self.config.duration {
            // The workload is over; the queues are only draining
            // in-flight recoveries. Do not disturb them.
            return;
        }
        let shared = Arc::get_mut(&mut self.shared).expect("sole handle at a barrier");
        let link = {
            let topology = &shared.topology;
            self.reconfig_rng.choose_iter(topology.links())
        };
        if let Some(link) = link {
            shared
                .topology
                .remove_link(link)
                .expect("chosen link exists");
            let (a, b) = (link.a(), link.b());
            let sa = self.shard_of(a);
            let sb = self.shard_of(b);
            self.shard_mut(sa).transport.reset_link(a, b);
            self.shard_mut(sb).transport.reset_link(a, b);
            self.reconfigurations += 1;
            self.global
                .schedule(self.config.repair_delay, GlobalEvent::Repair);
        }
        if let Some(rho) = self.config.reconfig_interval {
            if now + rho < self.config.duration {
                self.global.schedule(rho, GlobalEvent::Break);
            }
        }
    }

    fn handle_repair(&mut self) {
        let shared = Arc::get_mut(&mut self.shared).expect("sole handle at a barrier");
        let reconnected = plan_reconnection(&shared.topology, &mut self.reconfig_rng);
        if let Some((x, y)) = reconnected {
            shared
                .topology
                .add_link(x, y)
                .expect("reconnection endpoints have spare degree");
        }
        if shared.tree_overlay {
            if reconnected.is_some() {
                // The reconfiguration protocol of [7] has completed:
                // rebuild the routes over all nodes, gathered in id
                // order across the shards (ranges are contiguous and
                // ordered).
                let mut hosts: Vec<&mut SimNode> = self
                    .shards
                    .iter_mut()
                    .flat_map(|s| s.as_mut().expect("shard home").nodes.iter_mut())
                    .collect();
                rebuild_subscription_routes(&mut hosts, &shared.topology);
            }
        } else {
            // Cyclic overlay: even when the graph stayed connected
            // (no replacement link — the overlay thins gradually),
            // the view may have been using the vanished link.
            // Re-derive it, rebuild routes, and recompute every
            // node's cross targets; mirrors the serial runner.
            shared.view = RoutingView::derive(&shared.topology);
            let mut hosts: Vec<&mut SimNode> = self
                .shards
                .iter_mut()
                .flat_map(|s| s.as_mut().expect("shard home").nodes.iter_mut())
                .collect();
            rebuild_subscription_routes(&mut hosts, shared.view.tree());
            let interests: Vec<Vec<PatternId>> =
                hosts.iter().map(|h| h.subscriptions().to_vec()).collect();
            for (i, host) in hosts.iter_mut().enumerate() {
                let id = NodeId::new(i as u32);
                let targets = cross_targets_for(id, &shared.topology, &shared.view, &interests);
                host.set_cross_targets(targets);
            }
        }
    }

    /// Subscription churn, mirroring the serial runner: a random
    /// dispatcher swaps one subscription, and the (un)subscriptions
    /// travel as protocol messages via the owning shard's transport.
    fn handle_churn(&mut self, now: SimTime) {
        if now < self.config.duration {
            let node = NodeId::new(self.churn_rng.random_range(0..self.config.nodes as u32));
            // Mirrors the serial runner: with one client per node no
            // extra draw is consumed, keeping the churn stream
            // byte-compatible with the pre-client-layer runner.
            let client = if self.config.clients_per_node > 1 {
                ClientId::new(
                    self.churn_rng
                        .random_range(0..self.config.clients_per_node as u32),
                )
            } else {
                ClientId::new(0)
            };
            let si = self.shard_of(node);
            let li = node.index() - self.shards[si].as_ref().expect("home").base as usize;
            let subs: Vec<PatternId> =
                self.shards[si].as_ref().expect("home").nodes[li].client_patterns(client);
            if !subs.is_empty() {
                let old = subs[self.churn_rng.random_range(0..subs.len())];
                let candidates: Vec<PatternId> = self
                    .shared
                    .space
                    .patterns()
                    .filter(|p| !subs.contains(p))
                    .collect();
                if let Some(&new) = self.churn_rng.choose(&candidates) {
                    self.churn_events += 1;
                    let config = self.config;
                    // (Un)subscriptions propagate on the routing view,
                    // like every other piece of protocol traffic.
                    let neighbors = if self.shared.tree_overlay {
                        self.shared.topology.neighbors(node).to_vec()
                    } else {
                        self.shared.view.neighbors(node).to_vec()
                    };
                    let handle = Arc::clone(&self.shared);
                    let shard = self.shard_mut(si);
                    let (out, aggregate_changed) =
                        shard.nodes[li].apply_churn(client, old, new, &neighbors);
                    shard.send(node, now, out, &handle, config);
                    drop(handle);
                    if aggregate_changed && !self.shared.tree_overlay {
                        // Cross-link partners keep a copy of this
                        // node's interest to filter their replication;
                        // refresh it (partners may live on any shard —
                        // sound at a barrier), charging one
                        // subscription message per cross link.
                        let interest = self.shards[si].as_ref().expect("home").nodes[li]
                            .subscriptions()
                            .to_vec();
                        let chords = self
                            .shared
                            .view
                            .cross_neighbors(&self.shared.topology, node);
                        for chord in chords {
                            self.shard_mut(si).counters.count_subscription(node);
                            let ci = self.shard_of(chord);
                            let cshard = self.shard_mut(ci);
                            let cli = chord.index() - cshard.base as usize;
                            cshard.nodes[cli].update_cross_partner(node, interest.clone());
                        }
                    }
                    let shared = self.shared_mut();
                    shared.subscribers_of[old.index()].retain(|&s| s != (node, client));
                    shared.subscribers_of[new.index()].push((node, client));
                    shared.subscribers_of[new.index()].sort_unstable();
                }
            }
            if let Some(churn) = self.config.churn_interval {
                if now + churn < self.config.duration {
                    self.global.schedule(churn, GlobalEvent::ChurnTick);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eps_gossip::Algorithm;

    fn small(algorithm: Algorithm) -> ScenarioConfig {
        ScenarioConfig {
            nodes: 22,
            duration: SimTime::from_secs(3),
            warmup: SimTime::from_millis(500),
            cooldown: SimTime::from_millis(500),
            publish_rate: 20.0,
            algorithm,
            ..ScenarioConfig::default()
        }
    }

    fn assert_bit_identical(a: &ScenarioResult, b: &ScenarioResult) {
        assert_eq!(a.delivery_rate.to_bits(), b.delivery_rate.to_bits());
        assert_eq!(
            a.overall_delivery_rate.to_bits(),
            b.overall_delivery_rate.to_bits()
        );
        assert_eq!(a.min_bin_rate.to_bits(), b.min_bin_rate.to_bits());
        assert_eq!(a.events_published, b.events_published);
        assert_eq!(a.event_msgs, b.event_msgs);
        assert_eq!(a.gossip_msgs, b.gossip_msgs);
        assert_eq!(a.requests, b.requests);
        assert_eq!(a.replies, b.replies);
        assert_eq!(a.events_recovered, b.events_recovered);
        assert_eq!(
            a.recovery_latency_mean.to_bits(),
            b.recovery_latency_mean.to_bits()
        );
        assert_eq!(a.outstanding_losses, b.outstanding_losses);
        assert_eq!(a.subscription_msgs, b.subscription_msgs);
        assert_eq!(a.gossip_wire_bits, b.gossip_wire_bits);
        assert_eq!(a.request_wire_bits, b.request_wire_bits);
        assert_eq!(a.reply_wire_bits, b.reply_wire_bits);
        assert_eq!(a.series.len(), b.series.len());
        for (x, y) in a.series.iter().zip(&b.series) {
            assert_eq!(x.0.to_bits(), y.0.to_bits());
            assert_eq!(x.1.to_bits(), y.1.to_bits());
        }
    }

    #[test]
    fn shard_count_does_not_change_the_result() {
        let config = small(Algorithm::push());
        let one = run_scenario_sharded(&config, 1);
        let two = run_scenario_sharded(&config, 2);
        let five = run_scenario_sharded(&config, 5);
        assert_bit_identical(&one, &two);
        assert_bit_identical(&one, &five);
        assert!(one.delivery_rate > 0.0 && one.delivery_rate <= 1.0);
    }

    #[test]
    fn shard_invariance_holds_under_reconfiguration_and_churn() {
        let config = ScenarioConfig {
            reconfig_interval: Some(SimTime::from_millis(400)),
            churn_interval: Some(SimTime::from_millis(300)),
            link_error_rate: 0.0,
            ..small(Algorithm::push())
        };
        let one = run_scenario_sharded(&config, 1);
        let three = run_scenario_sharded(&config, 3);
        assert_bit_identical(&one, &three);
        assert!(one.reconfigurations > 0);
        assert!(one.churn_events > 0);
    }

    #[test]
    fn oversized_shard_counts_are_clamped() {
        let config = ScenarioConfig {
            nodes: 3,
            duration: SimTime::from_secs(2),
            warmup: SimTime::from_millis(200),
            cooldown: SimTime::from_millis(200),
            publish_rate: 10.0,
            ..ScenarioConfig::default()
        };
        let (result, stats) = run_scenario_sharded_with_stats(&config, 64);
        assert_eq!(stats.shards, 3);
        assert!(stats.events_processed > 0);
        assert!(stats.windows > 0);
        let (baseline, _) = run_scenario_sharded_with_stats(&config, 1);
        assert_bit_identical(&baseline, &result);
    }
}
