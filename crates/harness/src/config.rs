//! Scenario configuration: the paper's Figure 2 parameters plus the
//! knobs the evaluation sweeps.

use eps_gossip::{Algorithm, GossipConfig};
use eps_overlay::{OutOfBandSpec, OverlayKind, BA_ATTACHMENTS};
use eps_pubsub::EvictionPolicy;
use eps_sim::SimTime;

/// Adaptive gossip-interval control (an extension the paper suggests
/// in Section IV-E, citing its reference \[14\]): a dispatcher whose
/// gossip round had nothing to do backs off exponentially up to
/// `max_interval`; as soon as a round produces traffic it snaps back
/// to `min_interval`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AdaptiveGossip {
    /// The interval used while there is recovery work to do.
    pub min_interval: SimTime,
    /// The ceiling reached after repeated idle rounds.
    pub max_interval: SimTime,
    /// Multiplicative backoff applied per idle round (> 1).
    pub backoff: f64,
}

impl AdaptiveGossip {
    /// A reasonable default around the paper's `T`: idle dispatchers
    /// back off from `t` to `8·t`, doubling per idle round.
    pub fn around(t: SimTime) -> Self {
        AdaptiveGossip {
            min_interval: t,
            max_interval: t.saturating_mul(8),
            backoff: 2.0,
        }
    }

    /// Validates the parameters.
    ///
    /// # Panics
    ///
    /// Panics on non-positive intervals, an inverted range, or a
    /// backoff not greater than 1.
    pub fn validate(&self) {
        assert!(
            self.min_interval > SimTime::ZERO,
            "min interval must be positive"
        );
        assert!(
            self.max_interval >= self.min_interval,
            "max interval below min"
        );
        assert!(self.backoff > 1.0, "backoff must exceed 1");
    }
}

/// Full description of one simulation run.
///
/// Defaults reproduce the paper's Figure 2: `N` = 100 dispatchers,
/// `π_max` = 2 subscriptions per dispatcher over `Π` = 70 patterns,
/// 50 publish/s per dispatcher, link error rate `ε` = 0.1, no
/// reconfigurations, buffer `β` = 1500, gossip interval `T` = 0.03 s,
/// 25 s of virtual time.
///
/// # Examples
///
/// ```
/// use eps_harness::ScenarioConfig;
/// use eps_gossip::Algorithm;
///
/// let config = ScenarioConfig {
///     algorithm: Algorithm::combined_pull(),
///     ..ScenarioConfig::default()
/// };
/// config.validate();
/// assert_eq!(config.nodes, 100);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioConfig {
    /// Master seed for all random streams.
    pub seed: u64,
    /// Number of dispatchers `N`.
    pub nodes: usize,
    /// Maximum overlay degree (4 in every paper configuration).
    pub max_degree: usize,
    /// Shape of the physical overlay graph. The paper's scenarios use
    /// acyclic overlays (`Tree`); the cyclic kinds route events on a
    /// derived spanning tree and replicate them across the remaining
    /// physical cross links.
    pub overlay: OverlayKind,
    /// Pattern universe size `Π`.
    pub pattern_universe: u16,
    /// Maximum patterns matched by one event (3 in the paper).
    pub max_patterns_per_event: usize,
    /// Subscriptions per dispatcher `π_max`. With more than one client
    /// per dispatcher this bounds each *client's* subscription count;
    /// the dispatcher's routing filter is the aggregate of its clients.
    pub pi_max: usize,
    /// End-user clients attached to each dispatcher. The paper's model
    /// is one client per dispatcher (`1`, the default); larger values
    /// exercise subscription aggregation — per-client patterns are
    /// merged into one broker-level filter, so routing state grows with
    /// the number of *distinct* patterns, not the number of clients.
    pub clients_per_node: usize,
    /// Zipf exponent `s` for pattern popularity. `0.0` (the default)
    /// keeps the paper's uniform content model; `s > 0` skews both
    /// event content and subscription draws towards low-numbered
    /// patterns with probability ∝ `1/rank^s`.
    pub zipf_s: f64,
    /// Publish rate per dispatcher, events/second (Poisson process).
    pub publish_rate: f64,
    /// Per-link, per-message loss probability `ε`.
    pub link_error_rate: f64,
    /// Interval `ρ` between topological reconfigurations
    /// (`None` = `ρ` = ∞, the lossy-link scenarios).
    pub reconfig_interval: Option<SimTime>,
    /// Time to repair a broken link (0.1 s in the paper).
    pub repair_delay: SimTime,
    /// Event-cache capacity `β`.
    pub buffer_size: usize,
    /// Gossip interval `T`.
    pub gossip_interval: SimTime,
    /// The recovery strategy under test.
    pub algorithm: Algorithm,
    /// Gossip-layer tunables (`P_forward`, `P_source`, …).
    pub gossip: GossipConfig,
    /// Virtual-time length of the run.
    pub duration: SimTime,
    /// Events published before this instant are excluded from the
    /// summary delivery rate (routing warm-up).
    pub warmup: SimTime,
    /// Events published within this long of the end are excluded from
    /// the summary delivery rate (they get no fair recovery window).
    pub cooldown: SimTime,
    /// Nominal wire size of an event message, in bits; the paper
    /// assumes gossip messages cost the same.
    pub event_payload_bits: u64,
    /// The out-of-band unicast channel used for recovery traffic.
    pub out_of_band: OutOfBandSpec,
    /// Bin width of the delivery-rate time series.
    pub series_bin: SimTime,
    /// Buffer replacement policy (the paper uses FIFO).
    pub eviction: EvictionPolicy,
    /// Optional adaptive gossip-interval control; `None` keeps the
    /// paper's fixed interval `T`.
    pub adaptive_gossip: Option<AdaptiveGossip>,
    /// Optional subscription churn: every interval, a random
    /// dispatcher swaps one of its subscriptions for a fresh pattern,
    /// propagating the (un)subscriptions through the overlay. The
    /// paper's evaluation keeps subscriptions stable; this exercises
    /// the dynamics of its companion problem (reference \[7\]).
    pub churn_interval: Option<SimTime>,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            seed: 1,
            nodes: 100,
            max_degree: 4,
            overlay: OverlayKind::Tree,
            pattern_universe: 70,
            max_patterns_per_event: 3,
            pi_max: 2,
            clients_per_node: 1,
            zipf_s: 0.0,
            publish_rate: 50.0,
            link_error_rate: 0.1,
            reconfig_interval: None,
            repair_delay: SimTime::from_millis(100),
            buffer_size: 1500,
            gossip_interval: SimTime::from_millis(30),
            algorithm: Algorithm::no_recovery(),
            gossip: GossipConfig::default(),
            duration: SimTime::from_secs(25),
            warmup: SimTime::from_secs(2),
            cooldown: SimTime::from_secs(2),
            event_payload_bits: 1024,
            out_of_band: OutOfBandSpec::default(),
            series_bin: SimTime::from_millis(100),
            eviction: EvictionPolicy::Fifo,
            adaptive_gossip: None,
            churn_interval: None,
        }
    }
}

impl ScenarioConfig {
    /// Checks internal consistency.
    ///
    /// # Panics
    ///
    /// Panics with a description of the first violated constraint.
    pub fn validate(&self) {
        assert!(self.nodes > 0, "need at least one dispatcher");
        assert!(self.max_degree >= 2, "degree bound must be at least 2");
        match self.overlay {
            OverlayKind::Tree => {}
            OverlayKind::BarabasiAlbert => assert!(
                self.max_degree >= 2 * BA_ATTACHMENTS,
                "a Barabási–Albert overlay needs max_degree >= {}",
                2 * BA_ATTACHMENTS
            ),
            OverlayKind::WattsStrogatz => {
                assert!(self.nodes >= 5, "a Watts–Strogatz overlay needs >= 5 nodes");
                assert!(
                    self.max_degree >= 5,
                    "a Watts–Strogatz overlay needs max_degree >= 5"
                );
            }
        }
        assert!(self.pattern_universe > 0, "need a pattern universe");
        assert!(
            self.pi_max <= self.pattern_universe as usize,
            "pi_max cannot exceed the pattern universe"
        );
        assert!(
            self.max_patterns_per_event > 0,
            "events must carry patterns"
        );
        assert!(
            self.clients_per_node > 0,
            "each dispatcher needs at least one client"
        );
        assert!(
            self.zipf_s >= 0.0 && self.zipf_s.is_finite(),
            "zipf exponent must be a finite non-negative number"
        );
        assert!(
            self.publish_rate >= 0.0 && self.publish_rate.is_finite(),
            "publish rate must be a finite non-negative number"
        );
        assert!(
            (0.0..=1.0).contains(&self.link_error_rate),
            "link error rate out of range"
        );
        assert!(
            self.gossip_interval > SimTime::ZERO,
            "gossip interval must be positive"
        );
        assert!(self.duration > SimTime::ZERO, "duration must be positive");
        assert!(
            self.warmup + self.cooldown < self.duration,
            "measurement window is empty"
        );
        assert!(
            self.series_bin > SimTime::ZERO,
            "series bin must be positive"
        );
        assert!(self.event_payload_bits > 0, "events must have a size");
        self.gossip.validate();
        if let Some(adaptive) = &self.adaptive_gossip {
            adaptive.validate();
        }
        if let Some(rho) = self.reconfig_interval {
            assert!(
                rho > SimTime::ZERO,
                "reconfiguration interval must be positive"
            );
        }
        if let Some(churn) = self.churn_interval {
            assert!(churn > SimTime::ZERO, "churn interval must be positive");
            assert!(
                (self.pi_max as u16) < self.pattern_universe,
                "churn needs a spare pattern to swap in"
            );
        }
    }

    /// The summary measurement window: events published in
    /// `[warmup, duration - cooldown)` count towards the headline
    /// delivery rate.
    pub fn measure_window(&self) -> (SimTime, SimTime) {
        (self.warmup, self.duration.saturating_sub(self.cooldown))
    }

    /// Expected subscribers per pattern `N_π = N·π_max/Π`
    /// (2.85 at the defaults, as the paper notes).
    pub fn subscribers_per_pattern(&self) -> f64 {
        (self.nodes * self.pi_max) as f64 / self.pattern_universe as f64
    }

    /// A copy configured for a different recovery strategy.
    pub fn with_algorithm(&self, algorithm: Algorithm) -> Self {
        ScenarioConfig {
            algorithm,
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_figure_2() {
        let c = ScenarioConfig::default();
        c.validate();
        assert_eq!(c.nodes, 100);
        assert_eq!(c.pi_max, 2);
        assert_eq!(c.pattern_universe, 70);
        assert!((c.publish_rate - 50.0).abs() < f64::EPSILON);
        assert!((c.link_error_rate - 0.1).abs() < f64::EPSILON);
        assert_eq!(c.reconfig_interval, None);
        assert_eq!(c.buffer_size, 1500);
        assert_eq!(c.gossip_interval, SimTime::from_millis(30));
        assert!((c.subscribers_per_pattern() - 2.857).abs() < 0.01);
    }

    #[test]
    fn measure_window_excludes_edges() {
        let c = ScenarioConfig::default();
        let (start, end) = c.measure_window();
        assert_eq!(start, SimTime::from_secs(2));
        assert_eq!(end, SimTime::from_secs(23));
    }

    #[test]
    fn with_algorithm_changes_only_the_algorithm() {
        let base = ScenarioConfig::default();
        let push = base.with_algorithm(Algorithm::push());
        assert_eq!(push.algorithm, Algorithm::push());
        assert_eq!(push.nodes, base.nodes);
        assert_eq!(push.seed, base.seed);
    }

    #[test]
    #[should_panic]
    fn empty_measure_window_is_rejected() {
        ScenarioConfig {
            duration: SimTime::from_secs(3),
            warmup: SimTime::from_secs(2),
            cooldown: SimTime::from_secs(2),
            ..ScenarioConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic]
    fn oversubscribed_pi_max_is_rejected() {
        ScenarioConfig {
            pattern_universe: 5,
            pi_max: 6,
            ..ScenarioConfig::default()
        }
        .validate();
    }
}
