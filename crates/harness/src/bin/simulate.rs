//! `simulate` — run a single scenario from command-line flags and
//! print a full report. Useful for exploring the parameter space
//! beyond the paper's figures.
//!
//! ```text
//! simulate --algorithm combined-pull --nodes 100 --eps 0.1 \
//!          --beta 1500 --gossip-interval 0.03 --duration 25 [--adaptive]
//! ```
//!
//! With several `--algorithm` flags the runs execute in parallel on
//! `--jobs` worker threads (default: all cores); reports print in the
//! requested order and are identical for every job count.
//!
//! `--shards K` runs each scenario through the sharded runner
//! ([`run_scenario_sharded`]), partitioning the node population across
//! `K` worker threads inside a single run — the way to push one
//! scenario to 10⁵–10⁶ dispatchers. Results are identical for every
//! `K` (including 1) but differ bitwise from the serial runner's.

use std::process::ExitCode;

use eps_gossip::Algorithm;
use eps_harness::parallel::{default_jobs, par_map};
use eps_harness::{run_scenario, run_scenario_sharded, AdaptiveGossip, ScenarioConfig};
use eps_sim::SimTime;

fn main() -> ExitCode {
    let mut config = ScenarioConfig::default();
    let mut algorithms: Vec<Algorithm> = Vec::new();
    let mut jobs: Option<usize> = None;
    let mut shards: Option<usize> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = || iter.next().cloned().ok_or(format!("{arg} needs a value"));
        let result: Result<(), String> = (|| {
            match arg.as_str() {
                "--algorithm" | "-a" => {
                    algorithms.push(value()?.parse().map_err(|e| format!("{e}"))?)
                }
                "--nodes" | "-n" => config.nodes = parse(&value()?)?,
                "--overlay" => config.overlay = value()?.parse()?,
                "--max-degree" => config.max_degree = parse(&value()?)?,
                "--seed" => config.seed = parse(&value()?)?,
                "--eps" => config.link_error_rate = parse(&value()?)?,
                "--beta" => config.buffer_size = parse(&value()?)?,
                "--pi-max" | "--patterns-per-node" => config.pi_max = parse(&value()?)?,
                "--patterns" => config.pattern_universe = parse(&value()?)?,
                "--clients" | "--clients-per-node" => config.clients_per_node = parse(&value()?)?,
                "--zipf" => config.zipf_s = parse(&value()?)?,
                "--publish-rate" => config.publish_rate = parse(&value()?)?,
                "--gossip-interval" => {
                    config.gossip_interval = SimTime::from_secs_f64(parse(&value()?)?)
                }
                "--duration" => config.duration = SimTime::from_secs_f64(parse(&value()?)?),
                "--rho" => {
                    config.reconfig_interval = Some(SimTime::from_secs_f64(parse(&value()?)?))
                }
                "--payload-bits" => config.event_payload_bits = parse(&value()?)?,
                "--p-forward" => config.gossip.p_forward = parse(&value()?)?,
                "--p-source" => config.gossip.p_source = parse(&value()?)?,
                "--adaptive" => {
                    config.adaptive_gossip = Some(AdaptiveGossip::around(config.gossip_interval))
                }
                "--churn" => {
                    config.churn_interval = Some(SimTime::from_secs_f64(parse(&value()?)?))
                }
                "--jobs" | "-j" => jobs = Some(parse(&value()?)?),
                "--shards" => match parse(&value()?)? {
                    0 => return Err("--shards needs a positive integer".to_owned()),
                    k => shards = Some(k),
                },
                "--help" | "-h" => {
                    print_usage();
                    std::process::exit(0);
                }
                other => return Err(format!("unknown flag '{other}'")),
            }
            Ok(())
        })();
        if let Err(err) = result {
            eprintln!("error: {err}");
            print_usage();
            return ExitCode::FAILURE;
        }
    }
    if algorithms.is_empty() {
        algorithms.push(Algorithm::combined_pull());
    }
    // Short runs: shrink the default measurement margins so the
    // window stays non-empty.
    if config.warmup + config.cooldown >= config.duration {
        config.warmup = config.duration.mul_f64(0.125);
        config.cooldown = config.duration.mul_f64(0.25);
    }

    let configs: Vec<ScenarioConfig> = algorithms
        .iter()
        .map(|kind| {
            let config = config.with_algorithm(kind.clone());
            config.validate();
            config
        })
        .collect();
    let started = std::time::Instant::now();
    let worker_count = jobs.unwrap_or_else(default_jobs).max(1);
    let results = match shards {
        // The sharded runner is its own deterministic semantics: the
        // result is identical for every shard count, but differs
        // bitwise from the serial runner's (per-node RNG streams
        // instead of shared ones).
        Some(k) => par_map(worker_count, &configs, |c| run_scenario_sharded(c, k)),
        None => par_map(worker_count, &configs, run_scenario),
    };
    let elapsed = started.elapsed().as_secs_f64();
    for (kind, r) in algorithms.iter().zip(results) {
        println!("== {} ==", kind.name());
        println!("  delivery rate (window) {:>10.3}", r.delivery_rate);
        println!("  delivery rate (whole)  {:>10.3}", r.overall_delivery_rate);
        println!("  worst bin rate         {:>10.3}", r.min_bin_rate);
        println!("  events published       {:>10}", r.events_published);
        println!("  receivers per event    {:>10.2}", r.receivers_per_event);
        println!("  event messages         {:>10}", r.event_msgs);
        println!("  gossip messages        {:>10}", r.gossip_msgs);
        println!("  gossip per dispatcher  {:>10.1}", r.gossip_per_dispatcher);
        println!("  gossip / event ratio   {:>10.3}", r.gossip_event_ratio);
        println!("  oob requests / replies {:>6} / {}", r.requests, r.replies);
        println!("  events recovered       {:>10}", r.events_recovered);
        println!(
            "  recovery latency       {:>7.3}s mean / {:.3}s p95",
            r.recovery_latency_mean, r.recovery_latency_p95
        );
        println!("  outstanding losses     {:>10}", r.outstanding_losses);
        // The anti-entropy wire-cost axis: digests, out-of-band
        // requests, and the control total the summary-reconciliation
        // evaluation compares on (replies carry event copies and are
        // excluded from the control figure).
        println!("  gossip wire bits       {:>10}", r.gossip_wire_bits);
        println!("  request wire bits      {:>10}", r.request_wire_bits);
        println!("  reply wire bits        {:>10}", r.reply_wire_bits);
        println!("  recovery control bits  {:>10}", r.recovery_control_bits());
        if config.overlay != eps_overlay::OverlayKind::Tree || r.duplicate_suppressed > 0 {
            println!("  duplicates suppressed  {:>10}", r.duplicate_suppressed);
        }
        if r.lost_evictions > 0 {
            println!("  lost-buffer evictions  {:>10}", r.lost_evictions);
        }
        println!("  reconfigurations       {:>10}", r.reconfigurations);
        if r.churn_events > 0 {
            println!("  subscription swaps     {:>10}", r.churn_events);
            println!("  subscription messages  {:>10}", r.subscription_msgs);
        }
        // Always printed: at --clients 1 these collapse to the
        // single-subscriber numbers, and tier1.sh's aggregation smoke
        // reads both cells to assert sublinear wire growth.
        println!("  client subscriptions   {:>10}", r.client_subscriptions);
        println!("  aggregate patterns     {:>10}", r.aggregate_patterns);
        println!("  routing entries        {:>10}", r.routing_entries);
        println!("  setup subscription msgs{:>10}", r.setup_subscription_msgs);
    }
    eprintln!("total wall time {elapsed:.1}s");
    ExitCode::SUCCESS
}

fn parse<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("cannot parse '{s}'"))
}

fn print_usage() {
    eprintln!(
        "usage: simulate [--algorithm NAME]... [--nodes N] [--eps E] [--beta B]\n\
         \t[--overlay tree|ba|ws] [--max-degree D]\n\
         \t[--pi-max P] [--publish-rate R] [--gossip-interval T] [--duration D]\n\
         \t[--rho RHO] [--churn C] [--p-forward P] [--p-source P] [--seed S] [--adaptive]\n\
         \t[--payload-bits P]\n\
         \t[--patterns PI] [--patterns-per-node P] [--clients C] [--zipf S]\n\
         \t[--jobs N] [--shards K]\n\
         --overlay picks the physical graph builder: tree (acyclic, the paper's\n\
         topology), ba (Barabasi-Albert scale-free), ws (Watts-Strogatz\n\
         small-world); events route on the BFS view, cross links carry\n\
         redundant copies that are counted as 'duplicates suppressed'\n\
         --patterns sets the pattern universe size Pi (content-model density);\n\
         --patterns-per-node is an alias for --pi-max\n\
         --clients attaches C end-user clients to each dispatcher (default 1);\n\
         each client draws its own pi-max subscriptions and the dispatcher\n\
         routes on the aggregated (covering/merged) filter\n\
         --zipf skews pattern popularity with exponent S (0 = uniform)\n\
         --shards K runs the scenario partitioned across K worker threads\n\
         (identical results for every K; built for 10^5-10^6 nodes)\n\
         algorithms (case-insensitive, aliases accepted): {}",
        Algorithm::all()
            .iter()
            .map(|a| a.name().to_owned())
            .collect::<Vec<_>>()
            .join(", ")
    );
}
