//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro all [--quick|--full] [--seed S] [--out DIR] [--jobs N] [--shards K]
//! repro fig3a fig9b ...      # specific figures
//! repro list                 # available experiment ids
//! ```
//!
//! Independent scenario cells run on `--jobs` worker threads (default:
//! all cores); the output is byte-identical for every job count.

use std::process::ExitCode;

use eps_harness::experiments::{run_experiment, ExperimentOptions, ALL_EXPERIMENTS};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = ExperimentOptions::default();
    let mut ids: Vec<String> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => opts.quick = true,
            "--full" => opts.quick = false,
            "--seed" => match iter.next().and_then(|s| s.parse().ok()) {
                Some(seed) => opts.seed = seed,
                None => return usage("--seed needs an integer"),
            },
            "--out" => match iter.next() {
                Some(dir) => opts.out_dir = dir.into(),
                None => return usage("--out needs a directory"),
            },
            "--jobs" | "-j" => match iter.next().and_then(|s| s.parse().ok()) {
                Some(jobs) => opts.jobs = Some(jobs),
                None => return usage("--jobs needs an integer"),
            },
            "--shards" => match iter.next().and_then(|s| s.parse().ok()) {
                Some(0) | None => return usage("--shards needs a positive integer"),
                Some(shards) => opts.shards = Some(shards),
            },
            "list" => {
                for id in ALL_EXPERIMENTS {
                    println!("{id}");
                }
                return ExitCode::SUCCESS;
            }
            "all" => ids.extend(ALL_EXPERIMENTS.iter().map(|s| s.to_string())),
            "--help" | "-h" => return usage(""),
            other if other.starts_with('-') => return usage(&format!("unknown flag '{other}'")),
            other => ids.push(other.to_owned()),
        }
    }
    if ids.is_empty() {
        return usage("no experiment selected");
    }
    ids.dedup();

    let mode = if opts.quick {
        "quick"
    } else {
        "full (paper-scale)"
    };
    eprintln!(
        "running {} experiment(s) in {mode} mode, seed {}, {} worker(s), output under {}",
        ids.len(),
        opts.seed,
        opts.effective_jobs(),
        opts.out_dir.display()
    );
    for id in &ids {
        let started = std::time::Instant::now();
        eprintln!("=== {id} ===");
        match run_experiment(id, &opts) {
            Ok(output) => {
                println!("# {}\n", output.title);
                println!("{}", output.text);
                eprintln!(
                    "{id} done in {:.1}s; {} CSV file(s) under {}",
                    started.elapsed().as_secs_f64(),
                    output.tables.len(),
                    opts.out_dir.join(id).display()
                );
            }
            Err(err) => {
                eprintln!("{id} failed: {err}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn usage(problem: &str) -> ExitCode {
    if !problem.is_empty() {
        eprintln!("error: {problem}");
    }
    eprintln!(
        "usage: repro <all | fig-id ...> [--quick|--full] [--seed S] [--out DIR] [--jobs N] [--shards K]\n\
         --shards K routes every cell through the sharded runner (results are\n\
         identical for every K, but differ bitwise from the serial runner)\n\
         experiments: {}",
        ALL_EXPERIMENTS.join(", ")
    );
    if problem.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
