//! The scenario runner: orchestration only. It owns the event queue,
//! the overlay topology, the transport, and the population of
//! [`SimNode`] actors, and moves envelopes between them; everything a
//! single dispatcher knows lives inside its node.

use eps_gossip::{Channel, Envelope};
use eps_metrics::{DeliveryTracker, MessageCounters};
use eps_overlay::{
    plan_reconnection, LinkSpec, NetTransport, NodeId, RoutingView, Topology, Transport,
};
use eps_pubsub::{rebuild_subscription_routes, ClientId, PatternId, PatternSpace, PubSubMessage};
use eps_sim::{Engine, Rng, RngFactory, SimTime};

use crate::config::ScenarioConfig;
use crate::node::{routing_stats, NodeCtx, Outgoing, SimNode};
use crate::population::{build_population, cross_targets_for, Population};
use crate::result::{assemble, ScenarioResult};
use crate::trace::{ScenarioTrace, TraceRecord};

/// Runs one scenario to completion.
///
/// Deterministic: the same configuration (including seed) produces the
/// same result, bit for bit.
///
/// # Examples
///
/// ```
/// use eps_harness::{run_scenario, ScenarioConfig};
/// use eps_gossip::Algorithm;
/// use eps_sim::SimTime;
///
/// let config = ScenarioConfig {
///     nodes: 20,
///     duration: SimTime::from_secs(3),
///     warmup: SimTime::from_millis(500),
///     cooldown: SimTime::from_millis(500),
///     algorithm: Algorithm::push(),
///     ..ScenarioConfig::default()
/// };
/// let result = run_scenario(&config);
/// assert!(result.delivery_rate > 0.0 && result.delivery_rate <= 1.0);
/// ```
pub fn run_scenario(config: &ScenarioConfig) -> ScenarioResult {
    config.validate();
    Scenario::new(config).run().0
}

/// Like [`run_scenario`], but also collects a bounded
/// [`ScenarioTrace`] of publishes, deliveries, detections, and
/// reconfigurations — for debugging and white-box tests. Tracing does
/// not perturb the simulation: the traced run is identical to the
/// untraced one.
pub fn run_scenario_traced(
    config: &ScenarioConfig,
    trace_capacity: usize,
) -> (ScenarioResult, ScenarioTrace) {
    config.validate();
    let mut scenario = Scenario::new(config);
    scenario.trace = Some(ScenarioTrace::new(trace_capacity));
    let (result, trace) = scenario.run();
    (result, trace.expect("trace was installed"))
}

enum SimEvent {
    /// An envelope arriving at `to` (already past the transport).
    Deliver {
        from: NodeId,
        to: NodeId,
        env: Envelope,
    },
    PublishTick(NodeId),
    GossipTick(NodeId),
    ChurnTick,
    Break,
    Repair,
}

/// The orchestrator. Per-node state lives in the [`SimNode`]s; the
/// scenario only keeps what is genuinely shared: the queue, the
/// topology and transport, the metrics sinks, and the run-wide RNG
/// streams.
struct Scenario {
    config: ScenarioConfig,
    engine: Engine<SimEvent>,
    /// The physical overlay graph: the link model, breakage, and
    /// repair act here, and gossip partners are drawn from it.
    topology: Topology,
    /// The routing view: the spanning tree events and subscriptions
    /// travel on. On tree overlays the physical topology itself is
    /// used instead (`tree_overlay`), so view and graph stay one
    /// object through break/repair exactly as before the split.
    view: RoutingView,
    /// `true` when the configured overlay is acyclic, i.e. the view
    /// is the physical graph itself.
    tree_overlay: bool,
    transport: Box<dyn Transport>,
    nodes: Vec<SimNode>,
    space: PatternSpace,
    subscribers_of: Vec<Vec<(NodeId, ClientId)>>,
    setup_subscription_msgs: u64,
    tracker: DeliveryTracker,
    counters: MessageCounters,
    gossip_rng: Rng,
    reconfig_rng: Rng,
    churn_rng: Rng,
    reconfigurations: u64,
    churn_events: u64,
    trace: Option<ScenarioTrace>,
}

impl Scenario {
    fn new(config: &ScenarioConfig) -> Self {
        let factory = RngFactory::new(config.seed);
        // The population (topology, subscriptions, node actors) is
        // assembled by the shared builder so the real-socket runtime
        // boots an identical one for the same seed.
        let Population {
            topology,
            view,
            space,
            nodes,
            subscriptions: _,
            client_subscriptions: _,
            subscribers_of,
            setup_subscription_msgs,
        } = build_population(config);

        let transport = Box::new(NetTransport::new(
            LinkSpec {
                bandwidth_bps: 10_000_000,
                propagation: SimTime::from_micros(50),
                loss_rate: config.link_error_rate,
            },
            config.out_of_band,
            factory.stream("loss"),
            factory.stream("oob"),
        ));

        Scenario {
            engine: Engine::new(),
            topology,
            view,
            tree_overlay: config.overlay.is_tree(),
            transport,
            nodes,
            space,
            subscribers_of,
            setup_subscription_msgs,
            tracker: if config.churn_interval.is_some() {
                // Churn makes "subscribed after publish, delivered on
                // arrival" legitimate; don't treat it as a bug.
                DeliveryTracker::new_tolerant()
            } else {
                DeliveryTracker::new()
            },
            counters: MessageCounters::new(config.nodes),
            gossip_rng: factory.stream("gossip"),
            reconfig_rng: factory.stream("reconfig"),
            churn_rng: factory.stream("churn"),
            reconfigurations: 0,
            churn_events: 0,
            trace: None,
            config: config.clone(),
        }
    }

    fn record(&mut self, record: TraceRecord) {
        if let Some(trace) = &mut self.trace {
            trace.push(record);
        }
    }

    fn run(mut self) -> (ScenarioResult, Option<ScenarioTrace>) {
        // Seed the periodic processes.
        let nodes: Vec<NodeId> = self.topology.nodes().collect();
        for node in nodes {
            if self.config.publish_rate > 0.0 {
                let delay = self.nodes[node.index()].next_publish_delay(self.config.publish_rate);
                self.engine.schedule(delay, SimEvent::PublishTick(node));
            }
            // Stagger gossip phases uniformly over one interval.
            let phase = self
                .config
                .gossip_interval
                .mul_f64(self.gossip_rng.random_range(0.0..1.0));
            self.engine.schedule(phase, SimEvent::GossipTick(node));
        }
        if let Some(rho) = self.config.reconfig_interval {
            if rho < self.config.duration {
                self.engine.schedule(rho, SimEvent::Break);
            }
        }
        if let Some(churn) = self.config.churn_interval {
            if churn < self.config.duration {
                self.engine.schedule(churn, SimEvent::ChurnTick);
            }
        }

        // Main loop: ticks stop renewing at `duration`; afterwards the
        // queue drains so in-flight recoveries complete.
        while let Some((_, event)) = self.engine.pop() {
            self.handle(event);
        }
        let outstanding: u64 = self
            .nodes
            .iter()
            .map(|n| n.outstanding_losses() as u64)
            .sum();
        let evictions: u64 = self.nodes.iter().map(|n| n.lost_evictions()).sum();
        self.counters.count_lost_evictions(evictions);
        let result = assemble(
            &self.config,
            &self.tracker,
            &self.counters,
            outstanding,
            self.reconfigurations,
            self.churn_events,
            routing_stats(&self.nodes, self.setup_subscription_msgs),
        );
        (result, self.trace)
    }

    fn handle(&mut self, event: SimEvent) {
        match event {
            SimEvent::Deliver { from, to, env } => self.handle_deliver(from, to, env),
            SimEvent::PublishTick(node) => self.handle_publish_tick(node),
            SimEvent::GossipTick(node) => self.handle_gossip_tick(node),
            SimEvent::ChurnTick => self.handle_churn(),
            SimEvent::Break => self.handle_break(),
            SimEvent::Repair => self.handle_repair(),
        }
    }

    fn handle_deliver(&mut self, from: NodeId, to: NodeId, env: Envelope) {
        let mut ctx = NodeCtx {
            now: self.engine.now(),
            // Borrowed straight from the topology / view (disjoint
            // fields): no per-message Vec allocation on the delivery
            // hot path.
            neighbors: if self.tree_overlay {
                self.topology.neighbors(to)
            } else {
                self.view.neighbors(to)
            },
            graph_neighbors: self.topology.neighbors(to),
            space: &self.space,
            subscribers_of: &self.subscribers_of,
            gossip_rng: &mut self.gossip_rng,
            tracker: &mut self.tracker,
            counters: &mut self.counters,
            trace: &mut self.trace,
        };
        let out = self.nodes[to.index()].handle(from, env, &mut ctx);
        self.send(to, out);
    }

    fn handle_publish_tick(&mut self, node: NodeId) {
        // The workload ends at `duration`. Renewals are gated below,
        // but at very low publish rates a node's *first* tick can be
        // scheduled past the end — it must not fire either, or the run
        // would stretch far beyond its nominal length.
        if self.engine.now() >= self.config.duration {
            return;
        }
        let mut ctx = NodeCtx {
            now: self.engine.now(),
            // Borrowed, not copied — see `handle_deliver`.
            neighbors: if self.tree_overlay {
                self.topology.neighbors(node)
            } else {
                self.view.neighbors(node)
            },
            graph_neighbors: self.topology.neighbors(node),
            space: &self.space,
            subscribers_of: &self.subscribers_of,
            gossip_rng: &mut self.gossip_rng,
            tracker: &mut self.tracker,
            counters: &mut self.counters,
            trace: &mut self.trace,
        };
        let (out, delay) =
            self.nodes[node.index()].tick_publish(self.config.publish_rate, &mut ctx);
        self.send(node, out);
        // Renew the process.
        if self.engine.now() + delay < self.config.duration {
            self.engine.schedule(delay, SimEvent::PublishTick(node));
        }
    }

    fn handle_gossip_tick(&mut self, node: NodeId) {
        let mut ctx = NodeCtx {
            now: self.engine.now(),
            // Borrowed, not copied — see `handle_deliver`.
            neighbors: if self.tree_overlay {
                self.topology.neighbors(node)
            } else {
                self.view.neighbors(node)
            },
            graph_neighbors: self.topology.neighbors(node),
            space: &self.space,
            subscribers_of: &self.subscribers_of,
            gossip_rng: &mut self.gossip_rng,
            tracker: &mut self.tracker,
            counters: &mut self.counters,
            trace: &mut self.trace,
        };
        let (out, next) = self.nodes[node.index()].tick_gossip(
            self.config.gossip_interval,
            self.config.adaptive_gossip,
            &mut ctx,
        );
        self.send(node, out);
        if self.engine.now() + next < self.config.duration {
            self.engine.schedule(next, SimEvent::GossipTick(node));
        }
    }

    /// Subscription churn: a random dispatcher swaps one subscription
    /// for a pattern it does not hold, and the (un)subscriptions
    /// propagate through the overlay as protocol messages.
    fn handle_churn(&mut self) {
        if self.engine.now() < self.config.duration {
            let node = NodeId::new(self.churn_rng.random_range(0..self.config.nodes as u32));
            // With one client per node the client pick is determined,
            // so no draw is consumed — the churn stream stays
            // byte-compatible with the pre-client-layer runner.
            let client = if self.config.clients_per_node > 1 {
                ClientId::new(
                    self.churn_rng
                        .random_range(0..self.config.clients_per_node as u32),
                )
            } else {
                ClientId::new(0)
            };
            let subs = self.nodes[node.index()].client_patterns(client);
            if !subs.is_empty() {
                let old = subs[self.churn_rng.random_range(0..subs.len())];
                let candidates: Vec<PatternId> = self
                    .space
                    .patterns()
                    .filter(|p| !subs.contains(p))
                    .collect();
                if let Some(&new) = self.churn_rng.choose(&candidates) {
                    self.apply_churn(node, client, old, new);
                }
            }
            if let Some(churn) = self.config.churn_interval {
                if self.engine.now() + churn < self.config.duration {
                    self.engine.schedule(churn, SimEvent::ChurnTick);
                }
            }
        }
    }

    fn apply_churn(&mut self, node: NodeId, client: ClientId, old: PatternId, new: PatternId) {
        self.churn_events += 1;
        // (Un)subscriptions propagate on the routing view, like every
        // other piece of protocol traffic.
        let neighbors = if self.tree_overlay {
            self.topology.neighbors(node).to_vec()
        } else {
            self.view.neighbors(node).to_vec()
        };
        let (out, aggregate_changed) =
            self.nodes[node.index()].apply_churn(client, old, new, &neighbors);
        self.send(node, out);
        if aggregate_changed && !self.tree_overlay {
            // Cross-link partners keep a copy of this node's interest
            // to filter their replication; refresh it, charging one
            // subscription message per cross link for the notice. A
            // client swap absorbed by the aggregate changes nothing at
            // broker level, so no notice goes out.
            let interest = self.nodes[node.index()].subscriptions().to_vec();
            for chord in self.view.cross_neighbors(&self.topology, node) {
                self.counters.count_subscription(node);
                self.nodes[chord.index()].update_cross_partner(node, interest.clone());
            }
        }
        // Keep the metrics' view of intended recipients current, at
        // client granularity.
        self.subscribers_of[old.index()].retain(|&s| s != (node, client));
        self.subscribers_of[new.index()].push((node, client));
        self.subscribers_of[new.index()].sort_unstable();
    }

    fn handle_break(&mut self) {
        if self.engine.now() >= self.config.duration {
            // The workload is over; the queue is only draining
            // in-flight recoveries. Do not disturb them.
            return;
        }
        let topology = &self.topology;
        let reconfig_rng = &mut self.reconfig_rng;
        if let Some(link) = reconfig_rng.choose_iter(topology.links()) {
            self.topology.remove_link(link).expect("chosen link exists");
            self.transport.reset_link(link.a(), link.b());
            self.reconfigurations += 1;
            self.record(TraceRecord::LinkBroken {
                at: self.engine.now(),
                link,
            });
            self.engine
                .schedule(self.config.repair_delay, SimEvent::Repair);
        }
        if let Some(rho) = self.config.reconfig_interval {
            if self.engine.now() + rho < self.config.duration {
                self.engine.schedule(rho, SimEvent::Break);
            }
        }
    }

    fn handle_repair(&mut self) {
        let reconnected = plan_reconnection(&self.topology, &mut self.reconfig_rng);
        if let Some((x, y)) = reconnected {
            self.topology
                .add_link(x, y)
                .expect("reconnection endpoints have spare degree");
            self.record(TraceRecord::LinkAdded {
                at: self.engine.now(),
                a: x,
                b: y,
            });
        }
        if self.tree_overlay {
            if reconnected.is_some() {
                // The reconfiguration protocol of [7] has completed:
                // subscription routes are consistent with the new
                // overlay.
                rebuild_subscription_routes(&mut self.nodes, &self.topology);
            }
        } else {
            // Cyclic overlay: even when the graph stayed connected
            // (no replacement link — the overlay thins gradually),
            // the view may have been using the vanished link.
            // Re-derive it, rebuild routes, and recompute each
            // node's cross targets against the fresh tree/graph
            // split.
            self.view = RoutingView::derive(&self.topology);
            rebuild_subscription_routes(&mut self.nodes, self.view.tree());
            let interests: Vec<Vec<PatternId>> = self
                .nodes
                .iter()
                .map(|n| n.subscriptions().to_vec())
                .collect();
            for i in 0..self.nodes.len() {
                let id = NodeId::new(i as u32);
                let targets = cross_targets_for(id, &self.topology, &self.view, &interests);
                self.nodes[i].set_cross_targets(targets);
            }
        }
    }

    /// Puts a node's outgoing messages on the wire: counts them,
    /// routes tree traffic over existing overlay links only, asks the
    /// transport when (and whether) each arrives, and schedules the
    /// delivery.
    fn send(&mut self, from: NodeId, out: Vec<Outgoing>) {
        for Outgoing { to, env } in out {
            match env.channel() {
                Channel::Tree => {
                    let bits = env.wire_bits(self.config.event_payload_bits);
                    match &env {
                        Envelope::PubSub(PubSubMessage::Event(_)) => {
                            self.counters.count_event(from)
                        }
                        Envelope::PubSub(_) => self.counters.count_subscription(from),
                        // Gossip *messages* are counted at the action
                        // level; their wire *bits* are charged here,
                        // where the size is known — like the message
                        // counts, before link state is consulted (a
                        // digest lost to a broken link was still sent).
                        Envelope::Gossip(_) => self.counters.count_gossip_bits(bits),
                        _ => {}
                    }
                    if !self.topology.has_link(from, to) {
                        // Broken link or stale route: the message is lost.
                        continue;
                    }
                    if let Some(at) = self.transport.send_link(from, to, bits, self.engine.now()) {
                        self.engine
                            .schedule_at(at, SimEvent::Deliver { from, to, env });
                    }
                }
                Channel::Cross => {
                    // A cross-link event copy: same link model as the
                    // tree (the chord is a physical link like any
                    // other), counted as an event message.
                    self.counters.count_event(from);
                    if !self.topology.has_link(from, to) {
                        // Broken chord or stale cross target: lost.
                        continue;
                    }
                    let bits = env.wire_bits(self.config.event_payload_bits);
                    if let Some(at) = self.transport.send_link(from, to, bits, self.engine.now()) {
                        self.engine
                            .schedule_at(at, SimEvent::Deliver { from, to, env });
                    }
                }
                Channel::OutOfBand => {
                    let bits = env.wire_bits(self.config.event_payload_bits);
                    match &env {
                        Envelope::Request(_) | Envelope::RangeRequest { .. } => {
                            self.counters.count_request_bits(bits)
                        }
                        Envelope::Reply(_) => self.counters.count_reply_bits(bits),
                        _ => {}
                    }
                    if let Some(at) = self.transport.send_oob(from, to, bits, self.engine.now()) {
                        self.engine
                            .schedule_at(at, SimEvent::Deliver { from, to, env });
                    }
                }
            }
        }
    }
}
