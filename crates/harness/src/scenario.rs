//! The scenario runner: wires the simulation kernel, the overlay, the
//! dispatchers, a recovery algorithm, and the metrics into one
//! deterministic run.

use eps_gossip::{GossipAction, GossipMessage, RecoveryAlgorithm};
use eps_metrics::{DeliveryTracker, MessageCounters};
use eps_overlay::{
    plan_reconnection, LinkSpec, LinkTable, NodeId, Topology, Transmission,
};
use eps_pubsub::{
    flood_subscriptions, install_local_subscriptions, Dispatcher, DispatcherConfig, Event,
    EventId, PatternId, PatternSpace, PubSubMessage, rebuild_subscription_routes,
};
use eps_sim::{Engine, Rng, RngFactory, SimTime};

use crate::config::ScenarioConfig;
use crate::trace::{ScenarioTrace, TraceRecord};

/// What one simulation run measured. All delivery rates are in
/// `[0, 1]`; the headline [`ScenarioResult::delivery_rate`] is
/// restricted to events published inside the measurement window.
#[derive(Clone, Debug)]
pub struct ScenarioResult {
    /// Delivery rate over the measurement window.
    pub delivery_rate: f64,
    /// Delivery rate over the full run.
    pub overall_delivery_rate: f64,
    /// Worst per-bin delivery rate inside the measurement window (the
    /// paper's "negative spikes").
    pub min_bin_rate: f64,
    /// Delivery-rate time series: (bin start in seconds, rate).
    pub series: Vec<(f64, f64)>,
    /// Mean intended receivers per published event (Figure 7).
    pub receivers_per_event: f64,
    /// Events published during the run.
    pub events_published: u64,
    /// Event messages sent on overlay links.
    pub event_msgs: u64,
    /// Gossip messages sent on overlay links.
    pub gossip_msgs: u64,
    /// Mean gossip messages sent per dispatcher.
    pub gossip_per_dispatcher: f64,
    /// Gossip messages divided by event messages, system-wide.
    pub gossip_event_ratio: f64,
    /// Out-of-band retransmission requests sent.
    pub requests: u64,
    /// Out-of-band replies sent.
    pub replies: u64,
    /// Event copies carried by replies.
    pub events_retransmitted: u64,
    /// Deliveries that happened through recovery (the event was new to
    /// the receiver when the reply arrived).
    pub events_recovered: u64,
    /// Mean recovery latency in seconds (publish → recovered
    /// delivery), or 0.0 when nothing was recovered.
    pub recovery_latency_mean: f64,
    /// 95th-percentile recovery latency in seconds, or 0.0.
    pub recovery_latency_p95: f64,
    /// `Lost` entries still outstanding at the end, summed over nodes.
    pub outstanding_losses: u64,
    /// Topological reconfigurations performed.
    pub reconfigurations: u64,
    /// Subscription swaps performed (churn).
    pub churn_events: u64,
    /// Subscription/unsubscription messages sent on overlay links.
    pub subscription_msgs: u64,
    /// Deliveries to dispatchers that subscribed after the event was
    /// published (possible only under churn; not counted in rates).
    pub unexpected_deliveries: u64,
}

/// Runs one scenario to completion.
///
/// Deterministic: the same configuration (including seed) produces the
/// same result, bit for bit.
///
/// # Examples
///
/// ```
/// use eps_harness::{run_scenario, ScenarioConfig};
/// use eps_gossip::AlgorithmKind;
/// use eps_sim::SimTime;
///
/// let config = ScenarioConfig {
///     nodes: 20,
///     duration: SimTime::from_secs(3),
///     warmup: SimTime::from_millis(500),
///     cooldown: SimTime::from_millis(500),
///     algorithm: AlgorithmKind::Push,
///     ..ScenarioConfig::default()
/// };
/// let result = run_scenario(&config);
/// assert!(result.delivery_rate > 0.0 && result.delivery_rate <= 1.0);
/// ```
pub fn run_scenario(config: &ScenarioConfig) -> ScenarioResult {
    config.validate();
    Scenario::new(config).run().0
}

/// Like [`run_scenario`], but also collects a bounded
/// [`ScenarioTrace`] of publishes, deliveries, detections, and
/// reconfigurations — for debugging and white-box tests. Tracing does
/// not perturb the simulation: the traced run is identical to the
/// untraced one.
pub fn run_scenario_traced(
    config: &ScenarioConfig,
    trace_capacity: usize,
) -> (ScenarioResult, ScenarioTrace) {
    config.validate();
    let mut scenario = Scenario::new(config);
    scenario.trace = Some(ScenarioTrace::new(trace_capacity));
    let (result, trace) = scenario.run();
    (result, trace.expect("trace was installed"))
}

enum LinkPayload {
    PubSub(PubSubMessage),
    Gossip(GossipMessage),
}

impl LinkPayload {
    fn wire_bits(&self, payload_bits: u64) -> u64 {
        match self {
            LinkPayload::PubSub(m) => m.wire_bits(payload_bits),
            LinkPayload::Gossip(m) => m.wire_bits(payload_bits),
        }
    }
}

enum OobPayload {
    Request(Vec<EventId>),
    Reply(Vec<Event>),
}

enum SimEvent {
    Link {
        from: NodeId,
        to: NodeId,
        payload: LinkPayload,
    },
    Oob {
        from: NodeId,
        to: NodeId,
        payload: OobPayload,
    },
    PublishTick(NodeId),
    GossipTick(NodeId),
    ChurnTick,
    Break,
    Repair,
}

struct Scenario {
    config: ScenarioConfig,
    engine: Engine<SimEvent>,
    topology: Topology,
    link_spec: LinkSpec,
    links: LinkTable,
    dispatchers: Vec<Dispatcher>,
    algorithms: Vec<Box<dyn RecoveryAlgorithm>>,
    space: PatternSpace,
    subscriptions: Vec<Vec<PatternId>>,
    subscribers_of: Vec<Vec<NodeId>>,
    tracker: DeliveryTracker,
    counters: MessageCounters,
    workload_rngs: Vec<Rng>,
    gossip_delays: Vec<SimTime>,
    loss_rng: Rng,
    oob_rng: Rng,
    gossip_rng: Rng,
    reconfig_rng: Rng,
    churn_rng: Rng,
    reconfigurations: u64,
    churn_events: u64,
    trace: Option<ScenarioTrace>,
}

impl Scenario {
    fn new(config: &ScenarioConfig) -> Self {
        let factory = RngFactory::new(config.seed);
        let topology = Topology::random_tree(
            config.nodes,
            config.max_degree,
            &mut factory.stream("topology"),
        );
        let space = PatternSpace::new(config.pattern_universe, config.max_patterns_per_event);

        // Paper, Section IV-A: "each dispatcher caches only events for
        // which it is either the publisher or a subscriber" — the
        // publisher side of the buffering policy applies to every
        // algorithm, not just publisher-based pull (which *requires*
        // it). Route recording is only paid for when needed.
        let dispatcher_config = DispatcherConfig {
            cache_capacity: config.buffer_size,
            cache_own_published: true,
            record_routes: config.algorithm.needs_route_recording(),
            eviction: config.eviction,
        };
        let mut dispatchers: Vec<Dispatcher> = topology
            .nodes()
            .map(|id| Dispatcher::new(id, dispatcher_config))
            .collect();

        // Stable subscriptions, flooded to quiescence before the
        // workload starts (the paper's setting).
        let mut subs_rng = factory.stream("subscriptions");
        let subscriptions: Vec<Vec<PatternId>> = (0..config.nodes)
            .map(|_| space.random_subscriptions(config.pi_max, &mut subs_rng))
            .collect();
        install_local_subscriptions(&mut dispatchers, &subscriptions);
        flood_subscriptions(&mut dispatchers, &topology);

        let mut subscribers_of: Vec<Vec<NodeId>> =
            vec![Vec::new(); config.pattern_universe as usize];
        for (i, subs) in subscriptions.iter().enumerate() {
            for &p in subs {
                subscribers_of[p.index()].push(NodeId::new(i as u32));
            }
        }

        let algorithms: Vec<Box<dyn RecoveryAlgorithm>> = (0..config.nodes)
            .map(|_| config.algorithm.build(config.gossip))
            .collect();

        let workload_rngs: Vec<Rng> = (0..config.nodes)
            .map(|i| factory.indexed_stream("workload", i as u64))
            .collect();

        let gossip_delays = vec![config.gossip_interval; config.nodes];

        Scenario {
            engine: Engine::new(),
            link_spec: LinkSpec {
                bandwidth_bps: 10_000_000,
                propagation: SimTime::from_micros(50),
                loss_rate: config.link_error_rate,
            },
            links: LinkTable::new(),
            topology,
            dispatchers,
            algorithms,
            space,
            subscriptions,
            subscribers_of,
            tracker: if config.churn_interval.is_some() {
                // Churn makes "subscribed after publish, delivered on
                // arrival" legitimate; don't treat it as a bug.
                DeliveryTracker::new_tolerant()
            } else {
                DeliveryTracker::new()
            },
            counters: MessageCounters::new(config.nodes),
            workload_rngs,
            gossip_delays,
            loss_rng: factory.stream("loss"),
            oob_rng: factory.stream("oob"),
            gossip_rng: factory.stream("gossip"),
            reconfig_rng: factory.stream("reconfig"),
            churn_rng: factory.stream("churn"),
            reconfigurations: 0,
            churn_events: 0,
            trace: None,
            config: config.clone(),
        }
    }

    fn record(&mut self, record: TraceRecord) {
        if let Some(trace) = &mut self.trace {
            trace.push(record);
        }
    }

    fn run(mut self) -> (ScenarioResult, Option<ScenarioTrace>) {
        // Seed the periodic processes.
        let nodes: Vec<NodeId> = self.topology.nodes().collect();
        for node in nodes {
            if self.config.publish_rate > 0.0 {
                let delay = self.next_publish_delay(node);
                self.engine.schedule(delay, SimEvent::PublishTick(node));
            }
            // Stagger gossip phases uniformly over one interval.
            let phase = self
                .config
                .gossip_interval
                .mul_f64(self.gossip_rng.random_range(0.0..1.0));
            self.engine.schedule(phase, SimEvent::GossipTick(node));
        }
        if let Some(rho) = self.config.reconfig_interval {
            if rho < self.config.duration {
                self.engine.schedule(rho, SimEvent::Break);
            }
        }
        if let Some(churn) = self.config.churn_interval {
            if churn < self.config.duration {
                self.engine.schedule(churn, SimEvent::ChurnTick);
            }
        }

        // Main loop: ticks stop renewing at `duration`; afterwards the
        // queue drains so in-flight recoveries complete.
        while let Some((_, event)) = self.engine.pop() {
            self.handle(event);
        }
        self.finish()
    }

    fn handle(&mut self, event: SimEvent) {
        match event {
            SimEvent::PublishTick(node) => self.handle_publish_tick(node),
            SimEvent::GossipTick(node) => self.handle_gossip_tick(node),
            SimEvent::Link { from, to, payload } => self.handle_link(from, to, payload),
            SimEvent::Oob { from, to, payload } => self.handle_oob(from, to, payload),
            SimEvent::ChurnTick => self.handle_churn(),
            SimEvent::Break => self.handle_break(),
            SimEvent::Repair => self.handle_repair(),
        }
    }

    fn next_publish_delay(&mut self, node: NodeId) -> SimTime {
        // Poisson process: exponential inter-arrival times.
        let u: f64 = self.workload_rngs[node.index()].random_range(0.0..1.0);
        SimTime::from_secs_f64(-(1.0 - u).ln() / self.config.publish_rate)
    }

    fn handle_publish_tick(&mut self, node: NodeId) {
        let content = self.space.random_content(&mut self.workload_rngs[node.index()]);
        let expected = self.count_subscribers(&content);
        let (event, receipt) = self.dispatchers[node.index()].publish(content);
        self.tracker
            .published(event.id(), self.engine.now(), expected);
        self.record(TraceRecord::Publish {
            at: self.engine.now(),
            node,
            event: event.id(),
            expected,
        });
        if receipt.delivered {
            self.tracker.delivered(event.id(), node);
            self.record(TraceRecord::Deliver {
                at: self.engine.now(),
                node,
                event: event.id(),
                recovered: false,
            });
        }
        for fwd in receipt.forwards {
            self.send_link(node, fwd.to, LinkPayload::PubSub(fwd.msg));
        }
        // Renew the process.
        let delay = self.next_publish_delay(node);
        if self.engine.now() + delay < self.config.duration {
            self.engine.schedule(delay, SimEvent::PublishTick(node));
        }
    }

    fn count_subscribers(&self, content: &[PatternId]) -> u32 {
        let mut nodes: Vec<NodeId> = content
            .iter()
            .flat_map(|p| self.subscribers_of[p.index()].iter().copied())
            .collect();
        nodes.sort();
        nodes.dedup();
        nodes.len() as u32
    }

    fn handle_gossip_tick(&mut self, node: NodeId) {
        let neighbors = self.topology.neighbors(node).to_vec();
        let actions = self.algorithms[node.index()].on_round(
            &self.dispatchers[node.index()],
            &neighbors,
            &mut self.gossip_rng,
        );
        // Adaptive interval (extension, paper Sec. IV-E): while the
        // strategy sees no evidence of recovery work (empty Lost
        // buffer for pull, no incoming requests for push), the timer
        // backs off exponentially; any sign of work snaps it back.
        let next = match &self.config.adaptive_gossip {
            None => self.config.gossip_interval,
            Some(adaptive) => {
                let current = self.gossip_delays[node.index()];
                let next = if self.algorithms[node.index()].is_idle() {
                    current.mul_f64(adaptive.backoff).min(adaptive.max_interval)
                } else {
                    adaptive.min_interval
                };
                self.gossip_delays[node.index()] = next;
                next
            }
        };
        self.apply_actions(node, actions);
        if self.engine.now() + next < self.config.duration {
            self.engine.schedule(next, SimEvent::GossipTick(node));
        }
    }

    fn handle_link(&mut self, from: NodeId, to: NodeId, payload: LinkPayload) {
        match payload {
            LinkPayload::PubSub(PubSubMessage::Event(event)) => {
                self.deliver_event(to, from, event);
            }
            LinkPayload::PubSub(PubSubMessage::Subscribe(p)) => {
                let neighbors = self.topology.neighbors(to).to_vec();
                let forwards =
                    self.dispatchers[to.index()].on_subscribe(p, from, &neighbors);
                for fwd in forwards {
                    self.send_link(to, fwd.to, LinkPayload::PubSub(fwd.msg));
                }
            }
            LinkPayload::PubSub(PubSubMessage::Unsubscribe(p)) => {
                let neighbors = self.topology.neighbors(to).to_vec();
                let forwards =
                    self.dispatchers[to.index()].on_unsubscribe(p, from, &neighbors);
                for fwd in forwards {
                    self.send_link(to, fwd.to, LinkPayload::PubSub(fwd.msg));
                }
            }
            LinkPayload::Gossip(msg) => {
                let neighbors = self.topology.neighbors(to).to_vec();
                let actions = self.algorithms[to.index()].on_gossip(
                    &self.dispatchers[to.index()],
                    from,
                    msg,
                    &neighbors,
                    &mut self.gossip_rng,
                );
                self.apply_actions(to, actions);
            }
        }
    }

    fn deliver_event(&mut self, to: NodeId, from: NodeId, event: Event) {
        let receipt = self.dispatchers[to.index()].on_event(event.clone(), Some(from));
        if receipt.duplicate {
            return;
        }
        if receipt.delivered {
            self.tracker.delivered(event.id(), to);
            self.record(TraceRecord::Deliver {
                at: self.engine.now(),
                node: to,
                event: event.id(),
                recovered: false,
            });
        }
        let algo = &mut self.algorithms[to.index()];
        algo.on_event_received(&event);
        if !receipt.losses.is_empty() {
            algo.on_losses(&receipt.losses);
            self.record(TraceRecord::LossDetected {
                at: self.engine.now(),
                node: to,
                count: receipt.losses.len() as u32,
            });
        }
        for fwd in receipt.forwards {
            self.send_link(to, fwd.to, LinkPayload::PubSub(fwd.msg));
        }
    }

    fn handle_oob(&mut self, from: NodeId, to: NodeId, payload: OobPayload) {
        match payload {
            OobPayload::Request(ids) => {
                let actions =
                    self.algorithms[to.index()].on_request(&self.dispatchers[to.index()], from, &ids);
                self.apply_actions(to, actions);
            }
            OobPayload::Reply(events) => {
                for event in events {
                    let receipt = self.dispatchers[to.index()].on_recovered_event(event.clone());
                    if receipt.duplicate {
                        continue;
                    }
                    if receipt.delivered {
                        self.tracker.recovered(event.id(), to, self.engine.now());
                        self.counters.count_recovered();
                        self.record(TraceRecord::Deliver {
                            at: self.engine.now(),
                            node: to,
                            event: event.id(),
                            recovered: true,
                        });
                    }
                    let algo = &mut self.algorithms[to.index()];
                    algo.on_event_received(&event);
                    if !receipt.losses.is_empty() {
                        algo.on_losses(&receipt.losses);
                    }
                }
            }
        }
    }

    /// Subscription churn: a random dispatcher swaps one subscription
    /// for a pattern it does not hold, and the (un)subscriptions
    /// propagate through the overlay as protocol messages.
    fn handle_churn(&mut self) {
        if self.engine.now() < self.config.duration {
            let node = NodeId::new(self.churn_rng.random_range(0..self.config.nodes as u32));
            let subs = &self.subscriptions[node.index()];
            if !subs.is_empty() {
                let old = subs[self.churn_rng.random_range(0..subs.len())];
                let candidates: Vec<PatternId> = self
                    .space
                    .patterns()
                    .filter(|p| !subs.contains(p))
                    .collect();
                if let Some(&new) = self.churn_rng.choose(&candidates) {
                    self.apply_churn(node, old, new);
                }
            }
            if let Some(churn) = self.config.churn_interval {
                if self.engine.now() + churn < self.config.duration {
                    self.engine.schedule(churn, SimEvent::ChurnTick);
                }
            }
        }
    }

    fn apply_churn(&mut self, node: NodeId, old: PatternId, new: PatternId) {
        self.churn_events += 1;
        let neighbors = self.topology.neighbors(node).to_vec();
        let dispatcher = &mut self.dispatchers[node.index()];
        let unsubs = dispatcher.unsubscribe_local(old, &neighbors);
        let subs = dispatcher.subscribe_local_late(new, &neighbors);
        for fwd in unsubs.into_iter().chain(subs) {
            self.send_link(node, fwd.to, LinkPayload::PubSub(fwd.msg));
        }
        // Keep the metrics' view of intended recipients current.
        let list = &mut self.subscriptions[node.index()];
        list.retain(|&p| p != old);
        list.push(new);
        list.sort();
        self.subscribers_of[old.index()].retain(|&n| n != node);
        self.subscribers_of[new.index()].push(node);
        self.subscribers_of[new.index()].sort();
    }

    fn handle_break(&mut self) {
        if self.engine.now() >= self.config.duration {
            // The workload is over; the queue is only draining
            // in-flight recoveries. Do not disturb them.
            return;
        }
        let topology = &self.topology;
        let reconfig_rng = &mut self.reconfig_rng;
        if let Some(link) = reconfig_rng.choose_iter(topology.links()) {
            self.topology
                .remove_link(link)
                .expect("chosen link exists");
            self.links.reset_link(link.a(), link.b());
            self.reconfigurations += 1;
            self.record(TraceRecord::LinkBroken {
                at: self.engine.now(),
                link,
            });
            self.engine
                .schedule(self.config.repair_delay, SimEvent::Repair);
        }
        if let Some(rho) = self.config.reconfig_interval {
            if self.engine.now() + rho < self.config.duration {
                self.engine.schedule(rho, SimEvent::Break);
            }
        }
    }

    fn handle_repair(&mut self) {
        if let Some((x, y)) = plan_reconnection(&self.topology, &mut self.reconfig_rng) {
            self.topology
                .add_link(x, y)
                .expect("reconnection endpoints have spare degree");
            self.record(TraceRecord::LinkAdded {
                at: self.engine.now(),
                a: x,
                b: y,
            });
            // The reconfiguration protocol of [7] has completed:
            // subscription routes are consistent with the new overlay.
            rebuild_subscription_routes(&mut self.dispatchers, &self.topology);
        }
    }

    fn apply_actions(&mut self, node: NodeId, actions: Vec<GossipAction>) {
        for action in actions {
            match action {
                GossipAction::Forward { to, msg } => {
                    self.counters.count_gossip(node);
                    self.send_link(node, to, LinkPayload::Gossip(msg));
                }
                GossipAction::Request { to, ids } => {
                    self.counters.count_request(node);
                    self.send_oob(node, to, OobPayload::Request(ids));
                }
                GossipAction::Reply { to, events } => {
                    self.counters.count_reply(node, events.len() as u64);
                    self.send_oob(node, to, OobPayload::Reply(events));
                }
            }
        }
    }

    fn send_link(&mut self, from: NodeId, to: NodeId, payload: LinkPayload) {
        match &payload {
            LinkPayload::PubSub(PubSubMessage::Event(_)) => self.counters.count_event(from),
            LinkPayload::PubSub(_) => self.counters.count_subscription(from),
            LinkPayload::Gossip(_) => {} // counted at the action level
        }
        if !self.topology.has_link(from, to) {
            // Broken link or stale route: the message is lost.
            return;
        }
        let bits = payload.wire_bits(self.config.event_payload_bits);
        match self.links.transmit(
            &self.link_spec,
            from,
            to,
            bits,
            self.engine.now(),
            &mut self.loss_rng,
        ) {
            Transmission::Arrives(at) => {
                self.engine
                    .schedule_at(at, SimEvent::Link { from, to, payload });
            }
            Transmission::Lost => {}
        }
    }

    fn send_oob(&mut self, from: NodeId, to: NodeId, payload: OobPayload) {
        let bits = match &payload {
            OobPayload::Request(ids) => 256 + 96 * ids.len() as u64,
            OobPayload::Reply(events) => events
                .iter()
                .map(|e| e.wire_bits(self.config.event_payload_bits))
                .sum::<u64>()
                .max(256),
        };
        if let Some(delay) = self.config.out_of_band.delay(bits, &mut self.oob_rng) {
            self.engine
                .schedule(delay, SimEvent::Oob { from, to, payload });
        }
    }

    fn finish(self) -> (ScenarioResult, Option<ScenarioTrace>) {
        let window = self.config.measure_window();
        let series_raw = self.tracker.rate_series(self.config.series_bin);
        let series: Vec<(f64, f64)> = series_raw
            .bins()
            .iter()
            .map(|b| (b.start.as_secs_f64(), b.ratio()))
            .collect();
        let min_bin_rate = series_raw
            .bins()
            .iter()
            .filter(|b| b.start >= window.0 && b.start < window.1 && b.denominator > 0.0)
            .map(|b| b.ratio())
            .fold(f64::INFINITY, f64::min);
        let result = ScenarioResult {
            delivery_rate: self.tracker.delivery_rate(Some(window)),
            overall_delivery_rate: self.tracker.delivery_rate(None),
            min_bin_rate: if min_bin_rate.is_finite() {
                min_bin_rate
            } else {
                1.0
            },
            series,
            receivers_per_event: self.tracker.receivers_per_event().mean(),
            events_published: self.tracker.event_count() as u64,
            event_msgs: self.counters.event_total(),
            gossip_msgs: self.counters.gossip_total(),
            gossip_per_dispatcher: self.counters.gossip_per_dispatcher(),
            gossip_event_ratio: self.counters.gossip_event_ratio(),
            requests: self.counters.request_total(),
            replies: self.counters.reply_total(),
            events_retransmitted: self.counters.events_retransmitted(),
            events_recovered: self.counters.events_recovered(),
            recovery_latency_mean: self.tracker.recovery_latency().mean(),
            recovery_latency_p95: self
                .tracker
                .recovery_latency_quantile(0.95)
                .unwrap_or(0.0),
            outstanding_losses: self
                .algorithms
                .iter()
                .map(|a| a.outstanding_losses() as u64)
                .sum(),
            reconfigurations: self.reconfigurations,
            churn_events: self.churn_events,
            subscription_msgs: self.counters.subscription_total(),
            unexpected_deliveries: self.tracker.unexpected_total(),
        };
        (result, self.trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eps_gossip::AlgorithmKind;

    fn small(algorithm: AlgorithmKind) -> ScenarioConfig {
        ScenarioConfig {
            nodes: 25,
            duration: SimTime::from_secs(4),
            warmup: SimTime::from_millis(500),
            cooldown: SimTime::from_secs(1),
            publish_rate: 20.0,
            algorithm,
            ..ScenarioConfig::default()
        }
    }

    #[test]
    fn lossless_network_delivers_everything() {
        let config = ScenarioConfig {
            link_error_rate: 0.0,
            ..small(AlgorithmKind::NoRecovery)
        };
        let result = run_scenario(&config);
        assert!(
            result.delivery_rate > 0.999,
            "lossless delivery was {}",
            result.delivery_rate
        );
        assert_eq!(result.gossip_msgs, 0);
        assert_eq!(result.requests, 0);
    }

    #[test]
    fn lossy_baseline_loses_events() {
        let result = run_scenario(&small(AlgorithmKind::NoRecovery));
        assert!(
            result.delivery_rate < 0.95,
            "expected losses, got {}",
            result.delivery_rate
        );
        assert!(result.events_published > 0);
    }

    #[test]
    fn recovery_beats_no_recovery() {
        let baseline = run_scenario(&small(AlgorithmKind::NoRecovery));
        for kind in [
            AlgorithmKind::Push,
            AlgorithmKind::SubscriberPull,
            AlgorithmKind::CombinedPull,
        ] {
            let recovered = run_scenario(&small(kind));
            assert!(
                recovered.delivery_rate > baseline.delivery_rate,
                "{kind}: {} <= baseline {}",
                recovered.delivery_rate,
                baseline.delivery_rate
            );
            assert!(recovered.gossip_msgs > 0, "{kind} sent no gossip");
        }
    }

    #[test]
    fn same_seed_same_result() {
        let config = small(AlgorithmKind::CombinedPull);
        let a = run_scenario(&config);
        let b = run_scenario(&config);
        assert_eq!(a.delivery_rate, b.delivery_rate);
        assert_eq!(a.gossip_msgs, b.gossip_msgs);
        assert_eq!(a.events_published, b.events_published);
        assert_eq!(a.series, b.series);
    }

    #[test]
    fn different_seeds_differ() {
        let a = run_scenario(&small(AlgorithmKind::Push));
        let b = run_scenario(&ScenarioConfig {
            seed: 999,
            ..small(AlgorithmKind::Push)
        });
        assert_ne!(a.events_published, b.events_published);
    }

    #[test]
    fn reconfigurations_happen_and_recover() {
        let config = ScenarioConfig {
            link_error_rate: 0.0,
            reconfig_interval: Some(SimTime::from_millis(200)),
            ..small(AlgorithmKind::NoRecovery)
        };
        let result = run_scenario(&config);
        assert!(result.reconfigurations >= 10);
        // Reconfigurations lose some events but the network keeps
        // working.
        assert!(result.delivery_rate > 0.5);
        assert!(result.delivery_rate < 1.0);
    }

    #[test]
    fn recovery_masks_reconfiguration_losses() {
        let base = ScenarioConfig {
            link_error_rate: 0.0,
            reconfig_interval: Some(SimTime::from_millis(200)),
            ..small(AlgorithmKind::NoRecovery)
        };
        let no_rec = run_scenario(&base);
        let push = run_scenario(&base.with_algorithm(AlgorithmKind::Push));
        assert!(push.delivery_rate >= no_rec.delivery_rate);
        assert!(push.min_bin_rate >= no_rec.min_bin_rate);
    }

    #[test]
    fn zero_publish_rate_is_quiet() {
        let config = ScenarioConfig {
            publish_rate: 0.0,
            ..small(AlgorithmKind::CombinedPull)
        };
        let result = run_scenario(&config);
        assert_eq!(result.events_published, 0);
        assert_eq!(result.delivery_rate, 1.0);
    }
}
