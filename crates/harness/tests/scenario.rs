//! Black-box behavior tests of the scenario runner: loss, recovery,
//! reconfiguration, and determinism, all through the public
//! [`run_scenario`] API.

use eps_gossip::Algorithm;
use eps_harness::{run_scenario, ScenarioConfig};
use eps_sim::SimTime;

fn small(algorithm: Algorithm) -> ScenarioConfig {
    ScenarioConfig {
        nodes: 25,
        duration: SimTime::from_secs(4),
        warmup: SimTime::from_millis(500),
        cooldown: SimTime::from_secs(1),
        publish_rate: 20.0,
        algorithm,
        ..ScenarioConfig::default()
    }
}

#[test]
fn lossless_network_delivers_everything() {
    let config = ScenarioConfig {
        link_error_rate: 0.0,
        ..small(Algorithm::no_recovery())
    };
    let result = run_scenario(&config);
    assert!(
        result.delivery_rate > 0.999,
        "lossless delivery was {}",
        result.delivery_rate
    );
    assert_eq!(result.gossip_msgs, 0);
    assert_eq!(result.requests, 0);
}

#[test]
fn lossy_baseline_loses_events() {
    let result = run_scenario(&small(Algorithm::no_recovery()));
    assert!(
        result.delivery_rate < 0.95,
        "expected losses, got {}",
        result.delivery_rate
    );
    assert!(result.events_published > 0);
}

#[test]
fn recovery_beats_no_recovery() {
    let baseline = run_scenario(&small(Algorithm::no_recovery()));
    for kind in [
        Algorithm::push(),
        Algorithm::subscriber_pull(),
        Algorithm::combined_pull(),
    ] {
        let recovered = run_scenario(&small(kind.clone()));
        assert!(
            recovered.delivery_rate > baseline.delivery_rate,
            "{kind}: {} <= baseline {}",
            recovered.delivery_rate,
            baseline.delivery_rate
        );
        assert!(recovered.gossip_msgs > 0, "{kind} sent no gossip");
    }
}

#[test]
fn same_seed_same_result() {
    let config = small(Algorithm::combined_pull());
    let a = run_scenario(&config);
    let b = run_scenario(&config);
    assert_eq!(a.delivery_rate, b.delivery_rate);
    assert_eq!(a.gossip_msgs, b.gossip_msgs);
    assert_eq!(a.events_published, b.events_published);
    assert_eq!(a.series, b.series);
}

#[test]
fn different_seeds_differ() {
    let a = run_scenario(&small(Algorithm::push()));
    let b = run_scenario(&ScenarioConfig {
        seed: 999,
        ..small(Algorithm::push())
    });
    assert_ne!(a.events_published, b.events_published);
}

#[test]
fn reconfigurations_happen_and_recover() {
    let config = ScenarioConfig {
        link_error_rate: 0.0,
        reconfig_interval: Some(SimTime::from_millis(200)),
        ..small(Algorithm::no_recovery())
    };
    let result = run_scenario(&config);
    assert!(result.reconfigurations >= 10);
    // Reconfigurations lose some events but the network keeps
    // working.
    assert!(result.delivery_rate > 0.5);
    assert!(result.delivery_rate < 1.0);
}

#[test]
fn recovery_masks_reconfiguration_losses() {
    let base = ScenarioConfig {
        link_error_rate: 0.0,
        reconfig_interval: Some(SimTime::from_millis(200)),
        ..small(Algorithm::no_recovery())
    };
    let no_rec = run_scenario(&base);
    let push = run_scenario(&base.with_algorithm(Algorithm::push()));
    assert!(push.delivery_rate >= no_rec.delivery_rate);
    assert!(push.min_bin_rate >= no_rec.min_bin_rate);
}

#[test]
fn zero_publish_rate_is_quiet() {
    let config = ScenarioConfig {
        publish_rate: 0.0,
        ..small(Algorithm::combined_pull())
    };
    let result = run_scenario(&config);
    assert_eq!(result.events_published, 0);
    assert_eq!(result.delivery_rate, 1.0);
}
