//! Determinism under parallelism: the parallel experiment runner must
//! produce byte-identical output to the serial one, for any worker
//! count, because every scenario derives all randomness from its own
//! config and results merge in input order.

use eps_gossip::Algorithm;
use eps_harness::experiments::{run_experiment, ExperimentOptions};
use eps_harness::parallel::par_map;
use eps_harness::{run_scenario, ScenarioConfig, ScenarioResult};
use eps_sim::SimTime;

fn small(algorithm: Algorithm, seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        nodes: 25,
        duration: SimTime::from_secs(3),
        warmup: SimTime::from_millis(500),
        cooldown: SimTime::from_millis(500),
        publish_rate: 20.0,
        seed,
        algorithm,
        ..ScenarioConfig::default()
    }
}

fn assert_same(a: &ScenarioResult, b: &ScenarioResult) {
    assert_eq!(a.delivery_rate, b.delivery_rate);
    assert_eq!(a.overall_delivery_rate, b.overall_delivery_rate);
    assert_eq!(a.events_published, b.events_published);
    assert_eq!(a.event_msgs, b.event_msgs);
    assert_eq!(a.gossip_msgs, b.gossip_msgs);
    assert_eq!(a.requests, b.requests);
    assert_eq!(a.replies, b.replies);
    assert_eq!(a.series, b.series);
}

/// The workhorse guarantee: fanning scenario cells across threads
/// changes nothing — not even the last bit of any statistic.
#[test]
fn parallel_cells_match_serial_cells() {
    let configs: Vec<ScenarioConfig> = [
        Algorithm::no_recovery(),
        Algorithm::push(),
        Algorithm::combined_pull(),
    ]
    .iter()
    .flat_map(|kind| [1u64, 2].map(|seed| small(kind.clone(), seed)))
    .collect();
    let serial = par_map(1, &configs, run_scenario);
    for jobs in [2, 4] {
        let parallel = par_map(jobs, &configs, run_scenario);
        assert_eq!(parallel.len(), serial.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_same(s, p);
        }
    }
}

/// End-to-end through `run_experiment`: CSV files on disk are
/// byte-identical between the serial and parallel runner, across two
/// master seeds (fig2 in quick mode).
#[test]
fn experiment_csvs_identical_across_job_counts() {
    let base = std::env::temp_dir().join(format!("eps-par-det-{}", std::process::id()));
    for seed in [1u64, 2] {
        let mut outputs = Vec::new();
        for jobs in [1usize, 4] {
            let out_dir = base.join(format!("s{seed}-j{jobs}"));
            let opts = ExperimentOptions {
                quick: true,
                out_dir: out_dir.clone(),
                seed,
                jobs: Some(jobs),
                shards: None,
            };
            let output = run_experiment("fig2", &opts).expect("fig2 runs");
            let csv =
                std::fs::read(out_dir.join("fig2").join("parameters.csv")).expect("csv written");
            outputs.push((output.text.clone(), csv));
        }
        assert_eq!(
            outputs[0].0, outputs[1].0,
            "report text differs (seed {seed})"
        );
        assert_eq!(outputs[0].1, outputs[1].1, "CSV bytes differ (seed {seed})");
    }
    let _ = std::fs::remove_dir_all(&base);
}

/// The full six-algorithm panel (the shape every figure fans out)
/// renders identically for every worker count, including an odd one
/// that does not divide the cell count.
#[test]
fn six_algorithm_panel_identical_across_job_counts() {
    let configs: Vec<ScenarioConfig> = Algorithm::paper()
        .into_iter()
        .map(|kind| small(kind, 7))
        .collect();
    let render = |results: &[ScenarioResult]| {
        results
            .iter()
            .map(|r| format!("{:.6} {} {}", r.delivery_rate, r.gossip_msgs, r.requests))
            .collect::<Vec<_>>()
            .join("\n")
    };
    let serial = render(&par_map(1, &configs, run_scenario));
    let parallel = render(&par_map(4, &configs, run_scenario));
    assert_eq!(serial, parallel);
}

#[test]
fn explicit_jobs_override_is_respected() {
    let opts = ExperimentOptions {
        jobs: Some(3),
        ..ExperimentOptions::default()
    };
    assert_eq!(opts.effective_jobs(), 3);
    let zero = ExperimentOptions {
        jobs: Some(0),
        ..ExperimentOptions::default()
    };
    assert_eq!(zero.effective_jobs(), 1);
    assert!(ExperimentOptions::default().effective_jobs() >= 1);
}
