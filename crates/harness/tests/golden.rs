//! Golden determinism tests: the full [`ScenarioResult`] and the
//! fig3-style CSV bytes are pinned for all six algorithms at two
//! seeds, plus reconfiguration, churn, and cyclic-overlay (BA/WS)
//! variants. Any refactor of the
//! runner must reproduce these bytes exactly — serially and under
//! `par_map` — or consciously regenerate them with
//! `UPDATE_GOLDEN=1 cargo test -p eps-harness --test golden`.

use std::fmt::Write as _;
use std::path::PathBuf;

use eps_gossip::Algorithm;
use eps_harness::experiments::time_series_table;
use eps_harness::parallel::par_map;
use eps_harness::{run_scenario, run_scenario_sharded, ScenarioConfig, ScenarioResult};
use eps_overlay::OverlayKind;
use eps_sim::SimTime;

const SEEDS: [u64; 2] = [1, 999];

fn small(algorithm: Algorithm, seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        seed,
        nodes: 25,
        duration: SimTime::from_secs(4),
        warmup: SimTime::from_millis(500),
        cooldown: SimTime::from_secs(1),
        publish_rate: 20.0,
        algorithm,
        ..ScenarioConfig::default()
    }
}

/// The pinned cells: every algorithm on the small lossy config, plus
/// one reconfiguration run, one churn run, and one run on each cyclic
/// overlay (Barabási–Albert and Watts–Strogatz).
fn cells(seed: u64) -> Vec<(String, ScenarioConfig)> {
    let mut cells: Vec<(String, ScenarioConfig)> = Algorithm::paper()
        .into_iter()
        .map(|algo| (algo.name().to_owned(), small(algo, seed)))
        .collect();
    cells.push((
        "reconfig".to_owned(),
        ScenarioConfig {
            link_error_rate: 0.0,
            reconfig_interval: Some(SimTime::from_millis(200)),
            ..small(Algorithm::push(), seed)
        },
    ));
    cells.push((
        "churn".to_owned(),
        ScenarioConfig {
            churn_interval: Some(SimTime::from_millis(300)),
            ..small(Algorithm::combined_pull(), seed)
        },
    ));
    cells.push((
        "overlay-ba".to_owned(),
        ScenarioConfig {
            overlay: OverlayKind::BarabasiAlbert,
            ..small(Algorithm::push(), seed)
        },
    ));
    cells.push((
        "overlay-ws".to_owned(),
        ScenarioConfig {
            overlay: OverlayKind::WattsStrogatz,
            max_degree: 6,
            ..small(Algorithm::combined_pull(), seed)
        },
    ));
    cells
}

/// Bit-exact rendering of a float: the hex of its IEEE-754 bits.
fn hex(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

/// Canonical line-per-field dump of a result; every float is rendered
/// bit-exactly, including the full time series.
fn dump(label: &str, result: &ScenarioResult) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "[{label}]");
    let _ = writeln!(s, "delivery_rate={}", hex(result.delivery_rate));
    let _ = writeln!(
        s,
        "overall_delivery_rate={}",
        hex(result.overall_delivery_rate)
    );
    let _ = writeln!(s, "min_bin_rate={}", hex(result.min_bin_rate));
    let series: Vec<String> = result
        .series
        .iter()
        .map(|&(t, r)| format!("{}:{}", hex(t), hex(r)))
        .collect();
    let _ = writeln!(s, "series={}", series.join(","));
    let _ = writeln!(s, "receivers_per_event={}", hex(result.receivers_per_event));
    let _ = writeln!(s, "events_published={}", result.events_published);
    let _ = writeln!(s, "event_msgs={}", result.event_msgs);
    let _ = writeln!(s, "gossip_msgs={}", result.gossip_msgs);
    let _ = writeln!(
        s,
        "gossip_per_dispatcher={}",
        hex(result.gossip_per_dispatcher)
    );
    let _ = writeln!(s, "gossip_event_ratio={}", hex(result.gossip_event_ratio));
    let _ = writeln!(s, "requests={}", result.requests);
    let _ = writeln!(s, "replies={}", result.replies);
    let _ = writeln!(s, "events_retransmitted={}", result.events_retransmitted);
    let _ = writeln!(s, "events_recovered={}", result.events_recovered);
    let _ = writeln!(
        s,
        "recovery_latency_mean={}",
        hex(result.recovery_latency_mean)
    );
    let _ = writeln!(
        s,
        "recovery_latency_p95={}",
        hex(result.recovery_latency_p95)
    );
    let _ = writeln!(s, "outstanding_losses={}", result.outstanding_losses);
    let _ = writeln!(s, "reconfigurations={}", result.reconfigurations);
    let _ = writeln!(s, "churn_events={}", result.churn_events);
    let _ = writeln!(s, "subscription_msgs={}", result.subscription_msgs);
    let _ = writeln!(s, "duplicate_suppressed={}", result.duplicate_suppressed);
    let _ = writeln!(s, "unexpected_deliveries={}", result.unexpected_deliveries);
    s
}

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Renders one seed's cells: the canonical result dump and the
/// fig3-style CSV over the six algorithm series.
fn render(seed: u64, results: &[ScenarioResult]) -> (String, String) {
    let labeled = cells(seed);
    let mut report = String::new();
    for ((label, _), result) in labeled.iter().zip(results) {
        report.push_str(&dump(&format!("{label} seed={seed}"), result));
        report.push('\n');
    }
    let names: Vec<String> = Algorithm::paper()
        .iter()
        .map(|a| a.name().to_owned())
        .collect();
    let series: Vec<Vec<(f64, f64)>> = results[..names.len()]
        .iter()
        .map(|r| r.series.clone())
        .collect();
    let csv = time_series_table(&names, &series).to_csv();
    (report, csv)
}

fn check_or_update(name: &str, actual: &str) {
    let path = golden_dir().join(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(golden_dir()).expect("create golden dir");
        std::fs::write(&path, actual).expect("write golden file");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "{name} drifted from the golden bytes; if the change is intended, \
         regenerate with UPDATE_GOLDEN=1"
    );
}

/// The client-layer cells: multi-client populations (with and without
/// churn, plus a Zipf-skewed one) whose aggregate filters must stay
/// deterministic. Pinned separately from [`cells`] on purpose — the
/// pre-client golden files above double as the `clients = 1` identity
/// contract: introducing the client layer must not move a single byte
/// of them.
fn client_cells(seed: u64) -> Vec<(String, ScenarioConfig)> {
    vec![
        (
            "clients5".to_owned(),
            ScenarioConfig {
                clients_per_node: 5,
                ..small(Algorithm::combined_pull(), seed)
            },
        ),
        (
            "clients5-churn".to_owned(),
            ScenarioConfig {
                clients_per_node: 5,
                churn_interval: Some(SimTime::from_millis(300)),
                ..small(Algorithm::push(), seed)
            },
        ),
        (
            "clients4-zipf".to_owned(),
            ScenarioConfig {
                clients_per_node: 4,
                zipf_s: 1.2,
                ..small(Algorithm::push(), seed)
            },
        ),
    ]
}

/// [`dump`] plus the routing-state fields the client layer adds. The
/// base dump stays untouched so the pre-client golden files keep their
/// exact bytes.
fn dump_with_routing(label: &str, result: &ScenarioResult) -> String {
    let mut s = dump(label, result);
    let _ = writeln!(s, "client_subscriptions={}", result.client_subscriptions);
    let _ = writeln!(s, "aggregate_patterns={}", result.aggregate_patterns);
    let _ = writeln!(s, "routing_entries={}", result.routing_entries);
    let _ = writeln!(
        s,
        "setup_subscription_msgs={}",
        result.setup_subscription_msgs
    );
    s
}

fn render_clients(seed: u64, results: &[ScenarioResult]) -> String {
    let labeled = client_cells(seed);
    let mut report = String::new();
    for ((label, _), result) in labeled.iter().zip(results) {
        report.push_str(&dump_with_routing(&format!("{label} seed={seed}"), result));
        report.push('\n');
    }
    report
}

/// The summary-reconciliation cells: both hash-tree digest modes on
/// the small lossy config. Pinned separately from [`cells`] — those
/// golden files double as the "summary reconciliation is purely
/// additive" contract: registering the new algorithms and the summary
/// index must not move a single byte of them.
fn summary_cells(seed: u64) -> Vec<(String, ScenarioConfig)> {
    vec![
        (
            "summary-push".to_owned(),
            small(Algorithm::summary_push(), seed),
        ),
        (
            "summary-pull".to_owned(),
            small(Algorithm::summary_pull(), seed),
        ),
    ]
}

/// [`dump`] plus the wire-bit fields the summary evaluation reads.
/// The base dump stays untouched so the pre-summary golden files keep
/// their exact bytes.
fn dump_with_wire_bits(label: &str, result: &ScenarioResult) -> String {
    let mut s = dump(label, result);
    let _ = writeln!(s, "gossip_wire_bits={}", result.gossip_wire_bits);
    let _ = writeln!(s, "request_wire_bits={}", result.request_wire_bits);
    let _ = writeln!(s, "reply_wire_bits={}", result.reply_wire_bits);
    s
}

fn render_summary(seed: u64, results: &[ScenarioResult]) -> String {
    let labeled = summary_cells(seed);
    let mut report = String::new();
    for ((label, _), result) in labeled.iter().zip(results) {
        report.push_str(&dump_with_wire_bits(
            &format!("{label} seed={seed}"),
            result,
        ));
        report.push('\n');
    }
    report
}

#[test]
fn scenario_output_matches_golden_bytes() {
    for seed in SEEDS {
        let configs: Vec<ScenarioConfig> = cells(seed).into_iter().map(|(_, c)| c).collect();
        let serial: Vec<ScenarioResult> = configs.iter().map(run_scenario).collect();
        let (report, csv) = render(seed, &serial);
        check_or_update(&format!("results_seed{seed}.txt"), &report);
        check_or_update(&format!("fig3_seed{seed}.csv"), &csv);

        // The parallel runner must produce the same bytes as the
        // serial loop, for any job count.
        let parallel = par_map(4, &configs, run_scenario);
        let (par_report, par_csv) = render(seed, &parallel);
        assert_eq!(report, par_report, "par_map drifted from serial results");
        assert_eq!(csv, par_csv, "par_map drifted from serial CSV");
    }
}

/// The sharded runner's own golden bytes, pinned at `--shards 1`, plus
/// the invariant the runner exists to guarantee: shard counts 2 and 4
/// reproduce the identical report and fig3-style CSV byte-for-byte
/// (including the reconfiguration and churn cells, whose global events
/// run on the coordinator between windows).
#[test]
fn sharded_output_is_shard_count_invariant() {
    for seed in SEEDS {
        let configs: Vec<ScenarioConfig> = cells(seed).into_iter().map(|(_, c)| c).collect();
        let baseline: Vec<ScenarioResult> =
            configs.iter().map(|c| run_scenario_sharded(c, 1)).collect();
        let (report, csv) = render(seed, &baseline);
        check_or_update(&format!("results_sharded_seed{seed}.txt"), &report);
        check_or_update(&format!("fig3_sharded_seed{seed}.csv"), &csv);

        for shards in [2, 4] {
            let results: Vec<ScenarioResult> = configs
                .iter()
                .map(|c| run_scenario_sharded(c, shards))
                .collect();
            let (sharded_report, sharded_csv) = render(seed, &results);
            assert_eq!(
                report, sharded_report,
                "shards={shards} drifted from the shards=1 results"
            );
            assert_eq!(
                csv, sharded_csv,
                "shards={shards} drifted from the shards=1 CSV"
            );
        }
    }
}

/// Multi-client golden bytes: the aggregation layer pinned serially
/// (including under `par_map`) and through the sharded runner at shard
/// counts 1, 2 and 4 — churn at client granularity crosses the
/// coordinator barrier, so its invariance is the interesting part.
/// Summary-reconciliation golden bytes: both digest modes pinned
/// serially (including under `par_map`) and through the sharded runner
/// at shard counts 1, 2 and 4 — the range-refinement requests cross
/// shard boundaries at the barrier, so their invariance is the
/// interesting part.
#[test]
fn summary_reconciliation_output_matches_golden_bytes() {
    for seed in SEEDS {
        let configs: Vec<ScenarioConfig> =
            summary_cells(seed).into_iter().map(|(_, c)| c).collect();
        let serial: Vec<ScenarioResult> = configs.iter().map(run_scenario).collect();
        let report = render_summary(seed, &serial);
        check_or_update(&format!("results_summary_seed{seed}.txt"), &report);

        let parallel = par_map(4, &configs, run_scenario);
        let par_report = render_summary(seed, &parallel);
        assert_eq!(report, par_report, "par_map drifted from serial results");

        let baseline: Vec<ScenarioResult> =
            configs.iter().map(|c| run_scenario_sharded(c, 1)).collect();
        let sharded_report = render_summary(seed, &baseline);
        check_or_update(
            &format!("results_summary_sharded_seed{seed}.txt"),
            &sharded_report,
        );
        for shards in [2, 4] {
            let results: Vec<ScenarioResult> = configs
                .iter()
                .map(|c| run_scenario_sharded(c, shards))
                .collect();
            assert_eq!(
                sharded_report,
                render_summary(seed, &results),
                "shards={shards} drifted from the shards=1 summary results"
            );
        }
    }
}

#[test]
fn client_layer_output_matches_golden_bytes() {
    for seed in SEEDS {
        let configs: Vec<ScenarioConfig> = client_cells(seed).into_iter().map(|(_, c)| c).collect();
        let serial: Vec<ScenarioResult> = configs.iter().map(run_scenario).collect();
        let report = render_clients(seed, &serial);
        check_or_update(&format!("results_clients_seed{seed}.txt"), &report);

        let parallel = par_map(4, &configs, run_scenario);
        let par_report = render_clients(seed, &parallel);
        assert_eq!(report, par_report, "par_map drifted from serial results");

        let baseline: Vec<ScenarioResult> =
            configs.iter().map(|c| run_scenario_sharded(c, 1)).collect();
        let sharded_report = render_clients(seed, &baseline);
        check_or_update(
            &format!("results_clients_sharded_seed{seed}.txt"),
            &sharded_report,
        );
        for shards in [2, 4] {
            let results: Vec<ScenarioResult> = configs
                .iter()
                .map(|c| run_scenario_sharded(c, shards))
                .collect();
            assert_eq!(
                sharded_report,
                render_clients(seed, &results),
                "shards={shards} drifted from the shards=1 client-layer results"
            );
        }
    }
}
