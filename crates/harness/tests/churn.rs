//! Scenario-level tests of subscription churn: the (un)subscription
//! protocol exercised end-to-end over lossy links while events flow.

use eps_gossip::Algorithm;
use eps_harness::{run_scenario, ScenarioConfig};
use eps_sim::SimTime;

fn base(kind: Algorithm) -> ScenarioConfig {
    ScenarioConfig {
        nodes: 25,
        duration: SimTime::from_secs(4),
        warmup: SimTime::from_millis(500),
        cooldown: SimTime::from_secs(1),
        publish_rate: 20.0,
        churn_interval: Some(SimTime::from_millis(100)),
        algorithm: kind,
        ..ScenarioConfig::default()
    }
}

#[test]
fn churn_happens_and_propagates_subscription_messages() {
    let r = run_scenario(&base(Algorithm::no_recovery()));
    assert!(
        (30..=45).contains(&r.churn_events),
        "one swap per 100ms over ~4s, got {}",
        r.churn_events
    );
    assert!(
        r.subscription_msgs > r.churn_events,
        "each swap must propagate messages: {} msgs for {} swaps",
        r.subscription_msgs,
        r.churn_events
    );
}

#[test]
fn delivery_stays_healthy_under_churn_on_reliable_links() {
    let config = ScenarioConfig {
        link_error_rate: 0.0,
        ..base(Algorithm::no_recovery())
    };
    let r = run_scenario(&config);
    // Only churn races (events in flight while routes shift) can cost
    // deliveries; they must be rare.
    assert!(
        r.delivery_rate > 0.97,
        "churn cost too much: {}",
        r.delivery_rate
    );
}

#[test]
fn recovery_still_works_under_churn() {
    let with = run_scenario(&base(Algorithm::combined_pull()));
    let without = run_scenario(&base(Algorithm::no_recovery()));
    assert!(with.events_recovered > 0);
    assert!(
        with.delivery_rate > without.delivery_rate + 0.05,
        "recovery ineffective under churn: {} vs {}",
        with.delivery_rate,
        without.delivery_rate
    );
}

#[test]
fn late_subscribers_do_not_pull_history() {
    // A fresh subscription must not interpret the stream's past as
    // losses: outstanding Lost entries must stay bounded by what is
    // genuinely lost after the subscription, not explode with
    // pre-subscription history.
    let churny = run_scenario(&ScenarioConfig {
        churn_interval: Some(SimTime::from_millis(50)),
        ..base(Algorithm::subscriber_pull())
    });
    let stable = run_scenario(&ScenarioConfig {
        churn_interval: None,
        ..base(Algorithm::subscriber_pull())
    });
    // History-pulling would multiply outstanding losses by orders of
    // magnitude; allow generous headroom for genuine churn effects.
    assert!(
        churny.outstanding_losses < stable.outstanding_losses * 3 + 500,
        "suspicious Lost growth under churn: {} vs stable {}",
        churny.outstanding_losses,
        stable.outstanding_losses
    );
}

#[test]
fn churn_is_deterministic() {
    let a = run_scenario(&base(Algorithm::combined_pull()));
    let b = run_scenario(&base(Algorithm::combined_pull()));
    assert_eq!(a.churn_events, b.churn_events);
    assert_eq!(a.delivery_rate, b.delivery_rate);
    assert_eq!(a.subscription_msgs, b.subscription_msgs);
}

#[test]
fn churn_composes_with_reconfiguration_and_loss() {
    // Everything at once: lossy links, topology churn, subscription
    // churn, and recovery.
    let config = ScenarioConfig {
        link_error_rate: 0.05,
        reconfig_interval: Some(SimTime::from_millis(300)),
        ..base(Algorithm::combined_pull())
    };
    let r = run_scenario(&config);
    assert!(r.churn_events > 0);
    assert!(r.reconfigurations > 0);
    assert!(r.events_recovered > 0);
    assert!((0.0..=1.0).contains(&r.delivery_rate));
    assert!(
        r.delivery_rate > 0.6,
        "system collapsed: {}",
        r.delivery_rate
    );
}

#[test]
fn stable_scenarios_report_no_churn() {
    let config = ScenarioConfig {
        churn_interval: None,
        ..base(Algorithm::no_recovery())
    };
    let r = run_scenario(&config);
    assert_eq!(r.churn_events, 0);
    assert_eq!(r.subscription_msgs, 0);
    assert_eq!(r.unexpected_deliveries, 0);
}
