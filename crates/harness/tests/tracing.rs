//! White-box tests through the scenario trace: the trace must be
//! consistent with the metrics, and tracing must not perturb the run.

use eps_gossip::Algorithm;
use eps_harness::{run_scenario, run_scenario_traced, ScenarioConfig, TraceRecord};
use eps_sim::SimTime;
use std::collections::HashSet;

fn base(kind: Algorithm) -> ScenarioConfig {
    ScenarioConfig {
        nodes: 20,
        duration: SimTime::from_secs(3),
        warmup: SimTime::from_millis(500),
        cooldown: SimTime::from_millis(500),
        publish_rate: 15.0,
        algorithm: kind,
        ..ScenarioConfig::default()
    }
}

#[test]
fn tracing_does_not_perturb_the_simulation() {
    let config = base(Algorithm::combined_pull());
    let plain = run_scenario(&config);
    let (traced, _) = run_scenario_traced(&config, 1_000_000);
    assert_eq!(plain.delivery_rate, traced.delivery_rate);
    assert_eq!(plain.gossip_msgs, traced.gossip_msgs);
    assert_eq!(plain.series, traced.series);
}

#[test]
fn trace_agrees_with_the_metrics() {
    let config = base(Algorithm::combined_pull());
    let (result, trace) = run_scenario_traced(&config, 2_000_000);
    assert_eq!(trace.dropped(), 0, "trace capacity too small for test");

    let mut publishes = 0u64;
    let mut deliveries = 0u64;
    let mut recovered = 0u64;
    let mut published_ids = HashSet::new();
    for record in trace.records() {
        match *record {
            TraceRecord::Publish { event, .. } => {
                publishes += 1;
                assert!(published_ids.insert(event), "event published twice");
            }
            TraceRecord::Deliver {
                event,
                recovered: r,
                ..
            } => {
                deliveries += 1;
                if r {
                    recovered += 1;
                }
                assert!(published_ids.contains(&event), "delivered before published");
            }
            _ => {}
        }
    }
    assert_eq!(publishes, result.events_published);
    assert_eq!(recovered, result.events_recovered);
    assert!(deliveries > 0);
}

#[test]
fn deliveries_never_precede_their_publish_in_time() {
    let config = base(Algorithm::push());
    let (_, trace) = run_scenario_traced(&config, 2_000_000);
    let mut publish_time = std::collections::HashMap::new();
    for record in trace.records() {
        match *record {
            TraceRecord::Publish { at, event, .. } => {
                publish_time.insert(event, at);
            }
            TraceRecord::Deliver { at, event, .. } => {
                let t0 = publish_time[&event];
                assert!(at >= t0, "delivery at {at} before publish at {t0}");
            }
            _ => {}
        }
    }
}

#[test]
fn reconfigurations_appear_in_the_trace_in_break_repair_pairs() {
    let config = ScenarioConfig {
        link_error_rate: 0.0,
        reconfig_interval: Some(SimTime::from_millis(300)),
        ..base(Algorithm::no_recovery())
    };
    let (result, trace) = run_scenario_traced(&config, 2_000_000);
    let breaks = trace
        .records()
        .iter()
        .filter(|r| matches!(r, TraceRecord::LinkBroken { .. }))
        .count() as u64;
    let adds = trace
        .records()
        .iter()
        .filter(|r| matches!(r, TraceRecord::LinkAdded { .. }))
        .count() as u64;
    assert_eq!(breaks, result.reconfigurations);
    assert_eq!(adds, breaks, "every break must be repaired");
}

#[test]
fn recovered_deliveries_only_happen_with_recovery_enabled() {
    let (_, trace) = run_scenario_traced(&base(Algorithm::no_recovery()), 2_000_000);
    assert!(trace.records().iter().all(|r| !matches!(
        r,
        TraceRecord::Deliver {
            recovered: true,
            ..
        }
    )));
}

#[test]
fn tiny_trace_capacity_drops_but_does_not_fail() {
    let (result, trace) = run_scenario_traced(&base(Algorithm::combined_pull()), 10);
    assert_eq!(trace.len(), 10);
    assert!(trace.dropped() > 0);
    assert!(result.events_published > 0);
}
