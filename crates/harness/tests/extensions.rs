//! Scenario-level tests of the extension features: adaptive gossip
//! intervals and alternative buffer policies.

use eps_gossip::Algorithm;
use eps_harness::{run_scenario, AdaptiveGossip, ScenarioConfig};
use eps_pubsub::EvictionPolicy;
use eps_sim::SimTime;

fn base(kind: Algorithm) -> ScenarioConfig {
    ScenarioConfig {
        nodes: 25,
        duration: SimTime::from_secs(4),
        warmup: SimTime::from_millis(500),
        cooldown: SimTime::from_secs(1),
        publish_rate: 20.0,
        algorithm: kind,
        ..ScenarioConfig::default()
    }
}

#[test]
fn adaptive_gossip_cuts_overhead_on_a_healthy_network() {
    // The overhead cut is a statistical tendency, not a per-seed
    // guarantee; this seed gives it a clear margin.
    let healthy = ScenarioConfig {
        seed: 3,
        link_error_rate: 0.005,
        ..base(Algorithm::combined_pull())
    };
    let fixed = run_scenario(&healthy);
    let adaptive = run_scenario(&ScenarioConfig {
        adaptive_gossip: Some(AdaptiveGossip::around(healthy.gossip_interval)),
        ..healthy
    });
    assert!(
        adaptive.gossip_msgs < fixed.gossip_msgs,
        "adaptive {} should send less than fixed {}",
        adaptive.gossip_msgs,
        fixed.gossip_msgs
    );
    assert!(
        adaptive.delivery_rate > fixed.delivery_rate - 0.03,
        "delivery sacrificed: {} vs {}",
        adaptive.delivery_rate,
        fixed.delivery_rate
    );
}

#[test]
fn adaptive_gossip_converges_to_fixed_under_heavy_loss() {
    let lossy = base(Algorithm::combined_pull());
    let fixed = run_scenario(&lossy);
    let adaptive = run_scenario(&ScenarioConfig {
        adaptive_gossip: Some(AdaptiveGossip::around(lossy.gossip_interval)),
        ..lossy
    });
    // Constant losses keep the timer near the floor: within 2x.
    assert!(adaptive.gossip_msgs * 2 > fixed.gossip_msgs);
    assert!(adaptive.delivery_rate > fixed.delivery_rate - 0.05);
}

#[test]
fn adaptive_gossip_is_deterministic() {
    let config = ScenarioConfig {
        adaptive_gossip: Some(AdaptiveGossip::around(SimTime::from_millis(30))),
        ..base(Algorithm::push())
    };
    let a = run_scenario(&config);
    let b = run_scenario(&config);
    assert_eq!(a.gossip_msgs, b.gossip_msgs);
    assert_eq!(a.delivery_rate, b.delivery_rate);
}

#[test]
#[should_panic]
fn invalid_adaptive_parameters_are_rejected() {
    let config = ScenarioConfig {
        adaptive_gossip: Some(AdaptiveGossip {
            min_interval: SimTime::from_millis(50),
            max_interval: SimTime::from_millis(10), // inverted
            backoff: 2.0,
        }),
        ..base(Algorithm::push())
    };
    let _ = run_scenario(&config);
}

#[test]
fn every_eviction_policy_completes_and_recovers() {
    for policy in [
        EvictionPolicy::Fifo,
        EvictionPolicy::Random { seed: 1 },
        EvictionPolicy::SourceBiased { own_permille: 300 },
    ] {
        let r = run_scenario(&ScenarioConfig {
            buffer_size: 150,
            eviction: policy,
            ..base(Algorithm::combined_pull())
        });
        assert!(r.events_recovered > 0, "{policy} recovered nothing");
        assert!((0.0..=1.0).contains(&r.delivery_rate));
    }
}

#[test]
fn source_biased_policy_helps_publisher_bound_recovery_at_small_buffers() {
    // With tiny buffers, protecting self-published events preserves
    // the copies only the publisher can serve.
    let small = ScenarioConfig {
        buffer_size: 100,
        ..base(Algorithm::publisher_pull())
    };
    let fifo = run_scenario(&small);
    let biased = run_scenario(&ScenarioConfig {
        eviction: EvictionPolicy::SourceBiased { own_permille: 400 },
        ..small
    });
    assert!(
        biased.delivery_rate >= fifo.delivery_rate - 0.01,
        "source-biased {} should not lose to fifo {}",
        biased.delivery_rate,
        fifo.delivery_rate
    );
}

#[test]
fn eviction_policy_changes_results_but_not_workload() {
    let fifo = run_scenario(&base(Algorithm::combined_pull()));
    let random = run_scenario(&ScenarioConfig {
        eviction: EvictionPolicy::Random { seed: 9 },
        ..base(Algorithm::combined_pull())
    });
    assert_eq!(fifo.events_published, random.events_published);
    assert_eq!(fifo.receivers_per_event, random.receivers_per_event);
}
