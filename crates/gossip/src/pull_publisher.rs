//! The publisher-based pull algorithm (paper, Section III-B).

use eps_overlay::NodeId;
use eps_pubsub::{Dispatcher, Event, LossRecord};
use eps_sim::Rng;

use crate::algorithm::{AlgorithmKind, RecoveryAlgorithm};
use crate::config::GossipConfig;
use crate::lost::LostBuffer;
use crate::message::{GossipAction, GossipMessage};
use crate::rounds::{handle_source_pull, publisher_round};

/// Reactive pull with negative digests steered towards *publishers*.
///
/// Requires published events to be cached at their source
/// ([`AlgorithmKind::needs_publisher_cache`]) and event messages to
/// record the dispatchers they traverse
/// ([`AlgorithmKind::needs_route_recording`]). Each round the gossiper
/// picks a source among its `Lost` entries, and steers the digest back
/// towards that publisher along the reverse of the most recently
/// recorded route (the `Routes` buffer). The route may be stale after
/// a reconfiguration — the two paths "share at least the first
/// portion or, in the worst case, the publisher" — so intermediate
/// caches often short-circuit the recovery.
#[derive(Clone, Debug)]
pub struct PublisherPull {
    config: GossipConfig,
    lost: LostBuffer,
}

impl PublisherPull {
    /// Creates a publisher-pull instance.
    pub fn new(config: GossipConfig) -> Self {
        PublisherPull {
            lost: LostBuffer::new(config.max_attempts),
            config,
        }
    }

    /// Read access to the `Lost` buffer (for tests and metrics).
    pub fn lost(&self) -> &LostBuffer {
        &self.lost
    }
}

impl RecoveryAlgorithm for PublisherPull {
    fn kind(&self) -> AlgorithmKind {
        AlgorithmKind::PublisherPull
    }

    fn on_round(
        &mut self,
        node: &Dispatcher,
        _neighbors: &[NodeId],
        rng: &mut Rng,
    ) -> Vec<GossipAction> {
        publisher_round(&mut self.lost, node, &self.config, rng)
    }

    fn on_gossip(
        &mut self,
        node: &Dispatcher,
        _from: NodeId,
        msg: GossipMessage,
        _neighbors: &[NodeId],
        _rng: &mut Rng,
    ) -> Vec<GossipAction> {
        match msg {
            GossipMessage::SourcePull {
                gossiper,
                source,
                lost,
                route,
            } => handle_source_pull(node, gossiper, source, lost, route),
            _ => Vec::new(),
        }
    }

    fn on_losses(&mut self, losses: &[LossRecord]) {
        for &record in losses {
            self.lost.add(record);
        }
    }

    fn on_event_received(&mut self, event: &Event) {
        self.lost.clear_for_event(event);
    }

    fn outstanding_losses(&self) -> usize {
        self.lost.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eps_pubsub::{DispatcherConfig, Event, EventId, PatternId};
    use eps_sim::RngFactory;

    fn publisher_cfg() -> DispatcherConfig {
        DispatcherConfig {
            cache_own_published: true,
            record_routes: true,
            ..DispatcherConfig::default()
        }
    }

    fn record(source: u32, pattern: u16, seq: u64) -> LossRecord {
        LossRecord {
            source: NodeId::new(source),
            pattern: PatternId::new(pattern),
            seq,
        }
    }

    /// Builds a node that received an event from source 0 via hop 3,
    /// so its Routes buffer knows the way back.
    fn node_with_route() -> Dispatcher {
        let mut node = Dispatcher::new(NodeId::new(5), publisher_cfg());
        node.subscribe_local(PatternId::new(1), &[]);
        let mut e = Event::new(
            EventId::new(NodeId::new(0), 0),
            vec![(PatternId::new(1), 0)],
        );
        e.record_hop(NodeId::new(3));
        node.on_event(e, Some(NodeId::new(3)));
        node
    }

    #[test]
    fn round_steers_digest_along_reverse_route() {
        let node = node_with_route();
        let mut algo = PublisherPull::new(GossipConfig::default());
        // A *different* event from source 0 was lost.
        algo.on_losses(&[record(0, 1, 5)]);
        let mut rng = RngFactory::new(1).stream("gossip");
        let actions = algo.on_round(&node, &[], &mut rng);
        assert_eq!(actions.len(), 1);
        match &actions[0] {
            GossipAction::Forward { to, msg } => {
                assert_eq!(*to, NodeId::new(3), "first hop back towards the source");
                match msg {
                    GossipMessage::SourcePull {
                        source,
                        route,
                        lost,
                        ..
                    } => {
                        assert_eq!(*source, NodeId::new(0));
                        assert_eq!(route, &vec![NodeId::new(0)]);
                        assert_eq!(lost, &vec![record(0, 1, 5)]);
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn round_skips_sources_without_routes() {
        let node = Dispatcher::new(NodeId::new(5), publisher_cfg());
        let mut algo = PublisherPull::new(GossipConfig::default());
        algo.on_losses(&[record(7, 1, 0)]); // never received anything from 7
        let mut rng = RngFactory::new(1).stream("gossip");
        assert!(algo.on_round(&node, &[], &mut rng).is_empty());
        // The entry stays outstanding for later (e.g. combined pull).
        assert_eq!(algo.outstanding_losses(), 1);
    }

    #[test]
    fn publisher_serves_its_own_cached_event() {
        // Source 0 publishes and caches its own event.
        let mut source = Dispatcher::new(NodeId::new(0), publisher_cfg());
        let (event, _) = source.publish(vec![PatternId::new(1)]);
        let mut algo = PublisherPull::new(GossipConfig::default());
        let mut rng = RngFactory::new(1).stream("gossip");
        let msg = GossipMessage::SourcePull {
            gossiper: NodeId::new(5),
            source: NodeId::new(0),
            lost: vec![record(0, 1, 0)],
            route: vec![],
        };
        let actions = algo.on_gossip(&source, NodeId::new(3), msg, &[], &mut rng);
        assert_eq!(actions.len(), 1);
        match &actions[0] {
            GossipAction::Reply { to, events } => {
                assert_eq!(*to, NodeId::new(5));
                assert_eq!(events[0].id(), event.id());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn exhausted_route_with_unserved_digest_dies_out() {
        let node = Dispatcher::new(NodeId::new(3), publisher_cfg());
        let mut algo = PublisherPull::new(GossipConfig::default());
        let mut rng = RngFactory::new(1).stream("gossip");
        let msg = GossipMessage::SourcePull {
            gossiper: NodeId::new(5),
            source: NodeId::new(0),
            lost: vec![record(0, 1, 0)],
            route: vec![], // stale route ended early
        };
        assert!(algo
            .on_gossip(&node, NodeId::new(5), msg, &[], &mut rng)
            .is_empty());
    }

    #[test]
    fn losses_clear_on_event_arrival() {
        let mut algo = PublisherPull::new(GossipConfig::default());
        algo.on_losses(&[record(0, 1, 5)]);
        let e = Event::new(
            EventId::new(NodeId::new(0), 9),
            vec![(PatternId::new(1), 5)],
        );
        algo.on_event_received(&e);
        assert_eq!(algo.outstanding_losses(), 0);
    }
}
