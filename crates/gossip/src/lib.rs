//! # eps-gossip — epidemic recovery for content-based publish-subscribe
//!
//! The primary contribution of *“Epidemic Algorithms for Reliable
//! Content-Based Publish-Subscribe: An Evaluation”* (Costa, Migliavacca,
//! Picco, Cugola — ICDCS 2004), reproduced in full — and factored into
//! composable **policy stages**:
//!
//! - a [`DigestPolicy`] decides *what a gossip round asserts*:
//!   [`PositiveDigest`] announces cached events (push),
//!   [`NegativeDigest`] chases detected losses (pull), and
//!   [`AlternatingDigest`] interleaves the two (the `push-pull`
//!   hybrid);
//! - a [`SteeringPolicy`] decides *where the digest travels*:
//!   [`PatternSteering`] routes it along the subscription tree with
//!   per-hop probability `P_forward`, [`SourceSteering`] reverses
//!   recorded routes back towards the publisher, [`RandomSteering`]
//!   walks at random under a TTL, and [`MuxSteering`] picks between
//!   two steerings with probability `P_source`;
//! - a [`GossipEngine`] pairs one of each and implements
//!   [`RecoveryAlgorithm`], the boundary the harness talks to.
//!
//! The [`Algorithm`] registry names the compositions. All six paper
//! strategies are registry entries — e.g. combined pull is literally
//! `NegativeDigest × Mux(Source, Pattern)` — and a new hybrid is a
//! one-line registration, not a new module.
//!
//! All strategies react to gossip rounds, detected losses, and
//! incoming gossip by emitting [`GossipAction`]s, which the simulation
//! harness (or a real transport) carries out. Algorithms never touch
//! the network and never mutate the dispatcher, so each is
//! unit-testable in isolation.
//!
//! # Examples
//!
//! ```
//! use eps_gossip::{Algorithm, GossipConfig};
//!
//! // Build one instance per dispatcher.
//! let mut algo = Algorithm::combined_pull().build(GossipConfig::default());
//! assert_eq!(algo.name(), "combined-pull");
//! assert_eq!(algo.outstanding_losses(), 0);
//!
//! // Names (and aliases) resolve case-insensitively.
//! assert_eq!(Algorithm::named("Hybrid").unwrap().name(), "push-pull");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod algorithm;
pub mod codec;
mod config;
mod engine;
mod envelope;
mod lost;
mod message;
mod policy;
mod registry;
mod summary;

pub use algorithm::{NoRecovery, RecoveryAlgorithm};
pub use codec::CodecError;
pub use config::{GossipConfig, DEFAULT_LOST_CAPACITY};
pub use engine::GossipEngine;
pub use envelope::{Channel, Envelope};
pub use lost::LostBuffer;
pub use message::{GossipAction, GossipMessage};
pub use policy::{
    Absorbed, AlternatingDigest, DigestBody, DigestPolicy, MuxSteering, NegativeDigest,
    PatternSteering, PositiveDigest, RandomSteering, SourceSteering, SteeringPolicy,
};
pub use registry::{Algorithm, AlgorithmBuilder, AlgorithmDef, ParseAlgorithmError};
pub use summary::{SummaryDigestPolicy, SummaryMode, DETAIL_THRESHOLD, MAX_QUEUED_RANGES};
