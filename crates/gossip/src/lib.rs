//! # eps-gossip — epidemic recovery for content-based publish-subscribe
//!
//! The primary contribution of *“Epidemic Algorithms for Reliable
//! Content-Based Publish-Subscribe: An Evaluation”* (Costa, Migliavacca,
//! Picco, Cugola — ICDCS 2004), reproduced in full:
//!
//! - [`PushGossip`] — proactive gossip with positive digests, labelled
//!   with a pattern drawn from the whole subscription table and routed
//!   like an event (with per-hop forwarding probability `P_forward`);
//! - [`SubscriberPull`] — reactive gossip with negative digests built
//!   from sequence-gap loss detection, steered towards subscribers;
//! - [`PublisherPull`] — negative digests steered back towards
//!   publishers along routes recorded in event messages;
//! - [`CombinedPull`] — publisher-based with probability `P_source`,
//!   otherwise subscriber-based: the two complement each other and the
//!   paper shows they perform best combined;
//! - [`RandomPull`] — digests routed entirely at random (TTL-bounded),
//!   the paper's check that directed routing is worth the effort;
//! - [`NoRecovery`] — the best-effort baseline.
//!
//! All strategies implement [`RecoveryAlgorithm`]: they react to gossip
//! rounds, detected losses, and incoming gossip by emitting
//! [`GossipAction`]s, which the simulation harness (or a real
//! transport) carries out. Algorithms never touch the network and never
//! mutate the dispatcher, so each is unit-testable in isolation.
//!
//! # Examples
//!
//! ```
//! use eps_gossip::{AlgorithmKind, GossipConfig};
//!
//! // Build one instance per dispatcher.
//! let mut algo = AlgorithmKind::CombinedPull.build(GossipConfig::default());
//! assert_eq!(algo.kind().name(), "combined-pull");
//! assert_eq!(algo.outstanding_losses(), 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod algorithm;
mod config;
mod envelope;
mod lost;
mod message;
mod pull_combined;
mod pull_publisher;
mod pull_random;
mod pull_subscriber;
mod push;
mod rounds;

pub use algorithm::{AlgorithmKind, NoRecovery, ParseAlgorithmError, RecoveryAlgorithm};
pub use config::GossipConfig;
pub use envelope::{Channel, Envelope};
pub use lost::LostBuffer;
pub use message::{GossipAction, GossipMessage};
pub use pull_combined::CombinedPull;
pub use pull_publisher::PublisherPull;
pub use pull_random::RandomPull;
pub use pull_subscriber::SubscriberPull;
pub use push::PushGossip;
