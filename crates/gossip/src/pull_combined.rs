//! The combined pull algorithm (paper, Section IV): per round,
//! publisher-based with probability `P_source`, otherwise
//! subscriber-based.

use eps_overlay::NodeId;
use eps_pubsub::{Dispatcher, Event, LossRecord};
use eps_sim::Rng;

use crate::algorithm::{AlgorithmKind, RecoveryAlgorithm};
use crate::config::GossipConfig;
use crate::lost::LostBuffer;
use crate::message::{GossipAction, GossipMessage};
use crate::rounds::{handle_pull_digest, handle_source_pull, publisher_round, subscriber_round};

/// Combined pull: the two pull variants complement each other — with
/// few subscribers per pattern the subscriber-based variant has nobody
/// to gossip with, while with many the publisher-based one involves
/// too small a fraction of dispatchers — and "perform best when
/// combined". One `Lost` buffer is shared; each round a biased coin
/// (`P_source`) picks which steering to use.
#[derive(Clone, Debug)]
pub struct CombinedPull {
    config: GossipConfig,
    lost: LostBuffer,
    publisher_rounds: u64,
    subscriber_rounds: u64,
}

impl CombinedPull {
    /// Creates a combined-pull instance.
    pub fn new(config: GossipConfig) -> Self {
        CombinedPull {
            lost: LostBuffer::new(config.max_attempts),
            config,
            publisher_rounds: 0,
            subscriber_rounds: 0,
        }
    }

    /// Rounds that used the publisher-based variant.
    pub fn publisher_rounds(&self) -> u64 {
        self.publisher_rounds
    }

    /// Rounds that used the subscriber-based variant.
    pub fn subscriber_rounds(&self) -> u64 {
        self.subscriber_rounds
    }
}

impl RecoveryAlgorithm for CombinedPull {
    fn kind(&self) -> AlgorithmKind {
        AlgorithmKind::CombinedPull
    }

    fn on_round(
        &mut self,
        node: &Dispatcher,
        _neighbors: &[NodeId],
        rng: &mut Rng,
    ) -> Vec<GossipAction> {
        if self.lost.is_empty() {
            return Vec::new();
        }
        if rng.random_bool(self.config.p_source) {
            self.publisher_rounds += 1;
            let actions = publisher_round(&mut self.lost, node, &self.config, rng);
            if !actions.is_empty() {
                return actions;
            }
            // No route known towards any missing source: fall back to
            // the subscriber variant rather than wasting the round.
            self.subscriber_rounds += 1;
            subscriber_round(&mut self.lost, node, &self.config, rng)
        } else {
            self.subscriber_rounds += 1;
            subscriber_round(&mut self.lost, node, &self.config, rng)
        }
    }

    fn on_gossip(
        &mut self,
        node: &Dispatcher,
        from: NodeId,
        msg: GossipMessage,
        _neighbors: &[NodeId],
        rng: &mut Rng,
    ) -> Vec<GossipAction> {
        match msg {
            GossipMessage::PullDigest {
                gossiper,
                pattern,
                lost,
            } => handle_pull_digest(node, &self.config, from, gossiper, pattern, lost, rng),
            GossipMessage::SourcePull {
                gossiper,
                source,
                lost,
                route,
            } => handle_source_pull(node, gossiper, source, lost, route),
            _ => Vec::new(),
        }
    }

    fn on_losses(&mut self, losses: &[LossRecord]) {
        for &record in losses {
            self.lost.add(record);
        }
    }

    fn on_event_received(&mut self, event: &Event) {
        self.lost.clear_for_event(event);
    }

    fn outstanding_losses(&self) -> usize {
        self.lost.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eps_pubsub::{DispatcherConfig, Event, EventId, PatternId};
    use eps_sim::RngFactory;

    fn record(source: u32, pattern: u16, seq: u64) -> LossRecord {
        LossRecord {
            source: NodeId::new(source),
            pattern: PatternId::new(pattern),
            seq,
        }
    }

    fn node_with_route_and_subscription() -> Dispatcher {
        let mut node = Dispatcher::new(
            NodeId::new(5),
            DispatcherConfig {
                cache_own_published: true,
                record_routes: true,
                ..DispatcherConfig::default()
            },
        );
        node.subscribe_local(PatternId::new(1), &[]);
        node.on_subscribe(PatternId::new(1), NodeId::new(3), &[]);
        let mut e = Event::new(
            EventId::new(NodeId::new(0), 0),
            vec![(PatternId::new(1), 0)],
        );
        e.record_hop(NodeId::new(3));
        node.on_event(e, Some(NodeId::new(3)));
        node
    }

    #[test]
    fn mixes_both_variants_over_many_rounds() {
        let node = node_with_route_and_subscription();
        let mut algo = CombinedPull::new(GossipConfig {
            p_forward: 1.0,
            p_source: 0.5,
            max_attempts: u32::MAX,
            ..GossipConfig::default()
        });
        let mut rng = RngFactory::new(9).stream("gossip");
        let mut saw_pull = false;
        let mut saw_source = false;
        for seq in 0..200u64 {
            algo.on_losses(&[record(0, 1, seq + 1)]);
            for action in algo.on_round(&node, &[], &mut rng) {
                match action {
                    GossipAction::Forward {
                        msg: GossipMessage::PullDigest { .. },
                        ..
                    } => saw_pull = true,
                    GossipAction::Forward {
                        msg: GossipMessage::SourcePull { .. },
                        ..
                    } => saw_source = true,
                    _ => {}
                }
            }
        }
        assert!(saw_pull, "subscriber variant never used");
        assert!(saw_source, "publisher variant never used");
        assert!(algo.publisher_rounds() > 0 && algo.subscriber_rounds() > 0);
    }

    #[test]
    fn p_source_one_always_steers_to_publisher() {
        let node = node_with_route_and_subscription();
        let mut algo = CombinedPull::new(GossipConfig {
            p_forward: 1.0,
            p_source: 1.0,
            ..GossipConfig::default()
        });
        algo.on_losses(&[record(0, 1, 5)]);
        let mut rng = RngFactory::new(9).stream("gossip");
        let actions = algo.on_round(&node, &[], &mut rng);
        assert!(matches!(
            actions[0],
            GossipAction::Forward {
                msg: GossipMessage::SourcePull { .. },
                ..
            }
        ));
    }

    #[test]
    fn falls_back_to_subscriber_without_routes() {
        // Node with a subscription but no route knowledge.
        let mut node = Dispatcher::new(NodeId::new(5), DispatcherConfig::default());
        node.subscribe_local(PatternId::new(1), &[]);
        node.on_subscribe(PatternId::new(1), NodeId::new(3), &[]);
        let mut algo = CombinedPull::new(GossipConfig {
            p_forward: 1.0,
            p_source: 1.0, // always tries publisher first
            ..GossipConfig::default()
        });
        algo.on_losses(&[record(0, 1, 5)]);
        let mut rng = RngFactory::new(9).stream("gossip");
        let actions = algo.on_round(&node, &[], &mut rng);
        assert!(
            matches!(
                actions[0],
                GossipAction::Forward {
                    msg: GossipMessage::PullDigest { .. },
                    ..
                }
            ),
            "expected subscriber fallback, got {actions:?}"
        );
    }

    #[test]
    fn handles_both_digest_kinds() {
        let node = node_with_route_and_subscription();
        let mut algo = CombinedPull::new(GossipConfig {
            p_forward: 1.0,
            ..GossipConfig::default()
        });
        let mut rng = RngFactory::new(9).stream("gossip");
        // It holds (0, p1, 0) in cache: both digests get served.
        let pull = GossipMessage::PullDigest {
            gossiper: NodeId::new(9),
            pattern: PatternId::new(1),
            lost: vec![record(0, 1, 0)],
        };
        let a1 = algo.on_gossip(&node, NodeId::new(3), pull, &[], &mut rng);
        assert!(matches!(a1[0], GossipAction::Reply { .. }));
        let source = GossipMessage::SourcePull {
            gossiper: NodeId::new(9),
            source: NodeId::new(0),
            lost: vec![record(0, 1, 0)],
            route: vec![NodeId::new(3)],
        };
        let a2 = algo.on_gossip(&node, NodeId::new(3), source, &[], &mut rng);
        assert!(matches!(a2[0], GossipAction::Reply { .. }));
    }

    #[test]
    fn empty_lost_buffer_skips_round() {
        let node = node_with_route_and_subscription();
        let mut algo = CombinedPull::new(GossipConfig::default());
        let mut rng = RngFactory::new(9).stream("gossip");
        assert!(algo.on_round(&node, &[], &mut rng).is_empty());
        assert_eq!(algo.publisher_rounds() + algo.subscriber_rounds(), 0);
    }
}
