//! The binary wire codec for [`Envelope`]: what the sim *accounts*,
//! the net runtime *sends*.
//!
//! Every envelope encodes to exactly
//! [`Envelope::wire_bits`]`(payload_bits) / 8` bytes, so the
//! simulator's byte accounting and the bytes a socket carries can
//! never drift: the codec pads short content with zeros up to the
//! accounted size and refuses ([`CodecError::Overflow`]) content that
//! exceeds it. The overflow case is not an implementation limit — it
//! is the paper's own modelling assumption ("gossip messages have at
//! most the same size as event messages") made enforceable: a digest
//! that does not fit in one event payload must be trimmed
//! ([`fit`]) before it can be sent.
//!
//! # Body format (version 1)
//!
//! All bodies start with a one-byte version and a one-byte type tag.
//! Multi-byte integers are LEB128 varints unless stated; route hops
//! are fixed 4-byte little-endian node ids (one hop =
//! [`eps_pubsub::ROUTE_HOP_BITS`] on the wire) and the event ids in a `Request`
//! are fixed 12-byte (source `u32`, seq `u64`) pairs (one id =
//! [`EVENT_ID_BITS`]). Zero padding extends each body to its
//! accounted size; decoding verifies the padding is zero, so
//! `encode(decode(bytes)) == bytes` for every valid encoding.
//!
//! | type | envelope                | content after the 2-byte header            | padded to (bytes) |
//! |------|-------------------------|--------------------------------------------|-------------------|
//! | 1    | `PubSub(Subscribe)`     | pattern                                    | 32                |
//! | 2    | `PubSub(Unsubscribe)`   | pattern                                    | 32                |
//! | 3    | `PubSub(Event)`         | event body (below)                         | P/8 + 4·hops      |
//! | 4    | `Gossip(PushDigest)`    | gossiper, pattern, n, n × (source, seq)    | P/8               |
//! | 5    | `Gossip(PullDigest)`    | gossiper, pattern, n, n × loss record      | P/8               |
//! | 6    | `Gossip(SourcePull)`    | gossiper, source, n, n × loss record, route| P/8 + 4·hops      |
//! | 7    | `Gossip(RandomPull)`    | gossiper, ttl, n, n × loss record          | P/8               |
//! | 8    | `Request`               | n, n × fixed event id                      | 32 + 12·n         |
//! | 9    | `Reply`                 | n, n × event body                          | Σ sizes, min 32   |
//! | 10   | `CrossEvent`            | event body (below)                         | P/8 + 4·hops      |
//! | 11   | `Gossip(SummaryDigest)` | gossiper, pattern, n, n × range summary, m, m × range detail | 32 + 21·n + Σ(9 + 12·ids) |
//! | 12   | `RangeRequest`          | pattern, n, n × range ref                  | 32 + 5·n          |
//!
//! A *range summary* is fixed-width: level `u8`, index `u32` LE, count
//! `u64` LE, hash `u64` LE — 21 bytes = [`SUMMARY_RANGE_BITS`]. A
//! *range detail* is a fixed 9-byte header (level `u8`, index `u32`
//! LE, id count `u32` LE = [`SUMMARY_DETAIL_BITS`]) followed by fixed
//! 12-byte event ids (as in a `Request`). A *range ref* is level `u8`
//! plus index `u32` LE — 5 bytes = [`RANGE_REF_BITS`]. Summary
//! digests are the one gossip kind accounted exactly rather than at
//! the flat event-payload rate, so they can never overflow and
//! [`fit`] always leaves them alone.
//!
//! An *event body* is: seq, route length, route hops (fixed u32),
//! pattern count, then (pattern, per-pattern seq) pairs. The source
//! is not stored separately — a recorded route always starts at the
//! source. A *loss record* is (source, pattern, seq), all varints.
//!
//! Framing is a transport concern and is **not** part of the
//! accounted size: the TCP tree links prefix each body with a 4-byte
//! little-endian length, and the UDP out-of-band channel prefixes the
//! 4-byte sender id (see `eps-net`). The paper's accounting has no
//! per-message transport header either, so the equivalence rule is:
//! accounted bytes = body bytes; framing rides on top on both sides.

use std::sync::Arc;

use eps_overlay::NodeId;
use eps_pubsub::summary::LEAF_LEVEL;
use eps_pubsub::{
    Event, EventId, LossRecord, PatternId, PubSubMessage, RangeDetail, RangeRef, RangeSummary,
};

use crate::envelope::Envelope;
use crate::message::GossipMessage;

/// Codec version byte leading every body.
pub const WIRE_VERSION: u8 = 1;

/// Wire size of a fixed-size control message (subscribe, unsubscribe,
/// and the header floor of requests and replies), in bits. The
/// paper's accounting assumes 256; the codec pads control bodies to
/// exactly this size.
pub const CONTROL_BITS: u64 = 256;

/// Wire size of one event identifier in a `Request`, in bits: a
/// 32-bit source plus a 64-bit sequence number, encoded fixed-width.
pub const EVENT_ID_BITS: u64 = 96;

/// Wire size of one hash-tree range aggregate in a summary digest, in
/// bits: level (8) + index (32) + count (64) + XOR hash (64),
/// fixed-width.
pub const SUMMARY_RANGE_BITS: u64 = 168;

/// Wire size of one expanded-range header in a summary digest, in
/// bits: level (8) + index (32) + id count (32), fixed-width; the ids
/// themselves follow at [`EVENT_ID_BITS`] each.
pub const SUMMARY_DETAIL_BITS: u64 = 72;

/// Wire size of one range reference in a `RangeRequest`, in bits:
/// level (8) + index (32), fixed-width.
pub const RANGE_REF_BITS: u64 = 40;

/// A decoding or encoding failure. Encoding fails only on content
/// that exceeds its accounted size ([`CodecError::Overflow`]) or an
/// unusable payload configuration; every other variant is a decode
/// error describing why the bytes are not a valid envelope.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CodecError {
    /// The configured event payload is not a whole number of bytes.
    UnalignedPayload(u64),
    /// Packed content exceeds the accounted envelope size.
    Overflow {
        /// Bytes the content needs.
        needed: usize,
        /// Bytes the accounting allows.
        budget: usize,
    },
    /// The buffer ended before the content did.
    Truncated,
    /// Unknown codec version byte.
    BadVersion(u8),
    /// Unknown envelope type byte.
    BadType(u8),
    /// Structurally invalid content (the reason names the field).
    Malformed(&'static str),
    /// The buffer length does not equal the envelope's accounted size.
    BadLength {
        /// Accounted size of the decoded envelope.
        expected: usize,
        /// Actual buffer length.
        got: usize,
    },
    /// Padding bytes after the content were not zero.
    DirtyPadding,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            CodecError::UnalignedPayload(bits) => {
                write!(f, "event payload of {bits} bits is not byte-aligned")
            }
            CodecError::Overflow { needed, budget } => {
                write!(
                    f,
                    "content needs {needed} bytes, accounting allows {budget}"
                )
            }
            CodecError::Truncated => write!(f, "buffer ended before the content"),
            CodecError::BadVersion(v) => write!(f, "unknown codec version {v}"),
            CodecError::BadType(t) => write!(f, "unknown envelope type {t}"),
            CodecError::Malformed(what) => write!(f, "malformed content: {what}"),
            CodecError::BadLength { expected, got } => {
                write!(f, "body is {got} bytes, accounting says {expected}")
            }
            CodecError::DirtyPadding => write!(f, "nonzero padding"),
        }
    }
}

impl std::error::Error for CodecError {}

const T_SUBSCRIBE: u8 = 1;
const T_UNSUBSCRIBE: u8 = 2;
const T_EVENT: u8 = 3;
const T_PUSH: u8 = 4;
const T_PULL: u8 = 5;
const T_SOURCE_PULL: u8 = 6;
const T_RANDOM_PULL: u8 = 7;
const T_REQUEST: u8 = 8;
const T_REPLY: u8 = 9;
const T_CROSS_EVENT: u8 = 10;
const T_SUMMARY: u8 = 11;
const T_RANGE_REQUEST: u8 = 12;

/// Upper bound on decoded list lengths (routes, digests, replies):
/// rejects garbage that would otherwise ask for absurd allocations.
const MAX_LIST: u64 = 1 << 20;

/// The exact encoded size of `env` in bytes — by construction equal
/// to [`Envelope::wire_bits`]` / 8`.
///
/// # Errors
///
/// [`CodecError::UnalignedPayload`] if `payload_bits` is not a
/// multiple of 8 (every accounted constant already is).
pub fn encoded_len(env: &Envelope, payload_bits: u64) -> Result<usize, CodecError> {
    if payload_bits == 0 || !payload_bits.is_multiple_of(8) {
        return Err(CodecError::UnalignedPayload(payload_bits));
    }
    Ok((env.wire_bits(payload_bits) / 8) as usize)
}

/// Encodes `env` into a fresh buffer of exactly
/// [`encoded_len`]`(env, payload_bits)` bytes.
///
/// # Errors
///
/// See [`encode_into`].
pub fn encode(env: &Envelope, payload_bits: u64) -> Result<Vec<u8>, CodecError> {
    let mut out = Vec::new();
    encode_into(env, payload_bits, &mut out)?;
    Ok(out)
}

/// Encodes `env` into `out` (cleared first), zero-padding up to the
/// accounted size.
///
/// # Errors
///
/// [`CodecError::Overflow`] when the packed content exceeds the
/// accounted size — for gossip digests this means the digest breaks
/// the paper's one-event-payload bound and must be trimmed with
/// [`fit`] first; [`CodecError::UnalignedPayload`] on a payload size
/// that is not a whole number of bytes.
pub fn encode_into(env: &Envelope, payload_bits: u64, out: &mut Vec<u8>) -> Result<(), CodecError> {
    let target = encoded_len(env, payload_bits)?;
    out.clear();
    out.push(WIRE_VERSION);
    match env {
        Envelope::PubSub(PubSubMessage::Subscribe(p)) => {
            out.push(T_SUBSCRIBE);
            put_varint(out, u64::from(p.value()));
        }
        Envelope::PubSub(PubSubMessage::Unsubscribe(p)) => {
            out.push(T_UNSUBSCRIBE);
            put_varint(out, u64::from(p.value()));
        }
        Envelope::PubSub(PubSubMessage::Event(event)) => {
            out.push(T_EVENT);
            put_event_body(out, event);
        }
        Envelope::CrossEvent(event) => {
            out.push(T_CROSS_EVENT);
            put_event_body(out, event);
        }
        Envelope::Gossip(GossipMessage::PushDigest {
            gossiper,
            pattern,
            ids,
        }) => {
            out.push(T_PUSH);
            put_varint(out, u64::from(gossiper.value()));
            put_varint(out, u64::from(pattern.value()));
            put_varint(out, ids.len() as u64);
            for id in ids.iter() {
                put_varint(out, u64::from(id.source().value()));
                put_varint(out, id.seq());
            }
        }
        Envelope::Gossip(GossipMessage::PullDigest {
            gossiper,
            pattern,
            lost,
        }) => {
            out.push(T_PULL);
            put_varint(out, u64::from(gossiper.value()));
            put_varint(out, u64::from(pattern.value()));
            put_losses(out, lost);
        }
        Envelope::Gossip(GossipMessage::SourcePull {
            gossiper,
            source,
            lost,
            route,
        }) => {
            out.push(T_SOURCE_PULL);
            put_varint(out, u64::from(gossiper.value()));
            put_varint(out, u64::from(source.value()));
            put_losses(out, lost);
            put_varint(out, route.len() as u64);
            for hop in route {
                out.extend_from_slice(&hop.value().to_le_bytes());
            }
        }
        Envelope::Gossip(GossipMessage::RandomPull {
            gossiper,
            lost,
            ttl,
        }) => {
            out.push(T_RANDOM_PULL);
            put_varint(out, u64::from(gossiper.value()));
            put_varint(out, u64::from(*ttl));
            put_losses(out, lost);
        }
        Envelope::Request(ids) => {
            out.push(T_REQUEST);
            put_varint(out, ids.len() as u64);
            for id in ids {
                out.extend_from_slice(&id.source().value().to_le_bytes());
                out.extend_from_slice(&id.seq().to_le_bytes());
            }
        }
        Envelope::Reply(events) => {
            out.push(T_REPLY);
            put_varint(out, events.len() as u64);
            for event in events {
                put_event_body(out, event);
            }
        }
        Envelope::Gossip(GossipMessage::SummaryDigest {
            gossiper,
            pattern,
            ranges,
            details,
        }) => {
            out.push(T_SUMMARY);
            put_varint(out, u64::from(gossiper.value()));
            put_varint(out, u64::from(pattern.value()));
            put_varint(out, ranges.len() as u64);
            for r in ranges.iter() {
                put_range_ref(out, r.range);
                out.extend_from_slice(&r.count.to_le_bytes());
                out.extend_from_slice(&r.hash.to_le_bytes());
            }
            put_varint(out, details.len() as u64);
            for d in details.iter() {
                put_range_ref(out, d.range);
                out.extend_from_slice(&(d.ids.len() as u32).to_le_bytes());
                for id in &d.ids {
                    out.extend_from_slice(&id.source().value().to_le_bytes());
                    out.extend_from_slice(&id.seq().to_le_bytes());
                }
            }
        }
        Envelope::RangeRequest { pattern, ranges } => {
            out.push(T_RANGE_REQUEST);
            put_varint(out, u64::from(pattern.value()));
            put_varint(out, ranges.len() as u64);
            for &r in ranges {
                put_range_ref(out, r);
            }
        }
    }
    if out.len() > target {
        return Err(CodecError::Overflow {
            needed: out.len(),
            budget: target,
        });
    }
    out.resize(target, 0);
    Ok(())
}

/// Decodes one envelope body (no framing) encoded with the same
/// `payload_bits`.
///
/// # Errors
///
/// Any [`CodecError`] decode variant: wrong version or type, content
/// running past the buffer, structurally invalid fields, a buffer
/// length that disagrees with the decoded envelope's accounted size,
/// or nonzero padding.
pub fn decode(buf: &[u8], payload_bits: u64) -> Result<Envelope, CodecError> {
    if payload_bits == 0 || !payload_bits.is_multiple_of(8) {
        return Err(CodecError::UnalignedPayload(payload_bits));
    }
    let mut cur = Cursor { buf, pos: 0 };
    let version = cur.u8()?;
    if version != WIRE_VERSION {
        return Err(CodecError::BadVersion(version));
    }
    let tag = cur.u8()?;
    let env = match tag {
        T_SUBSCRIBE => Envelope::PubSub(PubSubMessage::Subscribe(cur.pattern()?)),
        T_UNSUBSCRIBE => Envelope::PubSub(PubSubMessage::Unsubscribe(cur.pattern()?)),
        T_EVENT => Envelope::PubSub(PubSubMessage::Event(cur.event_body()?)),
        T_CROSS_EVENT => Envelope::CrossEvent(cur.event_body()?),
        T_PUSH => {
            let gossiper = cur.node()?;
            let pattern = cur.pattern()?;
            let n = cur.list_len()?;
            let mut ids = Vec::with_capacity(n);
            for _ in 0..n {
                let source = cur.node()?;
                let seq = cur.varint()?;
                ids.push(EventId::new(source, seq));
            }
            Envelope::Gossip(GossipMessage::PushDigest {
                gossiper,
                pattern,
                ids: Arc::new(ids),
            })
        }
        T_PULL => {
            let gossiper = cur.node()?;
            let pattern = cur.pattern()?;
            let lost = cur.losses()?;
            Envelope::Gossip(GossipMessage::PullDigest {
                gossiper,
                pattern,
                lost,
            })
        }
        T_SOURCE_PULL => {
            let gossiper = cur.node()?;
            let source = cur.node()?;
            let lost = cur.losses()?;
            let hops = cur.list_len()?;
            let mut route = Vec::with_capacity(hops);
            for _ in 0..hops {
                route.push(NodeId::new(cur.u32_le()?));
            }
            Envelope::Gossip(GossipMessage::SourcePull {
                gossiper,
                source,
                lost,
                route,
            })
        }
        T_RANDOM_PULL => {
            let gossiper = cur.node()?;
            let ttl = cur.varint()?;
            if ttl > u64::from(u32::MAX) {
                return Err(CodecError::Malformed("ttl exceeds u32"));
            }
            let lost = cur.losses()?;
            Envelope::Gossip(GossipMessage::RandomPull {
                gossiper,
                lost,
                ttl: ttl as u32,
            })
        }
        T_REQUEST => {
            let n = cur.list_len()?;
            let mut ids = Vec::with_capacity(n);
            for _ in 0..n {
                let source = NodeId::new(cur.u32_le()?);
                let seq = cur.u64_le()?;
                ids.push(EventId::new(source, seq));
            }
            Envelope::Request(ids)
        }
        T_REPLY => {
            let n = cur.list_len()?;
            let mut events = Vec::with_capacity(n);
            for _ in 0..n {
                events.push(cur.event_body()?);
            }
            Envelope::Reply(events)
        }
        T_SUMMARY => {
            let gossiper = cur.node()?;
            let pattern = cur.pattern()?;
            let nranges = cur.list_len()?;
            let mut ranges = Vec::with_capacity(nranges);
            for _ in 0..nranges {
                let range = cur.range_ref()?;
                let count = cur.u64_le()?;
                let hash = cur.u64_le()?;
                ranges.push(RangeSummary { range, count, hash });
            }
            let ndetails = cur.list_len()?;
            let mut details = Vec::with_capacity(ndetails);
            for _ in 0..ndetails {
                let range = cur.range_ref()?;
                let nids = cur.u32_le()?;
                if u64::from(nids) > MAX_LIST {
                    return Err(CodecError::Malformed("list length is implausible"));
                }
                let mut ids = Vec::with_capacity(nids as usize);
                for _ in 0..nids {
                    let source = NodeId::new(cur.u32_le()?);
                    let seq = cur.u64_le()?;
                    ids.push(EventId::new(source, seq));
                }
                details.push(RangeDetail { range, ids });
            }
            Envelope::Gossip(GossipMessage::SummaryDigest {
                gossiper,
                pattern,
                ranges: Arc::new(ranges),
                details: Arc::new(details),
            })
        }
        T_RANGE_REQUEST => {
            let pattern = cur.pattern()?;
            let n = cur.list_len()?;
            let mut ranges = Vec::with_capacity(n);
            for _ in 0..n {
                ranges.push(cur.range_ref()?);
            }
            Envelope::RangeRequest { pattern, ranges }
        }
        other => return Err(CodecError::BadType(other)),
    };
    let expected = (env.wire_bits(payload_bits) / 8) as usize;
    if buf.len() != expected {
        return Err(CodecError::BadLength {
            expected,
            got: buf.len(),
        });
    }
    if !cur.rest_is_zero() {
        return Err(CodecError::DirtyPadding);
    }
    Ok(env)
}

/// Trims a gossip digest down to the paper's one-event-payload bound
/// so it encodes without [`CodecError::Overflow`], returning the
/// envelope and how many digest entries were dropped. Non-digest
/// envelopes (and digests that already fit) come back unchanged with
/// zero drops.
///
/// Push digests list the cache oldest-first, and every round
/// re-announces the whole cache — so trimming drops the *front*
/// (oldest) entries, which earlier, smaller digests already carried.
/// Trimming the tail instead would permanently hide the newest events
/// from a full digest, a structural blind spot. Pull digests trim the
/// tail: their oldest entries are the longest-outstanding losses, the
/// ones that most need announcing.
pub fn fit(mut env: Envelope, payload_bits: u64) -> (Envelope, u64) {
    let mut dropped = 0u64;
    let mut scratch = Vec::new();
    loop {
        match encode_into(&env, payload_bits, &mut scratch) {
            Err(CodecError::Overflow { .. }) => match &mut env {
                Envelope::Gossip(GossipMessage::PushDigest { ids, .. }) if !ids.is_empty() => {
                    Arc::make_mut(ids).remove(0);
                    dropped += 1;
                }
                Envelope::Gossip(
                    GossipMessage::PullDigest { lost, .. }
                    | GossipMessage::SourcePull { lost, .. }
                    | GossipMessage::RandomPull { lost, .. },
                ) if !lost.is_empty() => {
                    lost.pop();
                    dropped += 1;
                }
                _ => return (env, dropped),
            },
            _ => return (env, dropped),
        }
    }
}

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn put_event_body(out: &mut Vec<u8>, event: &Event) {
    put_varint(out, event.id().seq());
    put_varint(out, event.route().len() as u64);
    for hop in event.route() {
        out.extend_from_slice(&hop.value().to_le_bytes());
    }
    put_varint(out, event.pattern_seqs().len() as u64);
    for &(pattern, seq) in event.pattern_seqs() {
        put_varint(out, u64::from(pattern.value()));
        put_varint(out, seq);
    }
}

fn put_range_ref(out: &mut Vec<u8>, range: RangeRef) {
    out.push(range.level());
    out.extend_from_slice(&range.index().to_le_bytes());
}

fn put_losses(out: &mut Vec<u8>, lost: &[LossRecord]) {
    put_varint(out, lost.len() as u64);
    for rec in lost {
        put_varint(out, u64::from(rec.source.value()));
        put_varint(out, u64::from(rec.pattern.value()));
        put_varint(out, rec.seq);
    }
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn u8(&mut self) -> Result<u8, CodecError> {
        let byte = *self.buf.get(self.pos).ok_or(CodecError::Truncated)?;
        self.pos += 1;
        Ok(byte)
    }

    fn varint(&mut self) -> Result<u64, CodecError> {
        let mut value = 0u64;
        for shift in (0..64).step_by(7) {
            let byte = self.u8()?;
            value |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
        }
        Err(CodecError::Malformed("varint exceeds 64 bits"))
    }

    fn u32_le(&mut self) -> Result<u32, CodecError> {
        let end = self.pos.checked_add(4).ok_or(CodecError::Truncated)?;
        let bytes = self.buf.get(self.pos..end).ok_or(CodecError::Truncated)?;
        self.pos = end;
        Ok(u32::from_le_bytes(bytes.try_into().expect("4 bytes")))
    }

    fn u64_le(&mut self) -> Result<u64, CodecError> {
        let end = self.pos.checked_add(8).ok_or(CodecError::Truncated)?;
        let bytes = self.buf.get(self.pos..end).ok_or(CodecError::Truncated)?;
        self.pos = end;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    fn node(&mut self) -> Result<NodeId, CodecError> {
        let raw = self.varint()?;
        if raw > u64::from(u32::MAX) {
            return Err(CodecError::Malformed("node id exceeds u32"));
        }
        Ok(NodeId::new(raw as u32))
    }

    fn pattern(&mut self) -> Result<PatternId, CodecError> {
        let raw = self.varint()?;
        if raw > u64::from(u16::MAX) {
            return Err(CodecError::Malformed("pattern id exceeds u16"));
        }
        Ok(PatternId::new(raw as u16))
    }

    fn list_len(&mut self) -> Result<usize, CodecError> {
        let n = self.varint()?;
        if n > MAX_LIST {
            return Err(CodecError::Malformed("list length is implausible"));
        }
        Ok(n as usize)
    }

    fn range_ref(&mut self) -> Result<RangeRef, CodecError> {
        let level = self.u8()?;
        let index = self.u32_le()?;
        if level > LEAF_LEVEL {
            return Err(CodecError::Malformed("range level too deep"));
        }
        if u64::from(index) >= 1u64 << (4 * u32::from(level)) {
            return Err(CodecError::Malformed("range index out of range for level"));
        }
        Ok(RangeRef::new(level, index))
    }

    fn losses(&mut self) -> Result<Vec<LossRecord>, CodecError> {
        let n = self.list_len()?;
        let mut lost = Vec::with_capacity(n);
        for _ in 0..n {
            let source = self.node()?;
            let pattern = self.pattern()?;
            let seq = self.varint()?;
            lost.push(LossRecord {
                source,
                pattern,
                seq,
            });
        }
        Ok(lost)
    }

    fn event_body(&mut self) -> Result<Event, CodecError> {
        let seq = self.varint()?;
        let hops = self.list_len()?;
        if hops == 0 {
            return Err(CodecError::Malformed("event route is empty"));
        }
        let mut route = Vec::with_capacity(hops);
        for _ in 0..hops {
            route.push(NodeId::new(self.u32_le()?));
        }
        let npat = self.list_len()?;
        if npat == 0 {
            return Err(CodecError::Malformed("event matches no pattern"));
        }
        let mut pattern_seqs = Vec::with_capacity(npat);
        for _ in 0..npat {
            let pattern = self.pattern()?;
            let pseq = self.varint()?;
            if let Some(&(prev, _)) = pattern_seqs.last() {
                if prev >= pattern {
                    return Err(CodecError::Malformed("event patterns not strictly sorted"));
                }
            }
            pattern_seqs.push((pattern, pseq));
        }
        let id = EventId::new(route[0], seq);
        Ok(Event::from_wire(id, pattern_seqs, route))
    }

    fn rest_is_zero(&self) -> bool {
        self.buf[self.pos..].iter().all(|&b| b == 0)
    }
}

#[cfg(test)]
mod tests {
    use eps_pubsub::ROUTE_HOP_BITS;

    use super::*;

    const P: u64 = 1024;

    fn event(hops: u32, patterns: u16) -> Event {
        let mut e = Event::new(
            EventId::new(NodeId::new(3), 41),
            (0..patterns)
                .map(|p| (PatternId::new(p * 2), u64::from(p) + 7))
                .collect(),
        );
        for h in 0..hops {
            e.record_hop(NodeId::new(100 + h));
        }
        e
    }

    fn losses(n: u64) -> Vec<LossRecord> {
        (0..n)
            .map(|i| LossRecord {
                source: NodeId::new((i % 5) as u32),
                pattern: PatternId::new((i % 7) as u16),
                seq: 1000 + i,
            })
            .collect()
    }

    fn battery() -> Vec<Envelope> {
        vec![
            Envelope::PubSub(PubSubMessage::Subscribe(PatternId::new(0))),
            Envelope::PubSub(PubSubMessage::Subscribe(PatternId::new(u16::MAX))),
            Envelope::PubSub(PubSubMessage::Unsubscribe(PatternId::new(69))),
            Envelope::PubSub(PubSubMessage::Event(event(0, 1))),
            Envelope::PubSub(PubSubMessage::Event(event(9, 3))),
            Envelope::CrossEvent(event(0, 1)),
            Envelope::CrossEvent(event(4, 2)),
            Envelope::Gossip(GossipMessage::PushDigest {
                gossiper: NodeId::new(1),
                pattern: PatternId::new(4),
                ids: Arc::new(vec![]),
            }),
            Envelope::Gossip(GossipMessage::PushDigest {
                gossiper: NodeId::new(1),
                pattern: PatternId::new(4),
                ids: Arc::new(
                    (0..20)
                        .map(|i| EventId::new(NodeId::new(i), 50 + u64::from(i)))
                        .collect(),
                ),
            }),
            Envelope::Gossip(GossipMessage::PullDigest {
                gossiper: NodeId::new(2),
                pattern: PatternId::new(5),
                lost: losses(12),
            }),
            Envelope::Gossip(GossipMessage::SourcePull {
                gossiper: NodeId::new(2),
                source: NodeId::new(9),
                lost: losses(6),
                route: (0..4).map(NodeId::new).collect(),
            }),
            Envelope::Gossip(GossipMessage::SourcePull {
                gossiper: NodeId::new(2),
                source: NodeId::new(9),
                lost: vec![],
                route: vec![],
            }),
            Envelope::Gossip(GossipMessage::RandomPull {
                gossiper: NodeId::new(3),
                lost: losses(3),
                ttl: 8,
            }),
            Envelope::Request(vec![]),
            Envelope::Request(vec![EventId::new(NodeId::new(7), u64::MAX)]),
            Envelope::Reply(vec![]),
            Envelope::Reply(vec![event(0, 1), event(5, 2)]),
            Envelope::Gossip(GossipMessage::SummaryDigest {
                gossiper: NodeId::new(4),
                pattern: PatternId::new(6),
                ranges: Arc::new(vec![]),
                details: Arc::new(vec![]),
            }),
            Envelope::Gossip(GossipMessage::SummaryDigest {
                gossiper: NodeId::new(4),
                pattern: PatternId::new(6),
                ranges: Arc::new(vec![
                    RangeSummary {
                        range: RangeRef::ROOT,
                        count: 42,
                        hash: 0xdead_beef_cafe_f00d,
                    },
                    RangeSummary {
                        range: RangeRef::new(3, 0xabc),
                        count: 7,
                        hash: u64::MAX,
                    },
                ]),
                details: Arc::new(vec![
                    RangeDetail {
                        range: RangeRef::new(LEAF_LEVEL, 0xfffff),
                        ids: (0..5)
                            .map(|i| EventId::new(NodeId::new(i), 900 + u64::from(i)))
                            .collect(),
                    },
                    RangeDetail {
                        range: RangeRef::new(2, 0),
                        ids: vec![],
                    },
                ]),
            }),
            Envelope::RangeRequest {
                pattern: PatternId::new(6),
                ranges: vec![],
            },
            Envelope::RangeRequest {
                pattern: PatternId::new(6),
                ranges: vec![RangeRef::ROOT, RangeRef::new(1, 15), RangeRef::new(5, 1)],
            },
        ]
    }

    #[test]
    fn encoded_len_equals_wire_bits_for_every_variant() {
        for env in battery() {
            let len = encoded_len(&env, P).unwrap();
            assert_eq!(len as u64 * 8, env.wire_bits(P), "size drift: {env:?}");
        }
    }

    #[test]
    fn roundtrip_every_variant() {
        for env in battery() {
            let bytes = encode(&env, P).unwrap();
            assert_eq!(bytes.len(), encoded_len(&env, P).unwrap());
            let back = decode(&bytes, P).unwrap();
            assert_eq!(back, env);
            // And bytes → envelope → bytes is the identity too.
            assert_eq!(encode(&back, P).unwrap(), bytes);
        }
    }

    #[test]
    fn unaligned_payloads_are_rejected() {
        let env = Envelope::Request(vec![]);
        assert_eq!(
            encode(&env, 1001).unwrap_err(),
            CodecError::UnalignedPayload(1001)
        );
        assert_eq!(
            decode(&[0u8; 4], 0).unwrap_err(),
            CodecError::UnalignedPayload(0)
        );
    }

    #[test]
    fn dirty_padding_is_rejected() {
        let env = Envelope::PubSub(PubSubMessage::Subscribe(PatternId::new(3)));
        let mut bytes = encode(&env, P).unwrap();
        *bytes.last_mut().unwrap() = 1;
        assert_eq!(decode(&bytes, P).unwrap_err(), CodecError::DirtyPadding);
    }

    #[test]
    fn truncation_and_bad_headers_are_rejected() {
        let env = Envelope::PubSub(PubSubMessage::Event(event(2, 2)));
        let bytes = encode(&env, P).unwrap();
        assert_eq!(decode(&bytes[..1], P).unwrap_err(), CodecError::Truncated);
        let mut wrong_version = bytes.clone();
        wrong_version[0] = 9;
        assert_eq!(
            decode(&wrong_version, P).unwrap_err(),
            CodecError::BadVersion(9)
        );
        let mut wrong_type = bytes.clone();
        wrong_type[1] = 200;
        assert_eq!(
            decode(&wrong_type, P).unwrap_err(),
            CodecError::BadType(200)
        );
        let mut overlong = bytes;
        overlong.push(0);
        assert!(matches!(
            decode(&overlong, P).unwrap_err(),
            CodecError::BadLength { .. }
        ));
    }

    #[test]
    fn oversized_digests_overflow_and_fit_trims_them() {
        let env = Envelope::Gossip(GossipMessage::PushDigest {
            gossiper: NodeId::new(0),
            pattern: PatternId::new(0),
            ids: Arc::new(
                (0..200u64)
                    .map(|i| EventId::new(NodeId::new(0), i))
                    .collect(),
            ),
        });
        assert!(matches!(
            encode(&env, P).unwrap_err(),
            CodecError::Overflow { .. }
        ));
        let (fitted, dropped) = fit(env, P);
        assert!(dropped > 0);
        let bytes = encode(&fitted, P).unwrap();
        assert_eq!(bytes.len() as u64 * 8, fitted.wire_bits(P));
        // The surviving suffix — the newest cache entries — is intact;
        // the dropped front was already announced by earlier rounds.
        match decode(&bytes, P).unwrap() {
            Envelope::Gossip(GossipMessage::PushDigest { ids, .. }) => {
                assert_eq!(ids.len() as u64 + dropped, 200);
                assert_eq!(ids[0], EventId::new(NodeId::new(0), dropped));
                assert_eq!(*ids.last().unwrap(), EventId::new(NodeId::new(0), 199));
            }
            other => panic!("decoded to {other:?}"),
        }
    }

    #[test]
    fn fit_leaves_fitting_envelopes_alone() {
        for env in battery() {
            let (fitted, dropped) = fit(env.clone(), P);
            assert_eq!(dropped, 0);
            assert_eq!(fitted, env);
        }
    }

    #[test]
    fn fixed_width_fields_match_their_accounted_constants() {
        // One request id = 12 bytes; one route hop = 4 bytes.
        assert_eq!(EVENT_ID_BITS / 8, 12);
        assert_eq!(ROUTE_HOP_BITS / 8, 4);
        assert_eq!(CONTROL_BITS / 8, 32);
        let empty = encode(&Envelope::Request(vec![]), P).unwrap();
        let one = encode(&Envelope::Request(vec![EventId::new(NodeId::new(1), 2)]), P).unwrap();
        assert_eq!(one.len() - empty.len(), (EVENT_ID_BITS / 8) as usize);
    }

    #[test]
    fn summary_fixed_widths_match_their_accounted_constants() {
        // One range aggregate = 21 bytes, one detail header = 9, one
        // range ref = 5.
        assert_eq!(SUMMARY_RANGE_BITS / 8, 21);
        assert_eq!(SUMMARY_DETAIL_BITS / 8, 9);
        assert_eq!(RANGE_REF_BITS / 8, 5);
        let base = Envelope::RangeRequest {
            pattern: PatternId::new(1),
            ranges: vec![],
        };
        let one = Envelope::RangeRequest {
            pattern: PatternId::new(1),
            ranges: vec![RangeRef::new(2, 200)],
        };
        let grown = encode(&one, P).unwrap().len() - encode(&base, P).unwrap().len();
        assert_eq!(grown, (RANGE_REF_BITS / 8) as usize);
    }

    #[test]
    fn invalid_range_refs_are_rejected() {
        // A level-1 range only has indices 0..16; index 16 is invalid.
        let mut buf = vec![WIRE_VERSION, T_RANGE_REQUEST];
        put_varint(&mut buf, 1); // pattern
        put_varint(&mut buf, 1); // one range
        buf.push(1); // level 1
        buf.extend_from_slice(&16u32.to_le_bytes());
        buf.resize((CONTROL_BITS / 8 + RANGE_REF_BITS / 8) as usize, 0);
        assert_eq!(
            decode(&buf, P).unwrap_err(),
            CodecError::Malformed("range index out of range for level")
        );
        let mut deep = vec![WIRE_VERSION, T_RANGE_REQUEST];
        put_varint(&mut deep, 1);
        put_varint(&mut deep, 1);
        deep.push(LEAF_LEVEL + 1);
        deep.extend_from_slice(&0u32.to_le_bytes());
        deep.resize((CONTROL_BITS / 8 + RANGE_REF_BITS / 8) as usize, 0);
        assert_eq!(
            decode(&deep, P).unwrap_err(),
            CodecError::Malformed("range level too deep")
        );
    }

    #[test]
    fn summary_digests_never_overflow_the_codec() {
        // The exact accounting means even a huge digest encodes at its
        // own accounted size — fit() must leave it untouched.
        let env = Envelope::Gossip(GossipMessage::SummaryDigest {
            gossiper: NodeId::new(0),
            pattern: PatternId::new(0),
            ranges: Arc::new(
                (0..200u32)
                    .map(|i| RangeSummary {
                        range: RangeRef::new(3, i),
                        count: u64::from(i),
                        hash: u64::from(i) * 77,
                    })
                    .collect(),
            ),
            details: Arc::new(vec![RangeDetail {
                range: RangeRef::new(5, 9),
                ids: (0..500).map(|i| EventId::new(NodeId::new(1), i)).collect(),
            }]),
        });
        let bytes = encode(&env, P).unwrap();
        assert_eq!(bytes.len() as u64 * 8, env.wire_bits(P));
        let (fitted, dropped) = fit(env.clone(), P);
        assert_eq!(dropped, 0);
        assert_eq!(fitted, env);
    }

    #[test]
    fn malformed_event_bodies_are_rejected() {
        // Hand-build an event body whose patterns are unsorted.
        let mut buf = vec![WIRE_VERSION, T_EVENT];
        put_varint(&mut buf, 1); // seq
        put_varint(&mut buf, 1); // one hop
        buf.extend_from_slice(&3u32.to_le_bytes());
        put_varint(&mut buf, 2); // two patterns
        put_varint(&mut buf, 5);
        put_varint(&mut buf, 0);
        put_varint(&mut buf, 5); // duplicate pattern
        put_varint(&mut buf, 0);
        buf.resize((P / 8) as usize + 4, 0);
        assert_eq!(
            decode(&buf, P).unwrap_err(),
            CodecError::Malformed("event patterns not strictly sorted")
        );
    }
}
