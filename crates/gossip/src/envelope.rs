//! The unified wire envelope: every message class the system puts on
//! a network — pub-sub protocol traffic, gossip digests, and
//! out-of-band recovery requests/replies — under one type with one
//! byte-accounting rule.
//!
//! This is the single source of truth for wire sizes. The paper's
//! accounting assumptions, in one place:
//!
//! - subscription control messages are small and fixed-size (256 bits);
//! - an event message costs its payload plus 32 bits per recorded
//!   route hop;
//! - a gossip digest costs (at most) one event payload, plus the
//!   explicit route carried by publisher-steered digests;
//! - an out-of-band request costs a fixed header plus 96 bits per
//!   requested event id; a reply carries full event copies, with the
//!   same fixed floor.

use eps_pubsub::{Event, EventId, PatternId, PubSubMessage, RangeRef, ROUTE_HOP_BITS};

use crate::codec::{
    CONTROL_BITS, EVENT_ID_BITS, RANGE_REF_BITS, SUMMARY_DETAIL_BITS, SUMMARY_RANGE_BITS,
};
use crate::message::GossipMessage;

/// Which network a message travels on: the routing-view overlay links
/// (subject to per-link loss, queueing, and breakage), a physical
/// cross link the routing view does not use, or the out-of-band
/// channel recovery uses to bypass a faulty tree.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Channel {
    /// An overlay link of the routing view (the dispatching tree).
    Tree,
    /// A physical overlay link outside the routing view — the chords a
    /// cyclic overlay has on top of its spanning tree. Simulated with
    /// the same link model as `Tree`; carried over UDP (not a tree TCP
    /// connection) by the socket runtime.
    Cross,
    /// The direct dispatcher-to-dispatcher recovery channel.
    OutOfBand,
}

/// One message on a wire, of any protocol layer.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Envelope {
    /// Best-effort pub-sub traffic: subscriptions and events.
    PubSub(PubSubMessage),
    /// An epidemic-recovery digest.
    Gossip(GossipMessage),
    /// An event copy replicated over a physical cross link — the
    /// redundant dissemination a cyclic overlay performs alongside the
    /// routing tree, and the reason redundant-delivery suppression is
    /// counted once cycles exist.
    CrossEvent(Event),
    /// An out-of-band retransmission request for the identified events.
    Request(Vec<EventId>),
    /// An out-of-band retransmission carrying full event copies.
    Reply(Vec<Event>),
    /// An out-of-band summary-refinement request: asks a gossiper to
    /// expand the given hash-tree ranges of `pattern` in its next
    /// round (summary reconciliation's recursion step).
    RangeRequest {
        /// The pattern whose summary disagreed.
        pattern: PatternId,
        /// The ranges to expand.
        ranges: Vec<RangeRef>,
    },
}

impl Envelope {
    /// The channel this message class travels on.
    pub fn channel(&self) -> Channel {
        match self {
            Envelope::PubSub(_) | Envelope::Gossip(_) => Channel::Tree,
            Envelope::CrossEvent(_) => Channel::Cross,
            Envelope::Request(_) | Envelope::Reply(_) | Envelope::RangeRequest { .. } => {
                Channel::OutOfBand
            }
        }
    }

    /// Wire size in bits, given the configured event payload size —
    /// the one accounting rule for every message class. This is not an
    /// estimate: [`crate::codec::encode`] produces exactly this many
    /// bits for every envelope (the constants here are the codec's own
    /// [`CONTROL_BITS`], [`EVENT_ID_BITS`], and
    /// [`eps_pubsub::ROUTE_HOP_BITS`]).
    pub fn wire_bits(&self, event_payload_bits: u64) -> u64 {
        match self {
            Envelope::PubSub(PubSubMessage::Subscribe(_))
            | Envelope::PubSub(PubSubMessage::Unsubscribe(_)) => CONTROL_BITS,
            Envelope::PubSub(PubSubMessage::Event(e)) | Envelope::CrossEvent(e) => {
                e.wire_bits(event_payload_bits)
            }
            // Per the paper, a gossip digest costs (at most) one event
            // message; publisher-steered digests also carry their route.
            Envelope::Gossip(GossipMessage::SourcePull { route, .. }) => {
                event_payload_bits + ROUTE_HOP_BITS * route.len() as u64
            }
            // Summary digests are the exception to the flat-payload
            // rule: their whole point is a wire cost proportional to
            // what is actually carried — a fixed header plus each
            // range aggregate and each expanded id — so they are
            // accounted exactly, not at the event-payload flat rate.
            Envelope::Gossip(GossipMessage::SummaryDigest {
                ranges, details, ..
            }) => {
                CONTROL_BITS
                    + SUMMARY_RANGE_BITS * ranges.len() as u64
                    + details
                        .iter()
                        .map(|d| SUMMARY_DETAIL_BITS + EVENT_ID_BITS * d.ids.len() as u64)
                        .sum::<u64>()
            }
            Envelope::Gossip(_) => event_payload_bits,
            Envelope::Request(ids) => CONTROL_BITS + EVENT_ID_BITS * ids.len() as u64,
            Envelope::RangeRequest { ranges, .. } => {
                CONTROL_BITS + RANGE_REF_BITS * ranges.len() as u64
            }
            Envelope::Reply(events) => events
                .iter()
                .map(|e| e.wire_bits(event_payload_bits))
                .sum::<u64>()
                .max(CONTROL_BITS),
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use eps_overlay::NodeId;
    use eps_pubsub::PatternId;

    use super::*;

    fn event_with_route(hops: u32) -> Event {
        let mut e = Event::new(
            EventId::new(NodeId::new(0), 0),
            vec![(PatternId::new(1), 0)],
        );
        for h in 0..hops {
            e.record_hop(NodeId::new(h + 1));
        }
        e
    }

    #[test]
    fn subscription_messages_are_fixed_size() {
        let p = PatternId::new(1);
        assert_eq!(
            Envelope::PubSub(PubSubMessage::Subscribe(p)).wire_bits(1000),
            256
        );
        assert_eq!(
            Envelope::PubSub(PubSubMessage::Unsubscribe(p)).wire_bits(1000),
            256
        );
    }

    #[test]
    fn event_messages_cost_payload_plus_route() {
        // A fresh event's route already holds its source: one hop.
        let plain = Envelope::PubSub(PubSubMessage::Event(event_with_route(0)));
        let routed = Envelope::PubSub(PubSubMessage::Event(event_with_route(3)));
        assert_eq!(plain.wire_bits(1000), 1032);
        assert_eq!(routed.wire_bits(1000), 1128);
        assert!(
            plain.wire_bits(1000)
                > Envelope::PubSub(PubSubMessage::Subscribe(PatternId::new(1))).wire_bits(1000)
        );
    }

    #[test]
    fn gossip_digests_cost_one_event_payload() {
        let push = Envelope::Gossip(GossipMessage::PushDigest {
            gossiper: NodeId::new(0),
            pattern: PatternId::new(0),
            ids: Arc::new(vec![]),
        });
        assert_eq!(push.wire_bits(1000), 1000);
        let steered = Envelope::Gossip(GossipMessage::SourcePull {
            gossiper: NodeId::new(0),
            source: NodeId::new(1),
            lost: vec![],
            route: vec![NodeId::new(2); 3],
        });
        assert_eq!(steered.wire_bits(1000), 1096);
    }

    #[test]
    fn oob_requests_cost_header_plus_ids() {
        assert_eq!(Envelope::Request(vec![]).wire_bits(1000), 256);
        let ids = vec![EventId::new(NodeId::new(0), 7); 4];
        assert_eq!(Envelope::Request(ids).wire_bits(1000), 256 + 96 * 4);
    }

    #[test]
    fn oob_replies_cost_their_events_with_a_floor() {
        assert_eq!(Envelope::Reply(vec![]).wire_bits(1000), 256);
        let reply = Envelope::Reply(vec![event_with_route(0), event_with_route(2)]);
        assert_eq!(reply.wire_bits(1000), 1032 + 1096);
    }

    #[test]
    fn channels_split_tree_from_out_of_band() {
        let tree = Envelope::PubSub(PubSubMessage::Subscribe(PatternId::new(0)));
        let gossip = Envelope::Gossip(GossipMessage::RandomPull {
            gossiper: NodeId::new(0),
            lost: vec![],
            ttl: 1,
        });
        assert_eq!(tree.channel(), Channel::Tree);
        assert_eq!(gossip.channel(), Channel::Tree);
        assert_eq!(Envelope::Request(vec![]).channel(), Channel::OutOfBand);
        assert_eq!(Envelope::Reply(vec![]).channel(), Channel::OutOfBand);
        assert_eq!(
            Envelope::CrossEvent(event_with_route(0)).channel(),
            Channel::Cross
        );
    }

    #[test]
    fn summary_digests_cost_exactly_what_they_carry() {
        use eps_pubsub::{RangeDetail, RangeSummary};

        let root = RangeRef::ROOT;
        let empty = Envelope::Gossip(GossipMessage::SummaryDigest {
            gossiper: NodeId::new(0),
            pattern: PatternId::new(0),
            ranges: Arc::new(vec![]),
            details: Arc::new(vec![]),
        });
        assert_eq!(empty.wire_bits(1000), 256);
        let digest = Envelope::Gossip(GossipMessage::SummaryDigest {
            gossiper: NodeId::new(0),
            pattern: PatternId::new(0),
            ranges: Arc::new(vec![
                RangeSummary::empty(root),
                RangeSummary::empty(root.child(3)),
            ]),
            details: Arc::new(vec![
                RangeDetail {
                    range: root.child(1),
                    ids: vec![EventId::new(NodeId::new(0), 7); 5],
                },
                RangeDetail {
                    range: root.child(2),
                    ids: vec![],
                },
            ]),
        });
        // Header + 2 aggregates + 2 detail headers + 5 ids — and, per
        // the family's design goal, independent of the payload size.
        assert_eq!(digest.wire_bits(1000), 256 + 2 * 168 + 2 * 72 + 5 * 96);
        assert_eq!(digest.wire_bits(8000), digest.wire_bits(1000));
    }

    #[test]
    fn range_requests_cost_header_plus_ranges() {
        let empty = Envelope::RangeRequest {
            pattern: PatternId::new(3),
            ranges: vec![],
        };
        assert_eq!(empty.wire_bits(1000), 256);
        assert_eq!(empty.channel(), Channel::OutOfBand);
        let req = Envelope::RangeRequest {
            pattern: PatternId::new(3),
            ranges: vec![RangeRef::ROOT.child(0), RangeRef::ROOT.child(9)],
        };
        assert_eq!(req.wire_bits(1000), 256 + 2 * 40);
    }

    #[test]
    fn cross_events_cost_exactly_what_the_tree_copy_costs() {
        let event = event_with_route(3);
        assert_eq!(
            Envelope::CrossEvent(event.clone()).wire_bits(1000),
            Envelope::PubSub(PubSubMessage::Event(event)).wire_bits(1000)
        );
    }
}
