//! The two orthogonal policy stages a recovery strategy is composed
//! from.
//!
//! The paper's strategies are one algorithm family varied along two
//! axes:
//!
//! - **what a digest asserts** — a [`DigestPolicy`]: push gossips a
//!   *positive* digest of cached event identifiers
//!   ([`PositiveDigest`]), the pull variants gossip a *negative*
//!   digest of `Lost` entries ([`NegativeDigest`]), and hybrids can
//!   alternate between the two ([`AlternatingDigest`]);
//! - **where a digest travels** — a [`SteeringPolicy`]: routed along
//!   the subscription tree like an event ([`PatternSteering`]), back
//!   towards the publisher along recorded routes ([`SourceSteering`]),
//!   to random neighbors under a TTL ([`RandomSteering`]), or through
//!   a probabilistic mux of two steerings ([`MuxSteering`] — the
//!   paper's combined pull is literally
//!   `Mux(P_source, Source, Pattern)` over a negative digest).
//!
//! A [`crate::GossipEngine`] pairs one digest policy with one steering
//! policy and owns the machinery they share. The round bodies here are
//! ports of the previously hand-wired per-algorithm implementations
//! and preserve their RNG draw order exactly (the harness golden tests
//! pin this bit-for-bit).

use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;

use eps_overlay::NodeId;
use eps_pubsub::{
    Dispatcher, Event, EventId, LossRecord, PatternId, RangeDetail, RangeRef, RangeSummary,
};
use eps_sim::Rng;

use crate::config::GossipConfig;
use crate::lost::LostBuffer;
use crate::message::{GossipAction, GossipMessage};

/// What one gossip round asserts.
#[derive(Clone, Debug)]
pub enum DigestBody {
    /// "I have these events" — identifiers of cached events (push).
    Positive(Arc<Vec<EventId>>),
    /// "I am missing these events" — outstanding `Lost` entries
    /// (pull).
    Negative(Vec<LossRecord>),
    /// "My cache for this pattern aggregates to these hashes" — the
    /// hash-range tree digest of summary reconciliation: compact range
    /// aggregates plus fully expanded ranges (see
    /// [`crate::SummaryDigestPolicy`]). Both halves are shared since
    /// the digest is forwarded unchanged along the tree.
    Summary {
        /// Range aggregates (the root, plus children of ranges peers
        /// asked to refine).
        ranges: Arc<Vec<RangeSummary>>,
        /// Fully expanded ranges with their complete id lists.
        details: Arc<Vec<RangeDetail>>,
    },
}

impl DigestBody {
    /// Wraps the body in the pattern-labelled wire form: a positive
    /// body becomes a [`GossipMessage::PushDigest`], a negative one a
    /// [`GossipMessage::PullDigest`]. No new wire variants exist for
    /// hybrids — they reuse these two forms.
    pub fn into_pattern_message(self, gossiper: NodeId, pattern: PatternId) -> GossipMessage {
        match self {
            DigestBody::Positive(ids) => GossipMessage::PushDigest {
                gossiper,
                pattern,
                ids,
            },
            DigestBody::Negative(lost) => GossipMessage::PullDigest {
                gossiper,
                pattern,
                lost,
            },
            DigestBody::Summary { ranges, details } => GossipMessage::SummaryDigest {
                gossiper,
                pattern,
                ranges,
                details,
            },
        }
    }
}

/// Outcome of absorbing a digest received from another gossiper.
#[derive(Debug, Default)]
pub struct Absorbed {
    /// The local reaction: out-of-band requests (positive digests) or
    /// replies served from the cache (negative digests).
    pub actions: Vec<GossipAction>,
    /// What is left for the steering policy to propagate further:
    /// positive digests travel on unchanged, negative digests shrink
    /// to the entries this dispatcher could not serve (`None`
    /// short-circuits the propagation).
    pub remainder: Option<DigestBody>,
}

/// The digest stage: owns the strategy's state (the `Lost` buffer for
/// negative digests, the in-flight request set for positive ones),
/// builds the per-round digest the steering stage sends, and absorbs
/// digests received from other gossipers.
pub trait DigestPolicy: fmt::Debug + Send {
    /// Called once at the start of every gossip round, before the
    /// steering stage runs (push's idle-streak accounting).
    fn begin_round(&mut self) {}

    /// The patterns a pattern-steered round may be labelled with.
    fn pattern_candidates(&self, node: &Dispatcher) -> Vec<PatternId>;

    /// Clears `out` and fills it with [`DigestPolicy::pattern_candidates`],
    /// same contents in the same order. The steering policies call this
    /// once per gossip round through a reused scratch buffer, so
    /// implementations should override it to fill without allocating;
    /// the default delegates to the allocating form.
    fn pattern_candidates_into(&self, node: &Dispatcher, out: &mut Vec<PatternId>) {
        out.clear();
        out.extend(self.pattern_candidates(node));
    }

    /// The sources a source-steered round may target.
    fn source_candidates(&self) -> Vec<NodeId> {
        Vec::new()
    }

    /// Clears `out` and fills it with [`DigestPolicy::source_candidates`]
    /// (same per-round scratch-buffer contract as
    /// [`DigestPolicy::pattern_candidates_into`]).
    fn source_candidates_into(&self, out: &mut Vec<NodeId>) {
        out.clear();
        out.extend(self.source_candidates());
    }

    /// Builds the digest for a round labelled with `pattern`, or
    /// `None` to skip the round. `limit` bounds negative digests
    /// (positive digests are never truncated — the paper's overhead
    /// accounting charges every gossip message one event-size
    /// regardless).
    ///
    /// **Truncation contract for negative digests.** When more than
    /// `limit` entries are outstanding for `pattern`, implementations
    /// must select the *first* `limit` entries in (source, seq) order —
    /// the oldest losses per source — deterministically, never a random
    /// or insertion-ordered subset. Oldest-first matters because caches
    /// evict FIFO: the oldest losses are the ones closest to becoming
    /// unrecoverable, so they go on the wire first. The newer entries
    /// are *deferred*, never hidden: selection charges one attempt to
    /// each selected entry, and entries that exhaust `max_attempts` are
    /// dropped from the buffer, so every over-limit entry surfaces in a
    /// later round once the entries ahead of it are recovered or
    /// abandoned (pinned by a regression test in this module).
    fn build_for_pattern(
        &mut self,
        node: &Dispatcher,
        pattern: PatternId,
        limit: usize,
    ) -> Option<DigestBody>;

    /// Builds the digest for a round steered towards `source`, or
    /// `None` to skip the round.
    fn build_for_source(&mut self, source: NodeId, limit: usize) -> Option<DigestBody> {
        let _ = (source, limit);
        None
    }

    /// Builds a digest unconstrained by pattern or source (random
    /// steering), or `None` to skip the round.
    fn build_any(&mut self, limit: usize) -> Option<DigestBody>;

    /// `true` when a round could produce a digest at all. Guards the
    /// coin flips of [`MuxSteering`] and [`RandomSteering`] so a
    /// workless round consumes no RNG draws.
    fn has_work(&self, node: &Dispatcher) -> bool;

    /// Absorbs a digest received from `gossiper`. Returns `None` when
    /// the body kind is foreign to this policy (mixed deployments drop
    /// it, forwarding nothing).
    fn absorb(
        &mut self,
        node: &Dispatcher,
        gossiper: NodeId,
        pattern: Option<PatternId>,
        body: DigestBody,
    ) -> Option<Absorbed>;

    /// The dispatcher's loss detector found gaps.
    fn on_losses(&mut self, losses: &[LossRecord]) {
        let _ = losses;
    }

    /// An event arrived (on the tree or via recovery).
    fn on_event_received(&mut self, event: &Event) {
        let _ = event;
    }

    /// An out-of-band request arrived (push's activity signal for
    /// adaptive gossip).
    fn note_request(&mut self) {}

    /// An out-of-band [`crate::Envelope::RangeRequest`] arrived: `from`
    /// asks this gossiper to refine `ranges` of `pattern`'s summary in
    /// its next round. Only summary digests react; everything else
    /// ignores it.
    fn on_range_request(&mut self, from: NodeId, pattern: PatternId, ranges: &[RangeRef]) {
        let _ = (from, pattern, ranges);
    }

    /// Outstanding `Lost` entries (0 without a `Lost` buffer).
    fn outstanding_losses(&self) -> usize {
        0
    }

    /// `Lost` entries evicted by the FIFO capacity bound.
    fn lost_evictions(&self) -> u64 {
        0
    }

    /// `true` when the policy sees no evidence of recovery work (the
    /// adaptive-gossip back-off signal).
    fn is_idle(&self) -> bool {
        self.outstanding_losses() == 0
    }
}

/// The steering stage: decides where a round's digest travels and how
/// received digests keep travelling.
pub trait SteeringPolicy: fmt::Debug + Send {
    /// Starts one gossip round over `digest`.
    fn round(
        &mut self,
        digest: &mut dyn DigestPolicy,
        node: &Dispatcher,
        neighbors: &[NodeId],
        config: &GossipConfig,
        rng: &mut Rng,
    ) -> Vec<GossipAction>;

    /// Handles an incoming gossip message, or returns `None` when the
    /// wire form is not one this steering produces (a mux then offers
    /// it to its other branch; the engine drops it).
    #[allow(clippy::too_many_arguments)]
    fn on_gossip(
        &mut self,
        digest: &mut dyn DigestPolicy,
        node: &Dispatcher,
        from: NodeId,
        msg: GossipMessage,
        neighbors: &[NodeId],
        config: &GossipConfig,
        rng: &mut Rng,
    ) -> Option<Vec<GossipAction>>;
}

// ---------------------------------------------------------------------------
// Forwarding helpers shared by the steering policies.
// ---------------------------------------------------------------------------

/// The neighbors a pattern-labelled gossip message is forwarded to:
/// the neighbors subscribed to `pattern` (excluding the arrival
/// interface), each kept with probability `p_forward` — the paper's
/// "random subset of the neighbors subscribed to p".
///
/// If every coin flip comes up empty while candidates exist, one
/// random candidate is used instead: `P_forward` prunes *fan-out* to
/// limit overhead, but a digest on a single-path route would otherwise
/// die off as `P_forward^hops` and never reach a subscriber more than
/// a couple of hops away. (The paper does not report its `P_forward`
/// value or the exact subset rule; this interpretation reproduces its
/// delivery curves.)
pub(crate) fn pattern_forward_targets(
    node: &Dispatcher,
    pattern: PatternId,
    from: Option<NodeId>,
    p_forward: f64,
    rng: &mut Rng,
) -> Vec<NodeId> {
    let candidates = node.table().neighbors_for(pattern, from);
    if candidates.is_empty() {
        return candidates;
    }
    let picked: Vec<NodeId> = candidates
        .iter()
        .copied()
        .filter(|_| p_forward >= 1.0 || rng.random_bool(p_forward))
        .collect();
    if picked.is_empty() {
        vec![candidates[rng.random_range(0..candidates.len())]]
    } else {
        picked
    }
}

/// Random forwarding ignores subscription tables entirely: every
/// neighbor except the arrival interface is kept with probability
/// `p_forward`; if the coin flips all come up empty, one random
/// neighbor is used so a round is never silently wasted.
fn random_forward_targets(
    neighbors: &[NodeId],
    from: Option<NodeId>,
    p_forward: f64,
    rng: &mut Rng,
) -> Vec<NodeId> {
    let candidates: Vec<NodeId> = neighbors
        .iter()
        .copied()
        .filter(|&n| Some(n) != from)
        .collect();
    if candidates.is_empty() {
        return Vec::new();
    }
    let picked: Vec<NodeId> = candidates
        .iter()
        .copied()
        .filter(|_| p_forward >= 1.0 || rng.random_bool(p_forward))
        .collect();
    if picked.is_empty() {
        vec![candidates[rng.random_range(0..candidates.len())]]
    } else {
        picked
    }
}

/// Splits a negative digest into the events this dispatcher can serve
/// from its cache and the remainder it cannot.
pub(crate) fn serve_from_cache(
    node: &Dispatcher,
    lost: &[LossRecord],
) -> (Vec<Event>, Vec<LossRecord>) {
    let mut found = Vec::new();
    let mut remainder = Vec::new();
    for &record in lost {
        match node
            .cache()
            .get_by_pattern_seq(record.source, record.pattern, record.seq)
        {
            Some(event) => found.push(event.clone()),
            None => remainder.push(record),
        }
    }
    // One event can cover several records (it matches several
    // patterns); do not send duplicates.
    found.sort_by_key(|e| e.id());
    found.dedup_by_key(|e| e.id());
    (found, remainder)
}

// ---------------------------------------------------------------------------
// Digest policies.
// ---------------------------------------------------------------------------

/// The positive digest of push gossip (paper, Section III-B, "Push"):
/// a round announces "all the cached events matching p" for a pattern
/// drawn from the *whole* subscription table (not only local
/// subscriptions — being on the route towards a subscriber is enough,
/// which speeds up convergence). A subscriber receiving the digest
/// requests the missing events from the gossiper out-of-band.
#[derive(Clone, Debug, Default)]
pub struct PositiveDigest {
    /// Membership checks only — never iterated, so the HashSet's
    /// arbitrary ordering can't leak into any output.
    requested: HashSet<EventId>,
    requests_since_round: u64,
    idle_rounds: u32,
}

impl PositiveDigest {
    /// Creates a positive-digest policy.
    pub fn new() -> Self {
        PositiveDigest::default()
    }
}

impl DigestPolicy for PositiveDigest {
    fn begin_round(&mut self) {
        if self.requests_since_round > 0 {
            self.idle_rounds = 0;
        } else {
            self.idle_rounds = self.idle_rounds.saturating_add(1);
        }
        self.requests_since_round = 0;
    }

    fn pattern_candidates(&self, node: &Dispatcher) -> Vec<PatternId> {
        node.table().all_patterns().collect()
    }

    fn pattern_candidates_into(&self, node: &Dispatcher, out: &mut Vec<PatternId>) {
        out.clear();
        out.extend(node.table().all_patterns());
    }

    fn build_for_pattern(
        &mut self,
        node: &Dispatcher,
        pattern: PatternId,
        _limit: usize,
    ) -> Option<DigestBody> {
        let ids = node.cache().ids_matching(pattern);
        if ids.is_empty() {
            // Nothing to announce for this pattern: an empty digest
            // would be pure overhead.
            return None;
        }
        Some(DigestBody::Positive(Arc::new(ids)))
    }

    fn build_any(&mut self, _limit: usize) -> Option<DigestBody> {
        // Positive digests are always pattern-labelled; there is no
        // meaningful "any" digest to hand to random steering.
        None
    }

    fn has_work(&self, _node: &Dispatcher) -> bool {
        // Proactive: a round is always worth attempting.
        true
    }

    fn absorb(
        &mut self,
        node: &Dispatcher,
        gossiper: NodeId,
        pattern: Option<PatternId>,
        body: DigestBody,
    ) -> Option<Absorbed> {
        let DigestBody::Positive(ids) = body else {
            return None; // Negative digests are foreign to pure push.
        };
        let mut actions = Vec::new();
        // Subscribed? Compare the digest with what we have seen,
        // skipping ids already requested (a previous reply may still
        // be in flight).
        let subscribed = pattern.is_some_and(|p| node.table().has_local(p));
        if gossiper != node.id() && subscribed {
            let missing: Vec<EventId> = ids
                .iter()
                .copied()
                .filter(|&id| !node.has_seen(id) && !self.requested.contains(&id))
                .collect();
            if !missing.is_empty() {
                self.requested.extend(missing.iter().copied());
                actions.push(GossipAction::Request {
                    to: gossiper,
                    ids: missing,
                });
            }
        }
        // A positive digest keeps propagating unchanged.
        Some(Absorbed {
            actions,
            remainder: Some(DigestBody::Positive(ids)),
        })
    }

    fn on_event_received(&mut self, event: &Event) {
        // The event arrived (via the tree or a reply): stop tracking
        // its id so the set stays bounded by the in-flight requests.
        self.requested.remove(&event.id());
    }

    fn note_request(&mut self) {
        // Someone is missing events: evidence that proactive rounds
        // are earning their keep (adaptive-gossip activity signal).
        self.requests_since_round += 1;
    }

    fn is_idle(&self) -> bool {
        // A single request-free interval is common noise (requests
        // only come back when *this* node's digest found a gap at a
        // subscriber); require a streak before slowing down.
        self.idle_rounds >= 3 && self.requests_since_round == 0
    }
}

/// The negative digest of the pull strategies: losses detected from
/// the per-(source, pattern) sequence numbers accumulate in the
/// [`LostBuffer`]; a round packs outstanding entries into a digest,
/// and dispatchers along the way serve what their caches hold.
#[derive(Clone, Debug)]
pub struct NegativeDigest {
    lost: LostBuffer,
}

impl NegativeDigest {
    /// Creates a negative-digest policy with the `Lost` buffer sized
    /// by `config` (`max_attempts` expiry, FIFO capacity bound).
    pub fn new(config: &GossipConfig) -> Self {
        NegativeDigest {
            lost: LostBuffer::with_capacity(config.max_attempts, config.resolved_lost_capacity()),
        }
    }

    /// Read access to the `Lost` buffer (for tests and metrics).
    pub fn lost(&self) -> &LostBuffer {
        &self.lost
    }
}

impl DigestPolicy for NegativeDigest {
    fn pattern_candidates(&self, _node: &Dispatcher) -> Vec<PatternId> {
        self.lost.patterns()
    }

    fn pattern_candidates_into(&self, _node: &Dispatcher, out: &mut Vec<PatternId>) {
        self.lost.patterns_into(out);
    }

    fn source_candidates(&self) -> Vec<NodeId> {
        self.lost.sources()
    }

    fn source_candidates_into(&self, out: &mut Vec<NodeId>) {
        self.lost.sources_into(out);
    }

    fn build_for_pattern(
        &mut self,
        _node: &Dispatcher,
        pattern: PatternId,
        limit: usize,
    ) -> Option<DigestBody> {
        let entries = self.lost.for_pattern(pattern, limit);
        if entries.is_empty() {
            return None;
        }
        Some(DigestBody::Negative(entries))
    }

    fn build_for_source(&mut self, source: NodeId, limit: usize) -> Option<DigestBody> {
        let entries = self.lost.for_source(source, limit);
        if entries.is_empty() {
            return None;
        }
        Some(DigestBody::Negative(entries))
    }

    fn build_any(&mut self, limit: usize) -> Option<DigestBody> {
        let entries = self.lost.any(limit);
        if entries.is_empty() {
            return None;
        }
        Some(DigestBody::Negative(entries))
    }

    fn has_work(&self, _node: &Dispatcher) -> bool {
        !self.lost.is_empty()
    }

    fn absorb(
        &mut self,
        node: &Dispatcher,
        gossiper: NodeId,
        _pattern: Option<PatternId>,
        body: DigestBody,
    ) -> Option<Absorbed> {
        let DigestBody::Negative(lost) = body else {
            return None; // Positive digests are foreign to pure pull.
        };
        let (found, remainder) = serve_from_cache(node, &lost);
        let mut actions = Vec::new();
        if !found.is_empty() {
            actions.push(GossipAction::Reply {
                to: gossiper,
                events: found,
            });
        }
        // A dispatcher holding everything "short-circuits" the
        // propagation.
        let remainder = if remainder.is_empty() {
            None
        } else {
            Some(DigestBody::Negative(remainder))
        };
        Some(Absorbed { actions, remainder })
    }

    fn on_losses(&mut self, losses: &[LossRecord]) {
        for &record in losses {
            self.lost.add(record);
        }
    }

    fn on_event_received(&mut self, event: &Event) {
        self.lost.clear_for_event(event);
    }

    fn outstanding_losses(&self) -> usize {
        self.lost.len()
    }

    fn lost_evictions(&self) -> u64 {
        self.lost.evicted_total()
    }
}

/// A hybrid digest policy: proactive positive digests and reactive
/// negative digests in alternating rounds. Even rounds announce cached
/// events like push; odd rounds chase `Lost` entries like pull (and
/// skip silently when nothing is missing, exactly as pull rounds do).
/// Received digests of either kind are absorbed by the matching half,
/// independent of the current phase.
///
/// Registered as `push-pull` — a pure composition: no new wire
/// variants, no new algorithm struct, just this combinator paired with
/// [`PatternSteering`].
#[derive(Clone, Debug)]
pub struct AlternatingDigest {
    positive: PositiveDigest,
    negative: NegativeDigest,
    round: u64,
    positive_phase: bool,
}

impl AlternatingDigest {
    /// Creates an alternating push/pull digest policy.
    pub fn new(config: &GossipConfig) -> Self {
        AlternatingDigest {
            positive: PositiveDigest::new(),
            negative: NegativeDigest::new(config),
            round: 0,
            positive_phase: true,
        }
    }

    /// `true` while the current round gossips a positive digest.
    pub fn in_positive_phase(&self) -> bool {
        self.positive_phase
    }
}

impl DigestPolicy for AlternatingDigest {
    fn begin_round(&mut self) {
        self.positive_phase = self.round.is_multiple_of(2);
        self.round += 1;
        if self.positive_phase {
            // The idle streak of the push half counts *its* rounds.
            self.positive.begin_round();
        }
    }

    fn pattern_candidates(&self, node: &Dispatcher) -> Vec<PatternId> {
        if self.positive_phase {
            self.positive.pattern_candidates(node)
        } else {
            self.negative.pattern_candidates(node)
        }
    }

    fn pattern_candidates_into(&self, node: &Dispatcher, out: &mut Vec<PatternId>) {
        if self.positive_phase {
            self.positive.pattern_candidates_into(node, out);
        } else {
            self.negative.pattern_candidates_into(node, out);
        }
    }

    fn source_candidates(&self) -> Vec<NodeId> {
        if self.positive_phase {
            self.positive.source_candidates()
        } else {
            self.negative.source_candidates()
        }
    }

    fn source_candidates_into(&self, out: &mut Vec<NodeId>) {
        if self.positive_phase {
            self.positive.source_candidates_into(out);
        } else {
            self.negative.source_candidates_into(out);
        }
    }

    fn build_for_pattern(
        &mut self,
        node: &Dispatcher,
        pattern: PatternId,
        limit: usize,
    ) -> Option<DigestBody> {
        if self.positive_phase {
            self.positive.build_for_pattern(node, pattern, limit)
        } else {
            self.negative.build_for_pattern(node, pattern, limit)
        }
    }

    fn build_for_source(&mut self, source: NodeId, limit: usize) -> Option<DigestBody> {
        if self.positive_phase {
            self.positive.build_for_source(source, limit)
        } else {
            self.negative.build_for_source(source, limit)
        }
    }

    fn build_any(&mut self, limit: usize) -> Option<DigestBody> {
        if self.positive_phase {
            self.positive.build_any(limit)
        } else {
            self.negative.build_any(limit)
        }
    }

    fn has_work(&self, node: &Dispatcher) -> bool {
        if self.positive_phase {
            self.positive.has_work(node)
        } else {
            self.negative.has_work(node)
        }
    }

    fn absorb(
        &mut self,
        node: &Dispatcher,
        gossiper: NodeId,
        pattern: Option<PatternId>,
        body: DigestBody,
    ) -> Option<Absorbed> {
        // Reactive handling dispatches on the *body*, not the phase:
        // a pull digest arriving during a push phase is still served.
        match body {
            DigestBody::Positive(_) => self.positive.absorb(node, gossiper, pattern, body),
            DigestBody::Negative(_) => self.negative.absorb(node, gossiper, pattern, body),
            // Summary bodies belong to the summary family only.
            DigestBody::Summary { .. } => None,
        }
    }

    fn on_losses(&mut self, losses: &[LossRecord]) {
        self.negative.on_losses(losses);
    }

    fn on_event_received(&mut self, event: &Event) {
        self.positive.on_event_received(event);
        self.negative.on_event_received(event);
    }

    fn note_request(&mut self) {
        self.positive.note_request();
    }

    fn outstanding_losses(&self) -> usize {
        self.negative.outstanding_losses()
    }

    fn lost_evictions(&self) -> u64 {
        self.negative.lost_evictions()
    }

    fn is_idle(&self) -> bool {
        self.positive.is_idle() && self.negative.is_idle()
    }
}

// ---------------------------------------------------------------------------
// Steering policies.
// ---------------------------------------------------------------------------

/// Pattern steering: a round draws a pattern from the digest policy's
/// candidates, and the digest travels along the dispatching tree as if
/// it were an event matching that pattern, except that each hop
/// forwards it only to a random subset of the matching neighbors
/// (`P_forward`). Used by push, subscriber-pull, and the hybrid.
#[derive(Clone, Debug, Default)]
pub struct PatternSteering {
    /// Per-round candidate scratch, refilled via
    /// [`DigestPolicy::pattern_candidates_into`] so the steady-state
    /// round allocates nothing.
    candidates: Vec<PatternId>,
}

impl SteeringPolicy for PatternSteering {
    fn round(
        &mut self,
        digest: &mut dyn DigestPolicy,
        node: &Dispatcher,
        _neighbors: &[NodeId],
        config: &GossipConfig,
        rng: &mut Rng,
    ) -> Vec<GossipAction> {
        digest.pattern_candidates_into(node, &mut self.candidates);
        let Some(&pattern) = rng.choose(&self.candidates) else {
            return Vec::new(); // Nothing to gossip about: skip the round.
        };
        let Some(body) = digest.build_for_pattern(node, pattern, config.digest_max) else {
            return Vec::new();
        };
        let msg = body.into_pattern_message(node.id(), pattern);
        pattern_forward_targets(node, pattern, None, config.p_forward, rng)
            .into_iter()
            .map(|to| GossipAction::Forward {
                to,
                msg: msg.clone(),
            })
            .collect()
    }

    fn on_gossip(
        &mut self,
        digest: &mut dyn DigestPolicy,
        node: &Dispatcher,
        from: NodeId,
        msg: GossipMessage,
        _neighbors: &[NodeId],
        config: &GossipConfig,
        rng: &mut Rng,
    ) -> Option<Vec<GossipAction>> {
        let (gossiper, pattern, body) = match msg {
            GossipMessage::PushDigest {
                gossiper,
                pattern,
                ids,
            } => (gossiper, pattern, DigestBody::Positive(ids)),
            GossipMessage::PullDigest {
                gossiper,
                pattern,
                lost,
            } => (gossiper, pattern, DigestBody::Negative(lost)),
            GossipMessage::SummaryDigest {
                gossiper,
                pattern,
                ranges,
                details,
            } => (gossiper, pattern, DigestBody::Summary { ranges, details }),
            _ => return None,
        };
        let Some(absorbed) = digest.absorb(node, gossiper, Some(pattern), body) else {
            return Some(Vec::new()); // Foreign digest kind: drop it.
        };
        let mut actions = absorbed.actions;
        if let Some(body) = absorbed.remainder {
            // Keep propagating along the pattern's routes.
            let fwd = body.into_pattern_message(gossiper, pattern);
            for to in pattern_forward_targets(node, pattern, Some(from), config.p_forward, rng) {
                actions.push(GossipAction::Forward {
                    to,
                    msg: fwd.clone(),
                });
            }
        }
        Some(actions)
    }
}

/// Source steering (paper, Section III-B, publisher-based pull): a
/// round draws a source from the digest policy's candidates — only
/// sources with a known reverse route are actionable — and the digest
/// travels back towards that publisher along the reverse of the most
/// recently recorded route. The route may be stale after a
/// reconfiguration — the two paths "share at least the first portion
/// or, in the worst case, the publisher" — so intermediate caches
/// often short-circuit the recovery.
#[derive(Clone, Debug, Default)]
pub struct SourceSteering {
    /// Per-round candidate scratch (same contract as
    /// [`PatternSteering`]'s).
    sources: Vec<NodeId>,
}

impl SteeringPolicy for SourceSteering {
    fn round(
        &mut self,
        digest: &mut dyn DigestPolicy,
        node: &Dispatcher,
        _neighbors: &[NodeId],
        config: &GossipConfig,
        rng: &mut Rng,
    ) -> Vec<GossipAction> {
        digest.source_candidates_into(&mut self.sources);
        // Only sources we know a route back to are actionable this
        // round (in-place retain keeps the candidate order, so the RNG
        // draw is the one the allocating path made).
        self.sources
            .retain(|&s| node.routes().route_to(s).is_some());
        let Some(&source) = rng.choose(&self.sources) else {
            return Vec::new();
        };
        let Some(DigestBody::Negative(entries)) =
            digest.build_for_source(source, config.digest_max)
        else {
            return Vec::new(); // Source steering carries negative digests only.
        };
        let route = node
            .routes()
            .route_to(source)
            .expect("source was filtered for a known route");
        let (next, rest) = route
            .split_first()
            .expect("route_to never returns an empty route");
        vec![GossipAction::Forward {
            to: *next,
            msg: GossipMessage::SourcePull {
                gossiper: node.id(),
                source,
                lost: entries,
                route: rest.to_vec(),
            },
        }]
    }

    fn on_gossip(
        &mut self,
        digest: &mut dyn DigestPolicy,
        node: &Dispatcher,
        _from: NodeId,
        msg: GossipMessage,
        _neighbors: &[NodeId],
        _config: &GossipConfig,
        _rng: &mut Rng,
    ) -> Option<Vec<GossipAction>> {
        let GossipMessage::SourcePull {
            gossiper,
            source,
            lost,
            route,
        } = msg
        else {
            return None;
        };
        let Some(absorbed) = digest.absorb(node, gossiper, None, DigestBody::Negative(lost)) else {
            return Some(Vec::new());
        };
        let mut actions = absorbed.actions;
        if let Some(DigestBody::Negative(remainder)) = absorbed.remainder {
            // Pass the remainder one hop further along the recorded
            // route. The route may be stale — if the next hop is no
            // longer a neighbor the harness drops the message, exactly
            // as a real unicast would fail.
            if let Some((next, rest)) = route.split_first() {
                actions.push(GossipAction::Forward {
                    to: *next,
                    msg: GossipMessage::SourcePull {
                        gossiper,
                        source,
                        lost: remainder,
                        route: rest.to_vec(),
                    },
                });
            }
        }
        Some(actions)
    }
}

/// Random steering (paper, Section IV): the digest is handed to a
/// random subset of neighbors with a hop budget, no routing
/// intelligence — the paper's "is directed routing worth the effort?"
/// comparator.
#[derive(Clone, Copy, Debug, Default)]
pub struct RandomSteering;

impl SteeringPolicy for RandomSteering {
    fn round(
        &mut self,
        digest: &mut dyn DigestPolicy,
        node: &Dispatcher,
        neighbors: &[NodeId],
        config: &GossipConfig,
        rng: &mut Rng,
    ) -> Vec<GossipAction> {
        if !digest.has_work(node) || neighbors.is_empty() {
            return Vec::new();
        }
        let Some(DigestBody::Negative(entries)) = digest.build_any(config.digest_max) else {
            return Vec::new(); // Random steering carries negative digests only.
        };
        let msg = GossipMessage::RandomPull {
            gossiper: node.id(),
            lost: entries,
            ttl: config.random_ttl,
        };
        random_forward_targets(neighbors, None, config.p_forward, rng)
            .into_iter()
            .map(|to| GossipAction::Forward {
                to,
                msg: msg.clone(),
            })
            .collect()
    }

    fn on_gossip(
        &mut self,
        digest: &mut dyn DigestPolicy,
        node: &Dispatcher,
        from: NodeId,
        msg: GossipMessage,
        neighbors: &[NodeId],
        config: &GossipConfig,
        rng: &mut Rng,
    ) -> Option<Vec<GossipAction>> {
        let GossipMessage::RandomPull {
            gossiper,
            lost,
            ttl,
        } = msg
        else {
            return None;
        };
        let Some(absorbed) = digest.absorb(node, gossiper, None, DigestBody::Negative(lost)) else {
            return Some(Vec::new());
        };
        let mut actions = absorbed.actions;
        if let Some(DigestBody::Negative(remainder)) = absorbed.remainder {
            // Forward the unserved remainder to random neighbors while
            // the hop budget lasts.
            if ttl > 1 {
                let msg = GossipMessage::RandomPull {
                    gossiper,
                    lost: remainder,
                    ttl: ttl - 1,
                };
                for to in random_forward_targets(neighbors, Some(from), config.p_forward, rng) {
                    actions.push(GossipAction::Forward {
                        to,
                        msg: msg.clone(),
                    });
                }
            }
        }
        Some(actions)
    }
}

/// A probabilistic mux of two steerings: each round a biased coin
/// (`P_source`) picks the primary, falling back to the secondary when
/// the primary produces nothing (e.g. no route known towards any
/// missing source) rather than wasting the round. Incoming messages
/// are offered to the primary first.
///
/// `Mux(Source, Pattern)` over a [`NegativeDigest`] *is* the paper's
/// combined pull: the two pull variants complement each other — with
/// few subscribers per pattern the subscriber-based variant has nobody
/// to gossip with, while with many the publisher-based one involves
/// too small a fraction of dispatchers — and "perform best when
/// combined".
#[derive(Debug)]
pub struct MuxSteering<P, S> {
    primary: P,
    secondary: S,
    primary_rounds: u64,
    secondary_rounds: u64,
}

impl<P: SteeringPolicy, S: SteeringPolicy> MuxSteering<P, S> {
    /// Creates a mux; per round, `primary` is used with probability
    /// `P_source` (from the [`GossipConfig`] the engine passes in).
    pub fn new(primary: P, secondary: S) -> Self {
        MuxSteering {
            primary,
            secondary,
            primary_rounds: 0,
            secondary_rounds: 0,
        }
    }

    /// Rounds that used the primary steering.
    pub fn primary_rounds(&self) -> u64 {
        self.primary_rounds
    }

    /// Rounds that used the secondary steering (including fallbacks).
    pub fn secondary_rounds(&self) -> u64 {
        self.secondary_rounds
    }
}

impl<P: SteeringPolicy, S: SteeringPolicy> SteeringPolicy for MuxSteering<P, S> {
    fn round(
        &mut self,
        digest: &mut dyn DigestPolicy,
        node: &Dispatcher,
        neighbors: &[NodeId],
        config: &GossipConfig,
        rng: &mut Rng,
    ) -> Vec<GossipAction> {
        if !digest.has_work(node) {
            // No work: skip without consuming the coin draw.
            return Vec::new();
        }
        if rng.random_bool(config.p_source) {
            self.primary_rounds += 1;
            let actions = self.primary.round(digest, node, neighbors, config, rng);
            if !actions.is_empty() {
                return actions;
            }
            // The primary found nothing actionable: fall back to the
            // secondary rather than wasting the round.
            self.secondary_rounds += 1;
            self.secondary.round(digest, node, neighbors, config, rng)
        } else {
            self.secondary_rounds += 1;
            self.secondary.round(digest, node, neighbors, config, rng)
        }
    }

    fn on_gossip(
        &mut self,
        digest: &mut dyn DigestPolicy,
        node: &Dispatcher,
        from: NodeId,
        msg: GossipMessage,
        neighbors: &[NodeId],
        config: &GossipConfig,
        rng: &mut Rng,
    ) -> Option<Vec<GossipAction>> {
        // Wire forms are disjoint between steerings; offer the message
        // to the primary first, then the secondary.
        match self
            .primary
            .on_gossip(digest, node, from, msg.clone(), neighbors, config, rng)
        {
            Some(actions) => Some(actions),
            None => self
                .secondary
                .on_gossip(digest, node, from, msg, neighbors, config, rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eps_pubsub::DispatcherConfig;
    use eps_sim::RngFactory;

    fn cfg() -> GossipConfig {
        GossipConfig {
            p_forward: 1.0,
            ..GossipConfig::default()
        }
    }

    fn record(source: u32, pattern: u16, seq: u64) -> LossRecord {
        LossRecord {
            source: NodeId::new(source),
            pattern: PatternId::new(pattern),
            seq,
        }
    }

    fn node_with_cached_event() -> (Dispatcher, Event) {
        let mut d = Dispatcher::new(NodeId::new(1), DispatcherConfig::default());
        d.subscribe_local(PatternId::new(1), &[]);
        let e = Event::new(
            EventId::new(NodeId::new(0), 0),
            vec![(PatternId::new(1), 4)],
        );
        d.on_event(e.clone(), Some(NodeId::new(0)));
        (d, e)
    }

    #[test]
    fn serve_from_cache_splits_found_and_missing() {
        let (d, e) = node_with_cached_event();
        let hit = record(0, 1, 4);
        let miss = record(0, 1, 7);
        let (found, remainder) = serve_from_cache(&d, &[hit, miss]);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].id(), e.id());
        assert_eq!(remainder, vec![miss]);
    }

    #[test]
    fn serve_from_cache_dedups_multi_pattern_events() {
        let mut d = Dispatcher::new(NodeId::new(1), DispatcherConfig::default());
        d.subscribe_local(PatternId::new(1), &[]);
        let e = Event::new(
            EventId::new(NodeId::new(0), 0),
            vec![(PatternId::new(1), 0), (PatternId::new(2), 0)],
        );
        d.on_event(e, Some(NodeId::new(0)));
        let records = [record(0, 1, 0), record(0, 2, 0)];
        let (found, remainder) = serve_from_cache(&d, &records);
        assert_eq!(found.len(), 1, "same event must be sent once");
        assert!(remainder.is_empty());
    }

    #[test]
    fn pattern_targets_respect_probability_extremes() {
        let mut d = Dispatcher::new(NodeId::new(0), DispatcherConfig::default());
        let p = PatternId::new(1);
        d.on_subscribe(p, NodeId::new(1), &[]);
        d.on_subscribe(p, NodeId::new(2), &[]);
        let mut rng = RngFactory::new(1).stream("gossip");
        let all = pattern_forward_targets(&d, p, None, 1.0, &mut rng);
        assert_eq!(all.len(), 2);
        // Even at p_forward = 0 a digest keeps moving along one route.
        let min_one = pattern_forward_targets(&d, p, None, 0.0, &mut rng);
        assert_eq!(min_one.len(), 1);
        let excl = pattern_forward_targets(&d, p, Some(NodeId::new(1)), 1.0, &mut rng);
        assert_eq!(excl, vec![NodeId::new(2)]);
        // No candidates -> no targets, guarantee-one does not invent.
        let q = PatternId::new(9);
        assert!(pattern_forward_targets(&d, q, None, 1.0, &mut rng).is_empty());
    }

    #[test]
    fn random_targets_never_include_sender_and_never_empty() {
        let mut rng = RngFactory::new(2).stream("gossip");
        let nbrs = [NodeId::new(1), NodeId::new(2), NodeId::new(3)];
        for _ in 0..100 {
            let t = random_forward_targets(&nbrs, Some(NodeId::new(2)), 0.3, &mut rng);
            assert!(!t.is_empty());
            assert!(!t.contains(&NodeId::new(2)));
        }
    }

    // -- DigestPolicy units -------------------------------------------------

    #[test]
    fn positive_digest_announces_cache_and_requests_missing() {
        let mut node = Dispatcher::new(NodeId::new(0), DispatcherConfig::default());
        let p = PatternId::new(1);
        node.subscribe_local(p, &[]);
        let (event, _) = node.publish(&[p]);
        let mut digest = PositiveDigest::new();
        assert_eq!(digest.pattern_candidates(&node), vec![p]);
        match digest.build_for_pattern(&node, p, 128) {
            Some(DigestBody::Positive(ids)) => assert_eq!(*ids, vec![event.id()]),
            other => panic!("unexpected {other:?}"),
        }
        // Absorbing a digest with an unseen id produces a request.
        let foreign = Arc::new(vec![EventId::new(NodeId::new(7), 3)]);
        let absorbed = digest
            .absorb(
                &node,
                NodeId::new(5),
                Some(p),
                DigestBody::Positive(foreign),
            )
            .expect("positive body is native");
        assert!(matches!(
            absorbed.actions[0],
            GossipAction::Request { to, .. } if to == NodeId::new(5)
        ));
        assert!(
            matches!(absorbed.remainder, Some(DigestBody::Positive(_))),
            "positive digests keep propagating unchanged"
        );
        // The same id is not requested twice while in flight.
        let again = Arc::new(vec![EventId::new(NodeId::new(7), 3)]);
        let absorbed = digest
            .absorb(&node, NodeId::new(5), Some(p), DigestBody::Positive(again))
            .unwrap();
        assert!(absorbed.actions.is_empty());
        // Negative bodies are foreign.
        assert!(digest
            .absorb(
                &node,
                NodeId::new(5),
                Some(p),
                DigestBody::Negative(vec![record(0, 1, 0)])
            )
            .is_none());
    }

    #[test]
    fn positive_digest_idle_streak_requires_three_quiet_rounds() {
        let mut digest = PositiveDigest::new();
        assert!(!digest.is_idle());
        for _ in 0..3 {
            digest.begin_round();
        }
        assert!(digest.is_idle());
        digest.note_request();
        assert!(!digest.is_idle());
        digest.begin_round();
        assert!(!digest.is_idle(), "a request resets the streak");
    }

    #[test]
    fn negative_digest_tracks_and_serves_losses() {
        let (node, _) = node_with_cached_event();
        let mut digest = NegativeDigest::new(&cfg());
        digest.on_losses(&[record(0, 1, 7), record(2, 3, 1)]);
        assert_eq!(digest.outstanding_losses(), 2);
        assert_eq!(digest.pattern_candidates(&node).len(), 2);
        assert_eq!(digest.source_candidates().len(), 2);
        match digest.build_for_source(NodeId::new(2), 128) {
            Some(DigestBody::Negative(entries)) => assert_eq!(entries, vec![record(2, 3, 1)]),
            other => panic!("unexpected {other:?}"),
        }
        // Absorbing a negative digest serves the cache and shrinks the
        // remainder.
        let absorbed = digest
            .absorb(
                &node,
                NodeId::new(9),
                None,
                DigestBody::Negative(vec![record(0, 1, 4), record(0, 1, 9)]),
            )
            .expect("negative body is native");
        assert!(matches!(absorbed.actions[0], GossipAction::Reply { .. }));
        match absorbed.remainder {
            Some(DigestBody::Negative(rest)) => assert_eq!(rest, vec![record(0, 1, 9)]),
            other => panic!("unexpected {other:?}"),
        }
        // Fully served digests short-circuit.
        let absorbed = digest
            .absorb(
                &node,
                NodeId::new(9),
                None,
                DigestBody::Negative(vec![record(0, 1, 4)]),
            )
            .unwrap();
        assert!(absorbed.remainder.is_none());
        // Positive bodies are foreign.
        assert!(digest
            .absorb(
                &node,
                NodeId::new(9),
                None,
                DigestBody::Positive(Arc::new(vec![]))
            )
            .is_none());
    }

    #[test]
    fn negative_digest_truncates_oldest_first_and_never_starves_newest() {
        // The truncation contract documented on
        // `DigestPolicy::build_for_pattern`: over-limit digests carry
        // the oldest (lowest (source, seq)) entries, and every deferred
        // newer entry still reaches the wire in a later round.
        let config = GossipConfig {
            max_attempts: 2,
            ..cfg()
        };
        let node = Dispatcher::new(NodeId::new(1), DispatcherConfig::default());
        let mut digest = NegativeDigest::new(&config);
        let p = PatternId::new(1);
        for seq in 0..10 {
            digest.on_losses(&[record(0, 1, seq)]);
        }
        match digest.build_for_pattern(&node, p, 4) {
            Some(DigestBody::Negative(entries)) => {
                let oldest: Vec<LossRecord> = (0..4).map(|s| record(0, 1, s)).collect();
                assert_eq!(entries, oldest, "truncation must keep the oldest first");
            }
            other => panic!("unexpected {other:?}"),
        }
        // Keep gossiping without any recovery: attempts expire the
        // entries at the front of the order, and every newer entry —
        // including the newest — surfaces before the buffer drains.
        let mut seen_on_wire: Vec<u64> = vec![];
        for _ in 0..20 {
            if let Some(DigestBody::Negative(entries)) = digest.build_for_pattern(&node, p, 4) {
                seen_on_wire.extend(entries.iter().map(|r| r.seq));
            }
            if digest.outstanding_losses() == 0 {
                break;
            }
        }
        assert_eq!(digest.outstanding_losses(), 0);
        for seq in 0..10 {
            assert!(
                seen_on_wire.contains(&seq),
                "deferred entry seq {seq} never reached the wire: {seen_on_wire:?}"
            );
        }
    }

    #[test]
    fn alternating_digest_flips_phase_each_round() {
        let mut node = Dispatcher::new(NodeId::new(0), DispatcherConfig::default());
        let p = PatternId::new(1);
        node.subscribe_local(p, &[]);
        node.publish(&[p]);
        let mut digest = AlternatingDigest::new(&cfg());
        digest.on_losses(&[record(7, 2, 0)]);
        digest.begin_round();
        assert!(digest.in_positive_phase());
        assert!(matches!(
            digest.build_for_pattern(&node, p, 128),
            Some(DigestBody::Positive(_))
        ));
        digest.begin_round();
        assert!(!digest.in_positive_phase());
        assert_eq!(digest.pattern_candidates(&node), vec![PatternId::new(2)]);
        assert!(matches!(
            digest.build_for_pattern(&node, PatternId::new(2), 128),
            Some(DigestBody::Negative(_))
        ));
        // Both body kinds are absorbed regardless of phase.
        digest.begin_round(); // back to positive
        assert!(digest
            .absorb(
                &node,
                NodeId::new(9),
                None,
                DigestBody::Negative(vec![record(7, 2, 0)])
            )
            .is_some());
        assert!(digest
            .absorb(
                &node,
                NodeId::new(9),
                Some(p),
                DigestBody::Positive(Arc::new(vec![]))
            )
            .is_some());
    }

    // -- SteeringPolicy units ----------------------------------------------

    #[test]
    fn pattern_steering_skips_round_without_candidates() {
        let node = Dispatcher::new(NodeId::new(0), DispatcherConfig::default());
        let mut digest = NegativeDigest::new(&cfg());
        let mut steering = PatternSteering::default();
        let mut rng = RngFactory::new(3).stream("gossip");
        assert!(steering
            .round(&mut digest, &node, &[], &cfg(), &mut rng)
            .is_empty());
    }

    #[test]
    fn pattern_steering_routes_negative_digest_to_subscribers() {
        let mut node = Dispatcher::new(NodeId::new(0), DispatcherConfig::default());
        let p = PatternId::new(1);
        node.subscribe_local(p, &[]);
        node.on_subscribe(p, NodeId::new(2), &[]);
        let mut digest = NegativeDigest::new(&cfg());
        digest.on_losses(&[record(7, 1, 0)]);
        let mut steering = PatternSteering::default();
        let mut rng = RngFactory::new(1).stream("gossip");
        let actions = steering.round(&mut digest, &node, &[], &cfg(), &mut rng);
        assert_eq!(actions.len(), 1);
        match &actions[0] {
            GossipAction::Forward { to, msg } => {
                assert_eq!(*to, NodeId::new(2));
                assert!(matches!(msg, GossipMessage::PullDigest { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn source_steering_follows_reverse_route() {
        let mut node = Dispatcher::new(
            NodeId::new(5),
            DispatcherConfig {
                cache_own_published: true,
                record_routes: true,
                ..DispatcherConfig::default()
            },
        );
        node.subscribe_local(PatternId::new(1), &[]);
        let mut e = Event::new(
            EventId::new(NodeId::new(0), 0),
            vec![(PatternId::new(1), 0)],
        );
        e.record_hop(NodeId::new(3));
        node.on_event(e, Some(NodeId::new(3)));
        let mut digest = NegativeDigest::new(&cfg());
        digest.on_losses(&[record(0, 1, 5)]);
        let mut steering = SourceSteering::default();
        let mut rng = RngFactory::new(1).stream("gossip");
        let actions = steering.round(&mut digest, &node, &[], &cfg(), &mut rng);
        assert_eq!(actions.len(), 1);
        match &actions[0] {
            GossipAction::Forward { to, msg } => {
                assert_eq!(*to, NodeId::new(3), "first hop back towards the source");
                match msg {
                    GossipMessage::SourcePull { source, route, .. } => {
                        assert_eq!(*source, NodeId::new(0));
                        assert_eq!(route, &vec![NodeId::new(0)]);
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn source_steering_skips_unroutable_sources() {
        let node = Dispatcher::new(NodeId::new(5), DispatcherConfig::default());
        let mut digest = NegativeDigest::new(&cfg());
        digest.on_losses(&[record(7, 1, 0)]);
        let mut steering = SourceSteering::default();
        let mut rng = RngFactory::new(1).stream("gossip");
        assert!(steering
            .round(&mut digest, &node, &[], &cfg(), &mut rng)
            .is_empty());
        // The entry stays outstanding for later (e.g. combined pull).
        assert_eq!(digest.outstanding_losses(), 1);
    }

    #[test]
    fn random_steering_walks_with_ttl_and_skips_without_work() {
        let node = Dispatcher::new(NodeId::new(0), DispatcherConfig::default());
        let mut digest = NegativeDigest::new(&cfg());
        let mut steering = RandomSteering;
        let mut rng = RngFactory::new(1).stream("gossip");
        let nbrs = [NodeId::new(1), NodeId::new(2)];
        assert!(steering
            .round(&mut digest, &node, &nbrs, &cfg(), &mut rng)
            .is_empty());
        digest.on_losses(&[record(1, 1, 0)]);
        assert!(
            steering
                .round(&mut digest, &node, &[], &cfg(), &mut rng)
                .is_empty(),
            "no neighbors, no round"
        );
        let actions = steering.round(&mut digest, &node, &nbrs, &cfg(), &mut rng);
        assert_eq!(actions.len(), 2);
        for action in &actions {
            assert!(matches!(
                action,
                GossipAction::Forward {
                    msg: GossipMessage::RandomPull { ttl, .. },
                    ..
                } if *ttl == cfg().random_ttl
            ));
        }
        // An incoming digest at ttl=1 is served but never forwarded.
        let msg = GossipMessage::RandomPull {
            gossiper: NodeId::new(9),
            lost: vec![record(3, 1, 0)],
            ttl: 1,
        };
        let actions = steering
            .on_gossip(
                &mut digest,
                &node,
                NodeId::new(2),
                msg,
                &nbrs,
                &cfg(),
                &mut rng,
            )
            .expect("random pull is this steering's wire form");
        assert!(actions.is_empty(), "ttl=1 must not forward further");
    }

    #[test]
    fn mux_steering_flips_between_branches() {
        let mut node = Dispatcher::new(
            NodeId::new(5),
            DispatcherConfig {
                cache_own_published: true,
                record_routes: true,
                ..DispatcherConfig::default()
            },
        );
        node.subscribe_local(PatternId::new(1), &[]);
        node.on_subscribe(PatternId::new(1), NodeId::new(3), &[]);
        let mut e = Event::new(
            EventId::new(NodeId::new(0), 0),
            vec![(PatternId::new(1), 0)],
        );
        e.record_hop(NodeId::new(3));
        node.on_event(e, Some(NodeId::new(3)));
        let config = GossipConfig {
            p_forward: 1.0,
            p_source: 0.5,
            max_attempts: u32::MAX,
            ..GossipConfig::default()
        };
        let mut digest = NegativeDigest::new(&config);
        let mut mux = MuxSteering::new(SourceSteering::default(), PatternSteering::default());
        let mut rng = RngFactory::new(9).stream("gossip");
        let (mut saw_pull, mut saw_source) = (false, false);
        for seq in 0..200u64 {
            digest.on_losses(&[record(0, 1, seq + 1)]);
            for action in mux.round(&mut digest, &node, &[], &config, &mut rng) {
                match action {
                    GossipAction::Forward {
                        msg: GossipMessage::PullDigest { .. },
                        ..
                    } => saw_pull = true,
                    GossipAction::Forward {
                        msg: GossipMessage::SourcePull { .. },
                        ..
                    } => saw_source = true,
                    _ => {}
                }
            }
        }
        assert!(saw_pull, "subscriber variant never used");
        assert!(saw_source, "publisher variant never used");
        assert!(mux.primary_rounds() > 0 && mux.secondary_rounds() > 0);
    }

    #[test]
    fn mux_steering_falls_back_when_primary_is_empty() {
        // Node with a subscription but no route knowledge.
        let mut node = Dispatcher::new(NodeId::new(5), DispatcherConfig::default());
        node.subscribe_local(PatternId::new(1), &[]);
        node.on_subscribe(PatternId::new(1), NodeId::new(3), &[]);
        let config = GossipConfig {
            p_forward: 1.0,
            p_source: 1.0, // always tries the primary first
            ..GossipConfig::default()
        };
        let mut digest = NegativeDigest::new(&config);
        digest.on_losses(&[record(0, 1, 5)]);
        let mut mux = MuxSteering::new(SourceSteering::default(), PatternSteering::default());
        let mut rng = RngFactory::new(9).stream("gossip");
        let actions = mux.round(&mut digest, &node, &[], &config, &mut rng);
        assert!(
            matches!(
                actions[0],
                GossipAction::Forward {
                    msg: GossipMessage::PullDigest { .. },
                    ..
                }
            ),
            "expected subscriber fallback, got {actions:?}"
        );
    }

    #[test]
    fn mux_steering_skips_round_without_work() {
        let node = Dispatcher::new(NodeId::new(5), DispatcherConfig::default());
        let mut digest = NegativeDigest::new(&cfg());
        let mut mux = MuxSteering::new(SourceSteering::default(), PatternSteering::default());
        let mut rng = RngFactory::new(9).stream("gossip");
        assert!(mux
            .round(&mut digest, &node, &[], &cfg(), &mut rng)
            .is_empty());
        assert_eq!(mux.primary_rounds() + mux.secondary_rounds(), 0);
    }
}
