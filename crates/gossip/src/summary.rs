//! Summary reconciliation: the digest policy whose anti-entropy wire
//! cost is sublinear in cache size (ROADMAP item 2).
//!
//! The paper's push digest re-announces the cache *linearly*: a round
//! for pattern p carries every cached id matching p, so wire bytes
//! grow O(C) with cache size C. Summary reconciliation replaces the id
//! list with hash-range tree aggregates (see [`eps_pubsub::summary`]):
//! a round carries the root [`RangeSummary`] — constant size — plus
//! the refinements peers asked for, reaching O(log C + Δ) bytes for Δ
//! differing events.
//!
//! The recursion is spread across *rounds*, not a synchronous RPC:
//!
//! 1. Gossiper sends a [`crate::GossipMessage::SummaryDigest`] with
//!    the root aggregate (plus any queued refinements), routed along
//!    the subscription tree exactly like a push digest.
//! 2. A receiver compares each received aggregate against its own
//!    [`eps_pubsub::SummaryIndex`]. Mismatching ranges produce a
//!    [`crate::GossipAction::RequestDetail`], which travels back to
//!    the gossiper out-of-band as a [`crate::Envelope::RangeRequest`].
//! 3. The gossiper queues the requested ranges and *its next round's
//!    digest* carries their refinement: the children aggregates of a
//!    big range, or the complete id list ([`RangeDetail`]) of a small
//!    one. Each round narrows the mismatch by one tree level, so two
//!    caches converge in ~[`eps_pubsub::summary::LEVEL_COUNT`] + 1
//!    rounds per differing path.
//!
//! The same wire form serves both transfer directions, chosen by
//! [`SummaryMode`]:
//!
//! - **Push** (`summary-push`): receivers request ids the *gossiper*
//!   has and they lack (out-of-band [`crate::GossipAction::Request`],
//!   exactly like linear push) — receiver-deficit recovery.
//! - **Pull** (`summary-pull`): receivers reply with cached events the
//!   gossiper provably lacks (an expanded range whose id list misses
//!   them) — gossiper-deficit recovery. Empty [`RangeDetail`] lists
//!   matter here: they are how a gossiper says "I have nothing in this
//!   range", letting any dispatcher on the route serve its surplus.
//!
//! Pull rounds announce the gossiper's **seen** view — the live cache
//! plus its eviction tombstones ([`eps_pubsub::EventCache::seen_summary`])
//! — and receivers compare their own seen view against it. An id the
//! gossiper consumed and then evicted is still part of its announced
//! aggregates, so peers stop re-serving that surplus round after round
//! (the gossiper's `has_seen` filter would discard every copy anyway).
//! Serving itself stays strictly live: only resident events can back a
//! [`crate::GossipAction::Reply`]. A cache that never evicts has an
//! empty tombstone set, making the seen view bit-identical to the live
//! one — the pre-tombstone wire behavior.

use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::fmt;
use std::sync::Arc;

use eps_overlay::NodeId;
use eps_pubsub::{Dispatcher, Event, EventId, PatternId, RangeDetail, RangeRef};

use crate::config::GossipConfig;
use crate::message::GossipAction;
use crate::policy::{Absorbed, DigestBody, DigestPolicy};

/// When a mismatching range holds at most this many ids, its
/// refinement is the complete id list rather than children aggregates:
/// listing (96 bits/id) beats another round of recursion once the
/// range is small. Part of the convergence-bound contract: at most one
/// extra round after the aggregate narrows below the threshold.
pub const DETAIL_THRESHOLD: u64 = 16;

/// Bound on queued refinement requests per dispatcher (across all
/// patterns). Peers asking faster than rounds can answer have their
/// oldest-range requests kept and the excess dropped — the mismatch
/// persists, so a dropped request is simply re-issued on a later
/// round.
pub const MAX_QUEUED_RANGES: usize = 1024;

/// Which deficit a summary digest recovers.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SummaryMode {
    /// Receivers fetch what the gossiper has and they lack.
    Push,
    /// Receivers serve what they have and the gossiper lacks.
    Pull,
}

/// The summary-reconciliation digest policy (`summary-push` /
/// `summary-pull` in the [`crate::Algorithm`] registry, composed with
/// [`crate::PatternSteering`]).
///
/// Requires [`eps_pubsub::DispatcherConfig::summary_index`] on every
/// dispatcher (the registry entries declare it via
/// [`crate::Algorithm::needs_summary_index`]); building or absorbing a
/// digest panics otherwise.
#[derive(Clone)]
pub struct SummaryDigestPolicy {
    mode: SummaryMode,
    /// Ranges peers asked this gossiper to refine, per pattern.
    /// `BTreeMap`/`BTreeSet` keep the drain order deterministic.
    detail_out: BTreeMap<PatternId, BTreeSet<RangeRef>>,
    /// Total queued ranges (bounded by [`MAX_QUEUED_RANGES`]).
    queued: usize,
    /// Push mode: ids already requested and still in flight, so one id
    /// is never requested twice concurrently. Membership checks only —
    /// never iterated, so HashSet ordering cannot leak into output.
    requested: HashSet<EventId>,
    /// Pull mode: cap on events served per absorbed digest
    /// (`digest_max`, mirroring the entry bound of negative digests).
    serve_cap: usize,
    requests_since_round: u64,
    idle_rounds: u32,
}

impl fmt::Debug for SummaryDigestPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SummaryDigestPolicy")
            .field("mode", &self.mode)
            .field("queued", &self.queued)
            .field("in_flight", &self.requested.len())
            .finish_non_exhaustive()
    }
}

impl SummaryDigestPolicy {
    fn new(mode: SummaryMode, config: &GossipConfig) -> Self {
        SummaryDigestPolicy {
            mode,
            detail_out: BTreeMap::new(),
            queued: 0,
            requested: HashSet::new(),
            serve_cap: config.digest_max,
            requests_since_round: 0,
            idle_rounds: 0,
        }
    }

    /// Receiver-deficit (push-style) summary reconciliation.
    pub fn push(config: &GossipConfig) -> Self {
        SummaryDigestPolicy::new(SummaryMode::Push, config)
    }

    /// Gossiper-deficit (pull-style) summary reconciliation.
    pub fn pull(config: &GossipConfig) -> Self {
        SummaryDigestPolicy::new(SummaryMode::Pull, config)
    }

    /// The transfer direction.
    pub fn mode(&self) -> SummaryMode {
        self.mode
    }

    /// Ranges currently queued for refinement (tests and metrics).
    pub fn queued_ranges(&self) -> usize {
        self.queued
    }

    /// Queues one refinement request, dropping it silently at the
    /// [`MAX_QUEUED_RANGES`] bound (the persistent mismatch re-issues
    /// it later).
    fn queue_range(&mut self, pattern: PatternId, range: RangeRef) {
        if self.queued >= MAX_QUEUED_RANGES {
            return;
        }
        if self.detail_out.entry(pattern).or_default().insert(range) {
            self.queued += 1;
        }
    }

    /// The view this policy's digests announce and compare: push works
    /// on the live cache (its digests invite fetches, which only
    /// resident events can serve); pull works on the *seen* view —
    /// live plus eviction tombstones — so peers stop re-serving
    /// surplus the cache has already consumed and evicted.
    fn view_summarize(
        &self,
        node: &Dispatcher,
        pattern: PatternId,
        range: RangeRef,
    ) -> eps_pubsub::RangeSummary {
        match self.mode {
            SummaryMode::Push => node.cache().summary_index().summarize(pattern, range),
            SummaryMode::Pull => node.cache().seen_summary(pattern, range),
        }
    }

    /// The complete id list of `range` under the mode's view (see
    /// [`SummaryDigestPolicy::view_summarize`]).
    fn view_ids_in(&self, node: &Dispatcher, pattern: PatternId, range: RangeRef) -> Vec<EventId> {
        match self.mode {
            SummaryMode::Push => node.cache().summary_index().ids_in(pattern, range),
            SummaryMode::Pull => node.cache().seen_ids_in(pattern, range),
        }
    }

    /// Pops the next queued refinement for `pattern`, keeping the
    /// global counter and the per-pattern map in step.
    fn pop_queued(&mut self, pattern: PatternId) -> Option<RangeRef> {
        let queue = self.detail_out.get_mut(&pattern)?;
        let range = queue.pop_first();
        if range.is_some() {
            self.queued -= 1;
        }
        if queue.is_empty() {
            self.detail_out.remove(&pattern);
        }
        range
    }

    /// Serves `ids` (a provable gossiper deficit) from the cache as a
    /// single deduplicated reply, capped at `serve_cap` events.
    fn serve_ids(&self, node: &Dispatcher, to: NodeId, ids: &[EventId]) -> Option<GossipAction> {
        let mut events: Vec<Event> = ids
            .iter()
            .filter_map(|&id| node.cache().get(id).cloned())
            .collect();
        // One event can appear under several patterns/leaves.
        events.sort_by_key(Event::id);
        events.dedup_by_key(|e| e.id());
        events.truncate(self.serve_cap);
        if events.is_empty() {
            None
        } else {
            Some(GossipAction::Reply { to, events })
        }
    }
}

impl DigestPolicy for SummaryDigestPolicy {
    fn begin_round(&mut self) {
        // Same idle-streak rule as the linear push digest: a single
        // quiet interval is noise, a streak backs the interval off.
        if self.requests_since_round > 0 {
            self.idle_rounds = 0;
        } else {
            self.idle_rounds = self.idle_rounds.saturating_add(1);
        }
        self.requests_since_round = 0;
    }

    fn pattern_candidates(&self, node: &Dispatcher) -> Vec<PatternId> {
        // Proactive, like push: any pattern this dispatcher routes is
        // worth a round — being on the path to a subscriber is enough.
        node.table().all_patterns().collect()
    }

    fn pattern_candidates_into(&self, node: &Dispatcher, out: &mut Vec<PatternId>) {
        out.clear();
        out.extend(node.table().all_patterns());
    }

    fn build_for_pattern(
        &mut self,
        node: &Dispatcher,
        pattern: PatternId,
        limit: usize,
    ) -> Option<DigestBody> {
        let root = self.view_summarize(node, pattern, RangeRef::ROOT);
        if self.mode == SummaryMode::Push && root.count == 0 && self.queued == 0 {
            // Nothing to announce and nobody waiting on a refinement.
            // (Pull rounds still go out empty: "I have nothing" is
            // exactly what invites peers to serve their surplus.)
            return None;
        }
        let mut ranges = vec![root];
        let mut details: Vec<RangeDetail> = Vec::new();
        // Drain queued refinements while the entry budget lasts. The
        // last expansion may overshoot `limit` by one fanout of
        // children — a soft cap, guaranteeing progress even with a
        // tiny digest_max.
        while ranges.len() + details.len() < limit {
            let Some(range) = self.pop_queued(pattern) else {
                break;
            };
            let summary = self.view_summarize(node, pattern, range);
            if range.is_leaf() || summary.count <= DETAIL_THRESHOLD {
                // Small enough to list outright — including the
                // empty list, which pull receivers need to see.
                details.push(RangeDetail {
                    range,
                    ids: self.view_ids_in(node, pattern, range),
                });
            } else {
                // Refine by one level. All children are included —
                // empty ones too — so receivers can tell "gossiper
                // holds nothing here" from "not yet refined".
                for i in 0..eps_pubsub::summary::FANOUT {
                    ranges.push(self.view_summarize(node, pattern, range.child(i)));
                }
            }
        }
        Some(DigestBody::Summary {
            ranges: Arc::new(ranges),
            details: Arc::new(details),
        })
    }

    fn build_any(&mut self, _limit: usize) -> Option<DigestBody> {
        // Summary digests are always pattern-labelled.
        None
    }

    fn has_work(&self, _node: &Dispatcher) -> bool {
        // Proactive: a round is always worth attempting.
        true
    }

    fn absorb(
        &mut self,
        node: &Dispatcher,
        gossiper: NodeId,
        pattern: Option<PatternId>,
        body: DigestBody,
    ) -> Option<Absorbed> {
        let DigestBody::Summary { ranges, details } = body else {
            return None; // Linear digests are foreign to this family.
        };
        let Some(pattern) = pattern else {
            return None; // Summary digests are pattern-steered only.
        };
        let mut actions = Vec::new();
        // Push reacts only at subscribers (they are the ones with a
        // deficit worth filling); pull serves from any dispatcher on
        // the route, exactly like linear pull's cache serving.
        let reacts = gossiper != node.id()
            && match self.mode {
                SummaryMode::Push => node.table().has_local(pattern),
                SummaryMode::Pull => true,
            };
        if reacts {
            let local = node.cache().summary_index();
            let mut refine: Vec<RangeRef> = Vec::new();
            let mut serve: Vec<EventId> = Vec::new();
            for summary in ranges.iter() {
                // Pull compares seen view against seen view, so two
                // caches that merely evicted differently — but saw the
                // same ids — have nothing to exchange. Serving below
                // stays live-only: `local.ids_in` lists residents.
                let ours = self.view_summarize(node, pattern, summary.range);
                if ours.count == summary.count && ours.hash == summary.hash {
                    continue; // Identical content in this range.
                }
                match self.mode {
                    // Gossiper holds nothing we could fetch.
                    SummaryMode::Push if summary.count == 0 => {}
                    // Gossiper holds nothing: everything of ours in
                    // the range is a provable deficit — no need to
                    // recurse further.
                    SummaryMode::Pull if summary.count == 0 => {
                        serve.extend(local.ids_in(pattern, summary.range));
                    }
                    // Both sides hold something: refine to find Δ.
                    SummaryMode::Push | SummaryMode::Pull => refine.push(summary.range),
                }
            }
            let mut fetch: Vec<EventId> = Vec::new();
            for detail in details.iter() {
                match self.mode {
                    SummaryMode::Push => {
                        // Ids the gossiper holds and we have never
                        // seen, minus those already requested.
                        fetch.extend(
                            detail
                                .ids
                                .iter()
                                .copied()
                                .filter(|&id| !node.has_seen(id) && !self.requested.contains(&id)),
                        );
                    }
                    SummaryMode::Pull => {
                        // Our ids the gossiper's complete list lacks.
                        let theirs: BTreeSet<EventId> = detail.ids.iter().copied().collect();
                        serve.extend(
                            local
                                .ids_in(pattern, detail.range)
                                .into_iter()
                                .filter(|id| !theirs.contains(id)),
                        );
                    }
                }
            }
            if !refine.is_empty() {
                refine.sort_unstable();
                refine.dedup();
                actions.push(GossipAction::RequestDetail {
                    to: gossiper,
                    pattern,
                    ranges: refine,
                });
            }
            if !fetch.is_empty() {
                self.requested.extend(fetch.iter().copied());
                actions.push(GossipAction::Request {
                    to: gossiper,
                    ids: fetch,
                });
            }
            if !serve.is_empty() {
                actions.extend(self.serve_ids(node, gossiper, &serve));
            }
            if !actions.is_empty() {
                // Reconciliation in progress counts as activity for
                // the adaptive-gossip idle signal.
                self.requests_since_round += 1;
            }
        }
        // Like a linear push digest, the summary keeps propagating
        // unchanged along the pattern's routes.
        Some(Absorbed {
            actions,
            remainder: Some(DigestBody::Summary { ranges, details }),
        })
    }

    fn on_event_received(&mut self, event: &Event) {
        self.requested.remove(&event.id());
    }

    fn note_request(&mut self) {
        self.requests_since_round += 1;
    }

    fn on_range_request(&mut self, _from: NodeId, pattern: PatternId, ranges: &[RangeRef]) {
        for &range in ranges {
            self.queue_range(pattern, range);
        }
        // A peer asking for refinement is direct evidence the digests
        // are finding divergence.
        self.requests_since_round += 1;
    }

    fn is_idle(&self) -> bool {
        self.idle_rounds >= 3 && self.requests_since_round == 0 && self.queued == 0
    }
}

#[cfg(test)]
mod tests {
    use eps_pubsub::{DispatcherConfig, RangeSummary};

    use super::*;

    fn cfg() -> GossipConfig {
        GossipConfig::default()
    }

    fn summary_node(id: u32, pattern: u16) -> Dispatcher {
        let mut node = Dispatcher::new(
            NodeId::new(id),
            DispatcherConfig {
                summary_index: true,
                ..DispatcherConfig::default()
            },
        );
        node.subscribe_local(PatternId::new(pattern), &[]);
        node
    }

    fn feed(node: &mut Dispatcher, pattern: u16, source: u32, seqs: impl Iterator<Item = u64>) {
        for seq in seqs {
            let e = Event::new(
                EventId::new(NodeId::new(source), seq),
                vec![(PatternId::new(pattern), seq)],
            );
            node.on_event(e, Some(NodeId::new(99)));
        }
    }

    /// Runs rounds of two-node reconciliation: `a` gossips to `b`,
    /// actions are applied (RequestDetail queues on `a`, Request is
    /// served by `a`'s cache, Reply events land on `a`). Returns the
    /// number of rounds until no further actions flow.
    fn reconcile(
        a: &mut Dispatcher,
        b: &mut Dispatcher,
        pa: &mut SummaryDigestPolicy,
        pb: &mut SummaryDigestPolicy,
        pattern: PatternId,
        max_rounds: usize,
    ) -> usize {
        for round in 1..=max_rounds {
            pa.begin_round();
            let Some(body) = pa.build_for_pattern(a, pattern, cfg().digest_max) else {
                return round;
            };
            let absorbed = pb
                .absorb(b, a.id(), Some(pattern), body)
                .expect("summary body is native");
            if absorbed.actions.is_empty() {
                return round;
            }
            for action in absorbed.actions {
                match action {
                    GossipAction::RequestDetail { ranges, .. } => {
                        pa.on_range_request(b.id(), pattern, &ranges);
                    }
                    GossipAction::Request { ids, .. } => {
                        // b fetches from a's cache.
                        for id in ids {
                            if let Some(e) = a.cache().get(id).cloned() {
                                b.on_recovered_event(e.clone());
                                pb.on_event_received(&e);
                            }
                        }
                    }
                    GossipAction::Reply { events, .. } => {
                        // b serves a's deficit.
                        for e in events {
                            a.on_recovered_event(e.clone());
                            pa.on_event_received(&e);
                        }
                    }
                    GossipAction::Forward { .. } => {}
                }
            }
        }
        max_rounds
    }

    #[test]
    fn round_digest_is_root_only_until_peers_ask() {
        let mut node = summary_node(0, 1);
        feed(&mut node, 1, 7, 0..100);
        let mut policy = SummaryDigestPolicy::push(&cfg());
        match policy.build_for_pattern(&node, PatternId::new(1), 128) {
            Some(DigestBody::Summary { ranges, details }) => {
                assert_eq!(ranges.len(), 1, "unprompted rounds carry the root only");
                assert_eq!(ranges[0].range, RangeRef::ROOT);
                assert_eq!(ranges[0].count, 100);
                assert!(details.is_empty());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn refinement_requests_expand_in_the_next_round() {
        let mut node = summary_node(0, 1);
        feed(&mut node, 1, 7, 0..100);
        let p = PatternId::new(1);
        let mut policy = SummaryDigestPolicy::push(&cfg());
        policy.on_range_request(NodeId::new(2), p, &[RangeRef::ROOT]);
        assert_eq!(policy.queued_ranges(), 1);
        match policy.build_for_pattern(&node, p, 128) {
            Some(DigestBody::Summary { ranges, details }) => {
                // Root (always) + its 16 children (100 > threshold).
                assert_eq!(ranges.len(), 1 + 16);
                let total: u64 = ranges[1..].iter().map(|r| r.count).sum();
                assert_eq!(total, 100, "children partition the root");
                assert!(details.is_empty());
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(policy.queued_ranges(), 0, "queue drained");
        // A small range refines straight to a detail list.
        let mut small = summary_node(1, 1);
        feed(&mut small, 1, 7, 0..5);
        let mut policy = SummaryDigestPolicy::push(&cfg());
        policy.on_range_request(NodeId::new(2), p, &[RangeRef::ROOT]);
        match policy.build_for_pattern(&small, p, 128) {
            Some(DigestBody::Summary { ranges, details }) => {
                assert_eq!(ranges.len(), 1);
                assert_eq!(details.len(), 1);
                assert_eq!(details[0].ids.len(), 5);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn push_receiver_requests_missing_ids_only_once() {
        let mut gossiper = summary_node(0, 1);
        feed(&mut gossiper, 1, 7, 0..3);
        let receiver = summary_node(1, 1);
        let p = PatternId::new(1);
        let detail = gossiper
            .cache()
            .summary_index()
            .tree(p)
            .unwrap()
            .detail(RangeRef::ROOT);
        let body = DigestBody::Summary {
            ranges: Arc::new(vec![gossiper.cache().summary_index().root(p)]),
            details: Arc::new(vec![detail]),
        };
        let mut policy = SummaryDigestPolicy::push(&cfg());
        let absorbed = policy
            .absorb(&receiver, gossiper.id(), Some(p), body.clone())
            .unwrap();
        let requests: Vec<_> = absorbed
            .actions
            .iter()
            .filter(|a| matches!(a, GossipAction::Request { .. }))
            .collect();
        assert_eq!(requests.len(), 1);
        match requests[0] {
            GossipAction::Request { to, ids } => {
                assert_eq!(*to, gossiper.id());
                assert_eq!(ids.len(), 3);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(
            matches!(absorbed.remainder, Some(DigestBody::Summary { .. })),
            "summaries keep propagating unchanged"
        );
        // Re-absorbing while the request is in flight asks for nothing.
        let again = policy
            .absorb(&receiver, gossiper.id(), Some(p), body)
            .unwrap();
        assert!(!again
            .actions
            .iter()
            .any(|a| matches!(a, GossipAction::Request { .. })));
    }

    #[test]
    fn pull_receiver_serves_the_gossiper_deficit() {
        let gossiper = summary_node(0, 1); // empty cache
        let mut server = summary_node(1, 1);
        feed(&mut server, 1, 7, 0..4);
        let p = PatternId::new(1);
        // An empty gossiper's round: root with count 0.
        let body = DigestBody::Summary {
            ranges: Arc::new(vec![RangeSummary::empty(RangeRef::ROOT)]),
            details: Arc::new(vec![]),
        };
        let mut policy = SummaryDigestPolicy::pull(&cfg());
        let absorbed = policy
            .absorb(&server, gossiper.id(), Some(p), body)
            .unwrap();
        assert_eq!(absorbed.actions.len(), 1);
        match &absorbed.actions[0] {
            GossipAction::Reply { to, events } => {
                assert_eq!(*to, gossiper.id());
                assert_eq!(events.len(), 4, "entire surplus served");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn matching_caches_produce_no_actions() {
        let mut a = summary_node(0, 1);
        let mut b = summary_node(1, 1);
        feed(&mut a, 1, 7, 0..50);
        feed(&mut b, 1, 7, 0..50);
        let p = PatternId::new(1);
        for mut policy in [
            SummaryDigestPolicy::push(&cfg()),
            SummaryDigestPolicy::pull(&cfg()),
        ] {
            let body = DigestBody::Summary {
                ranges: Arc::new(vec![a.cache().summary_index().root(p)]),
                details: Arc::new(vec![]),
            };
            let absorbed = policy.absorb(&b, a.id(), Some(p), body).unwrap();
            assert!(absorbed.actions.is_empty(), "{:?}", policy.mode());
        }
    }

    #[test]
    fn linear_bodies_are_foreign() {
        let node = summary_node(0, 1);
        let mut policy = SummaryDigestPolicy::push(&cfg());
        assert!(policy
            .absorb(
                &node,
                NodeId::new(9),
                Some(PatternId::new(1)),
                DigestBody::Positive(Arc::new(vec![]))
            )
            .is_none());
        assert!(policy
            .absorb(
                &node,
                NodeId::new(9),
                Some(PatternId::new(1)),
                DigestBody::Negative(vec![])
            )
            .is_none());
        // And a summary body without a pattern label (source/random
        // steering) is foreign too.
        assert!(policy
            .absorb(
                &node,
                NodeId::new(9),
                None,
                DigestBody::Summary {
                    ranges: Arc::new(vec![]),
                    details: Arc::new(vec![])
                }
            )
            .is_none());
    }

    #[test]
    fn push_converges_within_the_round_bound() {
        // Gossiper has 200 events; the subscriber is missing 7 of
        // them. Multi-round recursion must localize and transfer all 7
        // within ~LEVEL_COUNT + 2 rounds per level of divergence.
        let missing = [3, 50, 51, 120, 155, 180, 199];
        let mut a = summary_node(0, 1);
        let mut b = summary_node(1, 1);
        feed(&mut a, 1, 7, 0..200);
        feed(&mut b, 1, 7, (0..200).filter(|s| !missing.contains(s)));
        let p = PatternId::new(1);
        let mut pa = SummaryDigestPolicy::push(&cfg());
        let mut pb = SummaryDigestPolicy::push(&cfg());
        let rounds = reconcile(&mut a, &mut b, &mut pa, &mut pb, p, 16);
        assert!(rounds < 16, "did not converge: {rounds} rounds");
        assert_eq!(
            b.cache().summary_index().root(p),
            a.cache().summary_index().root(p),
            "caches agree after reconciliation"
        );
    }

    #[test]
    fn pull_converges_within_the_round_bound() {
        // Gossiper is missing 5 events the receiver holds.
        let missing = [10, 11, 90, 140, 170];
        let mut a = summary_node(0, 1);
        let mut b = summary_node(1, 1);
        feed(&mut a, 1, 7, (0..200).filter(|s| !missing.contains(s)));
        feed(&mut b, 1, 7, 0..200);
        let p = PatternId::new(1);
        let mut pa = SummaryDigestPolicy::pull(&cfg());
        let mut pb = SummaryDigestPolicy::pull(&cfg());
        let rounds = reconcile(&mut a, &mut b, &mut pa, &mut pb, p, 16);
        assert!(rounds < 16, "did not converge: {rounds} rounds");
        assert_eq!(
            a.cache().summary_index().root(p),
            b.cache().summary_index().root(p),
            "caches agree after reconciliation"
        );
    }

    #[test]
    fn queued_ranges_are_bounded() {
        let mut policy = SummaryDigestPolicy::push(&cfg());
        let p = PatternId::new(1);
        // 16^3 level-3 ranges exceed the queue bound.
        for i in 0..(MAX_QUEUED_RANGES as u32 + 100) {
            policy.on_range_request(NodeId::new(2), p, &[RangeRef::new(3, i % 4096)]);
        }
        assert_eq!(policy.queued_ranges(), MAX_QUEUED_RANGES);
    }

    #[test]
    fn idle_signal_requires_a_quiet_streak() {
        let mut policy = SummaryDigestPolicy::pull(&cfg());
        assert!(!policy.is_idle());
        for _ in 0..3 {
            policy.begin_round();
        }
        assert!(policy.is_idle());
        policy.on_range_request(NodeId::new(2), PatternId::new(1), &[RangeRef::ROOT]);
        assert!(!policy.is_idle(), "queued work keeps the policy busy");
    }
}
