//! The algorithm registry: named digest × steering compositions.
//!
//! The paper's six strategies are registered here as compositions of
//! the policy stages in [`crate::policy`] — adding a strategy is one
//! [`Algorithm::register`] call, not a new module plus call-site
//! edits. The registry replaces the old closed `AlgorithmKind` enum
//! everywhere it was consumed: CLI parsing, scenario configuration,
//! node construction, experiment drivers, and benchmarks all work in
//! terms of [`Algorithm`] handles.
//!
//! Built-in entries, in the order the paper's figures list them:
//!
//! | name              | digest                | steering                      |
//! |-------------------|-----------------------|-------------------------------|
//! | `no-recovery`     | —                     | —                             |
//! | `random-pull`     | negative              | random (TTL)                  |
//! | `push`            | positive              | pattern                       |
//! | `subscriber-pull` | negative              | pattern                       |
//! | `combined-pull`   | negative              | mux(source, pattern)          |
//! | `publisher-pull`  | negative              | source                        |
//! | `push-pull`       | alternating pos/neg   | pattern                       |
//! | `summary-push`    | summary (push mode)   | pattern                       |
//! | `summary-pull`    | summary (pull mode)   | pattern                       |
//!
//! `push-pull` is the first dividend of the decomposition: a hybrid
//! strategy registered purely by composing existing stages — no new
//! wire format, no new algorithm struct. The `summary-*` extensions
//! (aliases `merkle-push` / `merkle-pull`) replace the linear id list
//! with hash-range tree aggregates, making anti-entropy wire cost
//! sublinear in cache size; they require the dispatcher to maintain a
//! [`eps_pubsub::SummaryIndex`], declared via
//! [`Algorithm::needs_summary_index`].

use std::fmt;
use std::str::FromStr;
use std::sync::{Arc, OnceLock, RwLock};

use crate::algorithm::{NoRecovery, RecoveryAlgorithm};
use crate::config::GossipConfig;
use crate::engine::GossipEngine;
use crate::policy::{
    AlternatingDigest, MuxSteering, NegativeDigest, PatternSteering, PositiveDigest,
    RandomSteering, SourceSteering,
};
use crate::summary::SummaryDigestPolicy;

/// Constructor for per-dispatcher strategy instances.
pub type AlgorithmBuilder = dyn Fn(GossipConfig) -> Box<dyn RecoveryAlgorithm> + Send + Sync;

/// One registry entry: a named recovery-strategy composition plus the
/// infrastructure it requires from the dispatching layer.
pub struct AlgorithmDef {
    /// Canonical name — CSV headers, CLI, [`RecoveryAlgorithm::name`].
    pub name: String,
    /// Alternative names accepted by [`Algorithm::named`] and the CLI.
    pub aliases: Vec<String>,
    /// Whether publishers must cache their own events (source-steered
    /// strategies pull towards the publisher, who must be able to
    /// serve).
    pub needs_publisher_cache: bool,
    /// Whether event messages must record their route (source steering
    /// reverses it).
    pub needs_route_recording: bool,
    /// Whether dispatchers must maintain the incremental hash-range
    /// [`eps_pubsub::SummaryIndex`] over their event cache (the
    /// summary-reconciliation strategies compare and refine it).
    pub needs_summary_index: bool,
    /// Builds a fresh per-dispatcher instance.
    pub build: Arc<AlgorithmBuilder>,
}

impl fmt::Debug for AlgorithmDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AlgorithmDef")
            .field("name", &self.name)
            .field("aliases", &self.aliases)
            .field("needs_publisher_cache", &self.needs_publisher_cache)
            .field("needs_route_recording", &self.needs_route_recording)
            .field("needs_summary_index", &self.needs_summary_index)
            .finish_non_exhaustive()
    }
}

/// A cheap handle on a registered recovery strategy.
///
/// Equality, ordering of lookups, hashing, and `Display` all work on
/// the canonical name, so an `Algorithm` behaves like the enum variant
/// it replaced — except that the set of algorithms is open.
///
/// # Examples
///
/// ```
/// use eps_gossip::{Algorithm, GossipConfig};
///
/// let algo = Algorithm::named("Combined-Pull").unwrap(); // case-insensitive
/// assert_eq!(algo.name(), "combined-pull");
/// let mut instance = algo.build(GossipConfig::default());
/// assert_eq!(instance.name(), "combined-pull");
/// assert!(instance.is_idle());
/// ```
#[derive(Clone)]
pub struct Algorithm(Arc<AlgorithmDef>);

impl Algorithm {
    /// Looks up a registered algorithm by name or alias,
    /// case-insensitively.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseAlgorithmError`] listing the registered names
    /// when nothing matches.
    pub fn named(name: &str) -> Result<Algorithm, ParseAlgorithmError> {
        let wanted = name.trim();
        let entries = registry().read().expect("algorithm registry poisoned");
        entries
            .iter()
            .find(|a| {
                a.0.name.eq_ignore_ascii_case(wanted)
                    || a.0.aliases.iter().any(|al| al.eq_ignore_ascii_case(wanted))
            })
            .cloned()
            .ok_or_else(|| ParseAlgorithmError {
                input: name.to_owned(),
                registered: entries.iter().map(|a| a.0.name.clone()).collect(),
            })
    }

    /// Every registered algorithm, in registration order (built-ins
    /// first, in the paper's figure order).
    pub fn all() -> Vec<Algorithm> {
        registry()
            .read()
            .expect("algorithm registry poisoned")
            .clone()
    }

    /// The six strategies evaluated in the paper, in the order its
    /// figures list them. Extensions such as `push-pull` are *not*
    /// included — figure reproductions and the golden suite iterate
    /// over exactly these.
    pub fn paper() -> Vec<Algorithm> {
        PAPER_ORDER
            .iter()
            .map(|name| Algorithm::named(name).expect("built-in algorithm registered"))
            .collect()
    }

    /// Registers (or replaces, matching case-insensitively by name) an
    /// algorithm definition and returns its handle.
    pub fn register(def: AlgorithmDef) -> Algorithm {
        let handle = Algorithm(Arc::new(def));
        let mut entries = registry().write().expect("algorithm registry poisoned");
        match entries
            .iter_mut()
            .find(|a| a.0.name.eq_ignore_ascii_case(&handle.0.name))
        {
            Some(slot) => *slot = handle.clone(),
            None => entries.push(handle.clone()),
        }
        handle
    }

    /// Canonical name.
    pub fn name(&self) -> &str {
        &self.0.name
    }

    /// Accepted alternative names.
    pub fn aliases(&self) -> &[String] {
        &self.0.aliases
    }

    /// Whether publishers must cache their own events for this
    /// strategy.
    pub fn needs_publisher_cache(&self) -> bool {
        self.0.needs_publisher_cache
    }

    /// Whether event messages must record their route for this
    /// strategy.
    pub fn needs_route_recording(&self) -> bool {
        self.0.needs_route_recording
    }

    /// Whether dispatchers must maintain the incremental cache summary
    /// index for this strategy.
    pub fn needs_summary_index(&self) -> bool {
        self.0.needs_summary_index
    }

    /// Builds a fresh per-dispatcher instance of this strategy.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`GossipConfig::validate`].
    pub fn build(&self, config: GossipConfig) -> Box<dyn RecoveryAlgorithm> {
        config.validate();
        (self.0.build)(config)
    }

    /// The `no-recovery` baseline.
    pub fn no_recovery() -> Algorithm {
        Algorithm::named("no-recovery").expect("built-in")
    }

    /// The paper's proactive push strategy.
    pub fn push() -> Algorithm {
        Algorithm::named("push").expect("built-in")
    }

    /// The paper's subscriber-based pull strategy.
    pub fn subscriber_pull() -> Algorithm {
        Algorithm::named("subscriber-pull").expect("built-in")
    }

    /// The paper's publisher-based pull strategy.
    pub fn publisher_pull() -> Algorithm {
        Algorithm::named("publisher-pull").expect("built-in")
    }

    /// The paper's combined pull strategy (`P_source` mux).
    pub fn combined_pull() -> Algorithm {
        Algorithm::named("combined-pull").expect("built-in")
    }

    /// The paper's random-routing comparator.
    pub fn random_pull() -> Algorithm {
        Algorithm::named("random-pull").expect("built-in")
    }

    /// The push+pull hybrid (extension): alternating positive and
    /// negative digests on pattern steering.
    pub fn push_pull() -> Algorithm {
        Algorithm::named("push-pull").expect("built-in")
    }

    /// Summary reconciliation, push mode (extension): hash-range tree
    /// digests on pattern steering, receivers fetch their deficit.
    pub fn summary_push() -> Algorithm {
        Algorithm::named("summary-push").expect("built-in")
    }

    /// Summary reconciliation, pull mode (extension): hash-range tree
    /// digests on pattern steering, receivers serve the gossiper's
    /// deficit.
    pub fn summary_pull() -> Algorithm {
        Algorithm::named("summary-pull").expect("built-in")
    }
}

impl fmt::Debug for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Algorithm").field(&self.0.name).finish()
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0.name)
    }
}

impl PartialEq for Algorithm {
    fn eq(&self, other: &Self) -> bool {
        self.0.name == other.0.name
    }
}

impl Eq for Algorithm {}

impl std::hash::Hash for Algorithm {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.name.hash(state);
    }
}

impl FromStr for Algorithm {
    type Err = ParseAlgorithmError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Algorithm::named(s)
    }
}

/// Error returned when an algorithm name matches no registry entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseAlgorithmError {
    input: String,
    registered: Vec<String>,
}

impl fmt::Display for ParseAlgorithmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown algorithm '{}'; registered: {}",
            self.input,
            self.registered.join(", ")
        )
    }
}

impl std::error::Error for ParseAlgorithmError {}

/// The paper's figure order (golden suite, fig3/fig5 reproductions).
const PAPER_ORDER: [&str; 6] = [
    "no-recovery",
    "random-pull",
    "push",
    "subscriber-pull",
    "combined-pull",
    "publisher-pull",
];

fn registry() -> &'static RwLock<Vec<Algorithm>> {
    static REGISTRY: OnceLock<RwLock<Vec<Algorithm>>> = OnceLock::new();
    REGISTRY.get_or_init(|| RwLock::new(builtins()))
}

fn def(
    name: &str,
    aliases: &[&str],
    needs_source_infra: bool,
    build: impl Fn(GossipConfig) -> Box<dyn RecoveryAlgorithm> + Send + Sync + 'static,
) -> Algorithm {
    Algorithm(Arc::new(AlgorithmDef {
        name: name.to_owned(),
        aliases: aliases.iter().map(|s| (*s).to_owned()).collect(),
        needs_publisher_cache: needs_source_infra,
        needs_route_recording: needs_source_infra,
        needs_summary_index: false,
        build: Arc::new(build),
    }))
}

fn summary_def(
    name: &str,
    aliases: &[&str],
    build: impl Fn(GossipConfig) -> Box<dyn RecoveryAlgorithm> + Send + Sync + 'static,
) -> Algorithm {
    Algorithm(Arc::new(AlgorithmDef {
        name: name.to_owned(),
        aliases: aliases.iter().map(|s| (*s).to_owned()).collect(),
        needs_publisher_cache: false,
        needs_route_recording: false,
        needs_summary_index: true,
        build: Arc::new(build),
    }))
}

fn builtins() -> Vec<Algorithm> {
    vec![
        def("no-recovery", &["none", "baseline"], false, |_| {
            Box::new(NoRecovery)
        }),
        def("random-pull", &["random"], false, |cfg| {
            Box::new(GossipEngine::new(
                "random-pull",
                cfg,
                NegativeDigest::new(&cfg),
                RandomSteering,
            ))
        }),
        def("push", &[], false, |cfg| {
            Box::new(GossipEngine::new(
                "push",
                cfg,
                PositiveDigest::new(),
                PatternSteering::default(),
            ))
        }),
        def("subscriber-pull", &["sub-pull"], false, |cfg| {
            Box::new(GossipEngine::new(
                "subscriber-pull",
                cfg,
                NegativeDigest::new(&cfg),
                PatternSteering::default(),
            ))
        }),
        def("combined-pull", &["combined"], true, |cfg| {
            Box::new(GossipEngine::new(
                "combined-pull",
                cfg,
                NegativeDigest::new(&cfg),
                MuxSteering::new(SourceSteering::default(), PatternSteering::default()),
            ))
        }),
        def("publisher-pull", &["pub-pull"], true, |cfg| {
            Box::new(GossipEngine::new(
                "publisher-pull",
                cfg,
                NegativeDigest::new(&cfg),
                SourceSteering::default(),
            ))
        }),
        def("push-pull", &["hybrid"], false, |cfg| {
            Box::new(GossipEngine::new(
                "push-pull",
                cfg,
                AlternatingDigest::new(&cfg),
                PatternSteering::default(),
            ))
        }),
        summary_def("summary-push", &["merkle-push"], |cfg| {
            Box::new(GossipEngine::new(
                "summary-push",
                cfg,
                SummaryDigestPolicy::push(&cfg),
                PatternSteering::default(),
            ))
        }),
        summary_def("summary-pull", &["merkle-pull"], |cfg| {
            Box::new(GossipEngine::new(
                "summary-pull",
                cfg,
                SummaryDigestPolicy::pull(&cfg),
                PatternSteering::default(),
            ))
        }),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_entries_keep_the_figure_order() {
        let names: Vec<String> = Algorithm::paper()
            .iter()
            .map(|a| a.name().to_owned())
            .collect();
        let expected: Vec<String> = PAPER_ORDER.iter().map(|s| (*s).to_owned()).collect();
        assert_eq!(names, expected);
    }

    #[test]
    fn names_roundtrip_through_fromstr() {
        for algo in Algorithm::all() {
            let parsed: Algorithm = algo.name().parse().unwrap();
            assert_eq!(parsed, algo);
        }
        assert!("bogus".parse::<Algorithm>().is_err());
    }

    #[test]
    fn lookup_is_case_insensitive_and_knows_aliases() {
        assert_eq!(Algorithm::named("PUSH").unwrap(), Algorithm::push());
        assert_eq!(
            Algorithm::named("Combined-Pull").unwrap(),
            Algorithm::combined_pull()
        );
        assert_eq!(Algorithm::named("none").unwrap(), Algorithm::no_recovery());
        assert_eq!(Algorithm::named("HYBRID").unwrap(), Algorithm::push_pull());
        assert_eq!(
            Algorithm::named(" sub-pull ").unwrap(),
            Algorithm::subscriber_pull()
        );
    }

    #[test]
    fn unknown_name_error_lists_registered_names() {
        let err = Algorithm::named("bogus").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("unknown algorithm 'bogus'"), "{msg}");
        for name in PAPER_ORDER {
            assert!(msg.contains(name), "{msg} missing {name}");
        }
        assert!(msg.contains("push-pull"), "{msg}");
    }

    #[test]
    fn requirements_match_the_paper() {
        assert!(Algorithm::publisher_pull().needs_publisher_cache());
        assert!(Algorithm::combined_pull().needs_route_recording());
        assert!(!Algorithm::push().needs_publisher_cache());
        assert!(!Algorithm::subscriber_pull().needs_route_recording());
        assert!(!Algorithm::no_recovery().needs_publisher_cache());
        assert!(!Algorithm::push_pull().needs_route_recording());
    }

    #[test]
    fn summary_entries_declare_their_index_and_stay_out_of_paper_order() {
        for algo in [Algorithm::summary_push(), Algorithm::summary_pull()] {
            assert!(algo.needs_summary_index());
            assert!(!algo.needs_publisher_cache());
            assert!(!algo.needs_route_recording());
            assert!(
                !Algorithm::paper().contains(&algo),
                "extensions must not perturb paper reproductions"
            );
        }
        for paper in Algorithm::paper() {
            assert!(!paper.needs_summary_index());
        }
        assert_eq!(
            Algorithm::named("merkle-push").unwrap(),
            Algorithm::summary_push()
        );
        assert_eq!(
            Algorithm::named("Merkle-Pull").unwrap(),
            Algorithm::summary_pull()
        );
    }

    #[test]
    fn build_constructs_every_entry() {
        for algo in Algorithm::all() {
            let instance = algo.build(GossipConfig::default());
            assert_eq!(instance.name(), algo.name());
            assert_eq!(instance.outstanding_losses(), 0);
            assert_eq!(instance.lost_evictions(), 0);
        }
    }

    #[test]
    fn custom_compositions_register_in_one_call() {
        let custom = Algorithm::register(AlgorithmDef {
            name: "test-random-push".to_owned(),
            aliases: vec!["trp".to_owned()],
            needs_publisher_cache: false,
            needs_route_recording: false,
            needs_summary_index: false,
            build: Arc::new(|cfg| {
                Box::new(GossipEngine::new(
                    "test-random-push",
                    cfg,
                    AlternatingDigest::new(&cfg),
                    RandomSteering,
                ))
            }),
        });
        assert_eq!(Algorithm::named("TRP").unwrap(), custom);
        let instance = custom.build(GossipConfig::default());
        assert_eq!(instance.name(), "test-random-push");
        assert!(Algorithm::all().iter().any(|a| a == &custom));
        // Paper reproductions are not perturbed by extensions.
        assert!(!Algorithm::paper().iter().any(|a| a == &custom));
    }
}
