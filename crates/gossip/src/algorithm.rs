//! The recovery-algorithm abstraction and the no-recovery baseline.

use std::fmt;
use std::str::FromStr;

use eps_overlay::NodeId;
use eps_pubsub::{Dispatcher, Event, EventId, LossRecord};
use eps_sim::Rng;

use crate::config::GossipConfig;
use crate::message::{GossipAction, GossipMessage};
use crate::pull_combined::CombinedPull;
use crate::pull_publisher::PublisherPull;
use crate::pull_random::RandomPull;
use crate::pull_subscriber::SubscriberPull;
use crate::push::PushGossip;

/// The recovery strategies evaluated in the paper (Section IV).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum AlgorithmKind {
    /// Best-effort dispatching only — the paper's baseline.
    NoRecovery,
    /// Proactive gossip push with positive digests.
    Push,
    /// Reactive pull with negative digests steered towards subscribers.
    SubscriberPull,
    /// Reactive pull with negative digests steered towards publishers.
    PublisherPull,
    /// Publisher-based pull with probability `P_source`, otherwise
    /// subscriber-based (the paper's best pull configuration).
    CombinedPull,
    /// Negative digests routed entirely at random — the paper's
    /// "is directed routing worth the effort?" comparator.
    RandomPull,
}

impl AlgorithmKind {
    /// All kinds, in the order the paper's figures list them.
    pub const ALL: [AlgorithmKind; 6] = [
        AlgorithmKind::NoRecovery,
        AlgorithmKind::RandomPull,
        AlgorithmKind::Push,
        AlgorithmKind::SubscriberPull,
        AlgorithmKind::CombinedPull,
        AlgorithmKind::PublisherPull,
    ];

    /// Short, stable name used in CSV headers and the CLI.
    pub fn name(self) -> &'static str {
        match self {
            AlgorithmKind::NoRecovery => "no-recovery",
            AlgorithmKind::Push => "push",
            AlgorithmKind::SubscriberPull => "subscriber-pull",
            AlgorithmKind::PublisherPull => "publisher-pull",
            AlgorithmKind::CombinedPull => "combined-pull",
            AlgorithmKind::RandomPull => "random-pull",
        }
    }

    /// Whether this strategy requires publishers to cache their own
    /// events (publisher-based and combined pull do).
    pub fn needs_publisher_cache(self) -> bool {
        matches!(
            self,
            AlgorithmKind::PublisherPull | AlgorithmKind::CombinedPull
        )
    }

    /// Whether this strategy requires event messages to record their
    /// route (publisher-based and combined pull do).
    pub fn needs_route_recording(self) -> bool {
        self.needs_publisher_cache()
    }

    /// Builds a fresh per-dispatcher instance of this strategy.
    pub fn build(self, config: GossipConfig) -> Box<dyn RecoveryAlgorithm> {
        config.validate();
        match self {
            AlgorithmKind::NoRecovery => Box::new(NoRecovery),
            AlgorithmKind::Push => Box::new(PushGossip::new(config)),
            AlgorithmKind::SubscriberPull => Box::new(SubscriberPull::new(config)),
            AlgorithmKind::PublisherPull => Box::new(PublisherPull::new(config)),
            AlgorithmKind::CombinedPull => Box::new(CombinedPull::new(config)),
            AlgorithmKind::RandomPull => Box::new(RandomPull::new(config)),
        }
    }
}

impl fmt::Display for AlgorithmKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing an [`AlgorithmKind`] from a string.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseAlgorithmError(String);

impl fmt::Display for ParseAlgorithmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown algorithm '{}'", self.0)
    }
}

impl std::error::Error for ParseAlgorithmError {}

impl FromStr for AlgorithmKind {
    type Err = ParseAlgorithmError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        AlgorithmKind::ALL
            .into_iter()
            .find(|k| k.name() == s)
            .ok_or_else(|| ParseAlgorithmError(s.to_owned()))
    }
}

/// One dispatcher's recovery strategy: reacts to gossip rounds, loss
/// detections, and incoming gossip traffic by emitting
/// [`GossipAction`]s for the simulation harness to carry out.
///
/// Implementations never mutate the dispatcher: recovered events are
/// applied by the harness through
/// [`Dispatcher::on_recovered_event`], keeping algorithms pure and
/// independently testable.
pub trait RecoveryAlgorithm: fmt::Debug + Send {
    /// Which strategy this is.
    fn kind(&self) -> AlgorithmKind;

    /// Called every gossip interval `T`: start a new gossip round.
    fn on_round(
        &mut self,
        node: &Dispatcher,
        neighbors: &[NodeId],
        rng: &mut Rng,
    ) -> Vec<GossipAction>;

    /// A gossip message arrived from tree neighbor `from`.
    fn on_gossip(
        &mut self,
        node: &Dispatcher,
        from: NodeId,
        msg: GossipMessage,
        neighbors: &[NodeId],
        rng: &mut Rng,
    ) -> Vec<GossipAction>;

    /// The dispatcher's loss detector found gaps (pull strategies
    /// record them in their `Lost` buffer).
    fn on_losses(&mut self, losses: &[LossRecord]) {
        let _ = losses;
    }

    /// An event was received (on the tree or via recovery); pull
    /// strategies clear the covered `Lost` entries.
    fn on_event_received(&mut self, event: &Event) {
        let _ = event;
    }

    /// An out-of-band request for specific cached events arrived (the
    /// reaction to a push digest). The default implementation answers
    /// from the cache and is shared by all strategies; push also uses
    /// this as its activity signal for adaptive gossip.
    fn on_request(
        &mut self,
        node: &Dispatcher,
        from: NodeId,
        ids: &[EventId],
    ) -> Vec<GossipAction> {
        let events: Vec<Event> = ids
            .iter()
            .filter_map(|&id| node.cache().get(id).cloned())
            .collect();
        if events.is_empty() {
            Vec::new()
        } else {
            vec![GossipAction::Reply { to: from, events }]
        }
    }

    /// Number of outstanding `Lost` entries (0 for strategies without
    /// a `Lost` buffer). Exposed for metrics and tests.
    fn outstanding_losses(&self) -> usize {
        0
    }

    /// `true` when the strategy currently sees no evidence of recovery
    /// work — the signal adaptive gossip scheduling (paper Sec. IV-E,
    /// ref \[14\]) uses to back the interval off. Pull strategies are
    /// idle when their `Lost` buffer is empty (the default); push
    /// overrides this with "nobody requested anything since my last
    /// round".
    fn is_idle(&self) -> bool {
        self.outstanding_losses() == 0
    }
}

/// The baseline: no recovery at all.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoRecovery;

impl RecoveryAlgorithm for NoRecovery {
    fn kind(&self) -> AlgorithmKind {
        AlgorithmKind::NoRecovery
    }

    fn on_round(
        &mut self,
        _node: &Dispatcher,
        _neighbors: &[NodeId],
        _rng: &mut Rng,
    ) -> Vec<GossipAction> {
        Vec::new()
    }

    fn on_gossip(
        &mut self,
        _node: &Dispatcher,
        _from: NodeId,
        _msg: GossipMessage,
        _neighbors: &[NodeId],
        _rng: &mut Rng,
    ) -> Vec<GossipAction> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eps_pubsub::DispatcherConfig;
    use eps_sim::RngFactory;

    #[test]
    fn names_roundtrip_through_fromstr() {
        for kind in AlgorithmKind::ALL {
            let parsed: AlgorithmKind = kind.name().parse().unwrap();
            assert_eq!(parsed, kind);
        }
        assert!("bogus".parse::<AlgorithmKind>().is_err());
    }

    #[test]
    fn requirements_match_the_paper() {
        assert!(AlgorithmKind::PublisherPull.needs_publisher_cache());
        assert!(AlgorithmKind::CombinedPull.needs_route_recording());
        assert!(!AlgorithmKind::Push.needs_publisher_cache());
        assert!(!AlgorithmKind::SubscriberPull.needs_route_recording());
        assert!(!AlgorithmKind::NoRecovery.needs_publisher_cache());
    }

    #[test]
    fn build_constructs_every_kind() {
        for kind in AlgorithmKind::ALL {
            let algo = kind.build(GossipConfig::default());
            assert_eq!(algo.kind(), kind);
            assert_eq!(algo.outstanding_losses(), 0);
        }
    }

    #[test]
    fn no_recovery_does_nothing() {
        let mut algo = NoRecovery;
        let node = Dispatcher::new(NodeId::new(0), DispatcherConfig::default());
        let mut rng = RngFactory::new(1).stream("gossip");
        assert!(algo.on_round(&node, &[], &mut rng).is_empty());
        assert!(algo
            .on_gossip(
                &node,
                NodeId::new(1),
                GossipMessage::RandomPull {
                    gossiper: NodeId::new(1),
                    lost: vec![],
                    ttl: 1
                },
                &[],
                &mut rng
            )
            .is_empty());
    }

    #[test]
    fn default_request_handler_replies_from_cache() {
        use eps_pubsub::{EventId as EId, PatternId};
        let mut node = Dispatcher::new(NodeId::new(0), DispatcherConfig::default());
        node.subscribe_local(PatternId::new(1), &[]);
        let (event, _) = node.publish(vec![PatternId::new(1)]);
        let mut algo = NoRecovery;
        let actions = algo.on_request(&node, NodeId::new(9), &[event.id()]);
        assert_eq!(actions.len(), 1);
        match &actions[0] {
            GossipAction::Reply { to, events } => {
                assert_eq!(*to, NodeId::new(9));
                assert_eq!(events[0].id(), event.id());
            }
            other => panic!("unexpected {other:?}"),
        }
        // Unknown ids produce no reply.
        let none = algo.on_request(&node, NodeId::new(9), &[EId::new(NodeId::new(5), 99)]);
        assert!(none.is_empty());
    }
}
