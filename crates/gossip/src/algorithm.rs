//! The recovery-algorithm abstraction and the no-recovery baseline.
//!
//! Concrete strategies are compositions of a digest policy and a
//! steering policy inside a [`crate::GossipEngine`]; the
//! [`crate::Algorithm`] registry names them. This module only defines
//! the boundary the harness talks to.

use std::fmt;

use eps_overlay::NodeId;
use eps_pubsub::{Dispatcher, Event, EventId, LossRecord, PatternId, RangeRef};
use eps_sim::Rng;

use crate::message::{GossipAction, GossipMessage};

/// One dispatcher's recovery strategy: reacts to gossip rounds, loss
/// detections, and incoming gossip traffic by emitting
/// [`GossipAction`]s for the simulation harness to carry out.
///
/// Implementations never mutate the dispatcher: recovered events are
/// applied by the harness through
/// [`Dispatcher::on_recovered_event`], keeping algorithms pure and
/// independently testable.
pub trait RecoveryAlgorithm: fmt::Debug + Send {
    /// The strategy's registered name (CSV headers, logs).
    fn name(&self) -> &str;

    /// Called every gossip interval `T`: start a new gossip round.
    fn on_round(
        &mut self,
        node: &Dispatcher,
        neighbors: &[NodeId],
        rng: &mut Rng,
    ) -> Vec<GossipAction>;

    /// A gossip message arrived from tree neighbor `from`.
    fn on_gossip(
        &mut self,
        node: &Dispatcher,
        from: NodeId,
        msg: GossipMessage,
        neighbors: &[NodeId],
        rng: &mut Rng,
    ) -> Vec<GossipAction>;

    /// The dispatcher's loss detector found gaps (pull strategies
    /// record them in their `Lost` buffer).
    fn on_losses(&mut self, losses: &[LossRecord]) {
        let _ = losses;
    }

    /// An event was received (on the tree or via recovery); pull
    /// strategies clear the covered `Lost` entries.
    fn on_event_received(&mut self, event: &Event) {
        let _ = event;
    }

    /// An out-of-band request for specific cached events arrived (the
    /// reaction to a push digest). The default implementation answers
    /// from the cache and is shared by all strategies; push also uses
    /// this as its activity signal for adaptive gossip.
    fn on_request(
        &mut self,
        node: &Dispatcher,
        from: NodeId,
        ids: &[EventId],
    ) -> Vec<GossipAction> {
        let events: Vec<Event> = ids
            .iter()
            .filter_map(|&id| node.cache().get(id).cloned())
            .collect();
        if events.is_empty() {
            Vec::new()
        } else {
            vec![GossipAction::Reply { to: from, events }]
        }
    }

    /// An out-of-band [`crate::Envelope::RangeRequest`] arrived: a
    /// peer asks this dispatcher to refine hash-tree ranges of
    /// `pattern`'s cache summary in its next gossip round. Only the
    /// summary-reconciliation strategies react; the default ignores
    /// it.
    fn on_range_request(&mut self, from: NodeId, pattern: PatternId, ranges: &[RangeRef]) {
        let _ = (from, pattern, ranges);
    }

    /// Number of outstanding `Lost` entries (0 for strategies without
    /// a `Lost` buffer). Exposed for metrics and tests.
    fn outstanding_losses(&self) -> usize {
        0
    }

    /// `Lost` entries this strategy has evicted under its capacity
    /// bound (0 for strategies without a `Lost` buffer). Exposed so
    /// overflow under churn is visible in the metrics rather than
    /// silent.
    fn lost_evictions(&self) -> u64 {
        0
    }

    /// `true` when the strategy currently sees no evidence of recovery
    /// work — the signal adaptive gossip scheduling (paper Sec. IV-E,
    /// ref \[14\]) uses to back the interval off. Pull strategies are
    /// idle when their `Lost` buffer is empty (the default); push
    /// overrides this with "nobody requested anything since my last
    /// round".
    fn is_idle(&self) -> bool {
        self.outstanding_losses() == 0
    }
}

/// The baseline: no recovery at all.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoRecovery;

impl RecoveryAlgorithm for NoRecovery {
    fn name(&self) -> &str {
        "no-recovery"
    }

    fn on_round(
        &mut self,
        _node: &Dispatcher,
        _neighbors: &[NodeId],
        _rng: &mut Rng,
    ) -> Vec<GossipAction> {
        Vec::new()
    }

    fn on_gossip(
        &mut self,
        _node: &Dispatcher,
        _from: NodeId,
        _msg: GossipMessage,
        _neighbors: &[NodeId],
        _rng: &mut Rng,
    ) -> Vec<GossipAction> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eps_pubsub::DispatcherConfig;
    use eps_sim::RngFactory;

    #[test]
    fn no_recovery_does_nothing() {
        let mut algo = NoRecovery;
        assert_eq!(algo.name(), "no-recovery");
        let node = Dispatcher::new(NodeId::new(0), DispatcherConfig::default());
        let mut rng = RngFactory::new(1).stream("gossip");
        assert!(algo.on_round(&node, &[], &mut rng).is_empty());
        assert!(algo
            .on_gossip(
                &node,
                NodeId::new(1),
                GossipMessage::RandomPull {
                    gossiper: NodeId::new(1),
                    lost: vec![],
                    ttl: 1
                },
                &[],
                &mut rng
            )
            .is_empty());
        assert!(algo.is_idle());
        assert_eq!(algo.lost_evictions(), 0);
    }

    #[test]
    fn default_request_handler_replies_from_cache() {
        use eps_pubsub::{EventId as EId, PatternId};
        let mut node = Dispatcher::new(NodeId::new(0), DispatcherConfig::default());
        node.subscribe_local(PatternId::new(1), &[]);
        let (event, _) = node.publish(&[PatternId::new(1)]);
        let mut algo = NoRecovery;
        let actions = algo.on_request(&node, NodeId::new(9), &[event.id()]);
        assert_eq!(actions.len(), 1);
        match &actions[0] {
            GossipAction::Reply { to, events } => {
                assert_eq!(*to, NodeId::new(9));
                assert_eq!(events[0].id(), event.id());
            }
            other => panic!("unexpected {other:?}"),
        }
        // Unknown ids produce no reply.
        let none = algo.on_request(&node, NodeId::new(9), &[EId::new(NodeId::new(5), 99)]);
        assert!(none.is_empty());
    }
}
