//! Configuration of the gossip layer.

/// Tunables shared by the epidemic recovery algorithms.
///
/// # Examples
///
/// ```
/// use eps_gossip::GossipConfig;
///
/// let config = GossipConfig::default();
/// assert_eq!(config.p_forward, 0.5);
/// assert_eq!(config.p_source, 0.5);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GossipConfig {
    /// Probability that a gossip message is forwarded to each matching
    /// neighbor at every hop (the paper's `P_forward`; the paper does
    /// not report the value used — 0.5 reproduces its curves).
    pub p_forward: f64,
    /// Probability that a combined-pull round uses the
    /// publisher-based variant instead of the subscriber-based one
    /// (the paper's `P_source`).
    pub p_source: f64,
    /// Maximum number of entries carried by one negative digest. The
    /// paper assumes gossip messages are the same size as event
    /// messages, which bounds how much a digest can carry.
    pub digest_max: usize,
    /// Hop budget for the random-pull baseline, which has no routing
    /// information to decide when to stop.
    pub random_ttl: u32,
    /// A `Lost` entry is given up after being gossiped this many times
    /// without the event being recovered (it has likely been evicted
    /// from every cache).
    pub max_attempts: u32,
    /// Capacity bound on the `Lost` buffer; the oldest entries are
    /// evicted FIFO beyond it (visible as `lost_evictions` in the
    /// metrics). `None` ties the bound to the event-cache size β: the
    /// harness resolves it to the scenario's `buffer_size`, and a
    /// standalone build falls back to the paper's β = 1500. There is
    /// no point remembering more losses than any cache could still
    /// serve.
    pub lost_capacity: Option<usize>,
}

/// Fallback `Lost` capacity when the harness has not tied it to β:
/// the paper's default buffer size (Table I, β = 1500).
pub const DEFAULT_LOST_CAPACITY: usize = 1500;

impl Default for GossipConfig {
    fn default() -> Self {
        GossipConfig {
            p_forward: 0.5,
            p_source: 0.5,
            digest_max: 128,
            random_ttl: 8,
            max_attempts: 20,
            lost_capacity: None,
        }
    }
}

impl GossipConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if probabilities are outside `[0, 1]`, the digest is
    /// empty, or the TTL is zero.
    pub fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.p_forward),
            "p_forward out of range: {}",
            self.p_forward
        );
        assert!(
            (0.0..=1.0).contains(&self.p_source),
            "p_source out of range: {}",
            self.p_source
        );
        assert!(self.digest_max > 0, "digest_max must be positive");
        assert!(self.random_ttl > 0, "random_ttl must be positive");
        assert!(self.max_attempts > 0, "max_attempts must be positive");
        assert!(
            self.lost_capacity != Some(0),
            "lost_capacity must be positive when set"
        );
    }

    /// The effective `Lost` buffer capacity: the configured bound, or
    /// [`DEFAULT_LOST_CAPACITY`] when unset.
    pub fn resolved_lost_capacity(&self) -> usize {
        self.lost_capacity.unwrap_or(DEFAULT_LOST_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        GossipConfig::default().validate();
    }

    #[test]
    #[should_panic]
    fn invalid_probability_panics() {
        GossipConfig {
            p_forward: 1.5,
            ..GossipConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic]
    fn zero_digest_panics() {
        GossipConfig {
            digest_max: 0,
            ..GossipConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic]
    fn zero_lost_capacity_panics() {
        GossipConfig {
            lost_capacity: Some(0),
            ..GossipConfig::default()
        }
        .validate();
    }

    #[test]
    fn lost_capacity_resolution() {
        assert_eq!(
            GossipConfig::default().resolved_lost_capacity(),
            DEFAULT_LOST_CAPACITY
        );
        let bounded = GossipConfig {
            lost_capacity: Some(64),
            ..GossipConfig::default()
        };
        assert_eq!(bounded.resolved_lost_capacity(), 64);
    }
}
