//! The push algorithm: proactive gossip with positive digests
//! (paper, Section III-B, "Push").

use std::collections::HashSet;
use std::sync::Arc;

use eps_overlay::NodeId;
use eps_pubsub::{Dispatcher, Event, EventId};
use eps_sim::Rng;

use crate::algorithm::{AlgorithmKind, RecoveryAlgorithm};
use crate::config::GossipConfig;
use crate::message::{GossipAction, GossipMessage};
use crate::rounds::pattern_forward_targets;

/// Proactive push gossip.
///
/// Every round the gossiper draws a pattern `p` from its *whole*
/// subscription table (not only local subscriptions — being on the
/// route towards a subscriber is enough, which speeds up convergence),
/// builds a positive digest of the cached event identifiers matching
/// `p`, and routes it along the dispatching tree as if it were an
/// event matching `p`, except that each hop forwards it only to a
/// random subset of the matching neighbors (`P_forward`).
///
/// A dispatcher subscribed to `p` that receives the digest compares it
/// with the events it has seen and requests the missing ones from the
/// gossiper out-of-band.
#[derive(Clone, Debug)]
pub struct PushGossip {
    config: GossipConfig,
    requested: HashSet<EventId>,
    rounds_started: u64,
    rounds_skipped: u64,
    requests_since_round: u64,
    idle_rounds: u32,
}

impl PushGossip {
    /// Creates a push instance.
    pub fn new(config: GossipConfig) -> Self {
        PushGossip {
            config,
            requested: HashSet::new(),
            rounds_started: 0,
            rounds_skipped: 0,
            requests_since_round: 0,
            idle_rounds: 0,
        }
    }

    /// Rounds that produced a digest.
    pub fn rounds_started(&self) -> u64 {
        self.rounds_started
    }

    /// Rounds skipped because the chosen pattern had no cached events.
    pub fn rounds_skipped(&self) -> u64 {
        self.rounds_skipped
    }
}

impl RecoveryAlgorithm for PushGossip {
    fn kind(&self) -> AlgorithmKind {
        AlgorithmKind::Push
    }

    fn on_round(
        &mut self,
        node: &Dispatcher,
        _neighbors: &[NodeId],
        rng: &mut Rng,
    ) -> Vec<GossipAction> {
        if self.requests_since_round > 0 {
            self.idle_rounds = 0;
        } else {
            self.idle_rounds = self.idle_rounds.saturating_add(1);
        }
        self.requests_since_round = 0;
        let patterns: Vec<_> = node.table().all_patterns().collect();
        let Some(&pattern) = rng.choose(&patterns) else {
            self.rounds_skipped += 1;
            return Vec::new();
        };
        // "All the cached events matching p" — the positive digest is
        // not truncated (the paper's overhead accounting charges every
        // gossip message one event-size regardless).
        let ids = node.cache().ids_matching(pattern);
        if ids.is_empty() {
            // Nothing to announce for this pattern: an empty digest
            // would be pure overhead.
            self.rounds_skipped += 1;
            return Vec::new();
        }
        self.rounds_started += 1;
        let msg = GossipMessage::PushDigest {
            gossiper: node.id(),
            pattern,
            ids: Arc::new(ids),
        };
        pattern_forward_targets(node, pattern, None, self.config.p_forward, rng)
            .into_iter()
            .map(|to| GossipAction::Forward {
                to,
                msg: msg.clone(),
            })
            .collect()
    }

    fn on_event_received(&mut self, event: &Event) {
        // The event arrived (via the tree or a reply): stop tracking
        // its id so the set stays bounded by the in-flight requests.
        self.requested.remove(&event.id());
    }

    fn on_request(
        &mut self,
        node: &Dispatcher,
        from: NodeId,
        ids: &[EventId],
    ) -> Vec<GossipAction> {
        // Someone is missing events: evidence that proactive rounds
        // are earning their keep (adaptive-gossip activity signal).
        self.requests_since_round += 1;
        let events: Vec<Event> = ids
            .iter()
            .filter_map(|&id| node.cache().get(id).cloned())
            .collect();
        if events.is_empty() {
            Vec::new()
        } else {
            vec![GossipAction::Reply { to: from, events }]
        }
    }

    fn is_idle(&self) -> bool {
        // A single request-free interval is common noise (requests
        // only come back when *this* node's digest found a gap at a
        // subscriber); require a streak before slowing down.
        self.idle_rounds >= 3 && self.requests_since_round == 0
    }

    fn on_gossip(
        &mut self,
        node: &Dispatcher,
        from: NodeId,
        msg: GossipMessage,
        _neighbors: &[NodeId],
        rng: &mut Rng,
    ) -> Vec<GossipAction> {
        let GossipMessage::PushDigest {
            gossiper,
            pattern,
            ids,
        } = msg
        else {
            return Vec::new(); // Not ours (mixed deployments ignore).
        };
        let mut actions = Vec::new();
        // Subscribed? Compare the digest with what we have seen,
        // skipping ids already requested (a previous reply may still
        // be in flight).
        if gossiper != node.id() && node.table().has_local(pattern) {
            let missing: Vec<EventId> = ids
                .iter()
                .copied()
                .filter(|&id| !node.has_seen(id) && !self.requested.contains(&id))
                .collect();
            if !missing.is_empty() {
                self.requested.extend(missing.iter().copied());
                actions.push(GossipAction::Request {
                    to: gossiper,
                    ids: missing,
                });
            }
        }
        // Keep propagating along the pattern's routes.
        let fwd = GossipMessage::PushDigest {
            gossiper,
            pattern,
            ids,
        };
        for to in pattern_forward_targets(node, pattern, Some(from), self.config.p_forward, rng) {
            actions.push(GossipAction::Forward {
                to,
                msg: fwd.clone(),
            });
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eps_pubsub::{DispatcherConfig, Event, EventId, PatternId};
    use eps_sim::RngFactory;

    fn full_forward() -> GossipConfig {
        GossipConfig {
            p_forward: 1.0,
            ..GossipConfig::default()
        }
    }

    #[test]
    fn round_announces_cached_events() {
        let mut node = Dispatcher::new(NodeId::new(0), DispatcherConfig::default());
        let p = PatternId::new(1);
        node.subscribe_local(p, &[]);
        node.on_subscribe(p, NodeId::new(1), &[]);
        let (event, _) = node.publish(vec![p]);
        let mut algo = PushGossip::new(full_forward());
        let mut rng = RngFactory::new(1).stream("gossip");
        let actions = algo.on_round(&node, &[], &mut rng);
        assert_eq!(actions.len(), 1);
        match &actions[0] {
            GossipAction::Forward { to, msg } => {
                assert_eq!(*to, NodeId::new(1));
                match msg {
                    GossipMessage::PushDigest { ids, pattern, .. } => {
                        assert_eq!(*pattern, p);
                        assert_eq!(**ids, vec![event.id()]);
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(algo.rounds_started(), 1);
    }

    #[test]
    fn round_skips_with_empty_cache() {
        let mut node = Dispatcher::new(NodeId::new(0), DispatcherConfig::default());
        node.subscribe_local(PatternId::new(1), &[]);
        let mut algo = PushGossip::new(full_forward());
        let mut rng = RngFactory::new(1).stream("gossip");
        assert!(algo.on_round(&node, &[], &mut rng).is_empty());
        assert_eq!(algo.rounds_skipped(), 1);
    }

    #[test]
    fn digest_announces_all_cached_events() {
        let mut node = Dispatcher::new(NodeId::new(0), DispatcherConfig::default());
        let p = PatternId::new(1);
        node.subscribe_local(p, &[]);
        node.on_subscribe(p, NodeId::new(1), &[]);
        for _ in 0..10 {
            node.publish(vec![p]);
        }
        let mut algo = PushGossip::new(full_forward());
        let mut rng = RngFactory::new(1).stream("gossip");
        let actions = algo.on_round(&node, &[], &mut rng);
        match &actions[0] {
            GossipAction::Forward {
                msg: GossipMessage::PushDigest { ids, .. },
                ..
            } => {
                // "All the cached events matching p": no truncation.
                assert_eq!(ids.len(), 10);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn requested_ids_are_not_requested_twice() {
        let mut node = Dispatcher::new(NodeId::new(1), DispatcherConfig::default());
        let p = PatternId::new(1);
        node.subscribe_local(p, &[]);
        let mut algo = PushGossip::new(full_forward());
        let mut rng = RngFactory::new(1).stream("gossip");
        let digest = GossipMessage::PushDigest {
            gossiper: NodeId::new(5),
            pattern: p,
            ids: Arc::new(vec![EventId::new(NodeId::new(0), 1)]),
        };
        let first = algo.on_gossip(&node, NodeId::new(0), digest.clone(), &[], &mut rng);
        assert!(first
            .iter()
            .any(|a| matches!(a, GossipAction::Request { .. })));
        // The same digest again: the request is still in flight.
        let second = algo.on_gossip(&node, NodeId::new(0), digest.clone(), &[], &mut rng);
        assert!(!second
            .iter()
            .any(|a| matches!(a, GossipAction::Request { .. })));
        // Once the event arrives, the tracking entry is released.
        let e = Event::new(EventId::new(NodeId::new(0), 1), vec![(p, 1)]);
        algo.on_event_received(&e);
        assert!(algo.requested.is_empty());
    }

    #[test]
    fn receiver_requests_missing_events() {
        let mut node = Dispatcher::new(NodeId::new(1), DispatcherConfig::default());
        let p = PatternId::new(1);
        node.subscribe_local(p, &[]);
        // It has seen event #0 but not #1.
        let seen = Event::new(EventId::new(NodeId::new(0), 0), vec![(p, 0)]);
        node.on_event(seen, Some(NodeId::new(0)));
        let mut algo = PushGossip::new(full_forward());
        let mut rng = RngFactory::new(1).stream("gossip");
        let digest = GossipMessage::PushDigest {
            gossiper: NodeId::new(5),
            pattern: p,
            ids: Arc::new(vec![
                EventId::new(NodeId::new(0), 0),
                EventId::new(NodeId::new(0), 1),
            ]),
        };
        let actions = algo.on_gossip(&node, NodeId::new(0), digest, &[], &mut rng);
        let requests: Vec<_> = actions
            .iter()
            .filter_map(|a| match a {
                GossipAction::Request { to, ids } => Some((to, ids)),
                _ => None,
            })
            .collect();
        assert_eq!(requests.len(), 1);
        assert_eq!(*requests[0].0, NodeId::new(5));
        assert_eq!(requests[0].1, &vec![EventId::new(NodeId::new(0), 1)]);
    }

    #[test]
    fn non_subscriber_forwards_without_requesting() {
        let mut node = Dispatcher::new(NodeId::new(1), DispatcherConfig::default());
        let p = PatternId::new(1);
        // Knows p only via a neighbor (on the route, not subscribed).
        node.on_subscribe(p, NodeId::new(2), &[]);
        let mut algo = PushGossip::new(full_forward());
        let mut rng = RngFactory::new(1).stream("gossip");
        let digest = GossipMessage::PushDigest {
            gossiper: NodeId::new(5),
            pattern: p,
            ids: Arc::new(vec![EventId::new(NodeId::new(0), 0)]),
        };
        let actions = algo.on_gossip(&node, NodeId::new(3), digest, &[], &mut rng);
        assert_eq!(actions.len(), 1);
        assert!(matches!(
            actions[0],
            GossipAction::Forward { to, .. } if to == NodeId::new(2)
        ));
    }

    #[test]
    fn gossiper_does_not_request_from_itself() {
        let mut node = Dispatcher::new(NodeId::new(5), DispatcherConfig::default());
        let p = PatternId::new(1);
        node.subscribe_local(p, &[]);
        let mut algo = PushGossip::new(full_forward());
        let mut rng = RngFactory::new(1).stream("gossip");
        let digest = GossipMessage::PushDigest {
            gossiper: NodeId::new(5),
            pattern: p,
            ids: Arc::new(vec![EventId::new(NodeId::new(0), 7)]),
        };
        let actions = algo.on_gossip(&node, NodeId::new(3), digest, &[], &mut rng);
        assert!(actions
            .iter()
            .all(|a| !matches!(a, GossipAction::Request { .. })));
    }
}
