//! The `Lost` buffer of the pull algorithms: the set of events a
//! dispatcher knows it missed, identified by (source, pattern, seq).

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use eps_overlay::NodeId;
use eps_pubsub::{Event, LossRecord, PatternId};

/// The buffer of detected-but-not-yet-recovered events.
///
/// Entries are keyed by [`LossRecord`] and carry an attempt counter so
/// that hopeless entries (events evicted from every cache) are
/// eventually given up, bounding gossip overhead. The buffer is also
/// bounded in *size*: beyond `capacity` the oldest entries are evicted
/// FIFO (counted by [`LostBuffer::evicted_total`]) — remembering more
/// losses than any cache could still serve is pure overhead, and under
/// heavy churn an unbounded buffer would grow without limit.
///
/// # Examples
///
/// ```
/// use eps_gossip::LostBuffer;
/// use eps_pubsub::{LossRecord, PatternId};
/// use eps_overlay::NodeId;
///
/// let mut lost = LostBuffer::new(20);
/// let rec = LossRecord { source: NodeId::new(0), pattern: PatternId::new(1), seq: 3 };
/// lost.add(rec);
/// assert_eq!(lost.len(), 1);
/// assert_eq!(lost.for_pattern(PatternId::new(1), 10), vec![rec]);
/// ```
#[derive(Clone, Debug)]
pub struct LostBuffer {
    entries: BTreeMap<LossRecord, Entry>,
    /// Per-pattern secondary index over the outstanding entries,
    /// dense-indexed by `PatternId::index()`. Each set iterates in
    /// (source, seq) order — exactly the order a pattern-filtered walk
    /// of `entries` (keyed (source, pattern, seq)) would expose — so
    /// `for_pattern` and `patterns` need no full-buffer scan.
    by_pattern: Vec<BTreeSet<(NodeId, u64)>>,
    /// Outstanding-entry count per source, so `sources` is
    /// O(#distinct sources) instead of a scan with sort + dedup.
    source_counts: BTreeMap<NodeId, usize>,
    /// Insertion order for FIFO eviction. May hold stale pairs (entry
    /// recovered or abandoned since); the stamp tells them apart from
    /// a re-added live entry.
    order: VecDeque<(LossRecord, u64)>,
    next_stamp: u64,
    capacity: usize,
    max_attempts: u32,
    added_total: u64,
    recovered_total: u64,
    abandoned_total: u64,
    evicted_total: u64,
}

#[derive(Clone, Copy, Debug)]
struct Entry {
    attempts: u32,
    stamp: u64,
}

impl LostBuffer {
    /// Creates an empty buffer; entries are dropped after
    /// `max_attempts` unsuccessful gossip rounds, and capped at
    /// [`crate::DEFAULT_LOST_CAPACITY`] entries.
    ///
    /// # Panics
    ///
    /// Panics if `max_attempts` is zero.
    pub fn new(max_attempts: u32) -> Self {
        LostBuffer::with_capacity(max_attempts, crate::config::DEFAULT_LOST_CAPACITY)
    }

    /// Creates an empty buffer holding at most `capacity` entries; the
    /// oldest are evicted FIFO beyond that.
    ///
    /// # Panics
    ///
    /// Panics if `max_attempts` or `capacity` is zero.
    pub fn with_capacity(max_attempts: u32, capacity: usize) -> Self {
        assert!(max_attempts > 0, "max_attempts must be positive");
        assert!(capacity > 0, "capacity must be positive");
        LostBuffer {
            entries: BTreeMap::new(),
            by_pattern: Vec::new(),
            source_counts: BTreeMap::new(),
            order: VecDeque::new(),
            next_stamp: 0,
            capacity,
            max_attempts,
            added_total: 0,
            recovered_total: 0,
            abandoned_total: 0,
            evicted_total: 0,
        }
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of outstanding entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if nothing is outstanding.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total entries ever added.
    pub fn added_total(&self) -> u64 {
        self.added_total
    }

    /// Total entries cleared because the event arrived.
    pub fn recovered_total(&self) -> u64 {
        self.recovered_total
    }

    /// Total entries dropped after exhausting their attempts.
    pub fn abandoned_total(&self) -> u64 {
        self.abandoned_total
    }

    /// Total entries evicted by the FIFO capacity bound.
    pub fn evicted_total(&self) -> u64 {
        self.evicted_total
    }

    /// Adds `record` to the secondary indexes.
    fn index_add(&mut self, record: &LossRecord) {
        let idx = record.pattern.index();
        if idx >= self.by_pattern.len() {
            self.by_pattern.resize_with(idx + 1, BTreeSet::new);
        }
        self.by_pattern[idx].insert((record.source, record.seq));
        *self.source_counts.entry(record.source).or_insert(0) += 1;
    }

    /// Removes `record` from the secondary indexes (it must have been
    /// indexed).
    fn index_remove(&mut self, record: &LossRecord) {
        self.by_pattern[record.pattern.index()].remove(&(record.source, record.seq));
        let count = self
            .source_counts
            .get_mut(&record.source)
            .expect("indexed record has a source count");
        *count -= 1;
        if *count == 0 {
            self.source_counts.remove(&record.source);
        }
    }

    /// Records a detected loss. Duplicate records are ignored. Over
    /// capacity, the oldest outstanding entry is evicted to make room.
    pub fn add(&mut self, record: LossRecord) {
        if self.entries.contains_key(&record) {
            return;
        }
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        self.entries.insert(record, Entry { attempts: 0, stamp });
        self.index_add(&record);
        self.order.push_back((record, stamp));
        self.added_total += 1;
        while self.entries.len() > self.capacity {
            self.evict_oldest();
        }
    }

    fn evict_oldest(&mut self) {
        while let Some((record, stamp)) = self.order.pop_front() {
            // Skip stale pairs: the entry was recovered or abandoned
            // (or re-added later with a fresh stamp) since it was
            // queued.
            if self.entries.get(&record).is_some_and(|e| e.stamp == stamp) {
                self.entries.remove(&record);
                self.index_remove(&record);
                self.evicted_total += 1;
                return;
            }
        }
    }

    /// Clears every entry covered by a received event: for each
    /// (pattern, seq) the event carries, the entry
    /// (event.source, pattern, seq) is recovered.
    pub fn clear_for_event(&mut self, event: &Event) {
        for &(pattern, seq) in event.pattern_seqs() {
            let record = LossRecord {
                source: event.source(),
                pattern,
                seq,
            };
            if self.entries.remove(&record).is_some() {
                self.index_remove(&record);
                self.recovered_total += 1;
            }
        }
    }

    /// `true` if the record is still outstanding.
    pub fn contains(&self, record: &LossRecord) -> bool {
        self.entries.contains_key(record)
    }

    /// The distinct patterns with outstanding entries, in order
    /// (ascending pattern id — dense index order).
    pub fn patterns(&self) -> Vec<PatternId> {
        let mut out = Vec::new();
        self.patterns_into(&mut out);
        out
    }

    /// Clears `out` and fills it with [`LostBuffer::patterns`] — the
    /// allocation-free form the steering scratch buffers reuse every
    /// gossip round.
    pub fn patterns_into(&self, out: &mut Vec<PatternId>) {
        out.clear();
        out.extend(
            self.by_pattern
                .iter()
                .enumerate()
                .filter(|(_, set)| !set.is_empty())
                .map(|(idx, _)| PatternId::new(idx as u16)),
        );
    }

    /// The distinct sources with outstanding entries, in order
    /// (ascending node id — `BTreeMap` key order).
    pub fn sources(&self) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.sources_into(&mut out);
        out
    }

    /// Clears `out` and fills it with [`LostBuffer::sources`].
    pub fn sources_into(&self, out: &mut Vec<NodeId>) {
        out.clear();
        out.extend(self.source_counts.keys().copied());
    }

    /// Selects up to `limit` outstanding entries for `pattern`,
    /// charging one attempt to each selected entry and dropping the
    /// ones that exhausted their budget (they are *not* returned).
    /// Entries come back in (source, seq) order — the order a
    /// pattern-filtered walk of the primary map would produce.
    pub fn for_pattern(&mut self, pattern: PatternId, limit: usize) -> Vec<LossRecord> {
        let keys: Vec<LossRecord> = self
            .by_pattern
            .get(pattern.index())
            .into_iter()
            .flatten()
            .take(limit)
            .map(|&(source, seq)| LossRecord {
                source,
                pattern,
                seq,
            })
            .collect();
        self.charge(keys)
    }

    /// Selects up to `limit` outstanding entries from `source`,
    /// charging attempts as in [`LostBuffer::for_pattern`]. Served by
    /// a range query: `LossRecord` orders by (source, pattern, seq),
    /// so one source's entries are contiguous in the primary map.
    pub fn for_source(&mut self, source: NodeId, limit: usize) -> Vec<LossRecord> {
        let lo = LossRecord {
            source,
            pattern: PatternId::new(0),
            seq: 0,
        };
        let hi = LossRecord {
            source,
            pattern: PatternId::new(u16::MAX),
            seq: u64::MAX,
        };
        let keys: Vec<LossRecord> = self
            .entries
            .range(lo..=hi)
            .take(limit)
            .map(|(&key, _)| key)
            .collect();
        self.charge(keys)
    }

    /// Selects up to `limit` outstanding entries regardless of pattern
    /// or source (used by random pull), charging attempts.
    pub fn any(&mut self, limit: usize) -> Vec<LossRecord> {
        let keys: Vec<LossRecord> = self.entries.keys().take(limit).copied().collect();
        self.charge(keys)
    }

    fn charge(&mut self, keys: Vec<LossRecord>) -> Vec<LossRecord> {
        let mut out = Vec::with_capacity(keys.len());
        for key in keys {
            let entry = self
                .entries
                .get_mut(&key)
                .expect("selected keys are present");
            entry.attempts += 1;
            if entry.attempts >= self.max_attempts {
                self.entries.remove(&key);
                self.index_remove(&key);
                self.abandoned_total += 1;
            }
            out.push(key);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eps_pubsub::EventId;

    fn rec(source: u32, pattern: u16, seq: u64) -> LossRecord {
        LossRecord {
            source: NodeId::new(source),
            pattern: PatternId::new(pattern),
            seq,
        }
    }

    #[test]
    fn add_is_idempotent() {
        let mut lost = LostBuffer::new(10);
        lost.add(rec(0, 1, 2));
        lost.add(rec(0, 1, 2));
        assert_eq!(lost.len(), 1);
        assert_eq!(lost.added_total(), 1);
    }

    #[test]
    fn clear_for_event_removes_covered_entries() {
        let mut lost = LostBuffer::new(10);
        lost.add(rec(0, 1, 2));
        lost.add(rec(0, 2, 5));
        lost.add(rec(0, 1, 3));
        let event = Event::new(
            EventId::new(NodeId::new(0), 9),
            vec![(PatternId::new(1), 2), (PatternId::new(2), 5)],
        );
        lost.clear_for_event(&event);
        assert_eq!(lost.len(), 1);
        assert!(lost.contains(&rec(0, 1, 3)));
        assert_eq!(lost.recovered_total(), 2);
    }

    #[test]
    fn selection_by_pattern_and_source() {
        let mut lost = LostBuffer::new(10);
        lost.add(rec(0, 1, 0));
        lost.add(rec(0, 2, 0));
        lost.add(rec(3, 1, 4));
        assert_eq!(
            lost.for_pattern(PatternId::new(1), 10),
            vec![rec(0, 1, 0), rec(3, 1, 4)]
        );
        assert_eq!(lost.for_source(NodeId::new(3), 10), vec![rec(3, 1, 4)]);
        assert_eq!(lost.patterns(), vec![PatternId::new(1), PatternId::new(2)]);
        assert_eq!(lost.sources(), vec![NodeId::new(0), NodeId::new(3)]);
    }

    #[test]
    fn limit_caps_selection() {
        let mut lost = LostBuffer::new(100);
        for seq in 0..10 {
            lost.add(rec(0, 1, seq));
        }
        assert_eq!(lost.for_pattern(PatternId::new(1), 3).len(), 3);
        assert_eq!(lost.any(4).len(), 4);
    }

    #[test]
    fn entries_are_abandoned_after_max_attempts() {
        let mut lost = LostBuffer::new(3);
        lost.add(rec(0, 1, 0));
        for _ in 0..2 {
            assert_eq!(lost.for_pattern(PatternId::new(1), 10).len(), 1);
            assert_eq!(lost.len(), 1);
        }
        // Third attempt exhausts the budget: entry still returned but
        // dropped afterwards.
        assert_eq!(lost.for_pattern(PatternId::new(1), 10).len(), 1);
        assert!(lost.is_empty());
        assert_eq!(lost.abandoned_total(), 1);
    }

    #[test]
    fn recovered_entries_stop_being_selected() {
        let mut lost = LostBuffer::new(10);
        lost.add(rec(0, 1, 0));
        let event = Event::new(
            EventId::new(NodeId::new(0), 0),
            vec![(PatternId::new(1), 0)],
        );
        lost.clear_for_event(&event);
        assert!(lost.for_pattern(PatternId::new(1), 10).is_empty());
    }

    #[test]
    fn capacity_evicts_oldest_first() {
        let mut lost = LostBuffer::with_capacity(10, 3);
        for seq in 0..5 {
            lost.add(rec(0, 1, seq));
        }
        assert_eq!(lost.len(), 3);
        assert_eq!(lost.evicted_total(), 2);
        // The two oldest are gone, the three newest remain.
        assert!(!lost.contains(&rec(0, 1, 0)));
        assert!(!lost.contains(&rec(0, 1, 1)));
        assert!(lost.contains(&rec(0, 1, 2)));
        assert!(lost.contains(&rec(0, 1, 4)));
    }

    #[test]
    fn recovered_entries_do_not_count_against_capacity() {
        let mut lost = LostBuffer::with_capacity(10, 2);
        lost.add(rec(0, 1, 0));
        lost.add(rec(0, 1, 1));
        let event = Event::new(
            EventId::new(NodeId::new(0), 0),
            vec![(PatternId::new(1), 0)],
        );
        lost.clear_for_event(&event);
        // Room was freed: adding two more evicts only when full again.
        lost.add(rec(0, 1, 2));
        assert_eq!(lost.len(), 2);
        assert_eq!(lost.evicted_total(), 0);
        lost.add(rec(0, 1, 3));
        assert_eq!(lost.len(), 2);
        assert_eq!(lost.evicted_total(), 1);
        // The stale queue pair for the recovered seq 0 must not have
        // shielded seq 1 from eviction.
        assert!(!lost.contains(&rec(0, 1, 1)));
    }

    #[test]
    fn readded_entry_counts_as_fresh_for_eviction() {
        let mut lost = LostBuffer::with_capacity(10, 2);
        lost.add(rec(0, 1, 0));
        let event = Event::new(
            EventId::new(NodeId::new(0), 0),
            vec![(PatternId::new(1), 0)],
        );
        lost.clear_for_event(&event);
        // Lost again (e.g. after churn): re-added with a fresh stamp.
        lost.add(rec(0, 1, 0));
        lost.add(rec(0, 1, 1));
        lost.add(rec(0, 1, 2));
        // FIFO over *current* insertions: seq 0 (re-added first) goes.
        assert_eq!(lost.len(), 2);
        assert!(!lost.contains(&rec(0, 1, 0)));
        assert!(lost.contains(&rec(0, 1, 1)));
        assert!(lost.contains(&rec(0, 1, 2)));
    }

    #[test]
    #[should_panic]
    fn zero_capacity_panics() {
        LostBuffer::with_capacity(10, 0);
    }

    #[test]
    fn indexes_stay_exact_across_recover_abandon_evict() {
        let mut lost = LostBuffer::with_capacity(2, 4);
        for (s, p, q) in [(0, 1, 0), (0, 2, 1), (3, 1, 4), (3, 3, 0), (5, 2, 9)] {
            lost.add(rec(s, p, q)); // 5th add evicts the oldest
        }
        assert_eq!(lost.evicted_total(), 1);
        assert_eq!(
            lost.patterns(),
            vec![PatternId::new(1), PatternId::new(2), PatternId::new(3)]
        );
        assert_eq!(
            lost.sources(),
            vec![NodeId::new(0), NodeId::new(3), NodeId::new(5)]
        );
        // Recover one entry: its pattern had only that entry left.
        let event = Event::new(
            EventId::new(NodeId::new(3), 0),
            vec![(PatternId::new(3), 0)],
        );
        lost.clear_for_event(&event);
        assert_eq!(lost.patterns(), vec![PatternId::new(1), PatternId::new(2)]);
        // Abandon p2 entries via attempts (max_attempts = 2).
        lost.for_pattern(PatternId::new(2), 10);
        lost.for_pattern(PatternId::new(2), 10);
        assert_eq!(lost.patterns(), vec![PatternId::new(1)]);
        assert_eq!(lost.sources(), vec![NodeId::new(3)]);
        assert_eq!(lost.for_source(NodeId::new(3), 10), vec![rec(3, 1, 4)]);
    }
}
