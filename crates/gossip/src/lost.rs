//! The `Lost` buffer of the pull algorithms: the set of events a
//! dispatcher knows it missed, identified by (source, pattern, seq).

use std::collections::BTreeMap;

use eps_overlay::NodeId;
use eps_pubsub::{Event, LossRecord, PatternId};

/// The buffer of detected-but-not-yet-recovered events.
///
/// Entries are keyed by [`LossRecord`] and carry an attempt counter so
/// that hopeless entries (events evicted from every cache) are
/// eventually given up, bounding gossip overhead.
///
/// # Examples
///
/// ```
/// use eps_gossip::LostBuffer;
/// use eps_pubsub::{LossRecord, PatternId};
/// use eps_overlay::NodeId;
///
/// let mut lost = LostBuffer::new(20);
/// let rec = LossRecord { source: NodeId::new(0), pattern: PatternId::new(1), seq: 3 };
/// lost.add(rec);
/// assert_eq!(lost.len(), 1);
/// assert_eq!(lost.for_pattern(PatternId::new(1), 10), vec![rec]);
/// ```
#[derive(Clone, Debug)]
pub struct LostBuffer {
    entries: BTreeMap<LossRecord, u32>,
    max_attempts: u32,
    added_total: u64,
    recovered_total: u64,
    abandoned_total: u64,
}

impl LostBuffer {
    /// Creates an empty buffer; entries are dropped after
    /// `max_attempts` unsuccessful gossip rounds.
    ///
    /// # Panics
    ///
    /// Panics if `max_attempts` is zero.
    pub fn new(max_attempts: u32) -> Self {
        assert!(max_attempts > 0, "max_attempts must be positive");
        LostBuffer {
            entries: BTreeMap::new(),
            max_attempts,
            added_total: 0,
            recovered_total: 0,
            abandoned_total: 0,
        }
    }

    /// Number of outstanding entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if nothing is outstanding.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total entries ever added.
    pub fn added_total(&self) -> u64 {
        self.added_total
    }

    /// Total entries cleared because the event arrived.
    pub fn recovered_total(&self) -> u64 {
        self.recovered_total
    }

    /// Total entries dropped after exhausting their attempts.
    pub fn abandoned_total(&self) -> u64 {
        self.abandoned_total
    }

    /// Records a detected loss. Duplicate records are ignored.
    pub fn add(&mut self, record: LossRecord) {
        if self.entries.insert(record, 0).is_none() {
            self.added_total += 1;
        }
    }

    /// Clears every entry covered by a received event: for each
    /// (pattern, seq) the event carries, the entry
    /// (event.source, pattern, seq) is recovered.
    pub fn clear_for_event(&mut self, event: &Event) {
        for &(pattern, seq) in event.pattern_seqs() {
            let record = LossRecord {
                source: event.source(),
                pattern,
                seq,
            };
            if self.entries.remove(&record).is_some() {
                self.recovered_total += 1;
            }
        }
    }

    /// `true` if the record is still outstanding.
    pub fn contains(&self, record: &LossRecord) -> bool {
        self.entries.contains_key(record)
    }

    /// The distinct patterns with outstanding entries, in order.
    pub fn patterns(&self) -> Vec<PatternId> {
        let mut out: Vec<PatternId> = self.entries.keys().map(|r| r.pattern).collect();
        out.sort();
        out.dedup();
        out
    }

    /// The distinct sources with outstanding entries, in order.
    pub fn sources(&self) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self.entries.keys().map(|r| r.source).collect();
        out.sort();
        out.dedup();
        out
    }

    /// Selects up to `limit` outstanding entries for `pattern`,
    /// charging one attempt to each selected entry and dropping the
    /// ones that exhausted their budget (they are *not* returned).
    pub fn for_pattern(&mut self, pattern: PatternId, limit: usize) -> Vec<LossRecord> {
        let keys: Vec<LossRecord> = self
            .entries
            .keys()
            .filter(|r| r.pattern == pattern)
            .take(limit)
            .copied()
            .collect();
        self.charge(keys)
    }

    /// Selects up to `limit` outstanding entries from `source`,
    /// charging attempts as in [`LostBuffer::for_pattern`].
    pub fn for_source(&mut self, source: NodeId, limit: usize) -> Vec<LossRecord> {
        let keys: Vec<LossRecord> = self
            .entries
            .keys()
            .filter(|r| r.source == source)
            .take(limit)
            .copied()
            .collect();
        self.charge(keys)
    }

    /// Selects up to `limit` outstanding entries regardless of pattern
    /// or source (used by random pull), charging attempts.
    pub fn any(&mut self, limit: usize) -> Vec<LossRecord> {
        let keys: Vec<LossRecord> = self.entries.keys().take(limit).copied().collect();
        self.charge(keys)
    }

    fn charge(&mut self, keys: Vec<LossRecord>) -> Vec<LossRecord> {
        let mut out = Vec::with_capacity(keys.len());
        for key in keys {
            let attempts = self
                .entries
                .get_mut(&key)
                .expect("selected keys are present");
            *attempts += 1;
            if *attempts >= self.max_attempts {
                self.entries.remove(&key);
                self.abandoned_total += 1;
            }
            out.push(key);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eps_pubsub::EventId;

    fn rec(source: u32, pattern: u16, seq: u64) -> LossRecord {
        LossRecord {
            source: NodeId::new(source),
            pattern: PatternId::new(pattern),
            seq,
        }
    }

    #[test]
    fn add_is_idempotent() {
        let mut lost = LostBuffer::new(10);
        lost.add(rec(0, 1, 2));
        lost.add(rec(0, 1, 2));
        assert_eq!(lost.len(), 1);
        assert_eq!(lost.added_total(), 1);
    }

    #[test]
    fn clear_for_event_removes_covered_entries() {
        let mut lost = LostBuffer::new(10);
        lost.add(rec(0, 1, 2));
        lost.add(rec(0, 2, 5));
        lost.add(rec(0, 1, 3));
        let event = Event::new(
            EventId::new(NodeId::new(0), 9),
            vec![(PatternId::new(1), 2), (PatternId::new(2), 5)],
        );
        lost.clear_for_event(&event);
        assert_eq!(lost.len(), 1);
        assert!(lost.contains(&rec(0, 1, 3)));
        assert_eq!(lost.recovered_total(), 2);
    }

    #[test]
    fn selection_by_pattern_and_source() {
        let mut lost = LostBuffer::new(10);
        lost.add(rec(0, 1, 0));
        lost.add(rec(0, 2, 0));
        lost.add(rec(3, 1, 4));
        assert_eq!(
            lost.for_pattern(PatternId::new(1), 10),
            vec![rec(0, 1, 0), rec(3, 1, 4)]
        );
        assert_eq!(lost.for_source(NodeId::new(3), 10), vec![rec(3, 1, 4)]);
        assert_eq!(lost.patterns(), vec![PatternId::new(1), PatternId::new(2)]);
        assert_eq!(lost.sources(), vec![NodeId::new(0), NodeId::new(3)]);
    }

    #[test]
    fn limit_caps_selection() {
        let mut lost = LostBuffer::new(100);
        for seq in 0..10 {
            lost.add(rec(0, 1, seq));
        }
        assert_eq!(lost.for_pattern(PatternId::new(1), 3).len(), 3);
        assert_eq!(lost.any(4).len(), 4);
    }

    #[test]
    fn entries_are_abandoned_after_max_attempts() {
        let mut lost = LostBuffer::new(3);
        lost.add(rec(0, 1, 0));
        for _ in 0..2 {
            assert_eq!(lost.for_pattern(PatternId::new(1), 10).len(), 1);
            assert_eq!(lost.len(), 1);
        }
        // Third attempt exhausts the budget: entry still returned but
        // dropped afterwards.
        assert_eq!(lost.for_pattern(PatternId::new(1), 10).len(), 1);
        assert!(lost.is_empty());
        assert_eq!(lost.abandoned_total(), 1);
    }

    #[test]
    fn recovered_entries_stop_being_selected() {
        let mut lost = LostBuffer::new(10);
        lost.add(rec(0, 1, 0));
        let event = Event::new(
            EventId::new(NodeId::new(0), 0),
            vec![(PatternId::new(1), 0)],
        );
        lost.clear_for_event(&event);
        assert!(lost.for_pattern(PatternId::new(1), 10).is_empty());
    }
}
