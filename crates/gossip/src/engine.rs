//! The generic gossip engine: one [`DigestPolicy`] × one
//! [`SteeringPolicy`] = one recovery strategy.
//!
//! The engine owns everything the policies share — round sequencing,
//! dispatch of incoming gossip, the out-of-band request/reply path,
//! and the idle signal for adaptive gossip — so that a new strategy is
//! a composition, not a new module. All six paper algorithms are
//! engines (see [`crate::Algorithm`] for the registry that names
//! them).

use eps_overlay::NodeId;
use eps_pubsub::{Dispatcher, Event, EventId, LossRecord};
use eps_sim::Rng;

use crate::algorithm::RecoveryAlgorithm;
use crate::config::GossipConfig;
use crate::message::{GossipAction, GossipMessage};
use crate::policy::{DigestPolicy, SteeringPolicy};

/// A recovery strategy assembled from a digest policy and a steering
/// policy. The type parameters keep the composition monomorphized (no
/// dynamic dispatch inside the per-round hot path); the registry wraps
/// the whole engine in one `Box<dyn RecoveryAlgorithm>` at the node
/// boundary, exactly as the hand-wired structs were.
#[derive(Debug)]
pub struct GossipEngine<D, S> {
    name: std::sync::Arc<str>,
    config: GossipConfig,
    digest: D,
    steering: S,
}

impl<D: DigestPolicy, S: SteeringPolicy> GossipEngine<D, S> {
    /// Composes a strategy. `name` is what [`RecoveryAlgorithm::name`]
    /// reports — for registry-built engines it matches the registered
    /// name.
    pub fn new(
        name: impl Into<std::sync::Arc<str>>,
        config: GossipConfig,
        digest: D,
        steering: S,
    ) -> Self {
        GossipEngine {
            name: name.into(),
            config,
            digest,
            steering,
        }
    }

    /// The digest policy (for tests and metrics).
    pub fn digest(&self) -> &D {
        &self.digest
    }

    /// The steering policy (for tests and metrics).
    pub fn steering(&self) -> &S {
        &self.steering
    }

    /// The gossip parameters this engine runs with.
    pub fn config(&self) -> &GossipConfig {
        &self.config
    }
}

impl<D: DigestPolicy, S: SteeringPolicy> RecoveryAlgorithm for GossipEngine<D, S> {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_round(
        &mut self,
        node: &Dispatcher,
        neighbors: &[NodeId],
        rng: &mut Rng,
    ) -> Vec<GossipAction> {
        self.digest.begin_round();
        self.steering
            .round(&mut self.digest, node, neighbors, &self.config, rng)
    }

    fn on_gossip(
        &mut self,
        node: &Dispatcher,
        from: NodeId,
        msg: GossipMessage,
        neighbors: &[NodeId],
        rng: &mut Rng,
    ) -> Vec<GossipAction> {
        self.steering
            .on_gossip(
                &mut self.digest,
                node,
                from,
                msg,
                neighbors,
                &self.config,
                rng,
            )
            // A wire form no steering stage recognizes (mixed
            // deployments) is dropped.
            .unwrap_or_default()
    }

    fn on_losses(&mut self, losses: &[LossRecord]) {
        self.digest.on_losses(losses);
    }

    fn on_event_received(&mut self, event: &Event) {
        self.digest.on_event_received(event);
    }

    fn on_request(
        &mut self,
        node: &Dispatcher,
        from: NodeId,
        ids: &[EventId],
    ) -> Vec<GossipAction> {
        // The request is the push half's evidence that its digests are
        // finding gaps (no-op for purely reactive digests).
        self.digest.note_request();
        let events: Vec<Event> = ids
            .iter()
            .filter_map(|id| node.cache().get(*id).cloned())
            .collect();
        if events.is_empty() {
            Vec::new()
        } else {
            vec![GossipAction::Reply { to: from, events }]
        }
    }

    fn on_range_request(
        &mut self,
        from: NodeId,
        pattern: eps_pubsub::PatternId,
        ranges: &[eps_pubsub::RangeRef],
    ) {
        self.digest.on_range_request(from, pattern, ranges);
    }

    fn outstanding_losses(&self) -> usize {
        self.digest.outstanding_losses()
    }

    fn lost_evictions(&self) -> u64 {
        self.digest.lost_evictions()
    }

    fn is_idle(&self) -> bool {
        self.digest.is_idle()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{MuxSteering, NegativeDigest, PatternSteering, SourceSteering};
    use crate::registry::Algorithm;
    use eps_pubsub::{DispatcherConfig, PatternId};
    use eps_sim::RngFactory;

    fn record(source: u32, pattern: u16, seq: u64) -> LossRecord {
        LossRecord {
            source: NodeId::new(source),
            pattern: PatternId::new(pattern),
            seq,
        }
    }

    /// A dispatcher that knows a subscriber neighbor for pattern 1 and
    /// a recorded route back to source 0 — both pull steerings have
    /// something to do.
    fn pull_node() -> Dispatcher {
        let mut node = Dispatcher::new(
            NodeId::new(5),
            DispatcherConfig {
                cache_own_published: true,
                record_routes: true,
                ..DispatcherConfig::default()
            },
        );
        node.subscribe_local(PatternId::new(1), &[]);
        node.on_subscribe(PatternId::new(1), NodeId::new(3), &[]);
        let mut e = Event::new(
            EventId::new(NodeId::new(0), 0),
            vec![(PatternId::new(1), 0)],
        );
        e.record_hop(NodeId::new(3));
        node.on_event(e, Some(NodeId::new(3)));
        node
    }

    /// The tentpole claim, asserted: the registry's `combined-pull` is
    /// *literally* the `P_source`-mux of source steering over pattern
    /// steering on a negative digest — identical action sequences
    /// under a shared seed, round for round.
    #[test]
    fn combined_pull_equals_mux_of_the_two_pull_steerings() {
        let config = GossipConfig {
            p_source: 0.5,
            max_attempts: u32::MAX,
            ..GossipConfig::default()
        };
        let mut registry_built = Algorithm::combined_pull().build(config);
        let mut composed = GossipEngine::new(
            "manual-mux",
            config,
            NegativeDigest::new(&config),
            MuxSteering::new(SourceSteering::default(), PatternSteering::default()),
        );

        let node = pull_node();
        let neighbors = [NodeId::new(3), NodeId::new(7)];
        let factory = RngFactory::new(42);
        let mut rng_a = factory.stream("gossip-a");
        let mut rng_b = factory.stream("gossip-a");
        for seq in 0..100u64 {
            let losses = [record(0, 1, seq + 1)];
            registry_built.on_losses(&losses);
            composed.on_losses(&losses);
            let a = registry_built.on_round(&node, &neighbors, &mut rng_a);
            let b = composed.on_round(&node, &neighbors, &mut rng_b);
            assert_eq!(a, b, "round {seq} diverged");
            // Incoming digests are handled identically too.
            let msg = GossipMessage::PullDigest {
                gossiper: NodeId::new(9),
                pattern: PatternId::new(1),
                lost: vec![record(0, 1, seq + 1)],
            };
            let a = registry_built.on_gossip(
                &node,
                NodeId::new(3),
                msg.clone(),
                &neighbors,
                &mut rng_a,
            );
            let b = composed.on_gossip(&node, NodeId::new(3), msg, &neighbors, &mut rng_b);
            assert_eq!(a, b, "gossip handling diverged at round {seq}");
        }
    }

    #[test]
    fn engine_serves_requests_from_cache() {
        let node = pull_node();
        let cached = node
            .cache()
            .get_by_pattern_seq(NodeId::new(0), PatternId::new(1), 0)
            .expect("event cached")
            .id();
        let mut engine = GossipEngine::new(
            "test",
            GossipConfig::default(),
            NegativeDigest::new(&GossipConfig::default()),
            PatternSteering::default(),
        );
        let missing = EventId::new(NodeId::new(9), 99);
        let actions = engine.on_request(&node, NodeId::new(2), &[cached, missing]);
        assert_eq!(actions.len(), 1);
        match &actions[0] {
            GossipAction::Reply { to, events } => {
                assert_eq!(*to, NodeId::new(2));
                assert_eq!(events.len(), 1);
                assert_eq!(events[0].id(), cached);
            }
            other => panic!("unexpected {other:?}"),
        }
        // A request for nothing we hold produces no reply at all.
        assert!(engine
            .on_request(&node, NodeId::new(2), &[missing])
            .is_empty());
    }

    #[test]
    fn engine_idle_signal_tracks_digest_policy() {
        let config = GossipConfig::default();
        let mut engine = GossipEngine::new(
            "test",
            config,
            NegativeDigest::new(&config),
            PatternSteering::default(),
        );
        assert!(engine.is_idle());
        engine.on_losses(&[record(0, 1, 3)]);
        assert!(!engine.is_idle());
        assert_eq!(engine.outstanding_losses(), 1);
        let e = Event::new(
            EventId::new(NodeId::new(0), 7),
            vec![(PatternId::new(1), 3)],
        );
        engine.on_event_received(&e);
        assert!(engine.is_idle(), "recovered event clears the buffer");
    }

    #[test]
    fn unknown_wire_forms_are_dropped() {
        let node = pull_node();
        let config = GossipConfig::default();
        let mut engine = GossipEngine::new(
            "test",
            config,
            NegativeDigest::new(&config),
            SourceSteering::default(),
        );
        let mut rng = RngFactory::new(1).stream("gossip");
        // Source steering does not speak RandomPull.
        let msg = GossipMessage::RandomPull {
            gossiper: NodeId::new(9),
            lost: vec![record(0, 1, 5)],
            ttl: 4,
        };
        let actions = engine.on_gossip(&node, NodeId::new(3), msg, &[], &mut rng);
        assert!(actions.is_empty());
    }
}
