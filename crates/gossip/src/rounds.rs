//! Shared building blocks of the gossip strategies: digest routing on
//! the tree, cache lookups for negative digests, and the round bodies
//! reused by the combined-pull variant.

use eps_overlay::NodeId;
use eps_pubsub::{Dispatcher, Event, LossRecord, PatternId};
use eps_sim::Rng;

use crate::config::GossipConfig;
use crate::lost::LostBuffer;
use crate::message::{GossipAction, GossipMessage};

/// The neighbors a pattern-labelled gossip message is forwarded to:
/// the neighbors subscribed to `pattern` (excluding the arrival
/// interface), each kept with probability `p_forward` — the paper's
/// "random subset of the neighbors subscribed to p".
///
/// If every coin flip comes up empty while candidates exist, one
/// random candidate is used instead: `P_forward` prunes *fan-out* to
/// limit overhead, but a digest on a single-path route would otherwise
/// die off as `P_forward^hops` and never reach a subscriber more than
/// a couple of hops away. (The paper does not report its `P_forward`
/// value or the exact subset rule; this interpretation reproduces its
/// delivery curves.)
pub(crate) fn pattern_forward_targets(
    node: &Dispatcher,
    pattern: PatternId,
    from: Option<NodeId>,
    p_forward: f64,
    rng: &mut Rng,
) -> Vec<NodeId> {
    let candidates = node.table().neighbors_for(pattern, from);
    if candidates.is_empty() {
        return candidates;
    }
    let picked: Vec<NodeId> = candidates
        .iter()
        .copied()
        .filter(|_| p_forward >= 1.0 || rng.random_bool(p_forward))
        .collect();
    if picked.is_empty() {
        vec![candidates[rng.random_range(0..candidates.len())]]
    } else {
        picked
    }
}

/// Splits a negative digest into the events this dispatcher can serve
/// from its cache and the remainder it cannot.
pub(crate) fn serve_from_cache(
    node: &Dispatcher,
    lost: &[LossRecord],
) -> (Vec<Event>, Vec<LossRecord>) {
    let mut found = Vec::new();
    let mut remainder = Vec::new();
    for &record in lost {
        match node
            .cache()
            .get_by_pattern_seq(record.source, record.pattern, record.seq)
        {
            Some(event) => found.push(event.clone()),
            None => remainder.push(record),
        }
    }
    // One event can cover several records (it matches several
    // patterns); do not send duplicates.
    found.sort_by_key(|e| e.id());
    found.dedup_by_key(|e| e.id());
    (found, remainder)
}

/// The subscriber-based pull round body (paper, Section III-B): pick a
/// locally subscribed pattern with outstanding losses, build a negative
/// digest, and steer it towards that pattern's subscribers.
pub(crate) fn subscriber_round(
    lost: &mut LostBuffer,
    node: &Dispatcher,
    config: &GossipConfig,
    rng: &mut Rng,
) -> Vec<GossipAction> {
    let patterns = lost.patterns();
    let Some(&pattern) = rng.choose(&patterns) else {
        return Vec::new(); // Nothing missing: pull skips the round.
    };
    let entries = lost.for_pattern(pattern, config.digest_max);
    if entries.is_empty() {
        return Vec::new();
    }
    let msg = GossipMessage::PullDigest {
        gossiper: node.id(),
        pattern,
        lost: entries,
    };
    pattern_forward_targets(node, pattern, None, config.p_forward, rng)
        .into_iter()
        .map(|to| GossipAction::Forward {
            to,
            msg: msg.clone(),
        })
        .collect()
}

/// Handles an incoming subscriber-pull digest: serve what the cache
/// holds, forward the remainder along the pattern's routes. A
/// dispatcher holding everything "short-circuits" the propagation.
pub(crate) fn handle_pull_digest(
    node: &Dispatcher,
    config: &GossipConfig,
    from: NodeId,
    gossiper: NodeId,
    pattern: PatternId,
    lost: Vec<LossRecord>,
    rng: &mut Rng,
) -> Vec<GossipAction> {
    let (found, remainder) = serve_from_cache(node, &lost);
    let mut actions = Vec::new();
    if !found.is_empty() {
        actions.push(GossipAction::Reply {
            to: gossiper,
            events: found,
        });
    }
    if !remainder.is_empty() {
        let msg = GossipMessage::PullDigest {
            gossiper,
            pattern,
            lost: remainder,
        };
        for to in pattern_forward_targets(node, pattern, Some(from), config.p_forward, rng) {
            actions.push(GossipAction::Forward {
                to,
                msg: msg.clone(),
            });
        }
    }
    actions
}

/// The publisher-based pull round body: pick a source with outstanding
/// losses, build a negative digest, and steer it back towards the
/// publisher along the reverse of the most recently recorded route.
pub(crate) fn publisher_round(
    lost: &mut LostBuffer,
    node: &Dispatcher,
    config: &GossipConfig,
    rng: &mut Rng,
) -> Vec<GossipAction> {
    let sources = lost.sources();
    // Only sources we know a route back to are actionable this round.
    let routable: Vec<NodeId> = sources
        .into_iter()
        .filter(|&s| node.routes().route_to(s).is_some())
        .collect();
    let Some(&source) = rng.choose(&routable) else {
        return Vec::new();
    };
    let entries = lost.for_source(source, config.digest_max);
    if entries.is_empty() {
        return Vec::new();
    }
    let route = node
        .routes()
        .route_to(source)
        .expect("source was filtered for a known route");
    let (next, rest) = route
        .split_first()
        .expect("route_to never returns an empty route");
    vec![GossipAction::Forward {
        to: *next,
        msg: GossipMessage::SourcePull {
            gossiper: node.id(),
            source,
            lost: entries,
            route: rest.to_vec(),
        },
    }]
}

/// Handles an incoming publisher-bound digest: serve what the cache
/// holds, pass the remainder one hop further along the recorded route.
/// The route may be stale — if the next hop is no longer a neighbor
/// the harness drops the message, exactly as a real unicast would
/// fail.
pub(crate) fn handle_source_pull(
    node: &Dispatcher,
    gossiper: NodeId,
    source: NodeId,
    lost: Vec<LossRecord>,
    route: Vec<NodeId>,
) -> Vec<GossipAction> {
    let (found, remainder) = serve_from_cache(node, &lost);
    let mut actions = Vec::new();
    if !found.is_empty() {
        actions.push(GossipAction::Reply {
            to: gossiper,
            events: found,
        });
    }
    if !remainder.is_empty() {
        if let Some((next, rest)) = route.split_first() {
            actions.push(GossipAction::Forward {
                to: *next,
                msg: GossipMessage::SourcePull {
                    gossiper,
                    source,
                    lost: remainder,
                    route: rest.to_vec(),
                },
            });
        }
    }
    actions
}

/// The random-pull round body: a negative digest handed to a random
/// subset of neighbors with a hop budget, no routing intelligence.
pub(crate) fn random_round(
    lost: &mut LostBuffer,
    node: &Dispatcher,
    neighbors: &[NodeId],
    config: &GossipConfig,
    rng: &mut Rng,
) -> Vec<GossipAction> {
    if lost.is_empty() || neighbors.is_empty() {
        return Vec::new();
    }
    let entries = lost.any(config.digest_max);
    if entries.is_empty() {
        return Vec::new();
    }
    let msg = GossipMessage::RandomPull {
        gossiper: node.id(),
        lost: entries,
        ttl: config.random_ttl,
    };
    random_forward_targets(neighbors, None, config.p_forward, rng)
        .into_iter()
        .map(|to| GossipAction::Forward {
            to,
            msg: msg.clone(),
        })
        .collect()
}

/// Handles an incoming random-pull digest: serve, then forward the
/// remainder to random neighbors while the hop budget lasts.
#[allow(clippy::too_many_arguments)] // mirrors the wire message fields
pub(crate) fn handle_random_pull(
    node: &Dispatcher,
    config: &GossipConfig,
    from: NodeId,
    gossiper: NodeId,
    lost: Vec<LossRecord>,
    ttl: u32,
    neighbors: &[NodeId],
    rng: &mut Rng,
) -> Vec<GossipAction> {
    let (found, remainder) = serve_from_cache(node, &lost);
    let mut actions = Vec::new();
    if !found.is_empty() {
        actions.push(GossipAction::Reply {
            to: gossiper,
            events: found,
        });
    }
    if !remainder.is_empty() && ttl > 1 {
        let msg = GossipMessage::RandomPull {
            gossiper,
            lost: remainder,
            ttl: ttl - 1,
        };
        for to in random_forward_targets(neighbors, Some(from), config.p_forward, rng) {
            actions.push(GossipAction::Forward {
                to,
                msg: msg.clone(),
            });
        }
    }
    actions
}

/// Random forwarding ignores subscription tables entirely: every
/// neighbor except the arrival interface is kept with probability
/// `p_forward`; if the coin flips all come up empty, one random
/// neighbor is used so a round is never silently wasted.
fn random_forward_targets(
    neighbors: &[NodeId],
    from: Option<NodeId>,
    p_forward: f64,
    rng: &mut Rng,
) -> Vec<NodeId> {
    let candidates: Vec<NodeId> = neighbors
        .iter()
        .copied()
        .filter(|&n| Some(n) != from)
        .collect();
    if candidates.is_empty() {
        return Vec::new();
    }
    let picked: Vec<NodeId> = candidates
        .iter()
        .copied()
        .filter(|_| p_forward >= 1.0 || rng.random_bool(p_forward))
        .collect();
    if picked.is_empty() {
        vec![candidates[rng.random_range(0..candidates.len())]]
    } else {
        picked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eps_pubsub::{DispatcherConfig, EventId};
    use eps_sim::RngFactory;

    fn node_with_cached_event() -> (Dispatcher, Event) {
        let mut d = Dispatcher::new(NodeId::new(1), DispatcherConfig::default());
        d.subscribe_local(PatternId::new(1), &[]);
        let e = Event::new(
            EventId::new(NodeId::new(0), 0),
            vec![(PatternId::new(1), 4)],
        );
        d.on_event(e.clone(), Some(NodeId::new(0)));
        (d, e)
    }

    #[test]
    fn serve_from_cache_splits_found_and_missing() {
        let (d, e) = node_with_cached_event();
        let hit = LossRecord {
            source: NodeId::new(0),
            pattern: PatternId::new(1),
            seq: 4,
        };
        let miss = LossRecord {
            source: NodeId::new(0),
            pattern: PatternId::new(1),
            seq: 7,
        };
        let (found, remainder) = serve_from_cache(&d, &[hit, miss]);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].id(), e.id());
        assert_eq!(remainder, vec![miss]);
    }

    #[test]
    fn serve_from_cache_dedups_multi_pattern_events() {
        let mut d = Dispatcher::new(NodeId::new(1), DispatcherConfig::default());
        d.subscribe_local(PatternId::new(1), &[]);
        let e = Event::new(
            EventId::new(NodeId::new(0), 0),
            vec![(PatternId::new(1), 0), (PatternId::new(2), 0)],
        );
        d.on_event(e, Some(NodeId::new(0)));
        let records = [
            LossRecord {
                source: NodeId::new(0),
                pattern: PatternId::new(1),
                seq: 0,
            },
            LossRecord {
                source: NodeId::new(0),
                pattern: PatternId::new(2),
                seq: 0,
            },
        ];
        let (found, remainder) = serve_from_cache(&d, &records);
        assert_eq!(found.len(), 1, "same event must be sent once");
        assert!(remainder.is_empty());
    }

    #[test]
    fn pattern_targets_respect_probability_extremes() {
        let mut d = Dispatcher::new(NodeId::new(0), DispatcherConfig::default());
        let p = PatternId::new(1);
        d.on_subscribe(p, NodeId::new(1), &[]);
        d.on_subscribe(p, NodeId::new(2), &[]);
        let mut rng = RngFactory::new(1).stream("gossip");
        let all = pattern_forward_targets(&d, p, None, 1.0, &mut rng);
        assert_eq!(all.len(), 2);
        // Even at p_forward = 0 a digest keeps moving along one route.
        let min_one = pattern_forward_targets(&d, p, None, 0.0, &mut rng);
        assert_eq!(min_one.len(), 1);
        let excl = pattern_forward_targets(&d, p, Some(NodeId::new(1)), 1.0, &mut rng);
        assert_eq!(excl, vec![NodeId::new(2)]);
        // No candidates -> no targets, guarantee-one does not invent.
        let q = PatternId::new(9);
        assert!(pattern_forward_targets(&d, q, None, 1.0, &mut rng).is_empty());
    }

    #[test]
    fn random_targets_never_include_sender_and_never_empty() {
        let mut rng = RngFactory::new(2).stream("gossip");
        let nbrs = [NodeId::new(1), NodeId::new(2), NodeId::new(3)];
        for _ in 0..100 {
            let t = random_forward_targets(&nbrs, Some(NodeId::new(2)), 0.3, &mut rng);
            assert!(!t.is_empty());
            assert!(!t.contains(&NodeId::new(2)));
        }
    }

    #[test]
    fn subscriber_round_skips_when_nothing_lost() {
        let (d, _) = node_with_cached_event();
        let mut lost = LostBuffer::new(10);
        let mut rng = RngFactory::new(3).stream("gossip");
        let actions = subscriber_round(&mut lost, &d, &GossipConfig::default(), &mut rng);
        assert!(actions.is_empty());
    }

    #[test]
    fn handle_source_pull_short_circuits_when_served() {
        let (d, _) = node_with_cached_event();
        let rec = LossRecord {
            source: NodeId::new(0),
            pattern: PatternId::new(1),
            seq: 4,
        };
        let actions = handle_source_pull(
            &d,
            NodeId::new(9),
            NodeId::new(0),
            vec![rec],
            vec![NodeId::new(5)],
        );
        assert_eq!(actions.len(), 1);
        assert!(matches!(actions[0], GossipAction::Reply { .. }));
    }

    #[test]
    fn handle_source_pull_forwards_remainder_along_route() {
        let d = Dispatcher::new(NodeId::new(1), DispatcherConfig::default());
        let rec = LossRecord {
            source: NodeId::new(0),
            pattern: PatternId::new(1),
            seq: 4,
        };
        let actions = handle_source_pull(
            &d,
            NodeId::new(9),
            NodeId::new(0),
            vec![rec],
            vec![NodeId::new(5), NodeId::new(0)],
        );
        assert_eq!(actions.len(), 1);
        match &actions[0] {
            GossipAction::Forward { to, msg } => {
                assert_eq!(*to, NodeId::new(5));
                match msg {
                    GossipMessage::SourcePull { route, .. } => {
                        assert_eq!(route, &vec![NodeId::new(0)]);
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn random_pull_ttl_expires() {
        let d = Dispatcher::new(NodeId::new(1), DispatcherConfig::default());
        let rec = LossRecord {
            source: NodeId::new(0),
            pattern: PatternId::new(1),
            seq: 4,
        };
        let mut rng = RngFactory::new(4).stream("gossip");
        let actions = handle_random_pull(
            &d,
            &GossipConfig::default(),
            NodeId::new(2),
            NodeId::new(9),
            vec![rec],
            1,
            &[NodeId::new(2), NodeId::new(3)],
            &mut rng,
        );
        assert!(actions.is_empty(), "ttl=1 must not forward further");
    }
}
