//! The subscriber-based pull algorithm (paper, Section III-B).

use eps_overlay::NodeId;
use eps_pubsub::{Dispatcher, Event, LossRecord};
use eps_sim::Rng;

use crate::algorithm::{AlgorithmKind, RecoveryAlgorithm};
use crate::config::GossipConfig;
use crate::lost::LostBuffer;
use crate::message::{GossipAction, GossipMessage};
use crate::rounds::{handle_pull_digest, subscriber_round};

/// Reactive pull with negative digests steered towards *subscribers*.
///
/// Losses are detected from the per-(source, pattern) sequence numbers
/// in event identifiers and accumulate in the `Lost` buffer. Each
/// round the gossiper picks a pattern among its *locally issued*
/// subscriptions (unlike push — the goal is retrieving events relevant
/// to the gossiper, not disseminating knowledge), packs the matching
/// `Lost` entries in a digest, and routes it like a push digest.
/// Dispatchers along the way serve what their caches hold, replying
/// out-of-band.
#[derive(Clone, Debug)]
pub struct SubscriberPull {
    config: GossipConfig,
    lost: LostBuffer,
}

impl SubscriberPull {
    /// Creates a subscriber-pull instance.
    pub fn new(config: GossipConfig) -> Self {
        SubscriberPull {
            lost: LostBuffer::new(config.max_attempts),
            config,
        }
    }

    /// Read access to the `Lost` buffer (for tests and metrics).
    pub fn lost(&self) -> &LostBuffer {
        &self.lost
    }
}

impl RecoveryAlgorithm for SubscriberPull {
    fn kind(&self) -> AlgorithmKind {
        AlgorithmKind::SubscriberPull
    }

    fn on_round(
        &mut self,
        node: &Dispatcher,
        _neighbors: &[NodeId],
        rng: &mut Rng,
    ) -> Vec<GossipAction> {
        subscriber_round(&mut self.lost, node, &self.config, rng)
    }

    fn on_gossip(
        &mut self,
        node: &Dispatcher,
        from: NodeId,
        msg: GossipMessage,
        _neighbors: &[NodeId],
        rng: &mut Rng,
    ) -> Vec<GossipAction> {
        match msg {
            GossipMessage::PullDigest {
                gossiper,
                pattern,
                lost,
            } => handle_pull_digest(node, &self.config, from, gossiper, pattern, lost, rng),
            _ => Vec::new(),
        }
    }

    fn on_losses(&mut self, losses: &[LossRecord]) {
        for &record in losses {
            self.lost.add(record);
        }
    }

    fn on_event_received(&mut self, event: &Event) {
        self.lost.clear_for_event(event);
    }

    fn outstanding_losses(&self) -> usize {
        self.lost.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eps_pubsub::{DispatcherConfig, EventId, PatternId};
    use eps_sim::RngFactory;

    fn cfg() -> GossipConfig {
        GossipConfig {
            p_forward: 1.0,
            ..GossipConfig::default()
        }
    }

    fn record(source: u32, pattern: u16, seq: u64) -> LossRecord {
        LossRecord {
            source: NodeId::new(source),
            pattern: PatternId::new(pattern),
            seq,
        }
    }

    #[test]
    fn losses_accumulate_and_clear_on_arrival() {
        let mut algo = SubscriberPull::new(cfg());
        algo.on_losses(&[record(0, 1, 3), record(0, 1, 4)]);
        assert_eq!(algo.outstanding_losses(), 2);
        let e = Event::new(
            EventId::new(NodeId::new(0), 9),
            vec![(PatternId::new(1), 3)],
        );
        algo.on_event_received(&e);
        assert_eq!(algo.outstanding_losses(), 1);
    }

    #[test]
    fn round_targets_pattern_subscribers() {
        let mut node = Dispatcher::new(NodeId::new(0), DispatcherConfig::default());
        let p = PatternId::new(1);
        node.subscribe_local(p, &[]);
        node.on_subscribe(p, NodeId::new(2), &[]);
        let mut algo = SubscriberPull::new(cfg());
        algo.on_losses(&[record(7, 1, 0)]);
        let mut rng = RngFactory::new(1).stream("gossip");
        let actions = algo.on_round(&node, &[], &mut rng);
        assert_eq!(actions.len(), 1);
        match &actions[0] {
            GossipAction::Forward { to, msg } => {
                assert_eq!(*to, NodeId::new(2));
                match msg {
                    GossipMessage::PullDigest { pattern, lost, .. } => {
                        assert_eq!(*pattern, p);
                        assert_eq!(lost, &vec![record(7, 1, 0)]);
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn round_skips_when_nothing_lost() {
        let node = Dispatcher::new(NodeId::new(0), DispatcherConfig::default());
        let mut algo = SubscriberPull::new(cfg());
        let mut rng = RngFactory::new(1).stream("gossip");
        assert!(algo.on_round(&node, &[], &mut rng).is_empty());
    }

    #[test]
    fn receiver_serves_cached_events() {
        let mut node = Dispatcher::new(NodeId::new(1), DispatcherConfig::default());
        let p = PatternId::new(1);
        node.subscribe_local(p, &[]);
        let e = Event::new(EventId::new(NodeId::new(7), 0), vec![(p, 0)]);
        node.on_event(e.clone(), Some(NodeId::new(0)));
        let mut algo = SubscriberPull::new(cfg());
        let mut rng = RngFactory::new(1).stream("gossip");
        let msg = GossipMessage::PullDigest {
            gossiper: NodeId::new(9),
            pattern: p,
            lost: vec![record(7, 1, 0)],
        };
        let actions = algo.on_gossip(&node, NodeId::new(0), msg, &[], &mut rng);
        assert_eq!(actions.len(), 1);
        match &actions[0] {
            GossipAction::Reply { to, events } => {
                assert_eq!(*to, NodeId::new(9));
                assert_eq!(events[0].id(), e.id());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unserved_digest_is_forwarded() {
        let mut node = Dispatcher::new(NodeId::new(1), DispatcherConfig::default());
        let p = PatternId::new(1);
        node.on_subscribe(p, NodeId::new(2), &[]);
        let mut algo = SubscriberPull::new(cfg());
        let mut rng = RngFactory::new(1).stream("gossip");
        let msg = GossipMessage::PullDigest {
            gossiper: NodeId::new(9),
            pattern: p,
            lost: vec![record(7, 1, 0)],
        };
        let actions = algo.on_gossip(&node, NodeId::new(3), msg, &[], &mut rng);
        assert_eq!(actions.len(), 1);
        assert!(matches!(
            actions[0],
            GossipAction::Forward { to, .. } if to == NodeId::new(2)
        ));
    }

    #[test]
    fn foreign_message_kinds_are_ignored() {
        let node = Dispatcher::new(NodeId::new(1), DispatcherConfig::default());
        let mut algo = SubscriberPull::new(cfg());
        let mut rng = RngFactory::new(1).stream("gossip");
        let msg = GossipMessage::PushDigest {
            gossiper: NodeId::new(9),
            pattern: PatternId::new(1),
            ids: std::sync::Arc::new(vec![]),
        };
        assert!(algo
            .on_gossip(&node, NodeId::new(3), msg, &[], &mut rng)
            .is_empty());
    }
}
