//! Gossip wire messages and the actions algorithms emit.

use std::sync::Arc;

use eps_overlay::NodeId;
use eps_pubsub::{Event, EventId, LossRecord, PatternId};

/// A gossip message travelling the dispatching tree.
///
/// The paper assumes gossip messages have (at most) the same size as
/// event messages; [`crate::Envelope::wire_bits`] reflects that.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum GossipMessage {
    /// Push: a positive digest of cached events matching `pattern`,
    /// routed like an event matching `pattern` and forwarded to a
    /// random subset of matching neighbors.
    PushDigest {
        /// The dispatcher that started the round; requests go straight
        /// back to it out-of-band.
        gossiper: NodeId,
        /// The pattern the digest (and its routing) is labelled with.
        pattern: PatternId,
        /// Identifiers of *all* the gossiper's cached events matching
        /// `pattern` (shared, since the digest is forwarded unchanged
        /// along the tree).
        ids: Arc<Vec<EventId>>,
    },
    /// Subscriber-based pull: a negative digest labelled with a
    /// locally subscribed pattern, routed like a push digest.
    PullDigest {
        /// The dispatcher missing the events.
        gossiper: NodeId,
        /// The locally subscribed pattern the round is about.
        pattern: PatternId,
        /// The missing events, identified by (source, pattern, seq).
        lost: Vec<LossRecord>,
    },
    /// Publisher-based pull: a negative digest steered back towards
    /// the publisher along a recorded route.
    SourcePull {
        /// The dispatcher missing the events.
        gossiper: NodeId,
        /// The publisher the digest is steered towards.
        source: NodeId,
        /// The missing events from that publisher.
        lost: Vec<LossRecord>,
        /// Remaining hops to traverse (next hop first).
        route: Vec<NodeId>,
    },
    /// Random pull: a negative digest forwarded to random neighbors
    /// with a hop budget, the paper's "is routing worth it?" baseline.
    RandomPull {
        /// The dispatcher missing the events.
        gossiper: NodeId,
        /// The missing events.
        lost: Vec<LossRecord>,
        /// Remaining hop budget.
        ttl: u32,
    },
}

impl GossipMessage {
    /// The dispatcher that initiated this gossip round.
    pub fn gossiper(&self) -> NodeId {
        match *self {
            GossipMessage::PushDigest { gossiper, .. }
            | GossipMessage::PullDigest { gossiper, .. }
            | GossipMessage::SourcePull { gossiper, .. }
            | GossipMessage::RandomPull { gossiper, .. } => gossiper,
        }
    }
}

/// What a recovery algorithm wants done, interpreted by the harness.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum GossipAction {
    /// Send a gossip message to a tree neighbor (travels on the
    /// overlay link, subject to its loss and queueing).
    Forward {
        /// The neighboring dispatcher to hand the message to.
        to: NodeId,
        /// The message.
        msg: GossipMessage,
    },
    /// Ask `to`, out-of-band, for copies of the identified events
    /// (reaction to a positive push digest).
    Request {
        /// The dispatcher believed to hold the events (the gossiper).
        to: NodeId,
        /// The events to retransmit.
        ids: Vec<EventId>,
    },
    /// Send copies of cached events to `to` out-of-band (reaction to a
    /// negative digest or to a [`GossipAction::Request`]).
    Reply {
        /// The dispatcher that is missing the events.
        to: NodeId,
        /// The event copies.
        events: Vec<Event>,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gossiper_is_exposed_for_all_kinds() {
        let g = NodeId::new(3);
        let msgs = [
            GossipMessage::PushDigest {
                gossiper: g,
                pattern: PatternId::new(0),
                ids: Arc::new(vec![]),
            },
            GossipMessage::PullDigest {
                gossiper: g,
                pattern: PatternId::new(0),
                lost: vec![],
            },
            GossipMessage::SourcePull {
                gossiper: g,
                source: NodeId::new(1),
                lost: vec![],
                route: vec![],
            },
            GossipMessage::RandomPull {
                gossiper: g,
                lost: vec![],
                ttl: 3,
            },
        ];
        assert!(msgs.iter().all(|m| m.gossiper() == g));
    }
}
