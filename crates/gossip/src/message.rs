//! Gossip wire messages and the actions algorithms emit.

use std::sync::Arc;

use eps_overlay::NodeId;
use eps_pubsub::{Event, EventId, LossRecord, PatternId, RangeDetail, RangeRef, RangeSummary};

/// A gossip message travelling the dispatching tree.
///
/// The paper assumes gossip messages have (at most) the same size as
/// event messages; [`crate::Envelope::wire_bits`] reflects that.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum GossipMessage {
    /// Push: a positive digest of cached events matching `pattern`,
    /// routed like an event matching `pattern` and forwarded to a
    /// random subset of matching neighbors.
    PushDigest {
        /// The dispatcher that started the round; requests go straight
        /// back to it out-of-band.
        gossiper: NodeId,
        /// The pattern the digest (and its routing) is labelled with.
        pattern: PatternId,
        /// Identifiers of *all* the gossiper's cached events matching
        /// `pattern` (shared, since the digest is forwarded unchanged
        /// along the tree).
        ids: Arc<Vec<EventId>>,
    },
    /// Subscriber-based pull: a negative digest labelled with a
    /// locally subscribed pattern, routed like a push digest.
    PullDigest {
        /// The dispatcher missing the events.
        gossiper: NodeId,
        /// The locally subscribed pattern the round is about.
        pattern: PatternId,
        /// The missing events, identified by (source, pattern, seq).
        lost: Vec<LossRecord>,
    },
    /// Publisher-based pull: a negative digest steered back towards
    /// the publisher along a recorded route.
    SourcePull {
        /// The dispatcher missing the events.
        gossiper: NodeId,
        /// The publisher the digest is steered towards.
        source: NodeId,
        /// The missing events from that publisher.
        lost: Vec<LossRecord>,
        /// Remaining hops to traverse (next hop first).
        route: Vec<NodeId>,
    },
    /// Random pull: a negative digest forwarded to random neighbors
    /// with a hop budget, the paper's "is routing worth it?" baseline.
    RandomPull {
        /// The dispatcher missing the events.
        gossiper: NodeId,
        /// The missing events.
        lost: Vec<LossRecord>,
        /// Remaining hop budget.
        ttl: u32,
    },
    /// Summary reconciliation: hash-range tree aggregates of the
    /// gossiper's cache for `pattern`, instead of a linear id list.
    /// Routed and forwarded exactly like a push digest; receivers
    /// compare each range against their own tree and ask the gossiper
    /// (out-of-band, via [`crate::Envelope::RangeRequest`]) to refine
    /// the ones that differ — the refinement arrives in the gossiper's
    /// *next* round, so a mismatch narrows across successive rounds
    /// rather than assuming a synchronous RPC.
    SummaryDigest {
        /// The dispatcher that started the round.
        gossiper: NodeId,
        /// The pattern the digest (and its routing) is labelled with.
        pattern: PatternId,
        /// Compact range aggregates (always at least the root; plus
        /// the children of any ranges peers asked to refine). Shared,
        /// since the digest is forwarded unchanged along the tree.
        ranges: Arc<Vec<RangeSummary>>,
        /// Fully expanded ranges: complete id lists for ranges small
        /// enough that listing beats recursion — including empty
        /// lists, which tell pull-mode receivers the gossiper holds
        /// nothing there.
        details: Arc<Vec<RangeDetail>>,
    },
}

impl GossipMessage {
    /// The dispatcher that initiated this gossip round.
    pub fn gossiper(&self) -> NodeId {
        match *self {
            GossipMessage::PushDigest { gossiper, .. }
            | GossipMessage::PullDigest { gossiper, .. }
            | GossipMessage::SourcePull { gossiper, .. }
            | GossipMessage::RandomPull { gossiper, .. }
            | GossipMessage::SummaryDigest { gossiper, .. } => gossiper,
        }
    }
}

/// What a recovery algorithm wants done, interpreted by the harness.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum GossipAction {
    /// Send a gossip message to a tree neighbor (travels on the
    /// overlay link, subject to its loss and queueing).
    Forward {
        /// The neighboring dispatcher to hand the message to.
        to: NodeId,
        /// The message.
        msg: GossipMessage,
    },
    /// Ask `to`, out-of-band, for copies of the identified events
    /// (reaction to a positive push digest).
    Request {
        /// The dispatcher believed to hold the events (the gossiper).
        to: NodeId,
        /// The events to retransmit.
        ids: Vec<EventId>,
    },
    /// Send copies of cached events to `to` out-of-band (reaction to a
    /// negative digest or to a [`GossipAction::Request`]).
    Reply {
        /// The dispatcher that is missing the events.
        to: NodeId,
        /// The event copies.
        events: Vec<Event>,
    },
    /// Ask the gossiper, out-of-band, to refine the given summary
    /// ranges in its next round (reaction to a mismatching
    /// [`GossipMessage::SummaryDigest`] aggregate).
    RequestDetail {
        /// The gossiper whose summary disagreed.
        to: NodeId,
        /// The pattern the summary was about.
        pattern: PatternId,
        /// The ranges to expand.
        ranges: Vec<RangeRef>,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gossiper_is_exposed_for_all_kinds() {
        let g = NodeId::new(3);
        let msgs = [
            GossipMessage::PushDigest {
                gossiper: g,
                pattern: PatternId::new(0),
                ids: Arc::new(vec![]),
            },
            GossipMessage::PullDigest {
                gossiper: g,
                pattern: PatternId::new(0),
                lost: vec![],
            },
            GossipMessage::SourcePull {
                gossiper: g,
                source: NodeId::new(1),
                lost: vec![],
                route: vec![],
            },
            GossipMessage::RandomPull {
                gossiper: g,
                lost: vec![],
                ttl: 3,
            },
            GossipMessage::SummaryDigest {
                gossiper: g,
                pattern: PatternId::new(0),
                ranges: Arc::new(vec![]),
                details: Arc::new(vec![]),
            },
        ];
        assert!(msgs.iter().all(|m| m.gossiper() == g));
    }
}
