//! The random pull comparator (paper, Section IV): negative digests
//! "where routing of gossip messages is performed entirely at random",
//! used to test whether directed gossip routing is worth the effort.

use eps_overlay::NodeId;
use eps_pubsub::{Dispatcher, Event, LossRecord};
use eps_sim::Rng;

use crate::algorithm::{AlgorithmKind, RecoveryAlgorithm};
use crate::config::GossipConfig;
use crate::lost::LostBuffer;
use crate::message::{GossipAction, GossipMessage};
use crate::rounds::{handle_random_pull, random_round};

/// Random pull: loss detection and negative digests exactly as in the
/// directed pull variants, but digests hop to random neighbors with a
/// TTL budget, ignoring subscription tables and recorded routes.
#[derive(Clone, Debug)]
pub struct RandomPull {
    config: GossipConfig,
    lost: LostBuffer,
}

impl RandomPull {
    /// Creates a random-pull instance.
    pub fn new(config: GossipConfig) -> Self {
        RandomPull {
            lost: LostBuffer::new(config.max_attempts),
            config,
        }
    }

    /// Read access to the `Lost` buffer (for tests and metrics).
    pub fn lost(&self) -> &LostBuffer {
        &self.lost
    }
}

impl RecoveryAlgorithm for RandomPull {
    fn kind(&self) -> AlgorithmKind {
        AlgorithmKind::RandomPull
    }

    fn on_round(
        &mut self,
        node: &Dispatcher,
        neighbors: &[NodeId],
        rng: &mut Rng,
    ) -> Vec<GossipAction> {
        random_round(&mut self.lost, node, neighbors, &self.config, rng)
    }

    fn on_gossip(
        &mut self,
        node: &Dispatcher,
        from: NodeId,
        msg: GossipMessage,
        neighbors: &[NodeId],
        rng: &mut Rng,
    ) -> Vec<GossipAction> {
        match msg {
            GossipMessage::RandomPull {
                gossiper,
                lost,
                ttl,
            } => handle_random_pull(
                node,
                &self.config,
                from,
                gossiper,
                lost,
                ttl,
                neighbors,
                rng,
            ),
            _ => Vec::new(),
        }
    }

    fn on_losses(&mut self, losses: &[LossRecord]) {
        for &record in losses {
            self.lost.add(record);
        }
    }

    fn on_event_received(&mut self, event: &Event) {
        self.lost.clear_for_event(event);
    }

    fn outstanding_losses(&self) -> usize {
        self.lost.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eps_pubsub::{DispatcherConfig, EventId, PatternId};
    use eps_sim::RngFactory;

    fn record(source: u32, pattern: u16, seq: u64) -> LossRecord {
        LossRecord {
            source: NodeId::new(source),
            pattern: PatternId::new(pattern),
            seq,
        }
    }

    #[test]
    fn round_sends_to_random_neighbors_with_full_lost_set() {
        let node = Dispatcher::new(NodeId::new(0), DispatcherConfig::default());
        let mut algo = RandomPull::new(GossipConfig {
            p_forward: 1.0,
            ..GossipConfig::default()
        });
        algo.on_losses(&[record(1, 1, 0), record(2, 3, 4)]);
        let mut rng = RngFactory::new(1).stream("gossip");
        let nbrs = [NodeId::new(1), NodeId::new(2)];
        let actions = algo.on_round(&node, &nbrs, &mut rng);
        assert_eq!(actions.len(), 2);
        for action in &actions {
            match action {
                GossipAction::Forward { msg, .. } => match msg {
                    GossipMessage::RandomPull { lost, ttl, .. } => {
                        assert_eq!(lost.len(), 2);
                        assert_eq!(*ttl, GossipConfig::default().random_ttl);
                    }
                    other => panic!("unexpected {other:?}"),
                },
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn round_skips_with_no_losses_or_no_neighbors() {
        let node = Dispatcher::new(NodeId::new(0), DispatcherConfig::default());
        let mut algo = RandomPull::new(GossipConfig::default());
        let mut rng = RngFactory::new(1).stream("gossip");
        assert!(algo.on_round(&node, &[NodeId::new(1)], &mut rng).is_empty());
        algo.on_losses(&[record(1, 1, 0)]);
        assert!(algo.on_round(&node, &[], &mut rng).is_empty());
    }

    #[test]
    fn served_entries_are_not_forwarded() {
        let mut node = Dispatcher::new(NodeId::new(1), DispatcherConfig::default());
        node.subscribe_local(PatternId::new(1), &[]);
        let e = eps_pubsub::Event::new(
            EventId::new(NodeId::new(7), 0),
            vec![(PatternId::new(1), 0)],
        );
        node.on_event(e, Some(NodeId::new(0)));
        let mut algo = RandomPull::new(GossipConfig {
            p_forward: 1.0,
            ..GossipConfig::default()
        });
        let mut rng = RngFactory::new(1).stream("gossip");
        let msg = GossipMessage::RandomPull {
            gossiper: NodeId::new(9),
            lost: vec![record(7, 1, 0)],
            ttl: 5,
        };
        let actions = algo.on_gossip(
            &node,
            NodeId::new(0),
            msg,
            &[NodeId::new(0), NodeId::new(2)],
            &mut rng,
        );
        // Everything was served: only a reply, no forwarding.
        assert_eq!(actions.len(), 1);
        assert!(matches!(actions[0], GossipAction::Reply { .. }));
    }

    #[test]
    fn unserved_entries_keep_walking_until_ttl() {
        let node = Dispatcher::new(NodeId::new(1), DispatcherConfig::default());
        let mut algo = RandomPull::new(GossipConfig {
            p_forward: 1.0,
            ..GossipConfig::default()
        });
        let mut rng = RngFactory::new(1).stream("gossip");
        let msg = GossipMessage::RandomPull {
            gossiper: NodeId::new(9),
            lost: vec![record(7, 1, 0)],
            ttl: 3,
        };
        let actions = algo.on_gossip(
            &node,
            NodeId::new(0),
            msg,
            &[NodeId::new(0), NodeId::new(2)],
            &mut rng,
        );
        assert_eq!(actions.len(), 1);
        match &actions[0] {
            GossipAction::Forward { to, msg } => {
                assert_eq!(*to, NodeId::new(2), "never bounce back to the sender");
                assert!(matches!(msg, GossipMessage::RandomPull { ttl: 2, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
