//! Two-node summary-reconciliation model: engine-driven symmetric
//! rounds between randomly diverged caches, checked against a
//! `BTreeSet` set-difference reference.
//!
//! This is the offline twin of
//! `extras/tests/summary_reconciliation_proptests.rs` — same pump,
//! same properties, pinned seeds instead of proptest strategies, so
//! the invariants run in the no-network workspace test pass.
//!
//! Properties:
//!
//! 1. For every steering a summary digest composes with (pattern,
//!    mux-over-source-and-pattern), two diverged caches converge to
//!    exactly their union within the predicted round bound and then go
//!    quiet.
//! 2. Under eviction churn mid-reconciliation, exact equality is out
//!    of reach by design (the `has_seen` filter never refetches an
//!    evicted id), but no *unseen* deficit survives: every id live in
//!    one cache ends up seen by the other.
//! 3. Random steering is inert for summary digests (they are
//!    pattern-labelled only) — composition is safe, never a panic.

use std::collections::BTreeSet;
use std::sync::Arc;

use eps_gossip::{
    GossipAction, GossipConfig, GossipEngine, GossipMessage, MuxSteering, PatternSteering,
    RandomSteering, RecoveryAlgorithm, SourceSteering, SummaryDigestPolicy,
};
use eps_overlay::NodeId;
use eps_pubsub::summary::LEVEL_COUNT;
use eps_pubsub::{Dispatcher, DispatcherConfig, Event, EventId, PatternId, RangeRef};
use eps_sim::Rng;

/// Every event in these tests comes from one publisher stream, so
/// per-(source, pattern) sequence numbers stay monotonic per node.
const SOURCE: u32 = 7;

fn pattern() -> PatternId {
    PatternId::new(1)
}

/// One side of the reconciliation: a dispatcher plus its boxed
/// recovery engine, exactly the pairing the harness runs.
struct Peer {
    node: Dispatcher,
    algo: Box<dyn RecoveryAlgorithm>,
}

/// A dispatcher subscribed to the test pattern both locally and on
/// behalf of its peer, so pattern steering always has a route.
fn peer(id: u32, peer_id: u32, capacity: usize, algo: Box<dyn RecoveryAlgorithm>) -> Peer {
    let mut node = Dispatcher::new(
        NodeId::new(id),
        DispatcherConfig {
            cache_capacity: capacity,
            summary_index: true,
            ..DispatcherConfig::default()
        },
    );
    node.subscribe_local(pattern(), &[]);
    node.on_subscribe(pattern(), NodeId::new(peer_id), &[]);
    Peer { node, algo }
}

/// The engine composition under test: a summary digest (push or pull
/// deficit direction) over pattern steering, optionally behind the
/// combined-pull style mux (whose source arm has no candidates for a
/// summary digest and falls back to the pattern arm every round).
fn summary_engine(pull: bool, mux: bool) -> Box<dyn RecoveryAlgorithm> {
    let config = GossipConfig::default();
    let digest = if pull {
        SummaryDigestPolicy::pull(&config)
    } else {
        SummaryDigestPolicy::push(&config)
    };
    if mux {
        Box::new(GossipEngine::new(
            "summary-mux",
            config,
            digest,
            MuxSteering::new(SourceSteering::default(), PatternSteering::default()),
        ))
    } else {
        Box::new(GossipEngine::new(
            "summary",
            config,
            digest,
            PatternSteering::default(),
        ))
    }
}

/// Feeds `seqs` (ascending) as tree deliveries; what one peer receives
/// and the other does not is the divergence under reconciliation.
fn feed(node: &mut Dispatcher, seqs: impl IntoIterator<Item = u64>) {
    for seq in seqs {
        let event = Event::new(
            EventId::new(NodeId::new(SOURCE), seq),
            vec![(pattern(), seq)],
        );
        node.on_event(event, Some(NodeId::new(99)));
    }
}

/// The cache's resident id set for the test pattern, read through the
/// summary index (which the eviction path must keep in sync).
fn live_ids(node: &Dispatcher) -> BTreeSet<EventId> {
    node.cache()
        .summary_index()
        .ids_in(pattern(), RangeRef::ROOT)
        .into_iter()
        .collect()
}

/// Applies `actions` (emitted by `src`'s engine, all addressed to
/// `dst` in a two-node world) and recurses into the reactions they
/// trigger. Returns the number of reconciliation actions that flowed —
/// digest forwards are free-running and do not count, so a zero return
/// means the round found no divergence to work on.
fn apply(src: &mut Peer, dst: &mut Peer, actions: Vec<GossipAction>, rng: &mut Rng) -> usize {
    let mut work = 0;
    for action in actions {
        match action {
            GossipAction::Forward { to, msg } => {
                assert_eq!(to, dst.node.id(), "two-node world");
                let from = src.node.id();
                let reactions = dst.algo.on_gossip(&dst.node, from, msg, &[from], rng);
                work += apply(dst, src, reactions, rng);
            }
            GossipAction::RequestDetail {
                to,
                pattern: p,
                ranges,
            } => {
                assert_eq!(to, dst.node.id(), "two-node world");
                dst.algo.on_range_request(src.node.id(), p, &ranges);
                work += 1;
            }
            GossipAction::Request { to, ids } => {
                assert_eq!(to, dst.node.id(), "two-node world");
                let from = src.node.id();
                let replies = dst.algo.on_request(&dst.node, from, &ids);
                work += 1 + apply(dst, src, replies, rng);
            }
            GossipAction::Reply { to, events } => {
                assert_eq!(to, dst.node.id(), "two-node world");
                for event in events {
                    dst.node.on_recovered_event(event.clone());
                    dst.algo.on_event_received(&event);
                }
                work += 1;
            }
        }
    }
    work
}

/// The predicted convergence bound for symmetric two-node summary
/// reconciliation: each direction surfaces the root mismatch and
/// narrows it by one tree level per round (`2 * LEVEL_COUNT`), moves
/// `delta` differing ids through `digest_max`-bounded digest entries
/// (each expansion consumes entry budget, hence the `digest_max - 1`
/// denominator), and drains its refinement queue with a little slack.
fn round_bound(delta: usize, digest_max: usize) -> usize {
    2 * LEVEL_COUNT + 2 * (LEVEL_COUNT * delta / (digest_max - 1) + 1) + 10
}

/// Runs symmetric rounds (A gossips to B, then B to A) until a round
/// moves nothing and the caches agree; returns the rounds used, or
/// `None` if `max_rounds` was not enough.
fn reconcile(a: &mut Peer, b: &mut Peer, rng: &mut Rng, max_rounds: usize) -> Option<usize> {
    for round in 1..=max_rounds {
        let opening = a.algo.on_round(&a.node, &[b.node.id()], rng);
        let mut work = apply(a, b, opening, rng);
        let reply_round = b.algo.on_round(&b.node, &[a.node.id()], rng);
        work += apply(b, a, reply_round, rng);
        if work == 0 && live_ids(&a.node) == live_ids(&b.node) {
            return Some(round);
        }
    }
    None
}

/// A seq subset drawn by independent coin flips — the random
/// divergence the reconciliation has to find.
fn subset(universe: u64, p: f64, rng: &mut Rng) -> Vec<u64> {
    (0..universe).filter(|_| rng.random_bool(p)).collect()
}

#[test]
fn diverged_caches_converge_to_union_for_every_steering() {
    for seed in [1u64, 2, 42] {
        for pull in [false, true] {
            for mux in [false, true] {
                let mut draws = Rng::from_seed(seed);
                let in_a = subset(200, 0.7, &mut draws);
                let in_b = subset(200, 0.7, &mut draws);

                // The BTreeSet reference the caches must converge to.
                let sa: BTreeSet<u64> = in_a.iter().copied().collect();
                let sb: BTreeSet<u64> = in_b.iter().copied().collect();
                let union: BTreeSet<EventId> = sa
                    .union(&sb)
                    .map(|&seq| EventId::new(NodeId::new(SOURCE), seq))
                    .collect();
                let delta = sa.symmetric_difference(&sb).count();

                let mut a = peer(0, 1, 1500, summary_engine(pull, mux));
                let mut b = peer(1, 0, 1500, summary_engine(pull, mux));
                feed(&mut a.node, in_a.iter().copied());
                feed(&mut b.node, in_b.iter().copied());

                let bound = round_bound(delta, GossipConfig::default().digest_max);
                let mut rng = Rng::from_seed(seed ^ 0x5eed);
                let rounds = reconcile(&mut a, &mut b, &mut rng, bound);
                let label = format!("seed={seed} pull={pull} mux={mux} delta={delta}");
                assert!(rounds.is_some(), "no convergence within {bound}: {label}");
                assert_eq!(live_ids(&a.node), union, "{label}");
                assert_eq!(live_ids(&b.node), union, "{label}");
                assert_eq!(
                    a.node.cache().summary_index().root(pattern()),
                    b.node.cache().summary_index().root(pattern()),
                    "{label}"
                );
            }
        }
    }
}

#[test]
fn eviction_churn_leaves_no_unseen_deficits() {
    // Capacity far below the universe: the initial feeds already
    // evict, and fresh publications mid-reconciliation keep churning.
    // `has_seen` never refetches an evicted id, so exact equality is
    // unreachable by design; the property that must survive is that
    // every id still live on one side has been *seen* by the other.
    const CAPACITY: usize = 64;
    for seed in [3u64, 8, 21] {
        for pull in [false, true] {
            let mut draws = Rng::from_seed(seed);
            let in_a = subset(96, 0.8, &mut draws);
            let in_b = subset(96, 0.8, &mut draws);

            let mut a = peer(0, 1, CAPACITY, summary_engine(pull, false));
            let mut b = peer(1, 0, CAPACITY, summary_engine(pull, false));
            feed(&mut a.node, in_a);
            feed(&mut b.node, in_b);

            let mut rng = Rng::from_seed(seed ^ 0x5eed);
            // A few rounds into the reconciliation, new events land on
            // each side (fresh streams, so they are pure divergence).
            reconcile(&mut a, &mut b, &mut rng, 4);
            feed(&mut a.node, 1_000..1_016);
            feed(&mut b.node, 2_000..2_012);

            // Eviction tombstones keep pull from re-serving surplus a
            // peer has already seen, but ids evicted before the other
            // side ever saw them leave a permanent seen-set divergence
            // that keeps refinement traffic alive — so run to the
            // bound and check coverage rather than quiescence.
            let bound = round_bound(128, GossipConfig::default().digest_max);
            for _ in 0..bound {
                let opening = a.algo.on_round(&a.node, &[b.node.id()], &mut rng);
                apply(&mut a, &mut b, opening, &mut rng);
                let reply_round = b.algo.on_round(&b.node, &[a.node.id()], &mut rng);
                apply(&mut b, &mut a, reply_round, &mut rng);
            }

            let label = format!("seed={seed} pull={pull}");
            for &id in &live_ids(&a.node) {
                assert!(b.node.has_seen(id), "unseen deficit at b: {id:?} ({label})");
            }
            for &id in &live_ids(&b.node) {
                assert!(a.node.has_seen(id), "unseen deficit at a: {id:?} ({label})");
            }
        }
    }
}

#[test]
fn pull_goes_quiet_once_evicted_surplus_is_seen() {
    // A consumed every event but its small cache evicted two thirds of
    // them; B holds all of them live. Before eviction tombstones, A's
    // pull rounds announced only the live residue, so B proved a
    // "deficit" and re-served the evicted surplus every round forever
    // (A's `has_seen` filter discarded each copy on arrival). With the
    // seen view — live cache plus tombstones — both sides' aggregates
    // agree, and a window of symmetric rounds must move nothing at
    // all: no replies, no requests, no refinement traffic.
    let mut a = peer(0, 1, 32, summary_engine(true, false));
    let mut b = peer(1, 0, 1500, summary_engine(true, false));
    feed(&mut a.node, 0..96);
    feed(&mut b.node, 0..96);
    assert_eq!(
        a.node.cache().evicted_total(),
        64,
        "the small cache churned"
    );
    assert_eq!(a.node.cache().tombstoned(pattern()), 64);

    let mut rng = Rng::from_seed(31);
    for round in 0..12 {
        let opening = a.algo.on_round(&a.node, &[b.node.id()], &mut rng);
        let work = apply(&mut a, &mut b, opening, &mut rng);
        let reply_round = b.algo.on_round(&b.node, &[a.node.id()], &mut rng);
        let reply_work = apply(&mut b, &mut a, reply_round, &mut rng);
        assert_eq!(
            work + reply_work,
            0,
            "round {round} re-served evicted surplus"
        );
    }
}

#[test]
fn random_steering_is_inert_for_summary_digests() {
    // Summary digests are pattern-labelled only: random steering's
    // build_any finds nothing to send and its absorb path rejects the
    // wire form, so the composition is a safe no-op, never a panic.
    let config = GossipConfig::default();
    let mut a = peer(
        0,
        1,
        1500,
        Box::new(GossipEngine::new(
            "summary-random",
            config,
            SummaryDigestPolicy::push(&config),
            RandomSteering,
        )),
    );
    feed(&mut a.node, 0..50);
    let mut rng = Rng::from_seed(9);
    for _ in 0..5 {
        let actions = a.algo.on_round(&a.node, &[NodeId::new(1)], &mut rng);
        assert!(actions.is_empty(), "random steering sent a summary digest");
    }
    // An incoming summary digest is foreign to random steering too.
    let index = a.node.cache().summary_index();
    let msg = GossipMessage::SummaryDigest {
        gossiper: NodeId::new(1),
        pattern: pattern(),
        ranges: Arc::new(vec![index.root(pattern())]),
        details: Arc::new(vec![]),
    };
    let from = NodeId::new(1);
    let reactions = a.algo.on_gossip(&a.node, from, msg, &[from], &mut rng);
    assert!(reactions.is_empty(), "random steering absorbed a summary");
    assert_eq!(a.algo.outstanding_losses(), 0);
}
