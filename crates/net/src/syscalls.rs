//! Raw Linux syscall shims for the reactor: `epoll`, `timerfd`,
//! `eventfd`, and nonblocking `connect` — without the libc crate,
//! mirroring the repo's zero-dependency RNG/codec stance.
//!
//! This is the only module in the workspace allowed to use `unsafe`:
//! each shim is a thin `core::arch::asm!` syscall wrapper plus the
//! `#[repr(C)]` argument structs the kernel ABI wants, immediately
//! converted into safe `io::Result` values and RAII fd owners. The
//! reactor above is entirely safe code.
//!
//! Supported targets: `x86_64-linux` and `aarch64-linux`. Elsewhere
//! every entry point returns `ENOSYS`-style errors at runtime (the
//! thread runtime remains available), so the crate still compiles.
#![allow(unsafe_code)]

use std::io;
use std::net::{SocketAddr, TcpStream};
use std::os::fd::RawFd;
use std::time::Duration;

// ---- the syscall instruction --------------------------------------

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod sys {
    pub const READ: usize = 0;
    pub const WRITE: usize = 1;
    pub const CLOSE: usize = 3;
    pub const SOCKET: usize = 41;
    pub const CONNECT: usize = 42;
    pub const GETSOCKOPT: usize = 55;
    pub const EPOLL_CTL: usize = 233;
    pub const EPOLL_PWAIT: usize = 281;
    pub const TIMERFD_CREATE: usize = 283;
    pub const TIMERFD_SETTIME: usize = 286;
    pub const EVENTFD2: usize = 290;
    pub const EPOLL_CREATE1: usize = 291;

    /// Invokes a raw syscall; returns the kernel's raw result
    /// (negative errno on failure).
    ///
    /// # Safety
    ///
    /// The caller must pass arguments valid for syscall `n` — pointers
    /// must be live and correctly sized for the kernel to read/write.
    pub unsafe fn syscall6(
        n: usize,
        a0: usize,
        a1: usize,
        a2: usize,
        a3: usize,
        a4: usize,
        a5: usize,
    ) -> isize {
        let ret: isize;
        core::arch::asm!(
            "syscall",
            inlateout("rax") n as isize => ret,
            in("rdi") a0,
            in("rsi") a1,
            in("rdx") a2,
            in("r10") a3,
            in("r8") a4,
            in("r9") a5,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        ret
    }
}

#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
mod sys {
    pub const READ: usize = 63;
    pub const WRITE: usize = 64;
    pub const CLOSE: usize = 57;
    pub const SOCKET: usize = 198;
    pub const CONNECT: usize = 203;
    pub const GETSOCKOPT: usize = 209;
    pub const EPOLL_CTL: usize = 21;
    pub const EPOLL_PWAIT: usize = 22;
    pub const TIMERFD_CREATE: usize = 85;
    pub const TIMERFD_SETTIME: usize = 86;
    pub const EVENTFD2: usize = 19;
    pub const EPOLL_CREATE1: usize = 20;

    /// See the x86_64 twin.
    ///
    /// # Safety
    ///
    /// The caller must pass arguments valid for syscall `n`.
    pub unsafe fn syscall6(
        n: usize,
        a0: usize,
        a1: usize,
        a2: usize,
        a3: usize,
        a4: usize,
        a5: usize,
    ) -> isize {
        let ret: isize;
        core::arch::asm!(
            "svc 0",
            in("x8") n,
            inlateout("x0") a0 => ret,
            in("x1") a1,
            in("x2") a2,
            in("x3") a3,
            in("x4") a4,
            in("x5") a5,
            options(nostack),
        );
        ret
    }
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
mod sys {
    pub const READ: usize = 0;
    pub const WRITE: usize = 0;
    pub const CLOSE: usize = 0;
    pub const SOCKET: usize = 0;
    pub const CONNECT: usize = 0;
    pub const GETSOCKOPT: usize = 0;
    pub const EPOLL_CTL: usize = 0;
    pub const EPOLL_PWAIT: usize = 0;
    pub const TIMERFD_CREATE: usize = 0;
    pub const TIMERFD_SETTIME: usize = 0;
    pub const EVENTFD2: usize = 0;
    pub const EPOLL_CREATE1: usize = 0;

    /// Unsupported target: every call reports `ENOSYS` so the reactor
    /// fails loudly at launch while the crate still compiles.
    ///
    /// # Safety
    ///
    /// Trivially safe — it never enters the kernel.
    pub unsafe fn syscall6(
        _n: usize,
        _a0: usize,
        _a1: usize,
        _a2: usize,
        _a3: usize,
        _a4: usize,
        _a5: usize,
    ) -> isize {
        -38 // ENOSYS
    }
}

fn check(ret: isize) -> io::Result<usize> {
    if ret < 0 {
        Err(io::Error::from_raw_os_error(-ret as i32))
    } else {
        Ok(ret as usize)
    }
}

// ---- ABI constants and structs -------------------------------------

pub(crate) const EPOLLIN: u32 = 0x1;
pub(crate) const EPOLLOUT: u32 = 0x4;
pub(crate) const EPOLLERR: u32 = 0x8;
pub(crate) const EPOLLHUP: u32 = 0x10;
pub(crate) const EPOLLRDHUP: u32 = 0x2000;
/// Edge-triggered delivery: readiness is reported once per transition,
/// so every read loop must drain to `EAGAIN`.
pub(crate) const EPOLLET: u32 = 1 << 31;

const EPOLL_CTL_ADD: usize = 1;
#[cfg(test)]
const EPOLL_CTL_DEL: usize = 2;
const EPOLL_CTL_MOD: usize = 3;
const EPOLL_CLOEXEC: usize = 0x80000;
const CLOCK_MONOTONIC: usize = 1;
const TFD_NONBLOCK: usize = 0x800;
const TFD_CLOEXEC: usize = 0x80000;
const EFD_NONBLOCK: usize = 0x800;
const EFD_CLOEXEC: usize = 0x80000;
const AF_INET: usize = 2;
const SOCK_STREAM: usize = 1;
const SOCK_NONBLOCK: usize = 0x800;
const SOCK_CLOEXEC: usize = 0x80000;
const SOL_SOCKET: usize = 1;
const SO_ERROR: usize = 4;
const EINPROGRESS: i32 = 115;

/// One readiness report. The kernel's layout is packed on x86_64
/// (a 12-byte struct) and naturally aligned elsewhere.
#[derive(Clone, Copy, Default)]
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
pub(crate) struct EpollEvent {
    pub events: u32,
    pub data: u64,
}

#[repr(C)]
#[derive(Clone, Copy, Default)]
struct Timespec {
    sec: i64,
    nsec: i64,
}

#[repr(C)]
#[derive(Clone, Copy, Default)]
struct ITimerSpec {
    interval: Timespec,
    value: Timespec,
}

/// A raw fd owned by this handle: closed on drop. Used for the fds
/// std has no type for (epoll, timerfd, eventfd).
#[derive(Debug)]
pub(crate) struct OwnedFd(RawFd);

impl OwnedFd {
    pub(crate) fn raw(&self) -> RawFd {
        self.0
    }
}

impl Drop for OwnedFd {
    fn drop(&mut self) {
        // Errors on close of an owned, not-yet-closed fd are not
        // actionable here.
        let _ = check(unsafe { sys::syscall6(sys::CLOSE, self.0 as usize, 0, 0, 0, 0, 0) });
    }
}

// ---- epoll ---------------------------------------------------------

pub(crate) fn epoll_create() -> io::Result<OwnedFd> {
    let fd = check(unsafe { sys::syscall6(sys::EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0, 0, 0) })?;
    Ok(OwnedFd(fd as RawFd))
}

fn epoll_ctl(epfd: RawFd, op: usize, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
    let ev = EpollEvent {
        events,
        data: token,
    };
    check(unsafe {
        sys::syscall6(
            sys::EPOLL_CTL,
            epfd as usize,
            op,
            fd as usize,
            std::ptr::addr_of!(ev) as usize,
            0,
            0,
        )
    })?;
    Ok(())
}

pub(crate) fn epoll_add(epfd: RawFd, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
    epoll_ctl(epfd, EPOLL_CTL_ADD, fd, events, token)
}

pub(crate) fn epoll_mod(epfd: RawFd, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
    epoll_ctl(epfd, EPOLL_CTL_MOD, fd, events, token)
}

/// Explicit deregistration. The reactor itself relies on close-time
/// auto-removal (an fd leaves every epoll set when its last reference
/// closes); this exists for tests that keep the fd alive.
#[cfg(test)]
pub(crate) fn epoll_del(epfd: RawFd, fd: RawFd) -> io::Result<()> {
    epoll_ctl(epfd, EPOLL_CTL_DEL, fd, 0, 0)
}

/// Waits for readiness; `timeout_ms = -1` blocks until an event.
/// A signal interruption reports as zero events, not an error.
pub(crate) fn epoll_wait(
    epfd: RawFd,
    events: &mut [EpollEvent],
    timeout_ms: i32,
) -> io::Result<usize> {
    // epoll_pwait with a null sigmask behaves exactly like epoll_wait;
    // the pwait spelling exists on every 64-bit syscall table while
    // plain epoll_wait does not (aarch64 dropped it).
    let ret = unsafe {
        sys::syscall6(
            sys::EPOLL_PWAIT,
            epfd as usize,
            events.as_mut_ptr() as usize,
            events.len(),
            timeout_ms as usize,
            0,
            0,
        )
    };
    match check(ret) {
        Ok(n) => Ok(n),
        Err(e) if e.kind() == io::ErrorKind::Interrupted => Ok(0),
        Err(e) => Err(e),
    }
}

// ---- timerfd / eventfd ---------------------------------------------

pub(crate) fn timerfd_create() -> io::Result<OwnedFd> {
    let fd = check(unsafe {
        sys::syscall6(
            sys::TIMERFD_CREATE,
            CLOCK_MONOTONIC,
            TFD_NONBLOCK | TFD_CLOEXEC,
            0,
            0,
            0,
            0,
        )
    })?;
    Ok(OwnedFd(fd as RawFd))
}

/// Arms a one-shot expiry `delay` from now. A zero delay would disarm
/// the timer, so it is bumped to one nanosecond — "fire immediately".
pub(crate) fn timerfd_arm(fd: RawFd, delay: Duration) -> io::Result<()> {
    let delay = delay.max(Duration::from_nanos(1));
    let spec = ITimerSpec {
        interval: Timespec::default(),
        value: Timespec {
            sec: delay.as_secs() as i64,
            nsec: delay.subsec_nanos() as i64,
        },
    };
    check(unsafe {
        sys::syscall6(
            sys::TIMERFD_SETTIME,
            fd as usize,
            0,
            std::ptr::addr_of!(spec) as usize,
            0,
            0,
            0,
        )
    })?;
    Ok(())
}

pub(crate) fn eventfd_create() -> io::Result<OwnedFd> {
    let fd =
        check(unsafe { sys::syscall6(sys::EVENTFD2, 0, EFD_NONBLOCK | EFD_CLOEXEC, 0, 0, 0, 0) })?;
    Ok(OwnedFd(fd as RawFd))
}

/// Posts one wakeup to an eventfd (used by the coordinator to nudge a
/// worker out of `epoll_wait`).
pub(crate) fn eventfd_signal(fd: RawFd) -> io::Result<()> {
    let one: u64 = 1;
    check(unsafe {
        sys::syscall6(
            sys::WRITE,
            fd as usize,
            std::ptr::addr_of!(one) as usize,
            8,
            0,
            0,
            0,
        )
    })?;
    Ok(())
}

/// Drains a timerfd/eventfd counter so edge-triggered registration
/// re-arms. Errors (including `EAGAIN` on an already-empty counter)
/// are deliberately ignored.
pub(crate) fn drain_counter(fd: RawFd) {
    let mut buf = [0u8; 8];
    let _ = check(unsafe {
        sys::syscall6(
            sys::READ,
            fd as usize,
            buf.as_mut_ptr() as usize,
            8,
            0,
            0,
            0,
        )
    });
}

// ---- nonblocking connect -------------------------------------------

/// Starts a nonblocking TCP connect to a loopback/IPv4 address and
/// returns the socket as a std `TcpStream` (the only unsafe part is
/// adopting the raw fd). The connect is usually still in flight:
/// register for `EPOLLOUT` and check [`take_socket_error`] when it
/// reports writable.
pub(crate) fn tcp_connect_start(addr: SocketAddr) -> io::Result<TcpStream> {
    let SocketAddr::V4(v4) = addr else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "reactor dials IPv4 only",
        ));
    };
    let fd = check(unsafe {
        sys::syscall6(
            sys::SOCKET,
            AF_INET,
            SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
            0,
            0,
            0,
            0,
        )
    })? as RawFd;
    // struct sockaddr_in: family, port (BE), addr (BE), 8 bytes zero.
    let mut sa = [0u8; 16];
    sa[0..2].copy_from_slice(&(AF_INET as u16).to_ne_bytes());
    sa[2..4].copy_from_slice(&v4.port().to_be_bytes());
    sa[4..8].copy_from_slice(&v4.ip().octets());
    let ret =
        unsafe { sys::syscall6(sys::CONNECT, fd as usize, sa.as_ptr() as usize, 16, 0, 0, 0) };
    // SAFETY: `fd` is a fresh socket owned by nobody else; TcpStream
    // takes over closing it (including on the error path below).
    let stream = unsafe {
        use std::os::fd::FromRawFd;
        TcpStream::from_raw_fd(fd)
    };
    match check(ret) {
        Ok(_) => Ok(stream),
        Err(e) if e.raw_os_error() == Some(EINPROGRESS) => Ok(stream),
        Err(e) => Err(e),
    }
}

/// Reads and clears `SO_ERROR` — the verdict of an in-flight connect
/// once the socket reports writable.
pub(crate) fn take_socket_error(fd: RawFd) -> io::Result<()> {
    let mut err: i32 = 0;
    let mut len: u32 = 4;
    check(unsafe {
        sys::syscall6(
            sys::GETSOCKOPT,
            fd as usize,
            SOL_SOCKET,
            SO_ERROR,
            std::ptr::addr_of_mut!(err) as usize,
            std::ptr::addr_of_mut!(len) as usize,
            0,
        )
    })?;
    if err == 0 {
        Ok(())
    } else {
        Err(io::Error::from_raw_os_error(err))
    }
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn epoll_sees_timerfd_expiry() {
        let ep = epoll_create().expect("epoll_create1");
        let tfd = timerfd_create().expect("timerfd_create");
        epoll_add(ep.raw(), tfd.raw(), EPOLLIN, 42).expect("ctl add");
        timerfd_arm(tfd.raw(), Duration::from_millis(1)).expect("arm");
        let mut events = [EpollEvent::default(); 4];
        let n = epoll_wait(ep.raw(), &mut events, 1000).expect("wait");
        assert_eq!(n, 1);
        assert_eq!({ events[0].data }, 42);
        drain_counter(tfd.raw());
    }

    #[test]
    fn eventfd_wakes_a_waiter() {
        let ep = epoll_create().expect("epoll_create1");
        let efd = eventfd_create().expect("eventfd2");
        epoll_add(ep.raw(), efd.raw(), EPOLLIN, 7).expect("ctl add");
        eventfd_signal(efd.raw()).expect("signal");
        let mut events = [EpollEvent::default(); 4];
        let n = epoll_wait(ep.raw(), &mut events, 1000).expect("wait");
        assert_eq!(n, 1);
        assert_eq!({ events[0].data }, 7);
        drain_counter(efd.raw());
        // Drained: a zero-timeout wait reports nothing.
        let n = epoll_wait(ep.raw(), &mut events, 0).expect("wait");
        assert_eq!(n, 0);
    }

    #[test]
    fn nonblocking_connect_completes_via_epollout() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let ep = epoll_create().expect("epoll_create1");
        let stream = tcp_connect_start(addr).expect("connect start");
        {
            use std::os::fd::AsRawFd;
            epoll_add(ep.raw(), stream.as_raw_fd(), EPOLLOUT, 1).expect("ctl add");
            let mut events = [EpollEvent::default(); 4];
            let n = epoll_wait(ep.raw(), &mut events, 2000).expect("wait");
            assert_eq!(n, 1);
            take_socket_error(stream.as_raw_fd()).expect("connected cleanly");
            epoll_del(ep.raw(), stream.as_raw_fd()).expect("ctl del");
        }
        let (_conn, _) = listener.accept().expect("accepted");
    }

    #[test]
    fn connect_to_dead_port_reports_so_error() {
        // Bind-then-drop frees a port nobody listens on; loopback RST
        // arrives almost immediately.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").expect("bind");
            l.local_addr().expect("addr")
        };
        let ep = epoll_create().expect("epoll_create1");
        // Loopback may refuse synchronously (also a pass) or via the
        // EINPROGRESS → EPOLLOUT → SO_ERROR path this exercises.
        let Ok(stream) = tcp_connect_start(addr) else {
            return;
        };
        use std::os::fd::AsRawFd;
        epoll_add(ep.raw(), stream.as_raw_fd(), EPOLLOUT, 1).expect("ctl add");
        let mut events = [EpollEvent::default(); 4];
        let n = epoll_wait(ep.raw(), &mut events, 2000).expect("wait");
        assert_eq!(n, 1);
        assert!(take_socket_error(stream.as_raw_fd()).is_err());
    }
}
