//! The epoll reactor runtime: thousands of dispatchers per process.
//!
//! Where the reference runtime (`runtime.rs`) gives every dispatcher
//! its own thread, the reactor multiplexes *all* TCP tree links and
//! UDP out-of-band sockets onto a small fixed pool of worker threads,
//! each owning a contiguous slice of nodes:
//!
//! ```text
//!  worker 0 ───────────────┐   worker 1 ───────────────┐
//!  │ nodes [0, n)          │   │ nodes [n, 2n)         │
//!  │ epoll fd              │   │ epoll fd              │
//!  │ timerfd ← timer wheel │   │ timerfd ← timer wheel │
//!  │ eventfd ← coordinator │   │ eventfd ← coordinator │
//!  └───────────────────────┘   └───────────────────────┘
//!            └───── shared convergence counters ─────┘
//! ```
//!
//! - **Timer wheel, not sleeps.** Every protocol deadline (publish
//!   tick, gossip round, dial retry, restart resume) is an entry in a
//!   hashed wheel; a single `timerfd` is armed to the wheel's next
//!   deadline and `epoll_wait` blocks until either it fires or a
//!   socket becomes ready. An idle worker costs zero CPU.
//! - **Edge-triggered reads.** Every stream is registered `EPOLLET`
//!   and drained to `EAGAIN` into the shared `frame.rs` decoder.
//! - **Batched writes.** Outbound frames coalesce into one per-link
//!   write buffer and are flushed once per readiness cycle — one
//!   `write` syscall per link per batch instead of one per envelope.
//!   A full buffer sheds new frames into `queue_drops`
//!   (backpressure), exactly like the thread runtime's bounded outbox.
//! - **Connection state machines.** Dial retry/backoff (with jitter)
//!   and forced-restart semantics live in per-link `Down →
//!   Connecting → Up` state driven by epoll events, not thread state.
//!
//! The protocol state is the same `NodeCore` the thread runtime
//! drives, booted by the same `boot_population`, reported through the
//! same `aggregate_cores` — a `RuntimeKind` choice cannot change what
//! a seed publishes or how bytes are accounted (pinned by the
//! reactor-vs-thread crossval cell).

use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream, UdpSocket};
use std::os::fd::{AsRawFd, RawFd};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use eps_gossip::Channel;
use eps_overlay::{LinkId, NodeId};
use eps_sim::{Rng, SimTime};

use crate::cluster::{
    aggregate_cores, bind_with_retry, boot_population, wait_for_convergence, Boot, NetConfig,
    NetRunReport, NodeAddrs,
};
use crate::core::{jittered_backoff, NodeCore, Outbound, Shared};
use crate::frame::FrameReader;
use crate::runtime::{BACKOFF_CAP, BACKOFF_START};
use crate::syscalls::{
    drain_counter, epoll_add, epoll_create, epoll_mod, epoll_wait, eventfd_create, eventfd_signal,
    take_socket_error, tcp_connect_start, timerfd_arm, timerfd_create, EpollEvent, OwnedFd,
    EPOLLERR, EPOLLET, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP,
};

/// Events drained per `epoll_wait` call.
const EVENTS_PER_WAIT: usize = 1024;
/// Timer-wheel slot width. Protocol timers are tens of milliseconds;
/// 1 ms granularity keeps gossip cadence faithful without hot spins.
const WHEEL_GRANULARITY_NS: u64 = 1_000_000;
/// Timer-wheel slots: ~4 s of horizon before entries wrap. Entries
/// beyond the horizon simply stay in their slot until their deadline
/// actually passes (the fire check is against the real deadline, not
/// the slot), so wrapping is a performance detail, not a correctness
/// one.
const WHEEL_SLOTS: usize = 4096;
/// Fallback arm when the wheel is empty (cannot happen while any node
/// is live, but the timerfd must never be left unarmed forever).
const IDLE_ARM: Duration = Duration::from_millis(50);

// ---- epoll token packing -------------------------------------------
//
// The kernel hands back one u64 per readiness event; the reactor packs
// `kind | aux | index` into it: 3 bits of kind, 29 bits of auxiliary
// data (the link index within a node), 32 bits of worker-local node
// index or pending-slab slot.

const KIND_TIMER: u64 = 0;
const KIND_WAKE: u64 = 1;
const KIND_LISTENER: u64 = 2;
const KIND_UDP: u64 = 3;
const KIND_LINK: u64 = 4;
const KIND_PENDING: u64 = 5;

fn token(kind: u64, idx: usize, aux: usize) -> u64 {
    debug_assert!(idx <= u32::MAX as usize && aux < (1 << 29));
    (kind << 61) | ((aux as u64) << 32) | idx as u64
}

fn token_kind(t: u64) -> u64 {
    t >> 61
}

fn token_idx(t: u64) -> usize {
    (t & 0xFFFF_FFFF) as usize
}

fn token_aux(t: u64) -> usize {
    ((t >> 32) & 0x1FFF_FFFF) as usize
}

// ---- timer wheel ---------------------------------------------------

/// What a wheel entry wakes up: a node's next protocol deadline, a
/// dial retry for one link, or a restarted node's resume.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum TimerToken {
    Node(usize),
    Dial { node: usize, link: usize },
    Resume(usize),
}

/// A hashed timer wheel over nanoseconds-since-run-start. Entries
/// land in `deadline / granularity % slots`; firing checks the real
/// deadline, so entries beyond one revolution simply wait in place
/// (the classic reinsert-if-not-due rule, with the reinsert implicit).
pub(crate) struct TimerWheel {
    slots: Vec<Vec<(u64, TimerToken)>>,
    granularity: u64,
    /// The slot tick processed through by the last `fire_due`.
    last_tick: u64,
    len: usize,
}

impl TimerWheel {
    pub(crate) fn new(slots: usize, granularity: u64) -> TimerWheel {
        TimerWheel {
            slots: (0..slots).map(|_| Vec::new()).collect(),
            granularity,
            last_tick: 0,
            len: 0,
        }
    }

    pub(crate) fn insert(&mut self, deadline_ns: u64, token: TimerToken) {
        let idx = ((deadline_ns / self.granularity) % self.slots.len() as u64) as usize;
        self.slots[idx].push((deadline_ns, token));
        self.len += 1;
    }

    /// Collects every entry due at `now_ns`, walking at most one full
    /// revolution of slots since the previous call.
    pub(crate) fn fire_due(&mut self, now_ns: u64, out: &mut Vec<TimerToken>) {
        if self.len == 0 {
            self.last_tick = now_ns / self.granularity;
            return;
        }
        let now_tick = now_ns / self.granularity;
        let span = (now_tick.saturating_sub(self.last_tick) + 1).min(self.slots.len() as u64);
        for off in 0..span {
            let idx = ((self.last_tick + off) % self.slots.len() as u64) as usize;
            let slot = &mut self.slots[idx];
            let mut i = 0;
            while i < slot.len() {
                if slot[i].0 <= now_ns {
                    out.push(slot.swap_remove(i).1);
                    self.len -= 1;
                } else {
                    i += 1;
                }
            }
        }
        self.last_tick = now_tick;
    }

    /// The earliest deadline across every slot (a full scan; entry
    /// counts are one per live node plus a few dials, so this is
    /// cheaper than keeping a heap coherent under swap-removal).
    pub(crate) fn next_deadline(&self) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        let mut min = u64::MAX;
        for slot in &self.slots {
            for &(deadline, _) in slot {
                min = min.min(deadline);
            }
        }
        Some(min)
    }
}

// ---- per-link write buffer -----------------------------------------

/// How one flush attempt ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum FlushStatus {
    /// Everything queued went out; the buffer is empty again.
    Clean,
    /// The socket would block; register for `EPOLLOUT` and retry.
    Blocked,
    /// The connection is dead.
    Broken,
}

/// One flush attempt's outcome: completed frames/bytes (for the
/// `frames_sent`/`bytes_sent` counters) and how it ended.
pub(crate) struct FlushOutcome {
    pub frames: u64,
    pub bytes: u64,
    pub status: FlushStatus,
}

/// The coalescing write buffer of one link: queued frames share one
/// contiguous byte run, flushed with one `write` per readiness cycle.
/// Bounded in *frames* (same unit as the thread runtime's outbox);
/// overflow is the caller's `queue_drops`. Survives reconnects by
/// rewinding to the first frame the dead connection did not complete.
pub(crate) struct LinkBuf {
    buf: Vec<u8>,
    /// Bytes of `buf` written to the current connection.
    pos: usize,
    /// Start offset of the first incompletely-sent frame — the rewind
    /// point when a connection dies mid-frame (the replacement
    /// connection gets the whole frame again; its fresh `FrameReader`
    /// never saw the partial bytes).
    front_start: usize,
    /// End offset of each queued-but-incomplete frame, in order.
    ends: VecDeque<usize>,
    capacity: usize,
}

impl LinkBuf {
    pub(crate) fn new(capacity: usize) -> LinkBuf {
        LinkBuf {
            buf: Vec::new(),
            pos: 0,
            front_start: 0,
            ends: VecDeque::new(),
            capacity,
        }
    }

    /// Queues one frame (4-byte length prefix + body); `false` means
    /// the buffer is at capacity and the frame was shed.
    pub(crate) fn push(&mut self, body: &[u8]) -> bool {
        if self.ends.len() >= self.capacity {
            return false;
        }
        self.buf
            .extend_from_slice(&(body.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(body);
        self.ends.push_back(self.buf.len());
        true
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Queued frames not yet fully written.
    #[cfg(test)]
    pub(crate) fn queued(&self) -> usize {
        self.ends.len()
    }

    /// Writes as much of the buffer as the socket accepts.
    pub(crate) fn flush(&mut self, stream: &mut TcpStream) -> FlushOutcome {
        let mut frames = 0;
        let mut bytes = 0;
        loop {
            if self.pos == self.buf.len() {
                self.buf.clear();
                self.pos = 0;
                self.front_start = 0;
                self.ends.clear();
                return FlushOutcome {
                    frames,
                    bytes,
                    status: FlushStatus::Clean,
                };
            }
            match stream.write(&self.buf[self.pos..]) {
                Ok(0) => {
                    return FlushOutcome {
                        frames,
                        bytes,
                        status: FlushStatus::Broken,
                    }
                }
                Ok(n) => {
                    self.pos += n;
                    while self.ends.front().is_some_and(|&end| end <= self.pos) {
                        let end = self.ends.pop_front().expect("checked front");
                        frames += 1;
                        bytes += (end - self.front_start - 4) as u64;
                        self.front_start = end;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    return FlushOutcome {
                        frames,
                        bytes,
                        status: FlushStatus::Blocked,
                    }
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    return FlushOutcome {
                        frames,
                        bytes,
                        status: FlushStatus::Broken,
                    }
                }
            }
        }
    }

    /// The connection died: rewind to the start of the first frame it
    /// did not complete, so the replacement connection re-sends it
    /// whole.
    pub(crate) fn on_disconnect(&mut self) {
        self.pos = self.front_start;
    }

    /// A restart discards queued traffic, like a process restart
    /// would.
    pub(crate) fn clear(&mut self) {
        self.buf.clear();
        self.pos = 0;
        self.front_start = 0;
        self.ends.clear();
    }
}

// ---- connection state ----------------------------------------------

enum LinkState {
    /// No connection. A dialer gets here with a `Dial` wheel entry
    /// pending; an acceptor waits for the peer to dial.
    Down,
    /// A nonblocking connect is in flight; `EPOLLOUT` delivers the
    /// verdict via `SO_ERROR`.
    Connecting(TcpStream),
    Up {
        stream: TcpStream,
        reader: FrameReader,
    },
}

struct RLink {
    peer: NodeId,
    dialer: bool,
    state: LinkState,
    backoff: Duration,
    attempts_this_session: u64,
    buf: LinkBuf,
    /// Queued for this cycle's batched flush.
    dirty: bool,
    /// Registered for `EPOLLOUT` (flush hit backpressure).
    want_out: bool,
}

struct RNode {
    core: NodeCore,
    dial_rng: Rng,
    listener: Option<TcpListener>,
    udp: Option<UdpSocket>,
    links: Vec<RLink>,
    /// Mid-restart: sockets closed, waiting for the `Resume` timer.
    down: bool,
    /// A `Node` entry currently sits in the wheel (exactly one may).
    timer_armed: bool,
}

/// An accepted connection whose 4-byte hello has not fully arrived.
struct Pending {
    stream: TcpStream,
    hello: [u8; 4],
    got: usize,
    node_local: usize,
}

/// Coordinator-to-worker requests, delivered via the wake eventfd.
enum Command {
    Restart { node_local: usize, pause: Duration },
}

// ---- the worker ----------------------------------------------------

struct Worker {
    /// Global index of `nodes[0]` (the slice is contiguous).
    base: usize,
    nodes: Vec<RNode>,
    ep: OwnedFd,
    timer: OwnedFd,
    wake_fd: RawFd,
    wheel: TimerWheel,
    registry: Vec<NodeAddrs>,
    shared: Arc<Shared>,
    start: Instant,
    commands: Arc<Mutex<VecDeque<Command>>>,
    pending: Vec<Option<Pending>>,
    free_pending: Vec<usize>,
    /// Links touched since the last batched flush.
    dirty: Vec<(usize, usize)>,
    fired: Vec<TimerToken>,
    scratch: Vec<u8>,
}

/// Drains one edge-triggered stream to `EAGAIN` through a
/// [`FrameReader`], returning the complete bodies plus whether the
/// connection died or the stream is corrupt. The reader persists
/// across calls, so a frame split over multiple readiness cycles
/// reassembles exactly (unit-tested below).
pub(crate) fn drain_stream(
    stream: &mut TcpStream,
    reader: &mut FrameReader,
    scratch: &mut [u8],
) -> (Vec<Vec<u8>>, bool, bool) {
    let mut disconnected = false;
    let mut corrupt = false;
    loop {
        match stream.read(scratch) {
            Ok(0) => {
                disconnected = true;
                break;
            }
            Ok(n) => reader.extend(&scratch[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                disconnected = true;
                break;
            }
        }
    }
    let mut bodies = Vec::new();
    loop {
        match reader.next_frame() {
            Ok(Some(body)) => bodies.push(body),
            Ok(None) => break,
            Err(_) => {
                corrupt = true;
                disconnected = true;
                break;
            }
        }
    }
    (bodies, disconnected, corrupt)
}

/// Routes one node's outbound batch: tree frames into the link write
/// buffers (marking them for the batched flush), cross/out-of-band
/// envelopes as UDP datagrams. Free function so callers can hold the
/// node and the worker-level dirty list at once.
fn dispatch_sends(
    node: &mut RNode,
    ni: usize,
    sends: Vec<Outbound>,
    registry: &[NodeAddrs],
    dirty: &mut Vec<(usize, usize)>,
) {
    for send in sends {
        match send.channel {
            Channel::Tree => {
                let Some(li) = node.links.iter().position(|l| l.peer == send.to) else {
                    node.core.net.queue_drops += 1;
                    continue;
                };
                let link = &mut node.links[li];
                if !link.buf.push(&send.body) {
                    // Write-buffer backpressure: the link cannot drain
                    // as fast as the node produces; shed, do not grow.
                    node.core.net.queue_drops += 1;
                    continue;
                }
                if !link.dirty {
                    link.dirty = true;
                    dirty.push((ni, li));
                }
            }
            Channel::Cross | Channel::OutOfBand => {
                let Some(udp) = &node.udp else {
                    node.core.net.queue_drops += 1;
                    continue;
                };
                let mut datagram = Vec::with_capacity(4 + send.body.len());
                datagram.extend_from_slice(&node.core.id.value().to_le_bytes());
                datagram.extend_from_slice(&send.body);
                match udp.send_to(&datagram, registry[send.to.index()].udp) {
                    Ok(_) => {
                        node.core.net.datagrams_sent += 1;
                        node.core.net.bytes_sent += send.body.len() as u64;
                    }
                    Err(_) => {
                        node.core.net.queue_drops += 1;
                    }
                }
            }
        }
    }
}

impl Worker {
    #[allow(clippy::too_many_arguments)]
    fn new(
        base: usize,
        boots: Vec<crate::cluster::BootNode>,
        registry: Vec<NodeAddrs>,
        shared: Arc<Shared>,
        start: Instant,
        commands: Arc<Mutex<VecDeque<Command>>>,
        wake_fd: RawFd,
        queue_capacity: usize,
    ) -> std::io::Result<Worker> {
        let ep = epoll_create()?;
        let timer = timerfd_create()?;
        epoll_add(ep.raw(), timer.raw(), EPOLLIN, token(KIND_TIMER, 0, 0))?;
        epoll_add(ep.raw(), wake_fd, EPOLLIN, token(KIND_WAKE, 0, 0))?;
        let mut nodes = Vec::with_capacity(boots.len());
        for (ni, boot) in boots.into_iter().enumerate() {
            boot.listener.set_nonblocking(true)?;
            boot.udp.set_nonblocking(true)?;
            epoll_add(
                ep.raw(),
                boot.listener.as_raw_fd(),
                EPOLLIN | EPOLLET,
                token(KIND_LISTENER, ni, 0),
            )?;
            epoll_add(
                ep.raw(),
                boot.udp.as_raw_fd(),
                EPOLLIN | EPOLLET,
                token(KIND_UDP, ni, 0),
            )?;
            let id = boot.core.id;
            let links = boot
                .core
                .neighbors()
                .iter()
                .map(|&peer| RLink {
                    peer,
                    dialer: LinkId::new(id, peer).dialer() == id,
                    state: LinkState::Down,
                    backoff: BACKOFF_START,
                    attempts_this_session: 0,
                    buf: LinkBuf::new(queue_capacity),
                    dirty: false,
                    want_out: false,
                })
                .collect();
            nodes.push(RNode {
                core: boot.core,
                dial_rng: boot.dial_rng,
                listener: Some(boot.listener),
                udp: Some(boot.udp),
                links,
                down: false,
                timer_armed: false,
            });
        }
        Ok(Worker {
            base,
            nodes,
            ep,
            timer,
            wake_fd,
            wheel: TimerWheel::new(WHEEL_SLOTS, WHEEL_GRANULARITY_NS),
            registry,
            shared,
            start,
            commands,
            pending: Vec::new(),
            free_pending: Vec::new(),
            dirty: Vec::new(),
            fired: Vec::new(),
            scratch: vec![0u8; 64 * 1024],
        })
    }

    fn ns_now(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    fn run(mut self) -> Vec<NodeCore> {
        let now = self.ns_now();
        for ni in 0..self.nodes.len() {
            self.nodes[ni].core.bootstrap(&self.shared);
            let deadline = self.nodes[ni].core.next_deadline().as_nanos();
            self.wheel.insert(deadline, TimerToken::Node(ni));
            self.nodes[ni].timer_armed = true;
            for li in 0..self.nodes[ni].links.len() {
                if self.nodes[ni].links[li].dialer {
                    self.wheel
                        .insert(now, TimerToken::Dial { node: ni, link: li });
                }
            }
        }
        let mut events = vec![EpollEvent::default(); EVENTS_PER_WAIT];
        let mut batch: Vec<(u32, u64)> = Vec::with_capacity(EVENTS_PER_WAIT);
        loop {
            self.fire_timers();
            self.process_commands();
            if self.shared.stop_all.load(Ordering::Relaxed) {
                break;
            }
            self.flush_dirty();
            self.arm_timer();
            let n = epoll_wait(self.ep.raw(), &mut events, -1).expect("epoll_wait");
            batch.clear();
            for ev in &events[..n] {
                batch.push((ev.events, ev.data));
            }
            for &(evs, data) in &batch {
                self.handle_event(evs, data);
            }
            self.flush_dirty();
        }
        self.nodes.into_iter().map(|n| n.core).collect()
    }

    // ---- timers --------------------------------------------------

    fn arm_timer(&self) {
        let delay = match self.wheel.next_deadline() {
            Some(deadline) => Duration::from_nanos(deadline.saturating_sub(self.ns_now())),
            None => IDLE_ARM,
        };
        timerfd_arm(self.timer.raw(), delay).expect("timerfd_settime");
    }

    fn fire_timers(&mut self) {
        let now = self.ns_now();
        let mut fired = std::mem::take(&mut self.fired);
        self.wheel.fire_due(now, &mut fired);
        for tok in fired.drain(..) {
            match tok {
                TimerToken::Node(ni) => self.fire_node_timer(ni),
                TimerToken::Dial { node, link } => self.try_dial(node, link),
                TimerToken::Resume(ni) => self.resume_node(ni),
            }
        }
        self.fired = fired;
    }

    fn fire_node_timer(&mut self, ni: usize) {
        let Worker {
            nodes,
            shared,
            registry,
            dirty,
            wheel,
            start,
            ..
        } = self;
        let node = &mut nodes[ni];
        node.timer_armed = false;
        if node.down {
            // The Resume entry re-arms the node timer.
            return;
        }
        let now = SimTime::from_nanos(start.elapsed().as_nanos() as u64);
        let (_, sends) = node.core.tick_timers(now, shared);
        dispatch_sends(node, ni, sends, registry, dirty);
        wheel.insert(node.core.next_deadline().as_nanos(), TimerToken::Node(ni));
        node.timer_armed = true;
    }

    // ---- dialing -------------------------------------------------

    fn try_dial(&mut self, ni: usize, li: usize) {
        let node = &mut self.nodes[ni];
        if node.down {
            return;
        }
        let link = &mut node.links[li];
        if !link.dialer || !matches!(link.state, LinkState::Down) {
            return;
        }
        node.core.net.connect_attempts += 1;
        if link.attempts_this_session > 0 {
            node.core.net.connect_retries += 1;
        }
        link.attempts_this_session += 1;
        let addr = self.registry[link.peer.index()].tcp;
        match tcp_connect_start(addr) {
            Ok(stream) => {
                let tok = token(KIND_LINK, ni, li);
                if epoll_add(self.ep.raw(), stream.as_raw_fd(), EPOLLOUT, tok).is_ok() {
                    link.state = LinkState::Connecting(stream);
                } else {
                    self.schedule_redial(ni, li);
                }
            }
            Err(_) => self.schedule_redial(ni, li),
        }
    }

    fn schedule_redial(&mut self, ni: usize, li: usize) {
        let node = &mut self.nodes[ni];
        let link = &mut node.links[li];
        let wait = jittered_backoff(link.backoff, &mut node.dial_rng);
        link.backoff = (link.backoff * 2).min(BACKOFF_CAP);
        self.wheel.insert(
            self.start.elapsed().as_nanos() as u64 + wait.as_nanos() as u64,
            TimerToken::Dial { node: ni, link: li },
        );
    }

    /// `EPOLLOUT` on a connecting socket: the connect finished, one
    /// way or the other.
    fn complete_connect(&mut self, ni: usize, li: usize) {
        let id = self.nodes[ni].core.id;
        let link = &mut self.nodes[ni].links[li];
        let LinkState::Connecting(mut stream) = std::mem::replace(&mut link.state, LinkState::Down)
        else {
            return;
        };
        let ep = self.ep.raw();
        let verdict = take_socket_error(stream.as_raw_fd())
            .and_then(|()| stream.write(&id.value().to_le_bytes()))
            .and_then(|n| {
                if n == 4 {
                    Ok(())
                } else {
                    Err(std::io::Error::new(ErrorKind::WriteZero, "short hello"))
                }
            })
            .and_then(|()| stream.set_nodelay(true))
            .and_then(|()| {
                epoll_mod(
                    ep,
                    stream.as_raw_fd(),
                    EPOLLIN | EPOLLRDHUP | EPOLLET,
                    token(KIND_LINK, ni, li),
                )
            });
        match verdict {
            Ok(()) => {
                link.state = LinkState::Up {
                    stream,
                    reader: FrameReader::new(),
                };
                link.backoff = BACKOFF_START;
                link.attempts_this_session = 0;
                link.buf.on_disconnect();
                if !link.buf.is_empty() {
                    self.mark_dirty(ni, li);
                }
                // Edge-triggered: drain anything that raced the MOD.
                self.read_link(ni, li);
            }
            Err(_) => {
                drop(stream);
                self.schedule_redial(ni, li);
            }
        }
    }

    fn mark_dirty(&mut self, ni: usize, li: usize) {
        let link = &mut self.nodes[ni].links[li];
        if !link.dirty {
            link.dirty = true;
            self.dirty.push((ni, li));
        }
    }

    fn link_down(&mut self, ni: usize, li: usize) {
        let link = &mut self.nodes[ni].links[li];
        link.state = LinkState::Down;
        link.want_out = false;
        link.buf.on_disconnect();
        if link.dialer {
            // Immediate redial; the peer may just have restarted.
            self.wheel
                .insert(self.ns_now(), TimerToken::Dial { node: ni, link: li });
        }
    }

    // ---- event dispatch ------------------------------------------

    fn handle_event(&mut self, evs: u32, data: u64) {
        match token_kind(data) {
            KIND_TIMER => drain_counter(self.timer.raw()),
            KIND_WAKE => drain_counter(self.wake_fd),
            KIND_LISTENER => self.accept_ready(token_idx(data)),
            KIND_UDP => self.udp_ready(token_idx(data)),
            KIND_PENDING => self.pending_ready(token_idx(data)),
            KIND_LINK => self.link_ready(token_idx(data), token_aux(data), evs),
            _ => {}
        }
    }

    fn link_ready(&mut self, ni: usize, li: usize, evs: u32) {
        match self.nodes[ni].links[li].state {
            LinkState::Down => {}
            LinkState::Connecting(_) => {
                if evs & (EPOLLOUT | EPOLLERR | EPOLLHUP) != 0 {
                    self.complete_connect(ni, li);
                }
            }
            LinkState::Up { .. } => {
                if evs & EPOLLOUT != 0 {
                    self.flush_link(ni, li);
                }
                if evs & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR) != 0 {
                    self.read_link(ni, li);
                }
            }
        }
    }

    fn accept_ready(&mut self, ni: usize) {
        loop {
            let Some(listener) = &self.nodes[ni].listener else {
                return;
            };
            match listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                        continue;
                    }
                    self.nodes[ni].core.net.accepted_conns += 1;
                    let slot = match self.free_pending.pop() {
                        Some(s) => s,
                        None => {
                            self.pending.push(None);
                            self.pending.len() - 1
                        }
                    };
                    let fd = stream.as_raw_fd();
                    self.pending[slot] = Some(Pending {
                        stream,
                        hello: [0; 4],
                        got: 0,
                        node_local: ni,
                    });
                    if epoll_add(
                        self.ep.raw(),
                        fd,
                        EPOLLIN | EPOLLET,
                        token(KIND_PENDING, slot, 0),
                    )
                    .is_err()
                    {
                        self.pending[slot] = None;
                        self.free_pending.push(slot);
                        continue;
                    }
                    // The hello may have raced the registration.
                    self.pending_ready(slot);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
    }

    fn pending_ready(&mut self, slot: usize) {
        let Some(pending) = self.pending.get_mut(slot).and_then(|p| p.as_mut()) else {
            return;
        };
        loop {
            let got = pending.got;
            match pending.stream.read(&mut pending.hello[got..]) {
                Ok(0) => {
                    self.pending[slot] = None;
                    self.free_pending.push(slot);
                    return;
                }
                Ok(n) => {
                    pending.got += n;
                    if pending.got == 4 {
                        let pending = self.pending[slot].take().expect("checked");
                        self.free_pending.push(slot);
                        self.attach(pending);
                        return;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.pending[slot] = None;
                    self.free_pending.push(slot);
                    return;
                }
            }
        }
    }

    /// Binds an accepted, hello-complete stream to its link (replacing
    /// any dead connection). Hellos from non-neighbors, or for a node
    /// that is mid-restart, are dropped.
    fn attach(&mut self, pending: Pending) {
        let ni = pending.node_local;
        let peer = NodeId::new(u32::from_le_bytes(pending.hello));
        if self.nodes[ni].down {
            return;
        }
        let Some(li) = self.nodes[ni].links.iter().position(|l| l.peer == peer) else {
            return;
        };
        let stream = pending.stream;
        let tok = token(KIND_LINK, ni, li);
        if epoll_mod(
            self.ep.raw(),
            stream.as_raw_fd(),
            EPOLLIN | EPOLLRDHUP | EPOLLET,
            tok,
        )
        .is_err()
        {
            return;
        }
        let link = &mut self.nodes[ni].links[li];
        link.state = LinkState::Up {
            stream,
            reader: FrameReader::new(),
        };
        link.want_out = false;
        link.buf.on_disconnect();
        if !link.buf.is_empty() {
            self.mark_dirty(ni, li);
        }
        // Frames may have followed the hello before the MOD landed.
        self.read_link(ni, li);
    }

    fn udp_ready(&mut self, ni: usize) {
        loop {
            let Worker {
                nodes,
                shared,
                registry,
                dirty,
                scratch,
                start,
                ..
            } = self;
            let node = &mut nodes[ni];
            let Some(udp) = &node.udp else { return };
            match udp.recv_from(scratch) {
                Ok((n, _)) if n >= 4 => {
                    let from = NodeId::new(u32::from_le_bytes(
                        scratch[..4].try_into().expect("4-byte prefix"),
                    ));
                    node.core.net.datagrams_received += 1;
                    let body = scratch[4..n].to_vec();
                    node.core.net.bytes_received += body.len() as u64;
                    let now = SimTime::from_nanos(start.elapsed().as_nanos() as u64);
                    let sends = node.core.handle_body(from, &body, false, now, shared);
                    dispatch_sends(node, ni, sends, registry, dirty);
                }
                Ok(_) => {
                    node.core.net.decode_errors += 1;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
    }

    fn read_link(&mut self, ni: usize, li: usize) {
        let Worker {
            nodes,
            shared,
            registry,
            dirty,
            scratch,
            start,
            ..
        } = self;
        let node = &mut nodes[ni];
        let peer = node.links[li].peer;
        let LinkState::Up { stream, reader } = &mut node.links[li].state else {
            return;
        };
        let (bodies, disconnected, corrupt) = drain_stream(stream, reader, scratch);
        if corrupt {
            node.core.net.decode_errors += 1;
        }
        for body in bodies {
            node.core.net.frames_received += 1;
            node.core.net.bytes_received += body.len() as u64;
            let now = SimTime::from_nanos(start.elapsed().as_nanos() as u64);
            let sends = node.core.handle_body(peer, &body, true, now, shared);
            dispatch_sends(node, ni, sends, registry, dirty);
        }
        if disconnected {
            self.link_down(ni, li);
        }
    }

    // ---- batched flush -------------------------------------------

    fn flush_dirty(&mut self) {
        let dirty = std::mem::take(&mut self.dirty);
        for (ni, li) in dirty {
            self.nodes[ni].links[li].dirty = false;
            self.flush_link(ni, li);
        }
    }

    fn flush_link(&mut self, ni: usize, li: usize) {
        let link = &mut self.nodes[ni].links[li];
        let LinkState::Up { stream, .. } = &mut link.state else {
            return;
        };
        let fd = stream.as_raw_fd();
        let outcome = link.buf.flush(stream);
        self.nodes[ni].core.net.frames_sent += outcome.frames;
        self.nodes[ni].core.net.bytes_sent += outcome.bytes;
        let link = &mut self.nodes[ni].links[li];
        match outcome.status {
            FlushStatus::Clean => {
                if link.want_out {
                    link.want_out = false;
                    let _ = epoll_mod(
                        self.ep.raw(),
                        fd,
                        EPOLLIN | EPOLLRDHUP | EPOLLET,
                        token(KIND_LINK, ni, li),
                    );
                }
            }
            FlushStatus::Blocked => {
                if !link.want_out {
                    link.want_out = true;
                    let _ = epoll_mod(
                        self.ep.raw(),
                        fd,
                        EPOLLIN | EPOLLRDHUP | EPOLLOUT | EPOLLET,
                        token(KIND_LINK, ni, li),
                    );
                }
            }
            FlushStatus::Broken => self.link_down(ni, li),
        }
    }

    // ---- restart -------------------------------------------------

    fn process_commands(&mut self) {
        loop {
            let cmd = self.commands.lock().expect("commands mutex").pop_front();
            match cmd {
                Some(Command::Restart { node_local, pause }) => self.restart(node_local, pause),
                None => break,
            }
        }
    }

    /// Stops one node cold: sockets closed (peers see resets and fall
    /// into their dial-backoff machines), queued traffic discarded,
    /// protocol state kept. The `Resume` wheel entry brings it back.
    fn restart(&mut self, ni: usize, pause: Duration) {
        let node = &mut self.nodes[ni];
        if node.down {
            return;
        }
        node.down = true;
        node.listener = None;
        node.udp = None;
        for link in &mut node.links {
            link.state = LinkState::Down;
            link.want_out = false;
            link.dirty = false;
            link.buf.clear();
            link.backoff = BACKOFF_START;
            link.attempts_this_session = 0;
        }
        self.dirty.retain(|&(n, _)| n != ni);
        for slot in 0..self.pending.len() {
            if self.pending[slot]
                .as_ref()
                .is_some_and(|p| p.node_local == ni)
            {
                self.pending[slot] = None;
                self.free_pending.push(slot);
            }
        }
        self.wheel.insert(
            self.ns_now() + pause.as_nanos() as u64,
            TimerToken::Resume(ni),
        );
    }

    fn resume_node(&mut self, ni: usize) {
        let addrs = self.registry[self.base + ni];
        let listener = bind_with_retry(|| TcpListener::bind(addrs.tcp)).expect("rebind tcp");
        let udp = bind_with_retry(|| UdpSocket::bind(addrs.udp)).expect("rebind udp");
        listener.set_nonblocking(true).expect("nonblocking");
        udp.set_nonblocking(true).expect("nonblocking");
        epoll_add(
            self.ep.raw(),
            listener.as_raw_fd(),
            EPOLLIN | EPOLLET,
            token(KIND_LISTENER, ni, 0),
        )
        .expect("register listener");
        epoll_add(
            self.ep.raw(),
            udp.as_raw_fd(),
            EPOLLIN | EPOLLET,
            token(KIND_UDP, ni, 0),
        )
        .expect("register udp");
        let now = self.ns_now();
        let node = &mut self.nodes[ni];
        node.listener = Some(listener);
        node.udp = Some(udp);
        node.down = false;
        if !node.timer_armed {
            node.timer_armed = true;
            let deadline = node.core.next_deadline().as_nanos();
            self.wheel.insert(deadline, TimerToken::Node(ni));
        }
        for li in 0..self.nodes[ni].links.len() {
            if self.nodes[ni].links[li].dialer {
                self.wheel
                    .insert(now, TimerToken::Dial { node: ni, link: li });
            }
        }
    }
}

// ---- the cluster ---------------------------------------------------

struct WorkerHandle {
    handle: Option<JoinHandle<Vec<NodeCore>>>,
    commands: Arc<Mutex<VecDeque<Command>>>,
    wake_fd: RawFd,
    base: usize,
    len: usize,
}

/// A running reactor cluster: the whole population multiplexed onto a
/// fixed pool of epoll worker threads. Same protocol, same seeds,
/// same report schema as [`crate::Cluster`].
pub struct ReactorCluster {
    config: NetConfig,
    registry: Vec<NodeAddrs>,
    shared: Arc<Shared>,
    start: Instant,
    workers: Vec<WorkerHandle>,
    /// Wake eventfds stay owned here so a worker that exited early can
    /// never leave the coordinator signalling a recycled fd.
    _wakes: Vec<OwnedFd>,
    setup_subscription_msgs: u64,
}

impl ReactorCluster {
    /// Boots the full population and starts `workers` reactor threads,
    /// each owning a contiguous slice of nodes.
    pub fn launch(config: NetConfig, workers: usize) -> std::io::Result<ReactorCluster> {
        let Boot {
            registry,
            nodes,
            setup_subscription_msgs,
        } = boot_population(&config)?;
        let n = nodes.len();
        let workers = workers.clamp(1, n.max(1));
        let shared = Arc::new(Shared::default());
        let start = Instant::now();
        let mut handles = Vec::with_capacity(workers);
        let mut wakes = Vec::with_capacity(workers);
        let mut boots = nodes.into_iter();
        let mut base = 0;
        for w in 0..workers {
            // Contiguous slices, remainder spread over the first few.
            let len = n / workers + usize::from(w < n % workers);
            let slice: Vec<_> = boots.by_ref().take(len).collect();
            let wake = eventfd_create()?;
            let commands = Arc::new(Mutex::new(VecDeque::new()));
            let worker = Worker::new(
                base,
                slice,
                registry.clone(),
                Arc::clone(&shared),
                start,
                Arc::clone(&commands),
                wake.raw(),
                config.queue_capacity,
            )?;
            let handle = std::thread::Builder::new()
                .name(format!("eps-reactor-{w}"))
                .spawn(move || worker.run())?;
            handles.push(WorkerHandle {
                handle: Some(handle),
                commands,
                wake_fd: wake.raw(),
                base,
                len,
            });
            wakes.push(wake);
            base += len;
        }
        Ok(ReactorCluster {
            config,
            registry,
            shared,
            start,
            workers: handles,
            _wakes: wakes,
            setup_subscription_msgs,
        })
    }

    /// The bound addresses, indexed by node id.
    pub fn addrs(&self) -> &[NodeAddrs] {
        &self.registry
    }

    /// Asks the owning worker to stop node `index`, keep it down for
    /// `pause`, then rebind and resume it with protocol state intact.
    /// Unlike the thread cluster's restart this is asynchronous: the
    /// request is queued and the call returns immediately (the worker
    /// must keep serving its other nodes).
    pub fn restart_node(&mut self, index: usize, pause: Duration) -> std::io::Result<()> {
        let worker = self
            .workers
            .iter()
            .find(|w| (w.base..w.base + w.len).contains(&index))
            .expect("node index in range");
        worker
            .commands
            .lock()
            .expect("commands mutex")
            .push_back(Command::Restart {
                node_local: index - worker.base,
                pause,
            });
        eventfd_signal(worker.wake_fd)
    }

    /// Waits for the workload to finish and deliveries to converge
    /// (bounded by the drain budget), stops every worker, and
    /// assembles the report.
    pub fn finish(mut self) -> NetRunReport {
        wait_for_convergence(&self.shared, &self.config, self.start);
        self.shared.stop_all.store(true, Ordering::Relaxed);
        for worker in &self.workers {
            let _ = eventfd_signal(worker.wake_fd);
        }
        let mut cores = Vec::with_capacity(self.config.scenario.nodes);
        for worker in &mut self.workers {
            cores.extend(
                worker
                    .handle
                    .take()
                    .expect("worker is running")
                    .join()
                    .expect("reactor worker panicked"),
            );
        }
        aggregate_cores(&self.config.scenario, &cores, self.setup_subscription_msgs)
    }
}

/// Launches a reactor cluster, lets it run to convergence, and
/// reports — the one-call entry point tests and the binaries use.
pub fn run_reactor_cluster(config: NetConfig, workers: usize) -> std::io::Result<NetRunReport> {
    Ok(ReactorCluster::launch(config, workers)?.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::frame;
    use std::net::TcpListener;

    fn stream_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let a = TcpStream::connect(addr).expect("connect");
        let (b, _) = listener.accept().expect("accept");
        (a, b)
    }

    #[test]
    fn wheel_fires_in_deadline_order_within_granularity() {
        let mut wheel = TimerWheel::new(16, 1_000_000);
        wheel.insert(5_000_000, TimerToken::Node(5));
        wheel.insert(2_000_000, TimerToken::Node(2));
        wheel.insert(9_000_000, TimerToken::Node(9));
        let mut out = Vec::new();
        wheel.fire_due(3_000_000, &mut out);
        assert_eq!(out, vec![TimerToken::Node(2)]);
        out.clear();
        wheel.fire_due(9_000_000, &mut out);
        out.sort_by_key(|t| match t {
            TimerToken::Node(n) => *n,
            _ => usize::MAX,
        });
        assert_eq!(out, vec![TimerToken::Node(5), TimerToken::Node(9)]);
        assert!(wheel.next_deadline().is_none());
    }

    /// Entries past one wheel revolution share slots with near ones;
    /// they must stay parked (not fire early) until their real
    /// deadline passes.
    #[test]
    fn wheel_entries_beyond_the_horizon_wait_in_place() {
        let mut wheel = TimerWheel::new(8, 1_000_000);
        // 2ms and 2ms + one full revolution (8ms): same slot.
        wheel.insert(2_000_000, TimerToken::Node(1));
        wheel.insert(10_000_000, TimerToken::Node(2));
        let mut out = Vec::new();
        wheel.fire_due(2_000_000, &mut out);
        assert_eq!(out, vec![TimerToken::Node(1)]);
        assert_eq!(wheel.next_deadline(), Some(10_000_000));
        out.clear();
        wheel.fire_due(5_000_000, &mut out);
        assert!(out.is_empty(), "horizon entry fired early");
        wheel.fire_due(11_000_000, &mut out);
        assert_eq!(out, vec![TimerToken::Node(2)]);
    }

    /// The satellite-4 partial-frame case: one frame arriving in
    /// pieces across readiness cycles (separate `drain_stream` calls
    /// with a persistent reader) reassembles exactly once.
    #[test]
    fn partial_frames_reassemble_across_readiness_cycles() {
        let (mut tx, mut rx) = stream_pair();
        rx.set_nonblocking(true).expect("nonblocking");
        let body: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let framed = frame(&body);
        let mut reader = FrameReader::new();
        let mut scratch = vec![0u8; 4096];

        // Cycle 1: the first half of the frame.
        tx.write_all(&framed[..300]).expect("first half");
        tx.flush().expect("flush");
        std::thread::sleep(Duration::from_millis(20));
        let (bodies, disconnected, corrupt) = drain_stream(&mut rx, &mut reader, &mut scratch);
        assert!(bodies.is_empty(), "half a frame must not decode");
        assert!(!disconnected && !corrupt);
        assert_eq!(reader.pending(), 300);

        // Cycle 2: the rest, plus a second complete frame.
        tx.write_all(&framed[300..]).expect("second half");
        tx.write_all(&frame(&[7, 8, 9])).expect("second frame");
        tx.flush().expect("flush");
        std::thread::sleep(Duration::from_millis(20));
        let (bodies, disconnected, _) = drain_stream(&mut rx, &mut reader, &mut scratch);
        assert_eq!(bodies, vec![body, vec![7, 8, 9]]);
        assert!(!disconnected);

        // Peer hangup is reported as a disconnect, not an error loop.
        drop(tx);
        std::thread::sleep(Duration::from_millis(20));
        let (bodies, disconnected, _) = drain_stream(&mut rx, &mut reader, &mut scratch);
        assert!(bodies.is_empty());
        assert!(disconnected);
    }

    /// The satellite-4 backpressure case: a bounded LinkBuf sheds
    /// frames at capacity (the caller counts `queue_drops`), reports
    /// `Blocked` against a full socket, and finishes the flush once
    /// the peer drains.
    #[test]
    fn write_buffer_backpressure_sheds_and_recovers() {
        let (mut tx, mut rx) = stream_pair();
        tx.set_nonblocking(true).expect("nonblocking");

        // Capacity bound: the fourth frame is shed.
        let mut small = LinkBuf::new(3);
        assert!(small.push(&[1]));
        assert!(small.push(&[2]));
        assert!(small.push(&[3]));
        assert!(!small.push(&[4]), "over-capacity push must be shed");
        assert_eq!(small.queued(), 3);

        // Socket backpressure: frames big enough to overrun the kernel
        // buffers while the peer reads nothing.
        let mut buf = LinkBuf::new(64);
        let body = vec![0xABu8; 256 * 1024];
        let mut pushed = 0;
        while pushed < 32 && buf.push(&body) {
            pushed += 1;
        }
        let first = buf.flush(&mut tx);
        assert_eq!(first.status, FlushStatus::Blocked, "kernel buffer filled");
        assert!(
            (first.frames as usize) < pushed,
            "some frames must still be queued"
        );
        assert!(!buf.is_empty());

        // Peer drains; the flush completes and every frame arrives
        // intact through the frame reader.
        let expected = pushed;
        let reader_thread = std::thread::spawn(move || {
            rx.set_nonblocking(false).expect("blocking reads");
            let mut reader = FrameReader::new();
            let mut scratch = vec![0u8; 64 * 1024];
            let mut got = 0;
            while got < expected {
                let n = rx.read(&mut scratch).expect("read");
                assert!(n > 0, "sender closed early");
                reader.extend(&scratch[..n]);
                while let Some(body) = reader.next_frame().expect("clean stream") {
                    assert_eq!(body.len(), 256 * 1024);
                    got += 1;
                }
            }
            got
        });
        let mut frames = first.frames;
        let deadline = Instant::now() + Duration::from_secs(10);
        while frames < pushed as u64 {
            assert!(Instant::now() < deadline, "flush never completed");
            match buf.flush(&mut tx) {
                FlushOutcome {
                    frames: f,
                    status: FlushStatus::Blocked,
                    ..
                } => {
                    frames += f;
                    std::thread::sleep(Duration::from_millis(2));
                }
                FlushOutcome {
                    frames: f,
                    status: FlushStatus::Clean,
                    ..
                } => {
                    frames += f;
                }
                FlushOutcome {
                    status: FlushStatus::Broken,
                    ..
                } => panic!("link broke"),
            }
        }
        assert_eq!(frames, pushed as u64);
        assert_eq!(reader_thread.join().expect("reader"), pushed);
        assert!(buf.is_empty());
    }

    /// A connection dying mid-frame rewinds the buffer to the frame
    /// boundary, so the replacement connection re-sends the whole
    /// frame.
    #[test]
    fn disconnect_rewinds_to_the_frame_boundary() {
        let mut buf = LinkBuf::new(8);
        assert!(buf.push(&[1, 2, 3]));
        assert!(buf.push(&[4, 5, 6]));
        // Simulate a partial write: the first frame (7 wire bytes) and
        // 2 bytes of the second went out before the connection died.
        buf.pos = 9;
        let end = *buf.ends.front().expect("frames queued");
        while buf.ends.front().is_some_and(|&e| e <= buf.pos) {
            buf.ends.pop_front();
            buf.front_start = end;
        }
        buf.on_disconnect();
        assert_eq!(buf.pos, 7, "rewound to the second frame's start");
        assert_eq!(buf.queued(), 1);
    }
}
