//! Cluster assembly and orchestration: boots an N-node tree over
//! loopback sockets, runs the scenario's workload in wall-clock time,
//! and aggregates the per-node sinks into the simulator's
//! [`ScenarioResult`] schema plus the socket-layer [`NetCounters`].
//!
//! The population (topology, subscriptions, node actors) comes from
//! the harness's shared `build_population`, so a [`NetConfig`] with
//! the same seed as a simulator run boots the *identical* population —
//! the basis of the sim-vs-wire cross-validation tests.
//!
//! Two runtimes execute that population: the thread-per-node
//! [`Cluster`] here (the reference), and the epoll
//! [`crate::ReactorCluster`] (thousands of dispatchers per process).
//! Both boot through [`boot_population`] and report through
//! [`aggregate_cores`], so a [`RuntimeKind`] choice changes scheduling
//! and socket mechanics — never protocol state or accounting.

use std::collections::HashMap;
use std::net::{TcpListener, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use eps_harness::{
    assemble, build_population, routing_stats, Population, ScenarioConfig, ScenarioResult,
    TraceRecord,
};
use eps_metrics::{DeliveryTracker, MessageCounters, NetCounters};
use eps_sim::{Rng, RngFactory};

use crate::core::{CoreSetup, NodeCore, NodeParams, RunEnv, Shared};
pub use crate::runtime::NodeAddrs;
use crate::runtime::{NodeRuntime, NodeSetup};

/// One real-socket run: the simulator's scenario parameters plus the
/// knobs only a socket runtime has.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// The scenario: topology, workload, algorithm — identical
    /// meaning to the simulator's. `duration` is interpreted as wall
    /// time (1 virtual second = 1 wall second).
    pub scenario: ScenarioConfig,
    /// Maximum wall time to wait after the workload for outstanding
    /// recoveries to converge (the run stops earlier the moment every
    /// intended delivery has happened).
    pub drain: Duration,
    /// Bounded outbound queue, in frames per link.
    pub queue_capacity: usize,
    /// Per-node trace capacity (publish/deliver records drive both
    /// the adaptive stop and the final result assembly; an overflow
    /// is reported in [`NetRunReport::trace_dropped`]).
    pub trace_capacity: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            scenario: ScenarioConfig::default(),
            drain: Duration::from_secs(2),
            queue_capacity: 1024,
            trace_capacity: 1 << 20,
        }
    }
}

impl NetConfig {
    /// Checks internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on the first violated constraint. Beyond the scenario's
    /// own rules, the socket runtime supports neither topological
    /// reconfiguration nor subscription churn (the overlay tree is
    /// fixed at boot).
    pub fn validate(&self) {
        self.scenario.validate();
        assert!(
            self.scenario.reconfig_interval.is_none(),
            "the socket runtime does not reconfigure the overlay"
        );
        assert!(
            self.scenario.churn_interval.is_none(),
            "the socket runtime does not churn subscriptions"
        );
        assert!(self.queue_capacity > 0, "queues need capacity");
        assert!(self.trace_capacity > 0, "traces need capacity");
    }
}

/// Which runtime executes a cluster: the thread-per-node reference
/// loop, or the epoll reactor multiplexing every socket onto a fixed
/// worker pool. Same protocol cores either way.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RuntimeKind {
    /// One thread per dispatcher (`crate::Cluster`).
    Thread,
    /// The epoll reactor with this many worker threads
    /// (`crate::ReactorCluster`); clamped to the node count.
    Reactor {
        /// Worker threads sharing the node slices.
        workers: usize,
    },
}

impl std::str::FromStr for RuntimeKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s.to_ascii_lowercase().as_str() {
            "thread" | "threads" => Ok(RuntimeKind::Thread),
            "reactor" | "epoll" => Ok(RuntimeKind::Reactor { workers: 2 }),
            other => Err(format!("unknown runtime '{other}' (thread | reactor)")),
        }
    }
}

/// End-to-end delivery latency over one run: publish-to-deliver wall
/// time, sampled at every client delivery record (first copies and
/// recoveries alike). The simulator has no wall clock, so this lives
/// beside [`ScenarioResult`] rather than inside it.
#[derive(Clone, Copy, Debug, Default)]
pub struct DeliveryLatency {
    /// Delivery records sampled.
    pub samples: u64,
    /// Median latency.
    pub p50: Duration,
    /// 99th-percentile latency (nearest-rank).
    pub p99: Duration,
    /// Worst observed latency.
    pub max: Duration,
}

/// What a finished cluster run reports: the simulator's result schema
/// assembled from the same code path, plus the socket-layer counters.
#[derive(Clone, Debug)]
pub struct NetRunReport {
    /// The shared summary schema (delivery rates, message counts,
    /// recovery latencies) — directly comparable to a simulator run.
    pub result: ScenarioResult,
    /// Socket-layer runtime counters, summed over nodes.
    pub net: NetCounters,
    /// Trace records that did not fit `trace_capacity` (non-zero means
    /// the result under-counts and the capacity should be raised).
    pub trace_dropped: u64,
    /// Publish-to-deliver latency percentiles (wall clock).
    pub latency: DeliveryLatency,
}

/// One booted-but-not-running node: the protocol core plus its bound
/// sockets and dial-jitter stream. Both runtimes consume these.
pub(crate) struct BootNode {
    pub core: NodeCore,
    pub listener: TcpListener,
    pub udp: UdpSocket,
    pub dial_rng: Rng,
}

/// A fully booted population: every socket bound (so the address
/// registry is complete before the first dial), every core built.
pub(crate) struct Boot {
    pub registry: Vec<NodeAddrs>,
    pub nodes: Vec<BootNode>,
    pub setup_subscription_msgs: u64,
}

/// Builds the population and binds every node's sockets on ephemeral
/// loopback ports. Shared by both runtimes: the cores a reactor run
/// starts from are bit-identical to a thread run's.
pub(crate) fn boot_population(config: &NetConfig) -> std::io::Result<Boot> {
    config.validate();
    let scenario = &config.scenario;
    let Population {
        topology,
        view,
        space,
        nodes,
        subscriptions: _,
        client_subscriptions: _,
        subscribers_of,
        setup_subscription_msgs,
    } = build_population(scenario);

    let mut listeners = Vec::with_capacity(scenario.nodes);
    let mut udps = Vec::with_capacity(scenario.nodes);
    let mut registry = Vec::with_capacity(scenario.nodes);
    for _ in 0..scenario.nodes {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let udp = UdpSocket::bind("127.0.0.1:0")?;
        registry.push(NodeAddrs {
            tcp: listener.local_addr()?,
            udp: udp.local_addr()?,
        });
        listeners.push(listener);
        udps.push(udp);
    }

    let factory = RngFactory::new(scenario.seed);
    let mut boot_nodes = Vec::with_capacity(scenario.nodes);
    for (i, (node, (listener, udp))) in nodes
        .into_iter()
        .zip(listeners.into_iter().zip(udps))
        .enumerate()
    {
        let id = node.id();
        let core = NodeCore::new(
            CoreSetup {
                node,
                // TCP tree links follow the routing view; the
                // physical neighborhood (gossip partners, cross
                // links over UDP) is passed alongside.
                neighbors: view.neighbors(id).to_vec(),
                graph_neighbors: topology.neighbors(id).to_vec(),
                space,
                subscribers_of: subscribers_of.clone(),
                gossip_rng: factory.indexed_stream("net-gossip", i as u64),
                loss_rng: factory.indexed_stream("net-loss", i as u64),
                counters_width: scenario.nodes,
                trace_capacity: config.trace_capacity,
            },
            node_params(config),
        );
        boot_nodes.push(BootNode {
            core,
            listener,
            udp,
            // A non-protocol stream: jittering dial retries must not
            // perturb the gossip/loss draws the crossval suite pins.
            dial_rng: factory.indexed_stream("net-dial", i as u64),
        });
    }
    Ok(Boot {
        registry,
        nodes: boot_nodes,
        setup_subscription_msgs,
    })
}

struct Slot {
    handle: Option<JoinHandle<NodeRuntime>>,
    control: Arc<AtomicBool>,
}

/// A running in-process cluster: one thread per dispatcher, loopback
/// TCP tree links, loopback UDP out-of-band channel.
pub struct Cluster {
    config: NetConfig,
    registry: Vec<NodeAddrs>,
    shared: Arc<Shared>,
    start: Instant,
    slots: Vec<Slot>,
    setup_subscription_msgs: u64,
}

impl Cluster {
    /// Boots the full population and starts every node thread.
    ///
    /// Sockets are bound on ephemeral loopback ports before any thread
    /// starts, so the address registry is complete from the first dial
    /// (peers may still *connect* in any order, and reconnects after a
    /// restart go through the retry/backoff path).
    pub fn launch(config: NetConfig) -> std::io::Result<Cluster> {
        let Boot {
            registry,
            nodes,
            setup_subscription_msgs,
        } = boot_population(&config)?;
        let shared = Arc::new(Shared::default());
        let start = Instant::now();
        let mut slots = Vec::with_capacity(nodes.len());
        for (i, boot) in nodes.into_iter().enumerate() {
            let runtime = NodeRuntime::new(
                boot.core,
                NodeSetup {
                    listener: boot.listener,
                    udp: boot.udp,
                    dial_rng: boot.dial_rng,
                    registry_addrs: registry.clone(),
                },
            )?;
            slots.push(spawn(runtime, &shared, start, i)?);
        }
        Ok(Cluster {
            config,
            registry,
            shared,
            start,
            slots,
            setup_subscription_msgs,
        })
    }

    /// The bound addresses, indexed by node id.
    pub fn addrs(&self) -> &[NodeAddrs] {
        &self.registry
    }

    /// Stops node `index`, keeps it down for `pause`, then rebinds the
    /// same addresses and relaunches it with its protocol state
    /// intact — a forced restart. While the node is down, its peers'
    /// dialers fail and back off; their retries show up in
    /// [`NetCounters::connect_retries`].
    pub fn restart_node(&mut self, index: usize, pause: Duration) -> std::io::Result<()> {
        let slot = &mut self.slots[index];
        slot.control.store(true, Ordering::Relaxed);
        let mut runtime = slot
            .handle
            .take()
            .expect("node is running")
            .join()
            .expect("node thread panicked");
        runtime.prepare_restart();
        std::thread::sleep(pause);
        let addrs = self.registry[index];
        let listener = bind_with_retry(|| TcpListener::bind(addrs.tcp))?;
        let udp = bind_with_retry(|| UdpSocket::bind(addrs.udp))?;
        runtime.rebind(listener, udp)?;
        self.slots[index] = spawn(runtime, &self.shared, self.start, index)?;
        Ok(())
    }

    /// Waits for the workload to finish and deliveries to converge
    /// (bounded by the drain budget), stops every node, and assembles
    /// the report.
    pub fn finish(mut self) -> NetRunReport {
        wait_for_convergence(&self.shared, &self.config, self.start);
        self.shared.stop_all.store(true, Ordering::Relaxed);
        let cores: Vec<NodeCore> = self
            .slots
            .drain(..)
            .map(|mut s| {
                s.handle
                    .take()
                    .expect("node is running")
                    .join()
                    .expect("node thread panicked")
                    .core
            })
            .collect();
        aggregate_cores(&self.config.scenario, &cores, self.setup_subscription_msgs)
    }
}

/// Polls the shared progress counters until the workload has finished
/// and every intended delivery has happened, or the drain budget runs
/// out. Both runtimes' coordinators stop through this.
pub(crate) fn wait_for_convergence(shared: &Shared, config: &NetConfig, start: Instant) {
    let n = config.scenario.nodes as u64;
    let wall = Duration::from_nanos(config.scenario.duration.as_nanos());
    let deadline = start + wall + config.drain;
    loop {
        let published_all = shared.publishers_done.load(Ordering::Relaxed) >= n;
        let converged = published_all
            && shared.delivered.load(Ordering::Relaxed) >= shared.expected.load(Ordering::Relaxed);
        if converged || Instant::now() >= deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Launches a cluster, lets it run to convergence, and reports —
/// the one-call entry point tests and the binary use.
pub fn run_cluster(config: NetConfig) -> std::io::Result<NetRunReport> {
    Ok(Cluster::launch(config)?.finish())
}

/// [`run_cluster`] with an explicit runtime choice.
pub fn run_cluster_as(config: NetConfig, kind: RuntimeKind) -> std::io::Result<NetRunReport> {
    match kind {
        RuntimeKind::Thread => run_cluster(config),
        RuntimeKind::Reactor { workers } => crate::reactor::run_reactor_cluster(config, workers),
    }
}

/// Runs node `index` of a *multi-process* cluster in the current
/// process, binding the addresses `registry[index]` and dialing the
/// rest. Every process derives the identical population from the
/// shared seed; peers may start in any order (the dialers retry with
/// backoff until their acceptors come up).
///
/// Runs for the scenario duration plus the full drain budget — with
/// no shared memory there is no cross-process convergence signal —
/// and reports this node's *local view*: its own publishes and
/// deliveries, its own counters. Cluster-wide delivery rates require
/// the single-process mode, where the coordinator sees every sink.
pub fn run_process_node(
    config: &NetConfig,
    index: usize,
    registry: Vec<NodeAddrs>,
) -> std::io::Result<NetRunReport> {
    config.validate();
    assert_eq!(
        registry.len(),
        config.scenario.nodes,
        "one address per dispatcher"
    );
    assert!(index < config.scenario.nodes, "node index out of range");
    let Population {
        topology,
        view,
        space,
        nodes,
        subscriptions: _,
        client_subscriptions: _,
        subscribers_of,
        setup_subscription_msgs,
    } = build_population(&config.scenario);
    let node = nodes
        .into_iter()
        .nth(index)
        .expect("index checked against nodes");
    let listener = TcpListener::bind(registry[index].tcp)?;
    let udp = UdpSocket::bind(registry[index].udp)?;
    let factory = RngFactory::new(config.scenario.seed);
    let id = node.id();
    let core = NodeCore::new(
        CoreSetup {
            node,
            // TCP tree links follow the routing view; see `launch`.
            neighbors: view.neighbors(id).to_vec(),
            graph_neighbors: topology.neighbors(id).to_vec(),
            space,
            subscribers_of,
            gossip_rng: factory.indexed_stream("net-gossip", index as u64),
            loss_rng: factory.indexed_stream("net-loss", index as u64),
            counters_width: config.scenario.nodes,
            trace_capacity: config.trace_capacity,
        },
        node_params(config),
    );
    let runtime = NodeRuntime::new(
        core,
        NodeSetup {
            listener,
            udp,
            dial_rng: factory.indexed_stream("net-dial", index as u64),
            registry_addrs: registry,
        },
    )?;
    let shared = Arc::new(Shared::default());
    let control = Arc::new(AtomicBool::new(false));
    let start = Instant::now();
    let wall = Duration::from_nanos(config.scenario.duration.as_nanos()) + config.drain;
    let timer_flag = Arc::clone(&control);
    std::thread::Builder::new()
        .name("eps-net-stop-timer".into())
        .spawn(move || {
            std::thread::sleep(wall);
            timer_flag.store(true, Ordering::Relaxed);
        })?;
    let runtime = runtime.run(RunEnv {
        shared,
        control,
        start,
    });
    Ok(aggregate_cores(
        &config.scenario,
        &[runtime.core],
        setup_subscription_msgs,
    ))
}

pub(crate) fn node_params(config: &NetConfig) -> NodeParams {
    let s = &config.scenario;
    NodeParams {
        payload_bits: s.event_payload_bits,
        loss_rate: s.link_error_rate,
        publish_rate: s.publish_rate,
        gossip_interval: s.gossip_interval,
        adaptive: s.adaptive_gossip,
        duration: s.duration,
        queue_capacity: config.queue_capacity,
    }
}

fn spawn(
    runtime: NodeRuntime,
    shared: &Arc<Shared>,
    start: Instant,
    index: usize,
) -> std::io::Result<Slot> {
    let control = Arc::new(AtomicBool::new(false));
    let env = RunEnv {
        shared: Arc::clone(shared),
        control: Arc::clone(&control),
        start,
    };
    let handle = std::thread::Builder::new()
        .name(format!("eps-net-{index}"))
        .spawn(move || runtime.run(env))?;
    Ok(Slot {
        handle: Some(handle),
        control,
    })
}

/// Rebinding a just-freed address can race the kernel's cleanup;
/// retry briefly instead of failing the restart.
pub(crate) fn bind_with_retry<S>(
    mut bind: impl FnMut() -> std::io::Result<S>,
) -> std::io::Result<S> {
    let mut last = None;
    for _ in 0..40 {
        match bind() {
            Ok(sock) => return Ok(sock),
            Err(e) => {
                last = Some(e);
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
    Err(last.expect("at least one attempt"))
}

/// Merges every node's sinks into one report, through the same
/// `assemble` path the simulator uses: first all publishes (so the
/// global tracker knows every event and its intended audience), then
/// all deliveries. Runtime-agnostic: both the thread cluster and the
/// reactor hand their finished cores here.
pub(crate) fn aggregate_cores(
    scenario: &ScenarioConfig,
    cores: &[NodeCore],
    setup_subscription_msgs: u64,
) -> NetRunReport {
    let mut tracker = DeliveryTracker::new_tolerant();
    let mut counters = MessageCounters::new(scenario.nodes);
    let mut net = NetCounters::default();
    let mut trace_dropped = 0;
    let mut outstanding = 0;
    let mut evictions = 0;
    let mut published_at = HashMap::new();
    let mut latencies_ns: Vec<u64> = Vec::new();

    for core in cores {
        if let Some(trace) = &core.trace {
            trace_dropped += trace.dropped();
            for rec in trace.records() {
                if let TraceRecord::Publish {
                    at,
                    event,
                    expected,
                    ..
                } = *rec
                {
                    tracker.published(event, at, expected);
                    published_at.insert(event, at);
                }
            }
        }
    }
    for core in cores {
        if let Some(trace) = &core.trace {
            for rec in trace.records() {
                if let TraceRecord::Deliver {
                    at,
                    node,
                    client: _,
                    event,
                    recovered,
                } = *rec
                {
                    // One record per matching local client; the
                    // tracker's per-(event, node) sets keep duplicate
                    // arrivals out while each client record still
                    // counts towards the delivered total.
                    if recovered {
                        tracker.recovered(event, node, at);
                    } else {
                        tracker.delivered(event, node);
                    }
                    if let Some(&pub_at) = published_at.get(&event) {
                        latencies_ns.push(at.as_nanos().saturating_sub(pub_at.as_nanos()));
                    }
                }
            }
        }
    }
    for core in cores {
        counters.absorb(&core.counters);
        net.absorb(&core.net);
        outstanding += core.outstanding_losses();
        evictions += core.lost_evictions();
    }
    counters.count_lost_evictions(evictions);
    let routing = routing_stats(
        cores.iter().map(|core| core.sim_node()),
        setup_subscription_msgs,
    );
    let result = assemble(scenario, &tracker, &counters, outstanding, 0, 0, routing);
    NetRunReport {
        result,
        net,
        trace_dropped,
        latency: latency_percentiles(&mut latencies_ns),
    }
}

/// Nearest-rank percentiles over the publish-to-deliver samples.
fn latency_percentiles(latencies_ns: &mut [u64]) -> DeliveryLatency {
    if latencies_ns.is_empty() {
        return DeliveryLatency::default();
    }
    latencies_ns.sort_unstable();
    let at = |pct: u64| {
        let idx = ((latencies_ns.len() as u64 - 1) * pct / 100) as usize;
        Duration::from_nanos(latencies_ns[idx])
    };
    DeliveryLatency {
        samples: latencies_ns.len() as u64,
        p50: at(50),
        p99: at(99),
        max: Duration::from_nanos(*latencies_ns.last().expect("non-empty")),
    }
}
