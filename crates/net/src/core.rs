//! The transport-independent half of a socket-mode node: one
//! [`SimNode`] plus its timers, RNG streams, and metrics sinks, driven
//! by whoever owns the sockets.
//!
//! Both runtimes — the thread-per-node reference loop in `runtime.rs`
//! and the epoll reactor in `reactor.rs` — wrap this same core, which
//! is what makes their same-seed equivalence more than a test
//! assertion: everything that touches protocol state, RNG draws, or
//! byte accounting lives here, and the runtimes differ only in how
//! bytes and wakeups reach it.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use eps_gossip::codec;
use eps_gossip::{Channel, Envelope};
use eps_harness::{AdaptiveGossip, NodeCtx, Outgoing, ScenarioTrace, SimNode, TraceRecord};
use eps_metrics::{DeliveryTracker, MessageCounters, NetCounters};
use eps_overlay::NodeId;
use eps_pubsub::{ClientId, PatternSpace, PubSubMessage};
use eps_sim::{Rng, SimTime};

/// Run-wide shared state: the stop flag and the adaptive-stop
/// progress counters the coordinator polls.
#[derive(Debug, Default)]
pub(crate) struct Shared {
    /// Set once by the coordinator; every node thread exits its loop.
    pub stop_all: AtomicBool,
    /// Intended deliveries, summed over all publishes so far.
    pub expected: AtomicU64,
    /// Actual deliveries (first copies only, recovered or not).
    pub delivered: AtomicU64,
    /// Nodes whose publish schedule is exhausted.
    pub publishers_done: AtomicU64,
}

/// Everything a node thread borrows from the cluster for one run.
#[derive(Clone)]
pub(crate) struct RunEnv {
    pub shared: Arc<Shared>,
    /// Per-node stop flag (restart support: stops one node only).
    pub control: Arc<AtomicBool>,
    /// The cluster's common time origin; wall time since `start` plays
    /// the role of the simulator's virtual time.
    pub start: Instant,
}

/// One message the core wants on the wire: the target, which channel
/// class it travels on, and the already-encoded (post-`fit`) body.
/// The transport layer frames/prefixes it and does the socket work.
pub(crate) struct Outbound {
    pub to: NodeId,
    pub channel: Channel,
    pub body: Vec<u8>,
}

/// Constructor parameters that are per-node (everything scenario-wide
/// comes from [`NodeParams`] passed alongside).
pub(crate) struct CoreSetup {
    pub node: SimNode,
    /// Routing-view neighbors (TCP tree links).
    pub neighbors: Vec<NodeId>,
    /// Physical-graph neighbors (gossip neighborhood).
    pub graph_neighbors: Vec<NodeId>,
    pub space: PatternSpace,
    pub subscribers_of: Vec<Vec<(NodeId, ClientId)>>,
    pub gossip_rng: Rng,
    pub loss_rng: Rng,
    pub counters_width: usize,
    pub trace_capacity: usize,
}

pub(crate) struct NodeParams {
    pub payload_bits: u64,
    pub loss_rate: f64,
    pub publish_rate: f64,
    pub gossip_interval: SimTime,
    pub adaptive: Option<AdaptiveGossip>,
    pub duration: SimTime,
    pub queue_capacity: usize,
}

/// The protocol state of one socket-mode node. Owns no sockets;
/// returns [`Outbound`] batches for the runtime to put on the wire.
pub(crate) struct NodeCore {
    pub id: NodeId,
    node: SimNode,
    /// Routing-view neighbors: the peers this node keeps TCP tree
    /// links to, and the targets of protocol forwards.
    neighbors: Vec<NodeId>,
    /// Physical-graph neighbors: the neighborhood gossip draws
    /// partners from. Equal to `neighbors` on tree overlays; the
    /// extra members (cross links) are reached over UDP.
    graph_neighbors: Vec<NodeId>,
    space: PatternSpace,
    subscribers_of: Vec<Vec<(NodeId, ClientId)>>,

    payload_bits: u64,
    loss_rate: f64,
    publish_rate: f64,
    gossip_interval: SimTime,
    adaptive: Option<AdaptiveGossip>,
    duration: SimTime,
    pub queue_capacity: usize,

    gossip_rng: Rng,
    loss_rng: Rng,

    pub tracker: DeliveryTracker,
    pub counters: MessageCounters,
    pub net: NetCounters,
    pub trace: Option<ScenarioTrace>,

    /// Virtual time of the next publish tick (`None` = schedule
    /// exhausted). Mirrors the simulator: the first tick is one
    /// workload-RNG draw after zero, each tick renews iff
    /// `tick + delay < duration`, and the last scheduled tick fires
    /// even past `duration`.
    publish_vnext: Option<SimTime>,
    publish_done_reported: bool,
    gossip_vnext: SimTime,
}

impl NodeCore {
    pub(crate) fn new(setup: CoreSetup, params: NodeParams) -> NodeCore {
        let mut node = setup.node;
        let id = node.id();
        // The simulator seeds each publish process with one delay draw
        // before anything else touches the workload stream; replay
        // that exactly so the publication sequences coincide.
        let publish_vnext = if params.publish_rate > 0.0 {
            Some(node.next_publish_delay(params.publish_rate))
        } else {
            None
        };
        let mut gossip_rng = setup.gossip_rng;
        // Stagger gossip phases uniformly over one interval, as the
        // simulator does (from this node's own stream — a documented
        // sim/net divergence; see DESIGN.md).
        let gossip_vnext = params
            .gossip_interval
            .mul_f64(gossip_rng.random_range(0.0..1.0));
        NodeCore {
            id,
            node,
            neighbors: setup.neighbors,
            graph_neighbors: setup.graph_neighbors,
            space: setup.space,
            subscribers_of: setup.subscribers_of,
            payload_bits: params.payload_bits,
            loss_rate: params.loss_rate,
            publish_rate: params.publish_rate,
            gossip_interval: params.gossip_interval,
            adaptive: params.adaptive,
            duration: params.duration,
            queue_capacity: params.queue_capacity,
            gossip_rng,
            loss_rng: setup.loss_rng,
            tracker: DeliveryTracker::new(),
            counters: MessageCounters::new(setup.counters_width),
            net: NetCounters::default(),
            trace: Some(ScenarioTrace::new(setup.trace_capacity)),
            publish_vnext,
            publish_done_reported: false,
            gossip_vnext,
        }
    }

    /// The wrapped node actor, for end-of-run routing-state sampling.
    pub(crate) fn sim_node(&self) -> &SimNode {
        &self.node
    }

    /// Routing-view neighbors — the peers the runtime keeps TCP tree
    /// links to.
    pub(crate) fn neighbors(&self) -> &[NodeId] {
        &self.neighbors
    }

    /// `Lost` entries this node's recovery algorithm still chases.
    pub(crate) fn outstanding_losses(&self) -> u64 {
        self.node.outstanding_losses() as u64
    }

    /// `Lost` entries evicted under the capacity bound.
    pub(crate) fn lost_evictions(&self) -> u64 {
        self.node.lost_evictions()
    }

    /// Reports an empty publish schedule to the convergence counters;
    /// call once before the first poll/loop iteration.
    pub(crate) fn bootstrap(&mut self, shared: &Shared) {
        if self.publish_vnext.is_none() {
            self.report_publish_done(shared);
        }
    }

    fn report_publish_done(&mut self, shared: &Shared) {
        if !self.publish_done_reported {
            self.publish_done_reported = true;
            shared.publishers_done.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The earliest virtual time at which a timer is due: the next
    /// publish tick (if the schedule is live) or the next gossip round.
    /// Both runtimes sleep/arm against this one helper, so neither can
    /// drift into busy-polling or late ticks independently.
    pub(crate) fn next_deadline(&self) -> SimTime {
        match self.publish_vnext {
            Some(p) => p.min(self.gossip_vnext),
            None => self.gossip_vnext,
        }
    }

    /// Handles one decoded-frame body arriving from `from`, applying
    /// receive-side loss injection on the tree/cross channels. Returns
    /// what the node wants sent in response.
    pub(crate) fn handle_body(
        &mut self,
        from: NodeId,
        body: &[u8],
        tree: bool,
        now: SimTime,
        shared: &Shared,
    ) -> Vec<Outbound> {
        let env_msg = match codec::decode(body, self.payload_bits) {
            Ok(m) => m,
            Err(_) => {
                self.net.decode_errors += 1;
                return Vec::new();
            }
        };
        // Receive-side loss injection, the net analogue of the
        // simulator's per-link error rate ε. Applied to tree traffic
        // and to cross-link event copies, which the simulator runs
        // through the same lossy link model even though this runtime
        // carries them over UDP. The out-of-band recovery channel
        // stays lossless (the paper's default configuration, and real
        // loopback UDP nearly is).
        if (tree
            && matches!(
                env_msg,
                Envelope::PubSub(PubSubMessage::Event(_)) | Envelope::Gossip(_)
            )
            || matches!(env_msg, Envelope::CrossEvent(_)))
            && self.loss_rate > 0.0
            && self.loss_rng.random_bool(self.loss_rate)
        {
            self.net.injected_drops += 1;
            return Vec::new();
        }
        let before = self.trace_len();
        let out = {
            let mut ctx = NodeCtx {
                now,
                neighbors: &self.neighbors,
                graph_neighbors: &self.graph_neighbors,
                space: &self.space,
                subscribers_of: &self.subscribers_of,
                gossip_rng: &mut self.gossip_rng,
                tracker: &mut self.tracker,
                counters: &mut self.counters,
                trace: &mut self.trace,
            };
            self.node.handle(from, env_msg, &mut ctx)
        };
        let delivered = self.delivers_since(before);
        if delivered > 0 {
            shared.delivered.fetch_add(delivered, Ordering::Relaxed);
        }
        self.route(out)
    }

    fn trace_len(&self) -> usize {
        self.trace.as_ref().map(|t| t.len()).unwrap_or(0)
    }

    /// Deliver records appended since `before` — the increment for the
    /// adaptive-stop counter. Scans only the new tail, so the cost per
    /// message stays constant.
    fn delivers_since(&self, before: usize) -> u64 {
        self.trace
            .as_ref()
            .map(|t| {
                t.records()[before.min(t.len())..]
                    .iter()
                    .filter(|r| matches!(r, TraceRecord::Deliver { .. }))
                    .count() as u64
            })
            .unwrap_or(0)
    }

    /// Fires every timer due at virtual time `now`: at most one
    /// publish tick (renewal uses the *scheduled* time, exactly like
    /// the simulator's queue — wall-clock jitter must not change how
    /// many events a seed publishes) and as many gossip rounds as have
    /// come due. Returns whether anything fired and the traffic it
    /// produced.
    pub(crate) fn tick_timers(&mut self, now: SimTime, shared: &Shared) -> (bool, Vec<Outbound>) {
        let mut worked = false;
        let mut sends = Vec::new();
        if let Some(vnext) = self.publish_vnext {
            if now >= vnext {
                worked = true;
                let expected_before = self.tracker.expected_total();
                let trace_before = self.trace_len();
                let (out, delay) = {
                    let mut ctx = NodeCtx {
                        now,
                        neighbors: &self.neighbors,
                        graph_neighbors: &self.graph_neighbors,
                        space: &self.space,
                        subscribers_of: &self.subscribers_of,
                        gossip_rng: &mut self.gossip_rng,
                        tracker: &mut self.tracker,
                        counters: &mut self.counters,
                        trace: &mut self.trace,
                    };
                    self.node.tick_publish(self.publish_rate, &mut ctx)
                };
                let expected = self.tracker.expected_total() - expected_before;
                if expected > 0 {
                    shared.expected.fetch_add(expected, Ordering::Relaxed);
                }
                let delivered = self.delivers_since(trace_before);
                if delivered > 0 {
                    shared.delivered.fetch_add(delivered, Ordering::Relaxed);
                }
                sends.extend(self.route(out));
                if vnext + delay < self.duration {
                    self.publish_vnext = Some(vnext + delay);
                } else {
                    self.publish_vnext = None;
                    self.report_publish_done(shared);
                }
            }
        }
        // Gossip keeps running through the drain window (unlike the
        // simulator, whose ticks stop renewing at `duration`): real
        // recovery needs rounds to finish the job. Documented as a
        // sim/net equivalence rule.
        while now >= self.gossip_vnext {
            worked = true;
            let (out, next) = {
                let mut ctx = NodeCtx {
                    now,
                    neighbors: &self.neighbors,
                    graph_neighbors: &self.graph_neighbors,
                    space: &self.space,
                    subscribers_of: &self.subscribers_of,
                    gossip_rng: &mut self.gossip_rng,
                    tracker: &mut self.tracker,
                    counters: &mut self.counters,
                    trace: &mut self.trace,
                };
                self.node
                    .tick_gossip(self.gossip_interval, self.adaptive, &mut ctx)
            };
            sends.extend(self.route(out));
            self.gossip_vnext += next;
        }
        (worked, sends)
    }

    /// Encodes one batch of node output, charging the send-layer
    /// counters exactly as the simulator's `Scenario::send` does.
    fn route(&mut self, out: Vec<Outgoing>) -> Vec<Outbound> {
        let mut sends = Vec::with_capacity(out.len());
        for Outgoing { to, env: msg } in out {
            // Event and subscription traffic is counted at the send
            // layer, mirroring the simulator's `Scenario::send` (gossip
            // classes are counted inside the node when the action is
            // decided).
            match &msg {
                Envelope::PubSub(PubSubMessage::Event(_)) | Envelope::CrossEvent(_) => {
                    self.counters.count_event(self.id)
                }
                Envelope::PubSub(_) => self.counters.count_subscription(self.id),
                _ => {}
            }
            // Enforce the paper's digest budget before encoding; a
            // trimmed digest is re-announced by later rounds.
            let (msg, dropped) = codec::fit(msg, self.payload_bits);
            if dropped > 0 {
                self.net.digest_truncations += 1;
                self.net.route_drops += dropped;
            }
            let body = match codec::encode(&msg, self.payload_bits) {
                Ok(b) => b,
                Err(_) => {
                    // Unencodable after fitting — accounting bug, not
                    // a transient; surface it in the counters.
                    self.net.decode_errors += 1;
                    continue;
                }
            };
            // The cross-validation invariant: on-the-wire bytes are
            // the simulator's wire_bits, always.
            let bits = msg.wire_bits(self.payload_bits);
            assert_eq!(
                body.len() as u64 * 8,
                bits,
                "codec framed size diverged from wire_bits"
            );
            // Wire-bit accounting mirrors the simulator's send layer,
            // charged on the post-fit envelope — the bits that actually
            // hit the wire.
            match &msg {
                Envelope::Gossip(_) => self.counters.count_gossip_bits(bits),
                Envelope::Request(_) | Envelope::RangeRequest { .. } => {
                    self.counters.count_request_bits(bits)
                }
                Envelope::Reply(_) => self.counters.count_reply_bits(bits),
                _ => {}
            }
            sends.push(Outbound {
                to,
                channel: msg.channel(),
                body,
            });
        }
        sends
    }
}

/// Dial-retry backoff with jitter: the deterministic base doubles up
/// to the cap, but each wait is scaled by a uniform draw in
/// `[0.5, 1.5)` from the node's dial stream — so peers restarted
/// together do not hammer an acceptor in lockstep. Shared by both
/// runtimes.
pub(crate) fn jittered_backoff(base: Duration, dial_rng: &mut Rng) -> Duration {
    base.mul_f64(dial_rng.random_range(0.5..1.5))
}
