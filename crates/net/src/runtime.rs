//! The per-node runtime: one thread that owns one [`SimNode`] and
//! drives it from real sockets and wall-clock timers instead of a
//! virtual-time event queue.
//!
//! The protocol stack is *exactly* the simulator's — the same
//! `Dispatcher`, the same `GossipEngine`, the same `SimNode` actor
//! boundary. Only the outside changes:
//!
//! - tree links are nonblocking TCP connections (the lower-id endpoint
//!   dials, the higher-id endpoint accepts; see
//!   [`eps_overlay::LinkId::dialer`]), carrying length-prefixed frames
//!   of codec-encoded envelopes;
//! - the out-of-band recovery channel is UDP, one datagram per
//!   envelope, prefixed with the 4-byte sender id;
//! - publish and gossip ticks fire from the wall clock, with the
//!   publish schedule replaying the simulator's virtual-time schedule
//!   draw for draw (same seed → same publication sequence);
//! - outbound tree traffic sits in a bounded per-link queue; overflow
//!   is counted, not buffered forever;
//! - a dialer whose peer is not up (yet, or again) retries with
//!   exponential backoff, so a cluster tolerates any boot order and
//!   node restarts.

use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use eps_gossip::codec;
use eps_gossip::{Channel, Envelope};
use eps_harness::{AdaptiveGossip, NodeCtx, Outgoing, ScenarioTrace, SimNode, TraceRecord};
use eps_metrics::{DeliveryTracker, MessageCounters, NetCounters};
use eps_overlay::{LinkId, NodeId};
use eps_pubsub::{ClientId, PatternSpace, PubSubMessage};
use eps_sim::{Rng, SimTime};

use crate::frame::{frame, FrameReader};

/// Where one node listens: its TCP (tree links) and UDP (out-of-band)
/// socket addresses.
#[derive(Clone, Copy, Debug)]
pub struct NodeAddrs {
    /// The tree-link listener.
    pub tcp: SocketAddr,
    /// The out-of-band datagram socket.
    pub udp: SocketAddr,
}

/// Run-wide shared state: the stop flag and the adaptive-stop
/// progress counters the coordinator polls.
#[derive(Debug, Default)]
pub(crate) struct Shared {
    /// Set once by the coordinator; every node thread exits its loop.
    pub stop_all: AtomicBool,
    /// Intended deliveries, summed over all publishes so far.
    pub expected: AtomicU64,
    /// Actual deliveries (first copies only, recovered or not).
    pub delivered: AtomicU64,
    /// Nodes whose publish schedule is exhausted.
    pub publishers_done: AtomicU64,
}

/// Everything a node thread borrows from the cluster for one run.
#[derive(Clone)]
pub(crate) struct RunEnv {
    pub shared: Arc<Shared>,
    /// Per-node stop flag (restart support: stops one node only).
    pub control: Arc<AtomicBool>,
    /// The cluster's common time origin; wall time since `start` plays
    /// the role of the simulator's virtual time.
    pub start: Instant,
}

const DIAL_TIMEOUT: Duration = Duration::from_millis(20);
const BACKOFF_START: Duration = Duration::from_millis(10);
const BACKOFF_CAP: Duration = Duration::from_millis(500);
const IDLE_SLEEP: Duration = Duration::from_micros(200);
/// Datagrams drained per loop iteration (bounds one node's share of
/// the iteration without starving its timers).
const UDP_BATCH: usize = 64;

struct Conn {
    stream: TcpStream,
    reader: FrameReader,
}

/// One tree link as this node sees it: the peer, the connection (if
/// currently up), the dial/backoff state when this side dials, and
/// the bounded outbound queue of framed messages.
struct Link {
    peer: NodeId,
    dialer: bool,
    conn: Option<Conn>,
    next_attempt: Instant,
    backoff: Duration,
    attempts_this_session: u64,
    outbox: VecDeque<Vec<u8>>,
    write_pos: usize,
}

/// An accepted connection whose 4-byte hello (the peer's node id) has
/// not fully arrived yet.
struct PendingConn {
    stream: TcpStream,
    hello: [u8; 4],
    got: usize,
}

/// One node of the cluster: the simulator's node actor plus its
/// sockets, timers, per-node RNG streams, and per-node metrics sinks.
/// Returned intact when the thread stops, so a restart carries the
/// protocol state across.
pub(crate) struct NodeRuntime {
    pub id: NodeId,
    node: SimNode,
    /// Routing-view neighbors: the peers this node keeps TCP tree
    /// links to, and the targets of protocol forwards.
    neighbors: Vec<NodeId>,
    /// Physical-graph neighbors: the neighborhood gossip draws
    /// partners from. Equal to `neighbors` on tree overlays; the
    /// extra members (cross links) are reached over UDP.
    graph_neighbors: Vec<NodeId>,
    space: PatternSpace,
    subscribers_of: Vec<Vec<(NodeId, ClientId)>>,

    payload_bits: u64,
    loss_rate: f64,
    publish_rate: f64,
    gossip_interval: SimTime,
    adaptive: Option<AdaptiveGossip>,
    duration: SimTime,
    queue_capacity: usize,

    gossip_rng: Rng,
    loss_rng: Rng,

    pub tracker: DeliveryTracker,
    pub counters: MessageCounters,
    pub net: NetCounters,
    pub trace: Option<ScenarioTrace>,

    /// Virtual time of the next publish tick (`None` = schedule
    /// exhausted). Mirrors the simulator: the first tick is one
    /// workload-RNG draw after zero, each tick renews iff
    /// `tick + delay < duration`, and the last scheduled tick fires
    /// even past `duration`.
    publish_vnext: Option<SimTime>,
    publish_done_reported: bool,
    gossip_vnext: SimTime,

    listener: Option<TcpListener>,
    udp: Option<UdpSocket>,
    links: Vec<Link>,
    pending: Vec<PendingConn>,
    /// Socket addresses of every node, cloned out of the cluster's
    /// shared registry so the hot path does no `Arc` indirection.
    registry_addrs: Vec<NodeAddrs>,
}

/// Constructor parameters that are per-node (everything scenario-wide
/// comes from the config passed alongside).
pub(crate) struct NodeSetup {
    pub node: SimNode,
    /// Routing-view neighbors (TCP tree links).
    pub neighbors: Vec<NodeId>,
    /// Physical-graph neighbors (gossip neighborhood).
    pub graph_neighbors: Vec<NodeId>,
    pub space: PatternSpace,
    pub subscribers_of: Vec<Vec<(NodeId, ClientId)>>,
    pub gossip_rng: Rng,
    pub loss_rng: Rng,
    pub listener: TcpListener,
    pub udp: UdpSocket,
    pub counters_width: usize,
    pub trace_capacity: usize,
    /// Every node's socket addresses, indexed by node id.
    pub registry_addrs: Vec<NodeAddrs>,
}

pub(crate) struct NodeParams {
    pub payload_bits: u64,
    pub loss_rate: f64,
    pub publish_rate: f64,
    pub gossip_interval: SimTime,
    pub adaptive: Option<AdaptiveGossip>,
    pub duration: SimTime,
    pub queue_capacity: usize,
}

impl NodeRuntime {
    pub(crate) fn new(setup: NodeSetup, params: NodeParams) -> std::io::Result<Self> {
        setup.listener.set_nonblocking(true)?;
        setup.udp.set_nonblocking(true)?;
        let id = setup.node.id();
        let links = setup
            .neighbors
            .iter()
            .map(|&peer| {
                let link = LinkId::new(id, peer);
                Link {
                    peer,
                    dialer: link.dialer() == id,
                    conn: None,
                    next_attempt: Instant::now(),
                    backoff: BACKOFF_START,
                    attempts_this_session: 0,
                    outbox: VecDeque::new(),
                    write_pos: 0,
                }
            })
            .collect();
        let mut node = setup.node;
        // The simulator seeds each publish process with one delay draw
        // before anything else touches the workload stream; replay
        // that exactly so the publication sequences coincide.
        let publish_vnext = if params.publish_rate > 0.0 {
            Some(node.next_publish_delay(params.publish_rate))
        } else {
            None
        };
        let mut gossip_rng = setup.gossip_rng;
        // Stagger gossip phases uniformly over one interval, as the
        // simulator does (from this node's own stream — a documented
        // sim/net divergence; see DESIGN.md).
        let gossip_vnext = params
            .gossip_interval
            .mul_f64(gossip_rng.random_range(0.0..1.0));
        Ok(NodeRuntime {
            id,
            node,
            neighbors: setup.neighbors,
            graph_neighbors: setup.graph_neighbors,
            space: setup.space,
            subscribers_of: setup.subscribers_of,
            payload_bits: params.payload_bits,
            loss_rate: params.loss_rate,
            publish_rate: params.publish_rate,
            gossip_interval: params.gossip_interval,
            adaptive: params.adaptive,
            duration: params.duration,
            queue_capacity: params.queue_capacity,
            gossip_rng,
            loss_rng: setup.loss_rng,
            tracker: DeliveryTracker::new(),
            counters: MessageCounters::new(setup.counters_width),
            net: NetCounters::default(),
            trace: Some(ScenarioTrace::new(setup.trace_capacity)),
            publish_vnext,
            publish_done_reported: false,
            gossip_vnext,
            listener: Some(setup.listener),
            udp: Some(setup.udp),
            links,
            pending: Vec::new(),
            registry_addrs: setup.registry_addrs,
        })
    }

    /// The wrapped node actor, for end-of-run routing-state sampling.
    pub(crate) fn sim_node(&self) -> &SimNode {
        &self.node
    }

    /// `Lost` entries this node's recovery algorithm still chases.
    pub(crate) fn outstanding_losses(&self) -> u64 {
        self.node.outstanding_losses() as u64
    }

    /// `Lost` entries evicted under the capacity bound.
    pub(crate) fn lost_evictions(&self) -> u64 {
        self.node.lost_evictions()
    }

    /// Drops the sockets and all live connections so the cluster can
    /// rebind the same addresses for a restart. Queued outbound
    /// traffic is discarded, like a process restart would.
    pub(crate) fn prepare_restart(&mut self) {
        self.listener = None;
        self.udp = None;
        self.pending.clear();
        for link in &mut self.links {
            link.conn = None;
            link.outbox.clear();
            link.write_pos = 0;
            link.backoff = BACKOFF_START;
            link.attempts_this_session = 0;
            link.next_attempt = Instant::now();
        }
    }

    /// Installs freshly bound sockets after [`Self::prepare_restart`].
    pub(crate) fn rebind(&mut self, listener: TcpListener, udp: UdpSocket) -> std::io::Result<()> {
        listener.set_nonblocking(true)?;
        udp.set_nonblocking(true)?;
        self.listener = Some(listener);
        self.udp = Some(udp);
        Ok(())
    }

    /// The thread body: polls sockets and timers until stopped, then
    /// returns itself so the cluster can aggregate (or restart it).
    pub(crate) fn run(mut self, env: RunEnv) -> NodeRuntime {
        let mut scratch = vec![0u8; 64 * 1024];
        if self.publish_vnext.is_none() {
            self.report_publish_done(&env);
        }
        loop {
            if env.shared.stop_all.load(Ordering::Relaxed) || env.control.load(Ordering::Relaxed) {
                break;
            }
            let mut worked = false;
            worked |= self.accept_conns();
            worked |= self.progress_hellos();
            self.dial_due();
            worked |= self.read_udp(&mut scratch, &env);
            worked |= self.read_links(&mut scratch, &env);
            worked |= self.tick_timers(&env);
            self.flush_links();
            if !worked {
                std::thread::sleep(IDLE_SLEEP);
            }
        }
        self
    }

    fn now_virtual(&self, env: &RunEnv) -> SimTime {
        SimTime::from_nanos(env.start.elapsed().as_nanos() as u64)
    }

    fn report_publish_done(&mut self, env: &RunEnv) {
        if !self.publish_done_reported {
            self.publish_done_reported = true;
            env.shared.publishers_done.fetch_add(1, Ordering::Relaxed);
        }
    }

    // ---- connection management -------------------------------------

    fn accept_conns(&mut self) -> bool {
        let Some(listener) = &self.listener else {
            return false;
        };
        let mut worked = false;
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                        continue;
                    }
                    self.net.accepted_conns += 1;
                    self.pending.push(PendingConn {
                        stream,
                        hello: [0; 4],
                        got: 0,
                    });
                    worked = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
        worked
    }

    fn progress_hellos(&mut self) -> bool {
        let mut worked = false;
        let mut i = 0;
        while i < self.pending.len() {
            let pending = &mut self.pending[i];
            let got = pending.got;
            match pending.stream.read(&mut pending.hello[got..]) {
                Ok(0) => {
                    self.pending.swap_remove(i);
                    continue;
                }
                Ok(n) => {
                    pending.got += n;
                    worked = true;
                    if pending.got == 4 {
                        let peer = NodeId::new(u32::from_le_bytes(pending.hello));
                        let pending = self.pending.swap_remove(i);
                        self.attach(peer, pending.stream);
                        continue;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {}
                Err(_) => {
                    self.pending.swap_remove(i);
                    continue;
                }
            }
            i += 1;
        }
        worked
    }

    /// Binds an accepted, hello-complete stream to its link (replacing
    /// any dead connection). Hellos from non-neighbors are dropped.
    fn attach(&mut self, peer: NodeId, stream: TcpStream) {
        if let Some(link) = self.links.iter_mut().find(|l| l.peer == peer) {
            link.conn = Some(Conn {
                stream,
                reader: FrameReader::new(),
            });
            link.write_pos = 0;
        }
    }

    fn dial_due(&mut self) {
        let now = Instant::now();
        for link in &mut self.links {
            if !link.dialer || link.conn.is_some() || now < link.next_attempt {
                continue;
            }
            self.net.connect_attempts += 1;
            if link.attempts_this_session > 0 {
                self.net.connect_retries += 1;
            }
            link.attempts_this_session += 1;
            let addr = self.registry_addrs[link.peer.index()].tcp;
            match TcpStream::connect_timeout(&addr, DIAL_TIMEOUT) {
                Ok(mut stream) => {
                    // The hello is 4 bytes into a fresh send buffer;
                    // a short write is not a real possibility here.
                    let hello_ok = stream
                        .write_all(&self.id.value().to_le_bytes())
                        .and_then(|()| stream.set_nodelay(true))
                        .and_then(|()| stream.set_nonblocking(true))
                        .is_ok();
                    if hello_ok {
                        link.conn = Some(Conn {
                            stream,
                            reader: FrameReader::new(),
                        });
                        link.write_pos = 0;
                        link.backoff = BACKOFF_START;
                        link.attempts_this_session = 0;
                    }
                }
                Err(_) => {
                    link.next_attempt = now + link.backoff;
                    link.backoff = (link.backoff * 2).min(BACKOFF_CAP);
                }
            }
        }
    }

    // ---- receive paths ----------------------------------------------

    fn read_udp(&mut self, scratch: &mut [u8], env: &RunEnv) -> bool {
        let mut worked = false;
        for _ in 0..UDP_BATCH {
            let Some(udp) = &self.udp else { break };
            match udp.recv_from(scratch) {
                Ok((n, _)) if n >= 4 => {
                    worked = true;
                    let from = NodeId::new(u32::from_le_bytes(
                        scratch[..4].try_into().expect("4-byte prefix"),
                    ));
                    self.net.datagrams_received += 1;
                    let body = &scratch[4..n];
                    self.net.bytes_received += body.len() as u64;
                    let body = body.to_vec();
                    self.handle_body(from, &body, false, env);
                }
                Ok(_) => {
                    // Shorter than a sender prefix: not ours.
                    self.net.decode_errors += 1;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
        worked
    }

    fn read_links(&mut self, scratch: &mut [u8], env: &RunEnv) -> bool {
        let mut worked = false;
        for i in 0..self.links.len() {
            let mut drop_conn = false;
            let mut bodies: Vec<Vec<u8>> = Vec::new();
            let peer = self.links[i].peer;
            if let Some(conn) = &mut self.links[i].conn {
                loop {
                    match conn.stream.read(scratch) {
                        Ok(0) => {
                            drop_conn = true;
                            break;
                        }
                        Ok(n) => {
                            worked = true;
                            conn.reader.extend(&scratch[..n]);
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                        Err(_) => {
                            drop_conn = true;
                            break;
                        }
                    }
                }
                loop {
                    match conn.reader.next_frame() {
                        Ok(Some(body)) => bodies.push(body),
                        Ok(None) => break,
                        Err(_) => {
                            self.net.decode_errors += 1;
                            drop_conn = true;
                            break;
                        }
                    }
                }
            }
            if drop_conn {
                self.links[i].conn = None;
                self.links[i].write_pos = 0;
            }
            for body in bodies {
                self.net.frames_received += 1;
                self.net.bytes_received += body.len() as u64;
                self.handle_body(peer, &body, true, env);
            }
        }
        worked
    }

    fn handle_body(&mut self, from: NodeId, body: &[u8], tree: bool, env: &RunEnv) {
        let env_msg = match codec::decode(body, self.payload_bits) {
            Ok(m) => m,
            Err(_) => {
                self.net.decode_errors += 1;
                return;
            }
        };
        // Receive-side loss injection, the net analogue of the
        // simulator's per-link error rate ε. Applied to tree traffic
        // and to cross-link event copies, which the simulator runs
        // through the same lossy link model even though this runtime
        // carries them over UDP. The out-of-band recovery channel
        // stays lossless (the paper's default configuration, and real
        // loopback UDP nearly is).
        if (tree
            && matches!(
                env_msg,
                Envelope::PubSub(PubSubMessage::Event(_)) | Envelope::Gossip(_)
            )
            || matches!(env_msg, Envelope::CrossEvent(_)))
            && self.loss_rate > 0.0
            && self.loss_rng.random_bool(self.loss_rate)
        {
            self.net.injected_drops += 1;
            return;
        }
        let now = self.now_virtual(env);
        let before = self.trace_len();
        let out = {
            let mut ctx = NodeCtx {
                now,
                neighbors: &self.neighbors,
                graph_neighbors: &self.graph_neighbors,
                space: &self.space,
                subscribers_of: &self.subscribers_of,
                gossip_rng: &mut self.gossip_rng,
                tracker: &mut self.tracker,
                counters: &mut self.counters,
                trace: &mut self.trace,
            };
            self.node.handle(from, env_msg, &mut ctx)
        };
        let delivered = self.delivers_since(before);
        if delivered > 0 {
            env.shared.delivered.fetch_add(delivered, Ordering::Relaxed);
        }
        self.route(out);
    }

    fn trace_len(&self) -> usize {
        self.trace.as_ref().map(|t| t.len()).unwrap_or(0)
    }

    /// Deliver records appended since `before` — the increment for the
    /// adaptive-stop counter. Scans only the new tail, so the cost per
    /// message stays constant.
    fn delivers_since(&self, before: usize) -> u64 {
        self.trace
            .as_ref()
            .map(|t| {
                t.records()[before.min(t.len())..]
                    .iter()
                    .filter(|r| matches!(r, TraceRecord::Deliver { .. }))
                    .count() as u64
            })
            .unwrap_or(0)
    }

    // ---- timers ------------------------------------------------------

    fn tick_timers(&mut self, env: &RunEnv) -> bool {
        let mut worked = false;
        let now = self.now_virtual(env);
        if let Some(vnext) = self.publish_vnext {
            if now >= vnext {
                worked = true;
                let expected_before = self.tracker.expected_total();
                let trace_before = self.trace_len();
                let (out, delay) = {
                    let mut ctx = NodeCtx {
                        now,
                        neighbors: &self.neighbors,
                        graph_neighbors: &self.graph_neighbors,
                        space: &self.space,
                        subscribers_of: &self.subscribers_of,
                        gossip_rng: &mut self.gossip_rng,
                        tracker: &mut self.tracker,
                        counters: &mut self.counters,
                        trace: &mut self.trace,
                    };
                    self.node.tick_publish(self.publish_rate, &mut ctx)
                };
                let expected = self.tracker.expected_total() - expected_before;
                if expected > 0 {
                    env.shared.expected.fetch_add(expected, Ordering::Relaxed);
                }
                let delivered = self.delivers_since(trace_before);
                if delivered > 0 {
                    env.shared.delivered.fetch_add(delivered, Ordering::Relaxed);
                }
                self.route(out);
                // Renewal uses the *scheduled* virtual time, exactly
                // like the simulator's queue — wall-clock jitter must
                // not change how many events a seed publishes.
                if vnext + delay < self.duration {
                    self.publish_vnext = Some(vnext + delay);
                } else {
                    self.publish_vnext = None;
                    self.report_publish_done(env);
                }
            }
        }
        // Gossip keeps running through the drain window (unlike the
        // simulator, whose ticks stop renewing at `duration`): real
        // recovery needs rounds to finish the job. Documented as a
        // sim/net equivalence rule.
        while now >= self.gossip_vnext {
            worked = true;
            let (out, next) = {
                let mut ctx = NodeCtx {
                    now,
                    neighbors: &self.neighbors,
                    graph_neighbors: &self.graph_neighbors,
                    space: &self.space,
                    subscribers_of: &self.subscribers_of,
                    gossip_rng: &mut self.gossip_rng,
                    tracker: &mut self.tracker,
                    counters: &mut self.counters,
                    trace: &mut self.trace,
                };
                self.node
                    .tick_gossip(self.gossip_interval, self.adaptive, &mut ctx)
            };
            self.route(out);
            self.gossip_vnext += next;
        }
        worked
    }

    // ---- send path ---------------------------------------------------

    fn route(&mut self, out: Vec<Outgoing>) {
        for Outgoing { to, env: msg } in out {
            // Event and subscription traffic is counted at the send
            // layer, mirroring the simulator's `Scenario::send` (gossip
            // classes are counted inside the node when the action is
            // decided).
            match &msg {
                Envelope::PubSub(PubSubMessage::Event(_)) | Envelope::CrossEvent(_) => {
                    self.counters.count_event(self.id)
                }
                Envelope::PubSub(_) => self.counters.count_subscription(self.id),
                _ => {}
            }
            // Enforce the paper's digest budget before encoding; a
            // trimmed digest is re-announced by later rounds.
            let (msg, dropped) = codec::fit(msg, self.payload_bits);
            if dropped > 0 {
                self.net.digest_truncations += 1;
                self.net.route_drops += dropped;
            }
            let body = match codec::encode(&msg, self.payload_bits) {
                Ok(b) => b,
                Err(_) => {
                    // Unencodable after fitting — accounting bug, not
                    // a transient; surface it in the counters.
                    self.net.decode_errors += 1;
                    continue;
                }
            };
            // The cross-validation invariant: on-the-wire bytes are
            // the simulator's wire_bits, always.
            let bits = msg.wire_bits(self.payload_bits);
            assert_eq!(
                body.len() as u64 * 8,
                bits,
                "codec framed size diverged from wire_bits"
            );
            // Wire-bit accounting mirrors the simulator's send layer,
            // charged on the post-fit envelope — the bits that actually
            // hit the wire.
            match &msg {
                Envelope::Gossip(_) => self.counters.count_gossip_bits(bits),
                Envelope::Request(_) | Envelope::RangeRequest { .. } => {
                    self.counters.count_request_bits(bits)
                }
                Envelope::Reply(_) => self.counters.count_reply_bits(bits),
                _ => {}
            }
            match msg.channel() {
                Channel::Tree => self.enqueue_tree(to, body),
                // Cross links have no TCP connection (those follow
                // the routing view); chord copies go as datagrams,
                // like the recovery channel.
                Channel::Cross | Channel::OutOfBand => self.send_oob(to, &body),
            }
        }
    }

    fn enqueue_tree(&mut self, to: NodeId, body: Vec<u8>) {
        let capacity = self.queue_capacity;
        let Some(link) = self.links.iter_mut().find(|l| l.peer == to) else {
            // Not a neighbor: stale route. The simulator drops these
            // on broken links; here the static tree makes it rare.
            self.net.queue_drops += 1;
            return;
        };
        if link.outbox.len() >= capacity {
            self.net.queue_drops += 1;
            return;
        }
        link.outbox.push_back(frame(&body));
    }

    fn send_oob(&mut self, to: NodeId, body: &[u8]) {
        let Some(udp) = &self.udp else {
            self.net.queue_drops += 1;
            return;
        };
        let mut datagram = Vec::with_capacity(4 + body.len());
        datagram.extend_from_slice(&self.id.value().to_le_bytes());
        datagram.extend_from_slice(body);
        match udp.send_to(&datagram, self.registry_addrs[to.index()].udp) {
            Ok(_) => {
                self.net.datagrams_sent += 1;
                self.net.bytes_sent += body.len() as u64;
            }
            Err(_) => {
                // Includes WouldBlock and oversized datagrams: the
                // out-of-band channel sheds load instead of blocking
                // the node loop.
                self.net.queue_drops += 1;
            }
        }
    }

    fn flush_links(&mut self) {
        for link in &mut self.links {
            let Some(conn) = &mut link.conn else { continue };
            let mut broken = false;
            while let Some(front) = link.outbox.front() {
                match conn.stream.write(&front[link.write_pos..]) {
                    Ok(n) => {
                        link.write_pos += n;
                        if link.write_pos == front.len() {
                            self.net.frames_sent += 1;
                            self.net.bytes_sent += (front.len() - 4) as u64;
                            link.outbox.pop_front();
                            link.write_pos = 0;
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        broken = true;
                        break;
                    }
                }
            }
            if broken {
                link.conn = None;
                link.write_pos = 0;
            }
        }
    }
}
