//! The thread-per-node reference runtime: one thread that owns one
//! [`NodeCore`] and drives it from real sockets and wall-clock timers
//! instead of a virtual-time event queue.
//!
//! The protocol stack is *exactly* the simulator's — the same
//! `Dispatcher`, the same `GossipEngine`, the same `SimNode` actor
//! boundary (all wrapped in the shared [`NodeCore`], which the epoll
//! reactor drives too). Only the outside changes:
//!
//! - tree links are nonblocking TCP connections (the lower-id endpoint
//!   dials, the higher-id endpoint accepts; see
//!   [`eps_overlay::LinkId::dialer`]), carrying length-prefixed frames
//!   of codec-encoded envelopes;
//! - the out-of-band recovery channel is UDP, one datagram per
//!   envelope, prefixed with the 4-byte sender id;
//! - publish and gossip ticks fire from the wall clock, with the
//!   publish schedule replaying the simulator's virtual-time schedule
//!   draw for draw (same seed → same publication sequence);
//! - outbound tree traffic sits in a bounded per-link queue; overflow
//!   is counted, not buffered forever;
//! - a dialer whose peer is not up (yet, or again) retries with
//!   jittered exponential backoff, so a cluster tolerates any boot
//!   order and node restarts;
//! - an idle iteration sleeps until the next protocol timer deadline
//!   (capped so socket traffic is still noticed promptly), not a fixed
//!   poll interval.

use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, UdpSocket};
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

use eps_gossip::Channel;
use eps_overlay::{LinkId, NodeId};
use eps_sim::{Rng, SimTime};

use crate::core::{jittered_backoff, NodeCore, Outbound, RunEnv};
use crate::frame::{frame, FrameReader};

/// Where one node listens: its TCP (tree links) and UDP (out-of-band)
/// socket addresses.
#[derive(Clone, Copy, Debug)]
pub struct NodeAddrs {
    /// The tree-link listener.
    pub tcp: SocketAddr,
    /// The out-of-band datagram socket.
    pub udp: SocketAddr,
}

const DIAL_TIMEOUT: Duration = Duration::from_millis(20);
pub(crate) const BACKOFF_START: Duration = Duration::from_millis(10);
pub(crate) const BACKOFF_CAP: Duration = Duration::from_millis(500);
/// Upper bound on one idle sleep. The protocol deadline can be tens of
/// milliseconds out, but socket traffic arrives unannounced — this cap
/// bounds the added receive latency of a sleeping node. (The reactor
/// has no such cap: epoll wakes it on readiness.)
const IDLE_SLEEP_CAP: Duration = Duration::from_millis(1);
/// Datagrams drained per loop iteration (bounds one node's share of
/// the iteration without starving its timers).
const UDP_BATCH: usize = 64;

struct Conn {
    stream: TcpStream,
    reader: FrameReader,
}

/// One tree link as this node sees it: the peer, the connection (if
/// currently up), the dial/backoff state when this side dials, and
/// the bounded outbound queue of framed messages.
struct Link {
    peer: NodeId,
    dialer: bool,
    conn: Option<Conn>,
    next_attempt: Instant,
    backoff: Duration,
    attempts_this_session: u64,
    outbox: VecDeque<Vec<u8>>,
    write_pos: usize,
}

/// An accepted connection whose 4-byte hello (the peer's node id) has
/// not fully arrived yet.
struct PendingConn {
    stream: TcpStream,
    hello: [u8; 4],
    got: usize,
}

/// One node of the cluster: the shared protocol core plus its sockets
/// and dial state. Returned intact when the thread stops, so a restart
/// carries the protocol state across.
pub(crate) struct NodeRuntime {
    pub id: NodeId,
    pub core: NodeCore,
    dial_rng: Rng,
    listener: Option<TcpListener>,
    udp: Option<UdpSocket>,
    links: Vec<Link>,
    pending: Vec<PendingConn>,
    /// Socket addresses of every node, cloned out of the cluster's
    /// shared registry so the hot path does no `Arc` indirection.
    registry_addrs: Vec<NodeAddrs>,
}

/// Socket-side constructor parameters; the protocol side is the
/// already-built [`NodeCore`].
pub(crate) struct NodeSetup {
    pub listener: TcpListener,
    pub udp: UdpSocket,
    pub dial_rng: Rng,
    /// Every node's socket addresses, indexed by node id.
    pub registry_addrs: Vec<NodeAddrs>,
}

impl NodeRuntime {
    pub(crate) fn new(core: NodeCore, setup: NodeSetup) -> std::io::Result<Self> {
        setup.listener.set_nonblocking(true)?;
        setup.udp.set_nonblocking(true)?;
        let id = core.id;
        let links = core
            .neighbors()
            .iter()
            .map(|&peer| {
                let link = LinkId::new(id, peer);
                Link {
                    peer,
                    dialer: link.dialer() == id,
                    conn: None,
                    next_attempt: Instant::now(),
                    backoff: BACKOFF_START,
                    attempts_this_session: 0,
                    outbox: VecDeque::new(),
                    write_pos: 0,
                }
            })
            .collect();
        Ok(NodeRuntime {
            id,
            core,
            dial_rng: setup.dial_rng,
            listener: Some(setup.listener),
            udp: Some(setup.udp),
            links,
            pending: Vec::new(),
            registry_addrs: setup.registry_addrs,
        })
    }

    /// Drops the sockets and all live connections so the cluster can
    /// rebind the same addresses for a restart. Queued outbound
    /// traffic is discarded, like a process restart would.
    pub(crate) fn prepare_restart(&mut self) {
        self.listener = None;
        self.udp = None;
        self.pending.clear();
        for link in &mut self.links {
            link.conn = None;
            link.outbox.clear();
            link.write_pos = 0;
            link.backoff = BACKOFF_START;
            link.attempts_this_session = 0;
            link.next_attempt = Instant::now();
        }
    }

    /// Installs freshly bound sockets after [`Self::prepare_restart`].
    pub(crate) fn rebind(&mut self, listener: TcpListener, udp: UdpSocket) -> std::io::Result<()> {
        listener.set_nonblocking(true)?;
        udp.set_nonblocking(true)?;
        self.listener = Some(listener);
        self.udp = Some(udp);
        Ok(())
    }

    /// The thread body: polls sockets and timers until stopped, then
    /// returns itself so the cluster can aggregate (or restart it).
    pub(crate) fn run(mut self, env: RunEnv) -> NodeRuntime {
        let mut scratch = vec![0u8; 64 * 1024];
        self.core.bootstrap(&env.shared);
        loop {
            if env.shared.stop_all.load(Ordering::Relaxed) || env.control.load(Ordering::Relaxed) {
                break;
            }
            let mut worked = false;
            worked |= self.accept_conns();
            worked |= self.progress_hellos();
            self.dial_due();
            worked |= self.read_udp(&mut scratch, &env);
            worked |= self.read_links(&mut scratch, &env);
            worked |= self.tick_timers(&env);
            self.flush_links();
            if !worked {
                self.idle_sleep(&env);
            }
        }
        self
    }

    /// Sleeps until the next thing this node *knows* is due — the
    /// core's protocol-timer deadline or the earliest dial retry —
    /// capped by [`IDLE_SLEEP_CAP`] because socket arrivals give no
    /// advance notice.
    fn idle_sleep(&self, env: &RunEnv) {
        let now = Instant::now();
        let deadline = env.start + Duration::from_nanos(self.core.next_deadline().as_nanos());
        let mut until = deadline.saturating_duration_since(now);
        for link in &self.links {
            if link.dialer && link.conn.is_none() {
                until = until.min(link.next_attempt.saturating_duration_since(now));
            }
        }
        let until = until.min(IDLE_SLEEP_CAP);
        if !until.is_zero() {
            std::thread::sleep(until);
        }
    }

    fn now_virtual(&self, env: &RunEnv) -> SimTime {
        SimTime::from_nanos(env.start.elapsed().as_nanos() as u64)
    }

    // ---- connection management -------------------------------------

    fn accept_conns(&mut self) -> bool {
        let Some(listener) = &self.listener else {
            return false;
        };
        let mut worked = false;
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                        continue;
                    }
                    self.core.net.accepted_conns += 1;
                    self.pending.push(PendingConn {
                        stream,
                        hello: [0; 4],
                        got: 0,
                    });
                    worked = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
        worked
    }

    fn progress_hellos(&mut self) -> bool {
        let mut worked = false;
        let mut i = 0;
        while i < self.pending.len() {
            let pending = &mut self.pending[i];
            let got = pending.got;
            match pending.stream.read(&mut pending.hello[got..]) {
                Ok(0) => {
                    self.pending.swap_remove(i);
                    continue;
                }
                Ok(n) => {
                    pending.got += n;
                    worked = true;
                    if pending.got == 4 {
                        let peer = NodeId::new(u32::from_le_bytes(pending.hello));
                        let pending = self.pending.swap_remove(i);
                        self.attach(peer, pending.stream);
                        continue;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {}
                Err(_) => {
                    self.pending.swap_remove(i);
                    continue;
                }
            }
            i += 1;
        }
        worked
    }

    /// Binds an accepted, hello-complete stream to its link (replacing
    /// any dead connection). Hellos from non-neighbors are dropped.
    fn attach(&mut self, peer: NodeId, stream: TcpStream) {
        if let Some(link) = self.links.iter_mut().find(|l| l.peer == peer) {
            link.conn = Some(Conn {
                stream,
                reader: FrameReader::new(),
            });
            link.write_pos = 0;
        }
    }

    fn dial_due(&mut self) {
        let now = Instant::now();
        for link in &mut self.links {
            if !link.dialer || link.conn.is_some() || now < link.next_attempt {
                continue;
            }
            self.core.net.connect_attempts += 1;
            if link.attempts_this_session > 0 {
                self.core.net.connect_retries += 1;
            }
            link.attempts_this_session += 1;
            let addr = self.registry_addrs[link.peer.index()].tcp;
            match TcpStream::connect_timeout(&addr, DIAL_TIMEOUT) {
                Ok(mut stream) => {
                    // The hello is 4 bytes into a fresh send buffer;
                    // a short write is not a real possibility here.
                    let hello_ok = stream
                        .write_all(&self.id.value().to_le_bytes())
                        .and_then(|()| stream.set_nodelay(true))
                        .and_then(|()| stream.set_nonblocking(true))
                        .is_ok();
                    if hello_ok {
                        link.conn = Some(Conn {
                            stream,
                            reader: FrameReader::new(),
                        });
                        link.write_pos = 0;
                        link.backoff = BACKOFF_START;
                        link.attempts_this_session = 0;
                    }
                }
                Err(_) => {
                    link.next_attempt = now + jittered_backoff(link.backoff, &mut self.dial_rng);
                    link.backoff = (link.backoff * 2).min(BACKOFF_CAP);
                }
            }
        }
    }

    // ---- receive paths ----------------------------------------------

    fn read_udp(&mut self, scratch: &mut [u8], env: &RunEnv) -> bool {
        let mut worked = false;
        for _ in 0..UDP_BATCH {
            let Some(udp) = &self.udp else { break };
            match udp.recv_from(scratch) {
                Ok((n, _)) if n >= 4 => {
                    worked = true;
                    let from = NodeId::new(u32::from_le_bytes(
                        scratch[..4].try_into().expect("4-byte prefix"),
                    ));
                    self.core.net.datagrams_received += 1;
                    let body = &scratch[4..n];
                    self.core.net.bytes_received += body.len() as u64;
                    let body = body.to_vec();
                    let now = self.now_virtual(env);
                    let out = self.core.handle_body(from, &body, false, now, &env.shared);
                    self.dispatch(out);
                }
                Ok(_) => {
                    // Shorter than a sender prefix: not ours.
                    self.core.net.decode_errors += 1;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
        worked
    }

    fn read_links(&mut self, scratch: &mut [u8], env: &RunEnv) -> bool {
        let mut worked = false;
        for i in 0..self.links.len() {
            let mut drop_conn = false;
            let mut bodies: Vec<Vec<u8>> = Vec::new();
            let peer = self.links[i].peer;
            if let Some(conn) = &mut self.links[i].conn {
                loop {
                    match conn.stream.read(scratch) {
                        Ok(0) => {
                            drop_conn = true;
                            break;
                        }
                        Ok(n) => {
                            worked = true;
                            conn.reader.extend(&scratch[..n]);
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                        Err(_) => {
                            drop_conn = true;
                            break;
                        }
                    }
                }
                loop {
                    match conn.reader.next_frame() {
                        Ok(Some(body)) => bodies.push(body),
                        Ok(None) => break,
                        Err(_) => {
                            self.core.net.decode_errors += 1;
                            drop_conn = true;
                            break;
                        }
                    }
                }
            }
            if drop_conn {
                self.links[i].conn = None;
                self.links[i].write_pos = 0;
            }
            for body in bodies {
                self.core.net.frames_received += 1;
                self.core.net.bytes_received += body.len() as u64;
                let now = self.now_virtual(env);
                let out = self.core.handle_body(peer, &body, true, now, &env.shared);
                self.dispatch(out);
            }
        }
        worked
    }

    // ---- timers ------------------------------------------------------

    fn tick_timers(&mut self, env: &RunEnv) -> bool {
        let now = self.now_virtual(env);
        let (worked, out) = self.core.tick_timers(now, &env.shared);
        self.dispatch(out);
        worked
    }

    // ---- send path ---------------------------------------------------

    fn dispatch(&mut self, out: Vec<Outbound>) {
        for send in out {
            match send.channel {
                Channel::Tree => self.enqueue_tree(send.to, send.body),
                // Cross links have no TCP connection (those follow
                // the routing view); chord copies go as datagrams,
                // like the recovery channel.
                Channel::Cross | Channel::OutOfBand => self.send_oob(send.to, &send.body),
            }
        }
    }

    fn enqueue_tree(&mut self, to: NodeId, body: Vec<u8>) {
        let capacity = self.core.queue_capacity;
        let Some(link) = self.links.iter_mut().find(|l| l.peer == to) else {
            // Not a neighbor: stale route. The simulator drops these
            // on broken links; here the static tree makes it rare.
            self.core.net.queue_drops += 1;
            return;
        };
        if link.outbox.len() >= capacity {
            self.core.net.queue_drops += 1;
            return;
        }
        link.outbox.push_back(frame(&body));
    }

    fn send_oob(&mut self, to: NodeId, body: &[u8]) {
        let Some(udp) = &self.udp else {
            self.core.net.queue_drops += 1;
            return;
        };
        let mut datagram = Vec::with_capacity(4 + body.len());
        datagram.extend_from_slice(&self.id.value().to_le_bytes());
        datagram.extend_from_slice(body);
        match udp.send_to(&datagram, self.registry_addrs[to.index()].udp) {
            Ok(_) => {
                self.core.net.datagrams_sent += 1;
                self.core.net.bytes_sent += body.len() as u64;
            }
            Err(_) => {
                // Includes WouldBlock and oversized datagrams: the
                // out-of-band channel sheds load instead of blocking
                // the node loop.
                self.core.net.queue_drops += 1;
            }
        }
    }

    fn flush_links(&mut self) {
        for link in &mut self.links {
            let Some(conn) = &mut link.conn else { continue };
            let mut broken = false;
            while let Some(front) = link.outbox.front() {
                match conn.stream.write(&front[link.write_pos..]) {
                    Ok(n) => {
                        link.write_pos += n;
                        if link.write_pos == front.len() {
                            self.core.net.frames_sent += 1;
                            self.core.net.bytes_sent += (front.len() - 4) as u64;
                            link.outbox.pop_front();
                            link.write_pos = 0;
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        broken = true;
                        break;
                    }
                }
            }
            if broken {
                link.conn = None;
                link.write_pos = 0;
            }
        }
    }
}
