//! Length-prefixed framing for the tree links (TCP).
//!
//! A frame is a 4-byte little-endian body length followed by the body
//! — one encoded [`eps_gossip::Envelope`]. The prefix is transport
//! plumbing, not protocol: it is *excluded* from the byte accounting,
//! exactly as the simulator's `wire_bits` excludes transport headers.
//! The body length therefore always equals `wire_bits / 8` for the
//! framed envelope, which is what the sim-vs-wire cross-validation
//! leans on.

/// Upper bound on one frame body, in bytes. Replies carry full event
/// copies and can be large, but anything beyond this is corruption
/// (or an attack), not protocol traffic — the reader fails fast
/// instead of allocating unboundedly.
pub const MAX_FRAME: usize = 16 << 20;

/// The one unrecoverable framing failure: a length prefix beyond
/// [`MAX_FRAME`]. Anything else is just "wait for more bytes".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrameTooLarge {
    /// The length the corrupt prefix claimed.
    pub claimed: usize,
}

impl std::fmt::Display for FrameTooLarge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "frame length prefix {} exceeds MAX_FRAME {}",
            self.claimed, MAX_FRAME
        )
    }
}

impl std::error::Error for FrameTooLarge {}

/// Prepends the 4-byte length prefix to an encoded body.
///
/// # Panics
///
/// Panics if `body` exceeds [`MAX_FRAME`] — the codec's size
/// discipline makes that unreachable for protocol traffic.
pub fn frame(body: &[u8]) -> Vec<u8> {
    assert!(body.len() <= MAX_FRAME, "frame body exceeds MAX_FRAME");
    let mut out = Vec::with_capacity(4 + body.len());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(body);
    out
}

/// Incremental frame reassembly over a nonblocking byte stream. Feed
/// it whatever `read` returned; take complete bodies out as they
/// become available.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
    /// Consumed prefix of `buf`; compacted lazily so a burst of small
    /// frames does not memmove per frame.
    pos: usize,
}

impl FrameReader {
    /// Creates an empty reader.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw received bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete frame body, if one has fully arrived.
    ///
    /// Returns [`FrameTooLarge`] when the stream is unrecoverably
    /// corrupt (a length prefix beyond [`MAX_FRAME`]); the connection
    /// should be dropped.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, FrameTooLarge> {
        let avail = self.buf.len() - self.pos;
        if avail < 4 {
            self.compact();
            return Ok(None);
        }
        let len = u32::from_le_bytes(
            self.buf[self.pos..self.pos + 4]
                .try_into()
                .expect("4-byte slice"),
        ) as usize;
        if len > MAX_FRAME {
            return Err(FrameTooLarge { claimed: len });
        }
        if avail < 4 + len {
            self.compact();
            return Ok(None);
        }
        let body = self.buf[self.pos + 4..self.pos + 4 + len].to_vec();
        self.pos += 4 + len;
        Ok(Some(body))
    }

    /// Bytes buffered but not yet consumed as frames.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn compact(&mut self) {
        if self.pos > 0 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip_through_arbitrary_splits() {
        let bodies: Vec<Vec<u8>> = vec![vec![1, 2, 3], vec![], vec![9; 300]];
        let mut wire = Vec::new();
        for b in &bodies {
            wire.extend_from_slice(&frame(b));
        }
        // Feed the stream one byte at a time — the worst fragmentation
        // a socket can produce.
        let mut reader = FrameReader::new();
        let mut got = Vec::new();
        for &byte in &wire {
            reader.extend(&[byte]);
            while let Some(body) = reader.next_frame().expect("clean stream") {
                got.push(body);
            }
        }
        assert_eq!(got, bodies);
        assert_eq!(reader.pending(), 0);
    }

    #[test]
    fn oversized_length_prefix_is_an_error() {
        let mut reader = FrameReader::new();
        reader.extend(&((MAX_FRAME as u32) + 1).to_le_bytes());
        assert!(reader.next_frame().is_err());
    }

    #[test]
    fn pending_counts_unconsumed_bytes() {
        let mut reader = FrameReader::new();
        reader.extend(&frame(&[7; 10])[..8]);
        assert!(reader.next_frame().expect("clean").is_none());
        assert_eq!(reader.pending(), 8);
    }
}
