//! # eps-net — the real-socket runtime
//!
//! Runs the reproduction's dispatcher + gossip stack (`eps-pubsub`,
//! `eps-gossip`, the harness's `SimNode` actor) over real sockets:
//! TCP tree links, a UDP out-of-band recovery channel, wall-clock
//! timers — one thread per dispatcher, all on loopback by default.
//!
//! Three properties make it more than a demo:
//!
//! 1. **One codec, one byte accounting.** Every envelope crosses the
//!    wire through `eps_gossip::codec`, whose framed size *equals* the
//!    simulator's `wire_bits` by construction (asserted on every
//!    send). Simulated byte counts and on-the-wire bytes cannot
//!    drift apart.
//! 2. **One population.** The overlay tree, subscriptions, and
//!    per-node workload streams come from the harness's shared
//!    `build_population`, so the same seed publishes the same events
//!    here and in the simulator — the basis of the cross-validation
//!    tests in `tests/crossval.rs`.
//! 3. **One result schema.** A run is assembled into the simulator's
//!    [`eps_harness::ScenarioResult`] through the same code path,
//!    with the socket-layer [`eps_metrics::NetCounters`] appended.
//!
//! # Examples
//!
//! ```no_run
//! use eps_net::{run_cluster, NetConfig};
//! use eps_harness::ScenarioConfig;
//! use eps_gossip::Algorithm;
//! use eps_sim::SimTime;
//!
//! let config = NetConfig {
//!     scenario: ScenarioConfig {
//!         nodes: 3,
//!         publish_rate: 10.0,
//!         duration: SimTime::from_millis(500),
//!         warmup: SimTime::from_millis(100),
//!         cooldown: SimTime::from_millis(100),
//!         algorithm: Algorithm::push(),
//!         ..ScenarioConfig::default()
//!     },
//!     ..NetConfig::default()
//! };
//! let report = run_cluster(config).expect("sockets available");
//! println!("delivery rate: {}", report.result.overall_delivery_rate);
//! ```

// `unsafe` is denied crate-wide, with exactly one exemption: the
// `syscalls` module, which holds the raw `epoll`/`timerfd` syscall
// shims the reactor runtime is built on (the zero-dependency stance
// rules out the libc crate). Everything above that module — including
// the whole reactor — stays safe code.
#![warn(missing_docs)]
#![deny(unsafe_code)]

mod cluster;
mod core;
pub mod frame;
pub mod reactor;
mod runtime;
mod syscalls;

pub use cluster::{
    run_cluster, run_cluster_as, run_process_node, Cluster, DeliveryLatency, NetConfig,
    NetRunReport, NodeAddrs, RuntimeKind,
};
pub use reactor::{run_reactor_cluster, ReactorCluster};
