//! `net_cluster` — run a scenario over real sockets and print one CSV
//! row in the simulator's result schema (plus the socket-layer
//! counters), so a spreadsheet can line a wire run up against a
//! simulated one column-for-column.
//!
//! Single-process (default): boots the whole tree on loopback,
//! one thread per dispatcher.
//!
//! ```text
//! net_cluster --nodes 8 --algorithm push --eps 0.05 --duration 1.2
//! ```
//!
//! Multi-process: every process is given the *same* full peer list
//! and derives the identical population from the shared seed; each
//! one runs the node whose address it was told to listen on. Peers
//! may start in any order — dialers retry with backoff.
//!
//! ```text
//! net_cluster --nodes 3 --peers 127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003 \
//!             --listen 127.0.0.1:7002 ...
//! ```
//!
//! Each peer address doubles as both the TCP (tree) and UDP
//! (out-of-band) endpoint — same port number, different protocol.

use std::net::SocketAddr;
use std::process::ExitCode;
use std::time::Duration;

use eps_gossip::Algorithm;
use eps_harness::{AdaptiveGossip, ScenarioResult};
use eps_metrics::NetCounters;
use eps_net::{
    run_cluster_as, run_process_node, Cluster, NetConfig, NodeAddrs, ReactorCluster, RuntimeKind,
};
use eps_sim::SimTime;

fn main() -> ExitCode {
    match run(std::env::args().skip(1).collect()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("error: {err}");
            print_usage();
            ExitCode::FAILURE
        }
    }
}

fn run(args: Vec<String>) -> Result<(), String> {
    let mut config = NetConfig::default();
    let mut restarts: Vec<usize> = Vec::new();
    let mut peers: Vec<SocketAddr> = Vec::new();
    let mut listen: Option<SocketAddr> = None;
    let mut runtime = RuntimeKind::Thread;
    let mut workers: Option<usize> = None;

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = || iter.next().cloned().ok_or(format!("{arg} needs a value"));
        match arg.as_str() {
            "--nodes" | "-n" => config.scenario.nodes = parse(&value()?)?,
            "--seed" => config.scenario.seed = parse(&value()?)?,
            "--algorithm" | "-a" => {
                config.scenario.algorithm = value()?.parse().map_err(|e| format!("{e}"))?
            }
            "--eps" => config.scenario.link_error_rate = parse(&value()?)?,
            "--beta" => config.scenario.buffer_size = parse(&value()?)?,
            "--pi-max" => config.scenario.pi_max = parse(&value()?)?,
            "--pattern-universe" => config.scenario.pattern_universe = parse(&value()?)?,
            "--publish-rate" => config.scenario.publish_rate = parse(&value()?)?,
            "--gossip-interval" => {
                config.scenario.gossip_interval = SimTime::from_secs_f64(parse(&value()?)?)
            }
            "--duration" => config.scenario.duration = SimTime::from_secs_f64(parse(&value()?)?),
            "--adaptive" => {
                config.scenario.adaptive_gossip =
                    Some(AdaptiveGossip::around(config.scenario.gossip_interval))
            }
            "--drain" => config.drain = Duration::from_secs_f64(parse(&value()?)?),
            "--queue-capacity" => config.queue_capacity = parse(&value()?)?,
            "--restart" => restarts.push(parse(&value()?)?),
            "--peers" => {
                for addr in value()?.split(',') {
                    peers.push(parse(addr.trim())?);
                }
            }
            "--listen" => listen = Some(parse(&value()?)?),
            "--runtime" => runtime = value()?.parse()?,
            "--workers" => workers = Some(parse(&value()?)?),
            "--help" | "-h" => {
                print_usage();
                return Ok(());
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    match (&mut runtime, workers) {
        (RuntimeKind::Reactor { workers: w }, Some(n)) => *w = n,
        (RuntimeKind::Thread, Some(_)) => return Err("--workers requires --runtime reactor".into()),
        _ => {}
    }
    // Short runs: shrink the default measurement margins so the
    // window stays non-empty (same rule as the `simulate` binary).
    let s = &mut config.scenario;
    if s.warmup + s.cooldown >= s.duration {
        s.warmup = s.duration.mul_f64(0.125);
        s.cooldown = s.duration.mul_f64(0.25);
    }

    let report = match (listen, peers.is_empty()) {
        (None, true) => {
            if restarts.is_empty() {
                run_cluster_as(config, runtime).map_err(|e| format!("cluster failed: {e}"))?
            } else {
                run_with_restarts(config, &restarts, runtime)?
            }
        }
        (Some(listen), false) => {
            if !restarts.is_empty() {
                return Err("--restart only applies to single-process runs".into());
            }
            if runtime != RuntimeKind::Thread {
                return Err("--runtime reactor only applies to single-process runs".into());
            }
            run_one_process(config, listen, peers)?
        }
        (Some(_), true) => return Err("--listen needs --peers".into()),
        (None, false) => return Err("--peers needs --listen".into()),
    };
    print_csv(&report.result, &report.net);
    if report.trace_dropped > 0 {
        eprintln!(
            "warning: {} trace records dropped; raise the trace capacity",
            report.trace_dropped
        );
    }
    Ok(())
}

/// Single-process run with forced mid-workload restarts: each listed
/// node is stopped, held down briefly, and relaunched — exercising
/// the peers' dial retry/backoff path.
fn run_with_restarts(
    config: NetConfig,
    restarts: &[usize],
    runtime: RuntimeKind,
) -> Result<eps_net::NetRunReport, String> {
    let nodes = config.scenario.nodes;
    for &index in restarts {
        if index >= nodes {
            return Err(format!("--restart {index} out of range (nodes = {nodes})"));
        }
    }
    let wall = Duration::from_nanos(config.scenario.duration.as_nanos());
    // Let the workload establish itself, then knock the nodes over one
    // at a time in the first half of the run, leaving the rest of the
    // duration plus the drain budget for recovery.
    match runtime {
        RuntimeKind::Thread => {
            let mut cluster =
                Cluster::launch(config).map_err(|e| format!("cluster failed: {e}"))?;
            std::thread::sleep(wall.mul_f64(0.25));
            for &index in restarts {
                cluster
                    .restart_node(index, Duration::from_millis(150))
                    .map_err(|e| format!("restart of node {index} failed: {e}"))?;
            }
            Ok(cluster.finish())
        }
        RuntimeKind::Reactor { workers } => {
            let mut cluster = ReactorCluster::launch(config, workers)
                .map_err(|e| format!("reactor failed: {e}"))?;
            std::thread::sleep(wall.mul_f64(0.25));
            for &index in restarts {
                cluster
                    .restart_node(index, Duration::from_millis(150))
                    .map_err(|e| format!("restart of node {index} failed: {e}"))?;
            }
            Ok(cluster.finish())
        }
    }
}

fn run_one_process(
    config: NetConfig,
    listen: SocketAddr,
    peers: Vec<SocketAddr>,
) -> Result<eps_net::NetRunReport, String> {
    if peers.len() != config.scenario.nodes {
        return Err(format!(
            "--peers lists {} addresses but --nodes is {}",
            peers.len(),
            config.scenario.nodes
        ));
    }
    let index = peers
        .iter()
        .position(|&p| p == listen)
        .ok_or("--listen address must appear in --peers")?;
    let registry: Vec<NodeAddrs> = peers
        .into_iter()
        .map(|addr| NodeAddrs {
            tcp: addr,
            udp: addr,
        })
        .collect();
    eprintln!("node {index} of {}: listening on {listen}", registry.len());
    run_process_node(&config, index, registry).map_err(|e| format!("node failed: {e}"))
}

fn print_csv(result: &ScenarioResult, net: &NetCounters) {
    let header: Vec<&str> = ScenarioResult::csv_header()
        .iter()
        .copied()
        .chain(NetCounters::csv_header().iter().copied())
        .collect();
    println!("{}", header.join(","));
    let mut row = result.csv_row();
    row.extend(net.csv_row());
    println!("{}", row.join(","));
}

fn parse<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("cannot parse '{s}'"))
}

fn print_usage() {
    eprintln!(
        "usage: net_cluster [--nodes N] [--seed S] [--algorithm NAME] [--eps E]\n\
         \t[--beta B] [--pi-max P] [--pattern-universe U] [--publish-rate R]\n\
         \t[--gossip-interval T] [--duration D] [--adaptive] [--drain D]\n\
         \t[--queue-capacity Q] [--restart IDX]...\n\
         \t[--runtime thread|reactor] [--workers W]   (reactor worker pool)\n\
         \t[--peers A1,A2,... --listen ADDR]   (multi-process mode)\n\
         algorithms (case-insensitive, aliases accepted): {}",
        Algorithm::all()
            .iter()
            .map(|a| a.name().to_owned())
            .collect::<Vec<_>>()
            .join(", ")
    );
}
