//! Sim-vs-wire cross-validation: the same seed, topology, and
//! workload run once through the virtual-time simulator and once over
//! loopback sockets. The shared population builder and the mirrored
//! publish schedule make the two runs publish the *identical* event
//! sequence; the shared codec makes their byte accounting identical
//! by construction.

use std::sync::Arc;
use std::time::Duration;

use eps_gossip::codec;
use eps_gossip::{Algorithm, Envelope, GossipMessage};
use eps_harness::{run_scenario, ScenarioConfig};
use eps_net::{run_cluster, run_cluster_as, NetConfig, RuntimeKind};
use eps_overlay::{NodeId, OverlayKind};
use eps_pubsub::{Event, EventId, LossRecord, PatternId, RangeDetail, RangeRef, RangeSummary};
use eps_sim::SimTime;

fn loss() -> LossRecord {
    LossRecord {
        source: NodeId::new(2),
        pattern: PatternId::new(3),
        seq: 9,
    }
}

fn crossval_scenario() -> ScenarioConfig {
    ScenarioConfig {
        seed: 7,
        nodes: 8,
        max_degree: 3,
        publish_rate: 20.0,
        link_error_rate: 0.05,
        // A content model dense relative to the node count: every
        // pattern has multiple subscribers and every (source, pattern)
        // stream carries many events, so losses are actually detected
        // and recovery genuinely engages. The default universe of 70
        // patterns over a handful of nodes leaves most events with no
        // audience, which makes "100% delivery" vacuous.
        pattern_universe: 8,
        pi_max: 2,
        duration: SimTime::from_millis(1200),
        warmup: SimTime::from_millis(200),
        cooldown: SimTime::from_millis(400),
        gossip_interval: SimTime::from_millis(30),
        algorithm: Algorithm::push(),
        ..ScenarioConfig::default()
    }
}

/// The headline cross-validation: delivery converges to 100% in both
/// worlds, and both worlds published exactly the same number of
/// events (same seed → same Poisson schedule → same workload).
#[test]
fn sim_and_loopback_agree_on_workload_and_convergence() {
    let scenario = crossval_scenario();

    let sim = run_scenario(&scenario);
    assert!(
        sim.delivery_rate >= 0.99,
        "simulated push at ε=0.05 recovers the window; got {}",
        sim.delivery_rate
    );
    assert!(sim.events_recovered > 0, "sim recovery engaged");

    let report = run_cluster(NetConfig {
        scenario: scenario.clone(),
        drain: Duration::from_secs(4),
        ..NetConfig::default()
    })
    .expect("cluster boots");

    assert_eq!(
        report.result.events_published, sim.events_published,
        "same seed must publish the same event sequence in sim and net"
    );
    assert_eq!(
        report.result.overall_delivery_rate, 1.0,
        "the wire run converges to 100% with recovery on; got {:?}",
        report.result
    );
    // The convergence above must be *earned*: the loss injector
    // dropped frames and gossip repaired the damage.
    assert!(report.net.injected_drops > 0, "loss injection exercised");
    assert!(report.result.events_recovered > 0, "net recovery engaged");
    assert!(report.result.gossip_msgs > 0, "gossip rounds ran");
    assert!(report.result.event_msgs > 0, "event traffic counted");
    assert_eq!(report.net.decode_errors, 0, "codec never misparses");
    assert_eq!(report.trace_dropped, 0, "trace capacity sufficed");
}

/// The cyclic-overlay cross-validation cell: a small Barabási–Albert
/// graph routes events on the BFS view over TCP while the cross links
/// replicate copies over UDP. Both worlds publish the same workload,
/// both converge, and both observe duplicate copies arriving over the
/// cross links and suppress them.
#[test]
fn sim_and_loopback_agree_on_a_barabasi_albert_graph() {
    let scenario = ScenarioConfig {
        overlay: OverlayKind::BarabasiAlbert,
        max_degree: 4,
        ..crossval_scenario()
    };

    let sim = run_scenario(&scenario);
    assert!(
        sim.duplicate_suppressed > 0,
        "cross links carried duplicate copies in sim"
    );

    let report = run_cluster(NetConfig {
        scenario: scenario.clone(),
        drain: Duration::from_secs(4),
        ..NetConfig::default()
    })
    .expect("cluster boots");

    assert_eq!(
        report.result.events_published, sim.events_published,
        "same seed must publish the same event sequence in sim and net"
    );
    assert_eq!(
        report.result.overall_delivery_rate, 1.0,
        "the wire run converges to 100% on the cyclic overlay; got {:?}",
        report.result
    );
    assert!(
        report.result.duplicate_suppressed > 0,
        "cross links carried duplicate copies on the wire"
    );
    assert_eq!(report.net.decode_errors, 0, "codec never misparses");
}

/// The client-layer cross-validation cell: each dispatcher fronts
/// three end-user clients, so subscription setup floods *aggregated*
/// filters and delivery is accounted per client-subscription in both
/// worlds. The shared population builder makes the routing-state
/// accounting — client subscriptions, aggregate filters, table
/// entries, setup subscription messages — identical by construction,
/// and the wire run must still converge with the aggregated envelopes
/// end to end. (No churn: `NetConfig::validate` forbids it.)
#[test]
fn sim_and_loopback_agree_with_multi_client_dispatchers() {
    let scenario = ScenarioConfig {
        clients_per_node: 3,
        ..crossval_scenario()
    };

    let sim = run_scenario(&scenario);
    assert!(
        sim.client_subscriptions > sim.aggregate_patterns,
        "covering engaged: {} client subscriptions over {} aggregate filters",
        sim.client_subscriptions,
        sim.aggregate_patterns
    );

    let report = run_cluster(NetConfig {
        scenario: scenario.clone(),
        drain: Duration::from_secs(4),
        ..NetConfig::default()
    })
    .expect("cluster boots");

    assert_eq!(
        report.result.events_published, sim.events_published,
        "same seed must publish the same event sequence in sim and net"
    );
    assert_eq!(
        report.result.overall_delivery_rate, 1.0,
        "the wire run converges to 100% at client granularity; got {:?}",
        report.result
    );
    // Routing-state accounting comes from the shared population
    // builder: the two worlds must agree exactly.
    assert_eq!(report.result.client_subscriptions, sim.client_subscriptions);
    assert_eq!(report.result.aggregate_patterns, sim.aggregate_patterns);
    assert_eq!(report.result.routing_entries, sim.routing_entries);
    assert_eq!(
        report.result.setup_subscription_msgs,
        sim.setup_subscription_msgs
    );
    assert_eq!(report.net.decode_errors, 0, "codec never misparses");
}

/// The summary-reconciliation cross-validation cell: `summary-push`
/// runs its hash-tree digests and range-refinement requests through
/// the live codec over real sockets. The run must converge like the
/// linear digests do, with the digest traffic accounted in wire bits
/// on both sides (the runtime asserts framed size == `wire_bits` on
/// every send, so convergence here proves the summary envelopes
/// round-trip at their accounted size under load).
#[test]
fn sim_and_loopback_agree_with_summary_reconciliation() {
    let scenario = ScenarioConfig {
        algorithm: Algorithm::summary_push(),
        ..crossval_scenario()
    };

    let sim = run_scenario(&scenario);
    // Summary recovery resolves a mismatch over several rounds
    // (root → refine → detail → request), so a loss near the window's
    // edge can finish just past it — the bar sits slightly below the
    // linear cells' 0.99. Everything is eventually chased down:
    // no loss records remain outstanding.
    assert!(
        sim.delivery_rate >= 0.98,
        "simulated summary-push at ε=0.05 recovers the window; got {}",
        sim.delivery_rate
    );
    assert_eq!(sim.outstanding_losses, 0, "sim chased every loss");
    assert!(sim.events_recovered > 0, "sim recovery engaged");
    assert!(sim.gossip_wire_bits > 0, "sim accounted digest bits");

    let report = run_cluster(NetConfig {
        scenario: scenario.clone(),
        drain: Duration::from_secs(4),
        ..NetConfig::default()
    })
    .expect("cluster boots");

    assert_eq!(
        report.result.events_published, sim.events_published,
        "same seed must publish the same event sequence in sim and net"
    );
    assert_eq!(
        report.result.overall_delivery_rate, 1.0,
        "the wire run converges to 100% under summary reconciliation; got {:?}",
        report.result
    );
    assert!(report.net.injected_drops > 0, "loss injection exercised");
    assert!(report.result.events_recovered > 0, "net recovery engaged");
    assert!(
        report.result.gossip_wire_bits > 0,
        "summary digests were accounted in wire bits on the wire run"
    );
    assert_eq!(report.net.decode_errors, 0, "codec never misparses");
    assert_eq!(report.trace_dropped, 0, "trace capacity sufficed");
}

/// The runtime-equivalence cell: the same seed through the simulator,
/// the thread-per-node runtime, and the epoll reactor. The two socket
/// runtimes share one protocol core (`NodeCore`), one population
/// boot, and one aggregation path — so the workload identity and all
/// boot-derived routing state must be *equal*, not merely close, and
/// both must converge. This is the contract that lets the reactor
/// replace thread-per-node without re-validating the protocol.
#[test]
fn reactor_and_thread_runtimes_agree_with_sim_on_the_same_seed() {
    let scenario = crossval_scenario();
    let sim = run_scenario(&scenario);

    let config = || NetConfig {
        scenario: scenario.clone(),
        drain: Duration::from_secs(4),
        ..NetConfig::default()
    };
    let thread = run_cluster_as(config(), RuntimeKind::Thread).expect("thread cluster boots");
    let reactor =
        run_cluster_as(config(), RuntimeKind::Reactor { workers: 2 }).expect("reactor boots");

    for (name, report) in [("thread", &thread), ("reactor", &reactor)] {
        assert_eq!(
            report.result.events_published, sim.events_published,
            "{name}: same seed must publish the same event sequence as sim"
        );
        assert_eq!(
            report.result.overall_delivery_rate, 1.0,
            "{name}: the wire run converges to 100%; got {:?}",
            report.result
        );
        assert!(
            report.net.injected_drops > 0,
            "{name}: loss injection exercised"
        );
        assert_eq!(report.net.decode_errors, 0, "{name}: codec never misparses");
        assert_eq!(report.trace_dropped, 0, "{name}: trace capacity sufficed");
    }
    // Boot-derived state is bit-identical across runtimes, not just
    // statistically alike.
    assert_eq!(
        reactor.result.routing_entries,
        thread.result.routing_entries
    );
    assert_eq!(
        reactor.result.client_subscriptions,
        thread.result.client_subscriptions
    );
    assert_eq!(
        reactor.result.aggregate_patterns,
        thread.result.aggregate_patterns
    );
    assert_eq!(
        reactor.result.setup_subscription_msgs,
        thread.result.setup_subscription_msgs
    );
}

/// Determinism of the workload identity itself: two net runs with the
/// same seed publish the same count, and a different seed does not.
#[test]
fn net_workload_is_seed_deterministic() {
    let mut scenario = crossval_scenario();
    scenario.nodes = 3;
    scenario.duration = SimTime::from_millis(600);
    scenario.warmup = SimTime::from_millis(100);
    scenario.cooldown = SimTime::from_millis(100);
    let config = |seed| NetConfig {
        scenario: ScenarioConfig {
            seed,
            ..scenario.clone()
        },
        drain: Duration::from_secs(2),
        ..NetConfig::default()
    };
    let a = run_cluster(config(21)).expect("cluster boots");
    let b = run_cluster(config(21)).expect("cluster boots");
    let sim = run_scenario(&ScenarioConfig {
        seed: 21,
        ..scenario.clone()
    });
    assert_eq!(a.result.events_published, b.result.events_published);
    assert_eq!(a.result.events_published, sim.events_published);
}

/// The byte-accounting half of the cross-validation, stated directly:
/// for every message class, the codec's framed body is exactly
/// `wire_bits / 8` bytes — the simulator's accounting IS the wire
/// format's size. (The runtime also asserts this on every send, so
/// the cluster tests above exercise it over thousands of live
/// messages.)
#[test]
fn framed_sizes_equal_wire_bits_for_every_message_class() {
    let payload_bits = 1024;
    let event = {
        let mut e = Event::new(
            EventId::new(NodeId::new(2), 9),
            vec![(PatternId::new(3), 4), (PatternId::new(8), 1)],
        );
        e.record_hop(NodeId::new(1));
        e.record_hop(NodeId::new(4));
        e
    };
    let samples: Vec<Envelope> = vec![
        Envelope::PubSub(eps_pubsub::PubSubMessage::Subscribe(PatternId::new(5))),
        Envelope::PubSub(eps_pubsub::PubSubMessage::Unsubscribe(PatternId::new(5))),
        Envelope::PubSub(eps_pubsub::PubSubMessage::Event(event.clone())),
        Envelope::CrossEvent(event.clone()),
        Envelope::Gossip(GossipMessage::PushDigest {
            gossiper: NodeId::new(0),
            pattern: PatternId::new(3),
            ids: Arc::new(vec![EventId::new(NodeId::new(2), 9)]),
        }),
        Envelope::Gossip(GossipMessage::PullDigest {
            gossiper: NodeId::new(1),
            pattern: PatternId::new(3),
            lost: vec![loss()],
        }),
        Envelope::Gossip(GossipMessage::SourcePull {
            gossiper: NodeId::new(1),
            source: NodeId::new(2),
            lost: vec![loss()],
            route: vec![NodeId::new(2), NodeId::new(1)],
        }),
        Envelope::Gossip(GossipMessage::RandomPull {
            gossiper: NodeId::new(1),
            lost: vec![loss()],
            ttl: 4,
        }),
        Envelope::Request(vec![EventId::new(NodeId::new(2), 9); 3]),
        Envelope::Reply(vec![event]),
        Envelope::Reply(vec![]),
        Envelope::Gossip(GossipMessage::SummaryDigest {
            gossiper: NodeId::new(1),
            pattern: PatternId::new(3),
            ranges: Arc::new(vec![
                RangeSummary {
                    range: RangeRef::ROOT,
                    count: 41,
                    hash: 0xDEAD_BEEF_0BAD_F00D,
                },
                RangeSummary::empty(RangeRef::ROOT.child(7)),
            ]),
            details: Arc::new(vec![RangeDetail {
                range: RangeRef::ROOT.child(2),
                ids: vec![EventId::new(NodeId::new(2), 9); 4],
            }]),
        }),
        Envelope::RangeRequest {
            pattern: PatternId::new(3),
            ranges: vec![RangeRef::ROOT, RangeRef::ROOT.child(15)],
        },
    ];
    for env in &samples {
        let body = codec::encode(env, payload_bits).expect("encodes");
        assert_eq!(
            body.len() as u64 * 8,
            env.wire_bits(payload_bits),
            "framed size must equal wire_bits for {env:?}"
        );
        assert_eq!(
            codec::decode(&body, payload_bits).expect("decodes"),
            *env,
            "decode inverts encode for {env:?}"
        );
    }
}
