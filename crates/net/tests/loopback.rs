//! Loopback smoke tests: small clusters, real sockets, ~a second of
//! wall clock each. These are the tier-1 guard that the socket
//! runtime boots, converges, and survives forced restarts.

use std::time::Duration;

use eps_gossip::Algorithm;
use eps_harness::ScenarioConfig;
use eps_net::{run_cluster, Cluster, NetConfig};
use eps_sim::SimTime;

fn smoke_config(nodes: usize, algorithm: Algorithm, seed: u64) -> NetConfig {
    NetConfig {
        scenario: ScenarioConfig {
            seed,
            nodes,
            publish_rate: 20.0,
            link_error_rate: 0.05,
            // Dense content model so events have audiences and every
            // (source, pattern) stream flows often enough for loss
            // detection to engage — see crossval.rs for the rationale.
            pattern_universe: 6,
            pi_max: 2,
            duration: SimTime::from_millis(800),
            warmup: SimTime::from_millis(100),
            cooldown: SimTime::from_millis(100),
            gossip_interval: SimTime::from_millis(30),
            algorithm,
            ..ScenarioConfig::default()
        },
        drain: Duration::from_secs(3),
        ..NetConfig::default()
    }
}

#[test]
fn three_node_push_converges_on_loopback() {
    let report = run_cluster(smoke_config(3, Algorithm::push(), 11)).expect("cluster boots");
    assert!(report.result.events_published > 0, "workload ran");
    assert_eq!(
        report.result.overall_delivery_rate, 1.0,
        "push + out-of-band recovery must converge on loopback; got {:?}",
        report.result
    );
    assert!(report.net.frames_sent > 0, "tree links carried traffic");
    assert!(
        report.net.frames_received > 0,
        "tree links delivered traffic"
    );
    assert_eq!(report.net.decode_errors, 0, "codec never misparses");
    assert_eq!(report.trace_dropped, 0, "trace capacity sufficed");
}

#[test]
fn three_node_combined_pull_converges_on_loopback() {
    let report =
        run_cluster(smoke_config(3, Algorithm::combined_pull(), 13)).expect("cluster boots");
    assert!(report.result.events_published > 0, "workload ran");
    // Combined pull detects losses by sequence gaps, so an event that
    // ends its (source, pattern) stream can never be pulled — the
    // in-window rate must converge (streams keep flowing past the
    // window), but the run-tail is structurally unrecoverable.
    assert_eq!(
        report.result.delivery_rate, 1.0,
        "combined pull must converge inside the measurement window; got {:?}",
        report.result
    );
    assert_eq!(report.net.decode_errors, 0, "codec never misparses");
}

/// The acceptance scenario: a 16-node tree keeps running while nodes
/// are forcibly restarted mid-workload. The cluster must finish
/// without panics and the dial/backoff path must actually have been
/// exercised (peers retrying against a down listener).
#[test]
fn sixteen_node_tree_survives_forced_restarts() {
    let mut config = smoke_config(16, Algorithm::push(), 17);
    config.scenario.publish_rate = 10.0;
    config.scenario.duration = SimTime::from_millis(1200);
    let mut cluster = Cluster::launch(config).expect("cluster boots");
    std::thread::sleep(Duration::from_millis(250));
    cluster
        .restart_node(3, Duration::from_millis(150))
        .expect("restart rebinds");
    cluster
        .restart_node(9, Duration::from_millis(150))
        .expect("restart rebinds");
    let report = cluster.finish();
    assert!(report.result.events_published > 0, "workload ran");
    assert!(
        report.net.connect_retries > 0,
        "restarts must exercise the retry/backoff path; counters: {:?}",
        report.net
    );
    assert!(
        report.result.overall_delivery_rate > 0.9,
        "recovery should repair most restart damage; got {:?}",
        report.result
    );
    assert_eq!(report.net.decode_errors, 0, "codec never misparses");
}
