//! Reactor-runtime integration tests: the same loopback scenarios the
//! thread runtime answers for, executed by the epoll reactor — plus
//! the scale case the reactor exists for: a thousand dispatchers in
//! one process on a handful of worker threads.

use std::time::Duration;

use eps_gossip::Algorithm;
use eps_harness::ScenarioConfig;
use eps_net::{run_reactor_cluster, NetConfig, ReactorCluster};
use eps_sim::SimTime;

fn smoke_config(nodes: usize, algorithm: Algorithm, seed: u64) -> NetConfig {
    NetConfig {
        scenario: ScenarioConfig {
            seed,
            nodes,
            publish_rate: 20.0,
            link_error_rate: 0.05,
            // Dense content model so events have audiences and
            // recovery genuinely engages — see crossval.rs.
            pattern_universe: 6,
            pi_max: 2,
            duration: SimTime::from_millis(800),
            warmup: SimTime::from_millis(100),
            cooldown: SimTime::from_millis(100),
            gossip_interval: SimTime::from_millis(30),
            algorithm,
            ..ScenarioConfig::default()
        },
        drain: Duration::from_secs(3),
        ..NetConfig::default()
    }
}

#[test]
fn three_node_push_converges_under_the_reactor() {
    let report =
        run_reactor_cluster(smoke_config(3, Algorithm::push(), 11), 2).expect("reactor boots");
    assert!(report.result.events_published > 0, "workload ran");
    assert_eq!(
        report.result.overall_delivery_rate, 1.0,
        "push + out-of-band recovery must converge under the reactor; got {:?}",
        report.result
    );
    assert!(report.net.frames_sent > 0, "tree links carried traffic");
    assert!(
        report.net.frames_received > 0,
        "tree links delivered traffic"
    );
    assert!(
        report.latency.samples > 0 && report.latency.p99 >= report.latency.p50,
        "delivery latency was sampled; got {:?}",
        report.latency
    );
    assert_eq!(report.net.decode_errors, 0, "codec never misparses");
    assert_eq!(report.trace_dropped, 0, "trace capacity sufficed");
}

#[test]
fn combined_pull_converges_under_the_reactor() {
    let report = run_reactor_cluster(smoke_config(3, Algorithm::combined_pull(), 13), 2)
        .expect("reactor boots");
    assert!(report.result.events_published > 0, "workload ran");
    // Same caveat as the thread-runtime twin: pull detects losses by
    // sequence gaps, so the run-tail is structurally unrecoverable —
    // the in-window rate is the convergence claim.
    assert_eq!(
        report.result.delivery_rate, 1.0,
        "combined pull must converge inside the measurement window; got {:?}",
        report.result
    );
    assert_eq!(report.net.decode_errors, 0, "codec never misparses");
}

/// Forced restarts under the reactor: the restart request is
/// asynchronous (the worker keeps serving its other nodes), peers'
/// dial state machines must ride out the dead listener, and the
/// protocol state must survive the socket teardown.
#[test]
fn sixteen_node_tree_survives_forced_restarts_under_the_reactor() {
    let mut config = smoke_config(16, Algorithm::push(), 17);
    config.scenario.publish_rate = 10.0;
    config.scenario.duration = SimTime::from_millis(1200);
    let mut cluster = ReactorCluster::launch(config, 3).expect("reactor boots");
    std::thread::sleep(Duration::from_millis(250));
    cluster
        .restart_node(3, Duration::from_millis(150))
        .expect("restart request reaches the worker");
    cluster
        .restart_node(9, Duration::from_millis(150))
        .expect("restart request reaches the worker");
    let report = cluster.finish();
    assert!(report.result.events_published > 0, "workload ran");
    assert!(
        report.net.connect_retries > 0,
        "restarts must exercise the dial state machines; counters: {:?}",
        report.net
    );
    assert!(
        report.result.overall_delivery_rate > 0.9,
        "recovery should repair most restart damage; got {:?}",
        report.result
    );
    assert_eq!(report.net.decode_errors, 0, "codec never misparses");
}

/// The scale acceptance: 1000 dispatchers in one process, two worker
/// threads, every tree link live, full delivery. Loss injection is off
/// so the run's byte budget stays test-sized; what this pins is the
/// fd/timer/buffer machinery at three-plus thousand descriptors — far
/// past anything a thread-per-node runtime answers for in CI.
#[test]
fn thousand_dispatchers_converge_in_one_process() {
    let config = NetConfig {
        scenario: ScenarioConfig {
            seed: 23,
            nodes: 1000,
            max_degree: 6,
            publish_rate: 2.0,
            link_error_rate: 0.0,
            pattern_universe: 1000,
            pi_max: 1,
            duration: SimTime::from_millis(600),
            warmup: SimTime::from_millis(100),
            cooldown: SimTime::from_millis(100),
            gossip_interval: SimTime::from_millis(100),
            algorithm: Algorithm::push(),
            ..ScenarioConfig::default()
        },
        drain: Duration::from_secs(20),
        ..NetConfig::default()
    };
    let report = run_reactor_cluster(config, 2).expect("reactor boots 1000 dispatchers");
    assert!(
        report.result.events_published > 100,
        "the population published a real workload; got {}",
        report.result.events_published
    );
    assert!(
        report.result.overall_delivery_rate >= 0.99,
        "a lossless 1000-node tree must deliver (recovery covers stragglers); got {:?}",
        report.result
    );
    assert_eq!(report.net.decode_errors, 0, "codec never misparses");
    assert_eq!(report.trace_dropped, 0, "trace capacity sufficed");
}
