//! Node identifiers for the dispatching overlay.

use std::fmt;

/// Identifier of a dispatcher (a node of the overlay network).
///
/// Node ids are dense: a topology of `n` nodes uses ids `0..n`, which
/// lets higher layers index `Vec`s directly via [`NodeId::index`].
///
/// # Examples
///
/// ```
/// use eps_overlay::NodeId;
///
/// let n = NodeId::new(3);
/// assert_eq!(n.index(), 3);
/// assert_eq!(n.to_string(), "d3");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from its dense index.
    pub const fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// The dense index of this node, for indexing per-node arrays.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw id value.
    pub const fn value(self) -> u32 {
        self.0
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

/// An undirected link between two overlay nodes, stored in canonical
/// (smaller id first) order so that `(a, b)` and `(b, a)` compare equal.
///
/// # Examples
///
/// ```
/// use eps_overlay::{LinkId, NodeId};
///
/// let ab = LinkId::new(NodeId::new(2), NodeId::new(1));
/// let ba = LinkId::new(NodeId::new(1), NodeId::new(2));
/// assert_eq!(ab, ba);
/// assert_eq!(ab.a(), NodeId::new(1));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LinkId {
    a: NodeId,
    b: NodeId,
}

impl LinkId {
    /// Creates a canonical link id between two distinct nodes.
    ///
    /// # Panics
    ///
    /// Panics if `x == y` (self-links are not part of the model).
    pub fn new(x: NodeId, y: NodeId) -> Self {
        assert!(x != y, "self-link {x} is not allowed");
        if x < y {
            LinkId { a: x, b: y }
        } else {
            LinkId { a: y, b: x }
        }
    }

    /// The lower-id endpoint.
    pub fn a(self) -> NodeId {
        self.a
    }

    /// The higher-id endpoint.
    pub fn b(self) -> NodeId {
        self.b
    }

    /// Given one endpoint, returns the other.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not an endpoint of this link.
    pub fn other(self, from: NodeId) -> NodeId {
        if from == self.a {
            self.b
        } else if from == self.b {
            self.a
        } else {
            panic!("{from} is not an endpoint of {self}");
        }
    }

    /// `true` if `n` is one of the endpoints.
    pub fn touches(self, n: NodeId) -> bool {
        self.a == n || self.b == n
    }

    /// The endpoint that initiates the TCP connection for this link in
    /// the real-socket runtime. Fixing the dialer to the lower id (and
    /// the acceptor to the higher) gives every link exactly one
    /// connection regardless of boot order — both sides derive the
    /// same role from the id pair alone, with no negotiation.
    pub fn dialer(self) -> NodeId {
        self.a
    }

    /// The endpoint that accepts the TCP connection for this link; see
    /// [`LinkId::dialer`].
    pub fn acceptor(self) -> NodeId {
        self.b
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{}", self.a, self.b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let n = NodeId::from(7u32);
        assert_eq!(n.index(), 7);
        assert_eq!(n.value(), 7);
    }

    #[test]
    fn link_id_is_canonical() {
        let a = NodeId::new(5);
        let b = NodeId::new(2);
        let l = LinkId::new(a, b);
        assert_eq!(l, LinkId::new(b, a));
        assert_eq!(l.a(), b);
        assert_eq!(l.b(), a);
    }

    #[test]
    fn link_other_endpoint() {
        let l = LinkId::new(NodeId::new(1), NodeId::new(9));
        assert_eq!(l.other(NodeId::new(1)), NodeId::new(9));
        assert_eq!(l.other(NodeId::new(9)), NodeId::new(1));
        assert!(l.touches(NodeId::new(9)));
        assert!(!l.touches(NodeId::new(2)));
    }

    #[test]
    fn dialer_is_the_lower_endpoint_either_way_round() {
        let l = LinkId::new(NodeId::new(7), NodeId::new(3));
        assert_eq!(l.dialer(), NodeId::new(3));
        assert_eq!(l.acceptor(), NodeId::new(7));
        assert_eq!(
            l.dialer(),
            LinkId::new(NodeId::new(3), NodeId::new(7)).dialer()
        );
    }

    #[test]
    #[should_panic]
    fn self_link_panics() {
        let _ = LinkId::new(NodeId::new(3), NodeId::new(3));
    }

    #[test]
    #[should_panic]
    fn other_panics_for_non_endpoint() {
        LinkId::new(NodeId::new(0), NodeId::new(1)).other(NodeId::new(2));
    }
}
