//! The link model: 10 Mbit/s store-and-forward links with FIFO
//! serialization, propagation delay, and Bernoulli message loss.

use std::collections::HashMap;

use eps_sim::{Rng, SimTime};

use crate::node::NodeId;

/// Static characteristics of every overlay link.
///
/// The paper assumes each overlay link behaves as a 10 Mbit/s Ethernet
/// link with an error rate `ε` applied per message. Loss compounds per
/// hop along the dispatching tree, which is what yields the paper's
/// baseline delivery rates (≈ 55 % at ε = 0.1, ≈ 75 % at ε = 0.05 for
/// `N` = 100).
///
/// # Examples
///
/// ```
/// use eps_overlay::LinkSpec;
///
/// let spec = LinkSpec::ethernet_10mbps(0.1);
/// // 1000 bits at 10 Mbit/s take 100 µs to serialize.
/// assert_eq!(spec.serialization_delay(1000).as_nanos(), 100_000);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkSpec {
    /// Link bandwidth in bits per second.
    pub bandwidth_bps: u64,
    /// One-way propagation delay.
    pub propagation: SimTime,
    /// Per-message loss probability in `[0, 1]`.
    pub loss_rate: f64,
}

impl LinkSpec {
    /// The paper's default: a 10 Mbit/s Ethernet-like link with 50 µs
    /// propagation delay and the given error rate.
    ///
    /// # Panics
    ///
    /// Panics if `loss_rate` is outside `[0, 1]`.
    pub fn ethernet_10mbps(loss_rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&loss_rate),
            "loss rate out of range: {loss_rate}"
        );
        LinkSpec {
            bandwidth_bps: 10_000_000,
            propagation: SimTime::from_micros(50),
            loss_rate,
        }
    }

    /// A fully reliable variant of the same link (used in the
    /// reconfiguration scenarios, where links do not lose messages).
    pub fn reliable_10mbps() -> Self {
        Self::ethernet_10mbps(0.0)
    }

    /// Time to clock `bits` onto the wire.
    pub fn serialization_delay(&self, bits: u64) -> SimTime {
        let ns = (bits as u128 * 1_000_000_000u128) / self.bandwidth_bps as u128;
        SimTime::from_nanos(ns as u64)
    }
}

/// Outcome of pushing one message onto a link.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Transmission {
    /// The message will arrive at the far end at the given time.
    Arrives(SimTime),
    /// The message was lost in transit (it still occupied the sender's
    /// queue, as a corrupted frame would).
    Lost,
}

impl Transmission {
    /// The arrival time, if the message was not lost.
    pub fn arrival(self) -> Option<SimTime> {
        match self {
            Transmission::Arrives(t) => Some(t),
            Transmission::Lost => None,
        }
    }
}

/// Dynamic state of the overlay links: per-direction FIFO occupancy.
///
/// Each direction of a link is an independent queue (full duplex, as
/// for a switched Ethernet segment). A message enqueued while the
/// direction is busy starts serializing when the previous one ends.
#[derive(Clone, Debug, Default)]
pub struct LinkTable {
    /// Keyed lookups only — never iterated, so the HashMap's
    /// arbitrary ordering can't leak into any output.
    busy_until: HashMap<(NodeId, NodeId), SimTime>,
    transmitted: u64,
    lost: u64,
}

impl LinkTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Simulates sending `bits` from `from` to `to` at time `now`.
    ///
    /// Returns when the message arrives, or [`Transmission::Lost`] with
    /// probability `spec.loss_rate`. Loss is decided by `rng`, which
    /// the caller supplies so that the loss stream is deterministic.
    pub fn transmit(
        &mut self,
        spec: &LinkSpec,
        from: NodeId,
        to: NodeId,
        bits: u64,
        now: SimTime,
        rng: &mut Rng,
    ) -> Transmission {
        let queue = self.busy_until.entry((from, to)).or_insert(SimTime::ZERO);
        let start = (*queue).max(now);
        let done = start + spec.serialization_delay(bits);
        *queue = done;
        self.transmitted += 1;
        if spec.loss_rate > 0.0 && rng.random_bool(spec.loss_rate) {
            self.lost += 1;
            Transmission::Lost
        } else {
            Transmission::Arrives(done + spec.propagation)
        }
    }

    /// Clears queue state for both directions of a broken link so a
    /// later replacement starts fresh.
    pub fn reset_link(&mut self, a: NodeId, b: NodeId) {
        self.busy_until.remove(&(a, b));
        self.busy_until.remove(&(b, a));
    }

    /// Total messages pushed onto links.
    pub fn transmitted(&self) -> u64 {
        self.transmitted
    }

    /// Total messages lost in transit.
    pub fn lost(&self) -> u64 {
        self.lost
    }

    /// Observed loss ratio.
    pub fn loss_ratio(&self) -> f64 {
        if self.transmitted == 0 {
            0.0
        } else {
            self.lost as f64 / self.transmitted as f64
        }
    }
}

/// The out-of-band unicast channel used for gossip requests/replies and
/// event retransmissions.
///
/// The paper assumes "a unicast transport layer (not necessarily
/// reliable, e.g., UDP-based)" that is independent of the dispatching
/// tree. We model it as a direct path with fixed latency plus
/// serialization at the configured bandwidth, and an optional loss
/// rate (zero by default; used by failure-injection tests).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OutOfBandSpec {
    /// Effective end-to-end bandwidth in bits per second.
    pub bandwidth_bps: u64,
    /// Fixed end-to-end latency.
    pub latency: SimTime,
    /// Per-message loss probability.
    pub loss_rate: f64,
}

impl Default for OutOfBandSpec {
    fn default() -> Self {
        OutOfBandSpec {
            bandwidth_bps: 10_000_000,
            latency: SimTime::from_micros(200),
            loss_rate: 0.0,
        }
    }
}

impl OutOfBandSpec {
    /// Delivery delay for a message of `bits`, or `None` if lost.
    pub fn delay(&self, bits: u64, rng: &mut Rng) -> Option<SimTime> {
        if self.loss_rate > 0.0 && rng.random_bool(self.loss_rate) {
            return None;
        }
        let ser = (bits as u128 * 1_000_000_000u128) / self.bandwidth_bps as u128;
        Some(self.latency + SimTime::from_nanos(ser as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eps_sim::RngFactory;

    #[test]
    fn serialization_delay_scales_with_size() {
        let spec = LinkSpec::ethernet_10mbps(0.0);
        assert_eq!(
            spec.serialization_delay(10_000_000).as_nanos(),
            1_000_000_000
        );
        assert_eq!(spec.serialization_delay(0), SimTime::ZERO);
    }

    #[test]
    fn fifo_queueing_serializes_back_to_back_sends() {
        let spec = LinkSpec::ethernet_10mbps(0.0);
        let mut table = LinkTable::new();
        let mut rng = RngFactory::new(1).stream("loss");
        let (a, b) = (NodeId::new(0), NodeId::new(1));
        let t0 = SimTime::ZERO;
        let first = table.transmit(&spec, a, b, 1000, t0, &mut rng);
        let second = table.transmit(&spec, a, b, 1000, t0, &mut rng);
        let d = spec.serialization_delay(1000);
        assert_eq!(first.arrival().unwrap(), d + spec.propagation);
        assert_eq!(second.arrival().unwrap(), d + d + spec.propagation);
    }

    #[test]
    fn directions_are_independent() {
        let spec = LinkSpec::ethernet_10mbps(0.0);
        let mut table = LinkTable::new();
        let mut rng = RngFactory::new(1).stream("loss");
        let (a, b) = (NodeId::new(0), NodeId::new(1));
        let fwd = table.transmit(&spec, a, b, 1000, SimTime::ZERO, &mut rng);
        let back = table.transmit(&spec, b, a, 1000, SimTime::ZERO, &mut rng);
        assert_eq!(fwd.arrival(), back.arrival());
    }

    #[test]
    fn idle_link_restarts_from_now() {
        let spec = LinkSpec::ethernet_10mbps(0.0);
        let mut table = LinkTable::new();
        let mut rng = RngFactory::new(1).stream("loss");
        let (a, b) = (NodeId::new(0), NodeId::new(1));
        table.transmit(&spec, a, b, 1000, SimTime::ZERO, &mut rng);
        let later = SimTime::from_secs(1);
        let t = table.transmit(&spec, a, b, 1000, later, &mut rng);
        assert_eq!(
            t.arrival().unwrap(),
            later + spec.serialization_delay(1000) + spec.propagation
        );
    }

    #[test]
    fn loss_rate_is_respected_statistically() {
        let spec = LinkSpec::ethernet_10mbps(0.1);
        let mut table = LinkTable::new();
        let mut rng = RngFactory::new(7).stream("loss");
        let (a, b) = (NodeId::new(0), NodeId::new(1));
        for _ in 0..20_000 {
            table.transmit(&spec, a, b, 100, SimTime::ZERO, &mut rng);
        }
        let ratio = table.loss_ratio();
        assert!((ratio - 0.1).abs() < 0.01, "observed loss {ratio}");
    }

    #[test]
    fn zero_loss_never_drops() {
        let spec = LinkSpec::reliable_10mbps();
        let mut table = LinkTable::new();
        let mut rng = RngFactory::new(7).stream("loss");
        for _ in 0..1000 {
            let t = table.transmit(
                &spec,
                NodeId::new(0),
                NodeId::new(1),
                100,
                SimTime::ZERO,
                &mut rng,
            );
            assert!(matches!(t, Transmission::Arrives(_)));
        }
        assert_eq!(table.lost(), 0);
    }

    #[test]
    fn reset_link_clears_queue() {
        let spec = LinkSpec::ethernet_10mbps(0.0);
        let mut table = LinkTable::new();
        let mut rng = RngFactory::new(1).stream("loss");
        let (a, b) = (NodeId::new(0), NodeId::new(1));
        table.transmit(&spec, a, b, 1_000_000, SimTime::ZERO, &mut rng);
        table.reset_link(a, b);
        let t = table.transmit(&spec, a, b, 1000, SimTime::ZERO, &mut rng);
        assert_eq!(
            t.arrival().unwrap(),
            spec.serialization_delay(1000) + spec.propagation
        );
    }

    #[test]
    fn out_of_band_delay_and_loss() {
        let mut rng = RngFactory::new(3).stream("oob");
        let reliable = OutOfBandSpec::default();
        let d = reliable.delay(10_000, &mut rng).unwrap();
        assert_eq!(d, SimTime::from_micros(200) + SimTime::from_micros(1000));
        let lossy = OutOfBandSpec {
            loss_rate: 1.0,
            ..OutOfBandSpec::default()
        };
        assert_eq!(lossy.delay(100, &mut rng), None);
    }

    #[test]
    #[should_panic]
    fn invalid_loss_rate_panics() {
        let _ = LinkSpec::ethernet_10mbps(1.5);
    }
}
