//! The overlay topology: an undirected graph of dispatchers, normally
//! maintained as an unrooted tree (the paper's dispatching tree).

use std::collections::VecDeque;

use eps_sim::Rng;

use crate::node::{LinkId, NodeId};

/// Error returned by [`Topology`] mutators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TopologyError {
    /// The named node does not exist.
    UnknownNode(NodeId),
    /// The link already exists.
    DuplicateLink(LinkId),
    /// The link does not exist.
    MissingLink(LinkId),
    /// Adding the link would exceed the degree bound of a node.
    DegreeExceeded(NodeId),
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyError::UnknownNode(n) => write!(f, "unknown node {n}"),
            TopologyError::DuplicateLink(l) => write!(f, "link {l} already exists"),
            TopologyError::MissingLink(l) => write!(f, "link {l} does not exist"),
            TopologyError::DegreeExceeded(n) => {
                write!(f, "adding link would exceed degree bound at {n}")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// An undirected overlay graph with an optional per-node degree bound.
///
/// The dispatching overlay of the paper is an *unrooted tree* with
/// degree at most four; [`Topology::random_tree`] builds exactly that.
/// During reconfiguration the graph transiently has two components
/// (after a link breaks) before a replacement link restores a tree.
///
/// # Examples
///
/// ```
/// use eps_overlay::Topology;
/// use eps_sim::RngFactory;
///
/// let mut rng = RngFactory::new(1).stream("topology");
/// let topo = Topology::random_tree(100, 4, &mut rng);
/// assert!(topo.is_tree());
/// assert!(topo.nodes().all(|n| topo.degree(n) <= 4));
/// ```
#[derive(Clone, Debug)]
pub struct Topology {
    adjacency: Vec<Vec<NodeId>>,
    max_degree: usize,
    link_count: usize,
}

impl Topology {
    /// Creates a topology of `n` isolated nodes with the given degree
    /// bound.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `max_degree < 2` (a tree with more than
    /// two nodes needs internal nodes of degree ≥ 2).
    pub fn new(n: usize, max_degree: usize) -> Self {
        assert!(n > 0, "topology needs at least one node");
        assert!(max_degree >= 2, "degree bound must be at least 2");
        Topology {
            adjacency: vec![Vec::new(); n],
            max_degree,
            link_count: 0,
        }
    }

    /// Builds a random spanning tree over `n` nodes where every node
    /// has degree at most `max_degree`.
    ///
    /// Nodes are attached one at a time to a uniformly random existing
    /// node that still has spare degree — the same incremental growth
    /// model used in the simulations of the paper's reference \[7\].
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Topology::new`].
    pub fn random_tree(n: usize, max_degree: usize, rng: &mut Rng) -> Self {
        let mut topo = Topology::new(n, max_degree);
        for i in 1..n {
            let candidate = rng
                .choose_iter(
                    (0..i)
                        .map(|j| NodeId::new(j as u32))
                        .filter(|&j| topo.degree(j) < max_degree),
                )
                .expect("a growing bounded-degree tree always has a node with spare degree");
            topo.add_link(candidate, NodeId::new(i as u32))
                .expect("candidate was checked for spare degree");
        }
        topo
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.adjacency.len()
    }

    /// `true` if the topology has no nodes (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.adjacency.is_empty()
    }

    /// The degree bound.
    pub fn max_degree(&self) -> usize {
        self.max_degree
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.adjacency.len()).map(|i| NodeId::new(i as u32))
    }

    /// The neighbors of `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn neighbors(&self, n: NodeId) -> &[NodeId] {
        &self.adjacency[n.index()]
    }

    /// The degree of `n`.
    pub fn degree(&self, n: NodeId) -> usize {
        self.adjacency[n.index()].len()
    }

    /// `true` if `a` and `b` are directly linked.
    pub fn has_link(&self, a: NodeId, b: NodeId) -> bool {
        self.adjacency[a.index()].contains(&b)
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.link_count
    }

    /// Iterator over all links in canonical order.
    pub fn links(&self) -> impl Iterator<Item = LinkId> + '_ {
        self.adjacency.iter().enumerate().flat_map(|(i, nbrs)| {
            let a = NodeId::new(i as u32);
            nbrs.iter()
                .filter(move |&&b| a < b)
                .map(move |&b| LinkId::new(a, b))
        })
    }

    /// Adds an undirected link.
    ///
    /// # Errors
    ///
    /// Returns an error if either node is unknown, the link already
    /// exists, or it would violate the degree bound.
    pub fn add_link(&mut self, a: NodeId, b: NodeId) -> Result<LinkId, TopologyError> {
        let id = LinkId::new(a, b);
        for n in [a, b] {
            if n.index() >= self.adjacency.len() {
                return Err(TopologyError::UnknownNode(n));
            }
        }
        if self.has_link(a, b) {
            return Err(TopologyError::DuplicateLink(id));
        }
        for n in [a, b] {
            if self.degree(n) >= self.max_degree {
                return Err(TopologyError::DegreeExceeded(n));
            }
        }
        self.adjacency[a.index()].push(b);
        self.adjacency[b.index()].push(a);
        self.link_count += 1;
        Ok(id)
    }

    /// Removes an undirected link.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::MissingLink`] if the link does not
    /// exist.
    pub fn remove_link(&mut self, link: LinkId) -> Result<(), TopologyError> {
        let (a, b) = (link.a(), link.b());
        if a.index() >= self.adjacency.len() || !self.has_link(a, b) {
            return Err(TopologyError::MissingLink(link));
        }
        self.adjacency[a.index()].retain(|&x| x != b);
        self.adjacency[b.index()].retain(|&x| x != a);
        self.link_count -= 1;
        Ok(())
    }

    /// The set of nodes reachable from `start` (including it), in BFS
    /// order.
    pub fn component_of(&self, start: NodeId) -> Vec<NodeId> {
        let mut seen = vec![false; self.len()];
        let mut queue = VecDeque::from([start]);
        let mut out = Vec::new();
        seen[start.index()] = true;
        while let Some(n) = queue.pop_front() {
            out.push(n);
            for &m in self.neighbors(n) {
                if !seen[m.index()] {
                    seen[m.index()] = true;
                    queue.push_back(m);
                }
            }
        }
        out
    }

    /// `true` if every node is reachable from every other.
    pub fn is_connected(&self) -> bool {
        self.component_of(NodeId::new(0)).len() == self.len()
    }

    /// `true` if the graph is a tree: connected with exactly `n - 1`
    /// links.
    pub fn is_tree(&self) -> bool {
        self.link_count == self.len() - 1 && self.is_connected()
    }

    /// Shortest path from `a` to `b` (inclusive of both), or `None` if
    /// disconnected.
    pub fn path(&self, a: NodeId, b: NodeId) -> Option<Vec<NodeId>> {
        if a == b {
            return Some(vec![a]);
        }
        let mut prev: Vec<Option<NodeId>> = vec![None; self.len()];
        let mut queue = VecDeque::from([a]);
        prev[a.index()] = Some(a);
        while let Some(n) = queue.pop_front() {
            for &m in self.neighbors(n) {
                if prev[m.index()].is_none() {
                    prev[m.index()] = Some(n);
                    if m == b {
                        let mut path = vec![b];
                        let mut cur = b;
                        while cur != a {
                            cur = prev[cur.index()].expect("predecessor chain is complete");
                            path.push(cur);
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(m);
                }
            }
        }
        None
    }

    /// Renders the topology in Graphviz DOT format, for visualising
    /// overlays in examples and debugging sessions.
    ///
    /// # Examples
    ///
    /// ```
    /// use eps_overlay::Topology;
    /// use eps_sim::RngFactory;
    ///
    /// let topo = Topology::random_tree(4, 4, &mut RngFactory::new(1).stream("t"));
    /// let dot = topo.to_dot();
    /// assert!(dot.starts_with("graph overlay {"));
    /// assert_eq!(dot.matches(" -- ").count(), 3);
    /// ```
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("graph overlay {\n  node [shape=circle];\n");
        for link in self.links() {
            let _ = writeln!(out, "  {} -- {};", link.a().index(), link.b().index());
        }
        out.push_str("}\n");
        out
    }

    /// Mean shortest-path length (in hops) over all ordered node pairs.
    /// Useful for calibrating loss compounding.
    pub fn mean_path_hops(&self) -> f64 {
        let n = self.len();
        if n < 2 {
            return 0.0;
        }
        let mut total = 0u64;
        let mut pairs = 0u64;
        for a in self.nodes() {
            // BFS distances from a.
            let mut dist: Vec<Option<u32>> = vec![None; n];
            dist[a.index()] = Some(0);
            let mut queue = VecDeque::from([a]);
            while let Some(x) = queue.pop_front() {
                let d = dist[x.index()].expect("popped nodes have distances");
                for &m in self.neighbors(x) {
                    if dist[m.index()].is_none() {
                        dist[m.index()] = Some(d + 1);
                        queue.push_back(m);
                    }
                }
            }
            for b in self.nodes() {
                if b != a {
                    if let Some(d) = dist[b.index()] {
                        total += d as u64;
                        pairs += 1;
                    }
                }
            }
        }
        if pairs == 0 {
            0.0
        } else {
            total as f64 / pairs as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eps_sim::RngFactory;

    fn rng() -> Rng {
        RngFactory::new(42).stream("topology-test")
    }

    #[test]
    fn random_tree_is_a_degree_bounded_tree() {
        let topo = Topology::random_tree(100, 4, &mut rng());
        assert_eq!(topo.len(), 100);
        assert_eq!(topo.link_count(), 99);
        assert!(topo.is_tree());
        assert!(topo.nodes().all(|n| topo.degree(n) <= 4));
    }

    #[test]
    fn single_node_tree() {
        let topo = Topology::random_tree(1, 4, &mut rng());
        assert!(topo.is_tree());
        assert_eq!(topo.link_count(), 0);
    }

    #[test]
    fn add_link_rejects_duplicates_and_degree_violations() {
        let mut t = Topology::new(4, 2);
        let (a, b, c, d) = (
            NodeId::new(0),
            NodeId::new(1),
            NodeId::new(2),
            NodeId::new(3),
        );
        t.add_link(a, b).unwrap();
        assert!(matches!(
            t.add_link(b, a),
            Err(TopologyError::DuplicateLink(_))
        ));
        t.add_link(a, c).unwrap();
        assert!(matches!(
            t.add_link(a, d),
            Err(TopologyError::DegreeExceeded(n)) if n == a
        ));
    }

    #[test]
    fn remove_link_splits_tree() {
        let mut t = Topology::random_tree(20, 4, &mut rng());
        let link = t.links().next().unwrap();
        t.remove_link(link).unwrap();
        assert!(!t.is_connected());
        let comp_a = t.component_of(link.a());
        let comp_b = t.component_of(link.b());
        assert_eq!(comp_a.len() + comp_b.len(), 20);
        assert!(matches!(
            t.remove_link(link),
            Err(TopologyError::MissingLink(_))
        ));
    }

    #[test]
    fn path_endpoints_and_adjacency() {
        let t = Topology::random_tree(50, 4, &mut rng());
        let a = NodeId::new(3);
        let b = NodeId::new(47);
        let path = t.path(a, b).unwrap();
        assert_eq!(*path.first().unwrap(), a);
        assert_eq!(*path.last().unwrap(), b);
        for w in path.windows(2) {
            assert!(t.has_link(w[0], w[1]));
        }
    }

    #[test]
    fn path_to_self_is_singleton() {
        let t = Topology::random_tree(5, 4, &mut rng());
        assert_eq!(
            t.path(NodeId::new(2), NodeId::new(2)),
            Some(vec![NodeId::new(2)])
        );
    }

    #[test]
    fn path_is_none_across_components() {
        let mut t = Topology::new(2, 2);
        assert_eq!(t.path(NodeId::new(0), NodeId::new(1)), None);
        t.add_link(NodeId::new(0), NodeId::new(1)).unwrap();
        assert!(t.path(NodeId::new(0), NodeId::new(1)).is_some());
    }

    #[test]
    fn links_iterates_each_link_once() {
        let t = Topology::random_tree(30, 4, &mut rng());
        let links: Vec<LinkId> = t.links().collect();
        assert_eq!(links.len(), 29);
        let mut dedup = links.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), links.len());
    }

    #[test]
    fn mean_path_hops_is_positive_and_bounded() {
        let t = Topology::random_tree(100, 4, &mut rng());
        let hops = t.mean_path_hops();
        assert!(hops > 1.0, "hops = {hops}");
        assert!(hops < 20.0, "hops = {hops}");
    }

    #[test]
    fn tree_detection_rejects_cycles() {
        let mut t = Topology::new(3, 3);
        t.add_link(NodeId::new(0), NodeId::new(1)).unwrap();
        t.add_link(NodeId::new(1), NodeId::new(2)).unwrap();
        assert!(t.is_tree());
        t.add_link(NodeId::new(2), NodeId::new(0)).unwrap();
        assert!(!t.is_tree());
    }
}
