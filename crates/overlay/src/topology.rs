//! The overlay topology: an undirected graph of dispatchers, normally
//! maintained as an unrooted tree (the paper's dispatching tree).

use std::collections::VecDeque;

use eps_sim::Rng;

use crate::node::{LinkId, NodeId};

/// Error returned by [`Topology`] mutators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TopologyError {
    /// The named node does not exist.
    UnknownNode(NodeId),
    /// The link already exists.
    DuplicateLink(LinkId),
    /// The link does not exist.
    MissingLink(LinkId),
    /// Adding the link would exceed the degree bound of a node.
    DegreeExceeded(NodeId),
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyError::UnknownNode(n) => write!(f, "unknown node {n}"),
            TopologyError::DuplicateLink(l) => write!(f, "link {l} already exists"),
            TopologyError::MissingLink(l) => write!(f, "link {l} does not exist"),
            TopologyError::DegreeExceeded(n) => {
                write!(f, "adding link would exceed degree bound at {n}")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// The overlay family a scenario runs on. `Tree` is the paper's
/// degree-bounded random spanning tree; the other two are the cyclic
/// complex-network overlays from Ferretti's gossip pub-sub study
/// (arXiv 1112.0416): scale-free preferential attachment and
/// small-world ring rewiring.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum OverlayKind {
    /// Incremental random spanning tree ([`Topology::random_tree`]).
    #[default]
    Tree,
    /// Degree-capped Barabási–Albert preferential attachment
    /// ([`Topology::barabasi_albert`]).
    BarabasiAlbert,
    /// Watts–Strogatz small-world ring rewiring
    /// ([`Topology::watts_strogatz`]).
    WattsStrogatz,
}

impl OverlayKind {
    /// All overlay kinds, tree first.
    pub fn all() -> [OverlayKind; 3] {
        [
            OverlayKind::Tree,
            OverlayKind::BarabasiAlbert,
            OverlayKind::WattsStrogatz,
        ]
    }

    /// The canonical short name (the `--overlay` CLI value).
    pub fn name(self) -> &'static str {
        match self {
            OverlayKind::Tree => "tree",
            OverlayKind::BarabasiAlbert => "ba",
            OverlayKind::WattsStrogatz => "ws",
        }
    }

    /// `true` for the acyclic overlay: physical graph == routing view,
    /// so no cross links and no redundant deliveries exist.
    pub fn is_tree(self) -> bool {
        self == OverlayKind::Tree
    }
}

impl std::fmt::Display for OverlayKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for OverlayKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "tree" => Ok(OverlayKind::Tree),
            "ba" | "barabasi-albert" => Ok(OverlayKind::BarabasiAlbert),
            "ws" | "watts-strogatz" => Ok(OverlayKind::WattsStrogatz),
            other => Err(format!(
                "unknown overlay '{other}' (expected tree, ba, or ws)"
            )),
        }
    }
}

/// Attachment edges each new node brings in
/// [`Topology::barabasi_albert`] — the classic BA `m`, giving a mean
/// degree of `2m = 4` (the paper's tree degree bound).
pub const BA_ATTACHMENTS: usize = 2;

/// Bounded retries for one preferential (or fallback uniform) target
/// draw in the graph builders before giving up on the slot.
const BA_PREFERENTIAL_TRIES: usize = 16;

/// Bounded retries for one rewiring target draw in
/// [`Topology::watts_strogatz`] before keeping the original chord.
const WS_REWIRE_TRIES: usize = 16;

/// The default Watts–Strogatz rewiring probability used by
/// [`Topology::build`]: enough long-range chords to collapse the path
/// length while the ring clustering survives.
pub const WS_BETA: f64 = 0.2;

/// A set of node ids supporting O(1) insert, remove, and uniform
/// random draw — the spare-degree candidate pool the graph builders
/// sample attachment targets from. `pos[x]` is `x`'s index in `items`,
/// or `u32::MAX` when absent.
struct SpareSet {
    items: Vec<u32>,
    pos: Vec<u32>,
}

const ABSENT: u32 = u32::MAX;

impl SpareSet {
    fn empty(n: usize) -> Self {
        SpareSet {
            items: Vec::with_capacity(n),
            pos: vec![ABSENT; n],
        }
    }

    fn full(n: usize) -> Self {
        SpareSet {
            items: (0..n as u32).collect(),
            pos: (0..n as u32).collect(),
        }
    }

    fn insert(&mut self, x: u32) {
        if self.pos[x as usize] == ABSENT {
            self.pos[x as usize] = self.items.len() as u32;
            self.items.push(x);
        }
    }

    fn remove(&mut self, x: u32) {
        let p = self.pos[x as usize];
        if p == ABSENT {
            return;
        }
        self.items.swap_remove(p as usize);
        if let Some(&moved) = self.items.get(p as usize) {
            self.pos[moved as usize] = p;
        }
        self.pos[x as usize] = ABSENT;
    }

    fn draw(&self, rng: &mut Rng) -> Option<NodeId> {
        if self.items.is_empty() {
            None
        } else {
            let k = rng.random_below(self.items.len() as u64) as usize;
            Some(NodeId::new(self.items[k]))
        }
    }
}

/// An undirected overlay graph with an optional per-node degree bound.
///
/// The dispatching overlay of the paper is an *unrooted tree* with
/// degree at most four; [`Topology::random_tree`] builds exactly that.
/// During reconfiguration the graph transiently has two components
/// (after a link breaks) before a replacement link restores a tree.
///
/// # Examples
///
/// ```
/// use eps_overlay::Topology;
/// use eps_sim::RngFactory;
///
/// let mut rng = RngFactory::new(1).stream("topology");
/// let topo = Topology::random_tree(100, 4, &mut rng);
/// assert!(topo.is_tree());
/// assert!(topo.nodes().all(|n| topo.degree(n) <= 4));
/// ```
#[derive(Clone, Debug)]
pub struct Topology {
    adjacency: Vec<Vec<NodeId>>,
    max_degree: usize,
    link_count: usize,
}

impl Topology {
    /// Creates a topology of `n` isolated nodes with the given degree
    /// bound.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `max_degree < 2` (a tree with more than
    /// two nodes needs internal nodes of degree ≥ 2).
    pub fn new(n: usize, max_degree: usize) -> Self {
        assert!(n > 0, "topology needs at least one node");
        assert!(max_degree >= 2, "degree bound must be at least 2");
        Topology {
            adjacency: vec![Vec::new(); n],
            max_degree,
            link_count: 0,
        }
    }

    /// Builds a random spanning tree over `n` nodes where every node
    /// has degree at most `max_degree`.
    ///
    /// Nodes are attached one at a time to a uniformly random existing
    /// node that still has spare degree — the same incremental growth
    /// model used in the simulations of the paper's reference \[7\].
    /// The spare-degree candidates are kept in an indexed set drawn
    /// from in O(1), so construction is O(N) overall (the previous
    /// rejection-free scan of all attached nodes per step was O(N²) —
    /// minutes at 10⁵ nodes).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Topology::new`].
    pub fn random_tree(n: usize, max_degree: usize, rng: &mut Rng) -> Self {
        let mut topo = Topology::new(n, max_degree);
        let mut spare = SpareSet::empty(n);
        spare.insert(0);
        for i in 1..n {
            let parent = spare
                .draw(rng)
                .expect("a growing bounded-degree tree always has a node with spare degree");
            let node = NodeId::new(i as u32);
            topo.add_link(parent, node)
                .expect("parent was drawn from the spare-degree set");
            if topo.degree(parent) >= max_degree {
                spare.remove(parent.value());
            }
            // `max_degree >= 2`, so the fresh leaf always has spare.
            spare.insert(node.value());
        }
        topo
    }

    /// Builds the overlay of the given kind: [`Topology::random_tree`]
    /// for [`OverlayKind::Tree`], [`Topology::barabasi_albert`] with
    /// two attachments per node for [`OverlayKind::BarabasiAlbert`],
    /// and [`Topology::watts_strogatz`] at the default rewiring
    /// probability [`WS_BETA`] for [`OverlayKind::WattsStrogatz`].
    ///
    /// # Panics
    ///
    /// Panics under the respective builder's conditions.
    pub fn build(kind: OverlayKind, n: usize, max_degree: usize, rng: &mut Rng) -> Self {
        match kind {
            OverlayKind::Tree => Topology::random_tree(n, max_degree, rng),
            OverlayKind::BarabasiAlbert => Topology::barabasi_albert(n, max_degree, rng),
            OverlayKind::WattsStrogatz => Topology::watts_strogatz(n, max_degree, WS_BETA, rng),
        }
    }

    /// Builds a degree-capped Barabási–Albert scale-free graph: after a
    /// seed link `0–1`, each new node attaches to up to
    /// [`BA_ATTACHMENTS`] distinct existing nodes drawn proportionally
    /// to degree (endpoint-list sampling), restricted to nodes with
    /// spare degree. When a bounded number of preferential draws all
    /// hit saturated or duplicate targets, the draw falls back to a
    /// uniform choice over the spare-degree pool, so the cap truncates
    /// — but never stalls — the preferential hub growth.
    ///
    /// The result is connected (every node attaches at least once — at
    /// mean degree `2·BA_ATTACHMENTS ≤ max_degree` a spare node always
    /// exists by pigeonhole) and cyclic for `n ≥ 3`.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Topology::new`], or if
    /// `max_degree < 2 * BA_ATTACHMENTS` (the cap must admit the mean
    /// degree, or late nodes cannot attach).
    pub fn barabasi_albert(n: usize, max_degree: usize, rng: &mut Rng) -> Self {
        assert!(
            max_degree >= 2 * BA_ATTACHMENTS,
            "degree cap must be at least the BA mean degree {}",
            2 * BA_ATTACHMENTS
        );
        let mut topo = Topology::new(n, max_degree);
        if n == 1 {
            return topo;
        }
        topo.add_link(NodeId::new(0), NodeId::new(1))
            .expect("seed link on fresh nodes");
        // Each link contributes both endpoints, so a uniform draw from
        // this list is a draw proportional to degree.
        let mut endpoints: Vec<u32> = vec![0, 1];
        let mut spare = SpareSet::empty(n);
        spare.insert(0);
        spare.insert(1);
        for i in 2..n {
            let node = NodeId::new(i as u32);
            let mut chosen: [Option<NodeId>; BA_ATTACHMENTS] = [None; BA_ATTACHMENTS];
            let mut picked = 0;
            for _slot in 0..BA_ATTACHMENTS.min(i) {
                let mut target = None;
                for _ in 0..BA_PREFERENTIAL_TRIES {
                    let k = rng.random_below(endpoints.len() as u64) as usize;
                    let cand = NodeId::new(endpoints[k]);
                    if cand != node
                        && topo.degree(cand) < max_degree
                        && !chosen[..picked].contains(&Some(cand))
                    {
                        target = Some(cand);
                        break;
                    }
                }
                if target.is_none() {
                    for _ in 0..BA_PREFERENTIAL_TRIES {
                        match spare.draw(rng) {
                            None => break,
                            Some(cand) if chosen[..picked].contains(&Some(cand)) => {}
                            Some(cand) => {
                                target = Some(cand);
                                break;
                            }
                        }
                    }
                }
                let Some(t) = target else { break };
                topo.add_link(t, node).expect("target has spare degree");
                endpoints.push(t.index() as u32);
                endpoints.push(i as u32);
                if topo.degree(t) >= max_degree {
                    spare.remove(t.index() as u32);
                }
                chosen[picked] = Some(t);
                picked += 1;
            }
            assert!(
                picked >= 1,
                "a spare-degree node always exists at mean degree 2·m ≤ cap"
            );
            if topo.degree(node) < max_degree {
                spare.insert(i as u32);
            }
        }
        topo
    }

    /// Builds a Watts–Strogatz small-world graph: a ring lattice where
    /// each node links to its two nearest neighbors on either side
    /// (`±1` and `±2`), then each `+2` chord is rewired with
    /// probability `beta` to a uniform random non-adjacent node with
    /// spare degree (the `±1` ring is never rewired, so the graph
    /// stays connected). A rewire that finds no admissible target
    /// after a bounded number of draws keeps the original chord.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Topology::new`], or if
    /// `n < 5` (the `±2` lattice needs five distinct nodes) or
    /// `max_degree < 5` (rewiring needs headroom above the lattice
    /// degree of 4).
    pub fn watts_strogatz(n: usize, max_degree: usize, beta: f64, rng: &mut Rng) -> Self {
        assert!(n >= 5, "the ±2 ring lattice needs at least 5 nodes");
        assert!(
            max_degree >= 5,
            "rewiring needs degree headroom above the lattice degree 4"
        );
        let mut topo = Topology::new(n, max_degree);
        for i in 0..n {
            let a = NodeId::new(i as u32);
            topo.add_link(a, NodeId::new(((i + 1) % n) as u32))
                .expect("ring link on fresh lattice");
        }
        for i in 0..n {
            let a = NodeId::new(i as u32);
            topo.add_link(a, NodeId::new(((i + 2) % n) as u32))
                .expect("chord link on fresh lattice");
        }
        let mut spare = SpareSet::full(n);
        for i in 0..n {
            if topo.degree(NodeId::new(i as u32)) >= max_degree {
                spare.remove(i as u32);
            }
        }
        for i in 0..n {
            let a = NodeId::new(i as u32);
            let b = NodeId::new(((i + 2) % n) as u32);
            if !rng.random_bool(beta) {
                continue;
            }
            topo.remove_link(LinkId::new(a, b))
                .expect("the +2 chord of i is only ever rewired at step i");
            spare.insert(b.index() as u32);
            if topo.degree(a) < max_degree {
                spare.insert(a.index() as u32);
            }
            let mut target = None;
            for _ in 0..WS_REWIRE_TRIES {
                match spare.draw(rng) {
                    None => break,
                    Some(t) if t == a || topo.has_link(a, t) => {}
                    Some(t) => {
                        target = Some(t);
                        break;
                    }
                }
            }
            // No admissible target — put the original chord back.
            let t = target.unwrap_or(b);
            topo.add_link(a, t).expect("target has spare degree");
            for x in [a, t] {
                if topo.degree(x) >= max_degree {
                    spare.remove(x.index() as u32);
                }
            }
        }
        topo
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.adjacency.len()
    }

    /// `true` if the topology has no nodes (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.adjacency.is_empty()
    }

    /// The degree bound.
    pub fn max_degree(&self) -> usize {
        self.max_degree
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.adjacency.len()).map(|i| NodeId::new(i as u32))
    }

    /// The neighbors of `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn neighbors(&self, n: NodeId) -> &[NodeId] {
        &self.adjacency[n.index()]
    }

    /// The degree of `n`.
    pub fn degree(&self, n: NodeId) -> usize {
        self.adjacency[n.index()].len()
    }

    /// `true` if `a` and `b` are directly linked.
    pub fn has_link(&self, a: NodeId, b: NodeId) -> bool {
        self.adjacency[a.index()].contains(&b)
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.link_count
    }

    /// Iterator over all links in canonical order.
    pub fn links(&self) -> impl Iterator<Item = LinkId> + '_ {
        self.adjacency.iter().enumerate().flat_map(|(i, nbrs)| {
            let a = NodeId::new(i as u32);
            nbrs.iter()
                .filter(move |&&b| a < b)
                .map(move |&b| LinkId::new(a, b))
        })
    }

    /// Adds an undirected link.
    ///
    /// # Errors
    ///
    /// Returns an error if either node is unknown, the link already
    /// exists, or it would violate the degree bound.
    pub fn add_link(&mut self, a: NodeId, b: NodeId) -> Result<LinkId, TopologyError> {
        let id = LinkId::new(a, b);
        for n in [a, b] {
            if n.index() >= self.adjacency.len() {
                return Err(TopologyError::UnknownNode(n));
            }
        }
        if self.has_link(a, b) {
            return Err(TopologyError::DuplicateLink(id));
        }
        for n in [a, b] {
            if self.degree(n) >= self.max_degree {
                return Err(TopologyError::DegreeExceeded(n));
            }
        }
        self.adjacency[a.index()].push(b);
        self.adjacency[b.index()].push(a);
        self.link_count += 1;
        Ok(id)
    }

    /// Removes an undirected link.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::MissingLink`] if the link does not
    /// exist.
    pub fn remove_link(&mut self, link: LinkId) -> Result<(), TopologyError> {
        let (a, b) = (link.a(), link.b());
        if a.index() >= self.adjacency.len() || !self.has_link(a, b) {
            return Err(TopologyError::MissingLink(link));
        }
        self.adjacency[a.index()].retain(|&x| x != b);
        self.adjacency[b.index()].retain(|&x| x != a);
        self.link_count -= 1;
        Ok(())
    }

    /// The set of nodes reachable from `start` (including it), in BFS
    /// order.
    pub fn component_of(&self, start: NodeId) -> Vec<NodeId> {
        let mut seen = vec![false; self.len()];
        let mut queue = VecDeque::from([start]);
        let mut out = Vec::new();
        seen[start.index()] = true;
        while let Some(n) = queue.pop_front() {
            out.push(n);
            for &m in self.neighbors(n) {
                if !seen[m.index()] {
                    seen[m.index()] = true;
                    queue.push_back(m);
                }
            }
        }
        out
    }

    /// `true` if every node is reachable from every other.
    pub fn is_connected(&self) -> bool {
        self.component_of(NodeId::new(0)).len() == self.len()
    }

    /// `true` if the graph is a tree: connected with exactly `n - 1`
    /// links.
    pub fn is_tree(&self) -> bool {
        self.link_count == self.len() - 1 && self.is_connected()
    }

    /// Shortest path from `a` to `b` (inclusive of both), or `None` if
    /// disconnected.
    pub fn path(&self, a: NodeId, b: NodeId) -> Option<Vec<NodeId>> {
        if a == b {
            return Some(vec![a]);
        }
        let mut prev: Vec<Option<NodeId>> = vec![None; self.len()];
        let mut queue = VecDeque::from([a]);
        prev[a.index()] = Some(a);
        while let Some(n) = queue.pop_front() {
            for &m in self.neighbors(n) {
                if prev[m.index()].is_none() {
                    prev[m.index()] = Some(n);
                    if m == b {
                        let mut path = vec![b];
                        let mut cur = b;
                        while cur != a {
                            cur = prev[cur.index()].expect("predecessor chain is complete");
                            path.push(cur);
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(m);
                }
            }
        }
        None
    }

    /// Renders the topology in Graphviz DOT format, for visualising
    /// overlays in examples and debugging sessions.
    ///
    /// # Examples
    ///
    /// ```
    /// use eps_overlay::Topology;
    /// use eps_sim::RngFactory;
    ///
    /// let topo = Topology::random_tree(4, 4, &mut RngFactory::new(1).stream("t"));
    /// let dot = topo.to_dot();
    /// assert!(dot.starts_with("graph overlay {"));
    /// assert_eq!(dot.matches(" -- ").count(), 3);
    /// ```
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("graph overlay {\n  node [shape=circle];\n");
        for link in self.links() {
            let _ = writeln!(out, "  {} -- {};", link.a().index(), link.b().index());
        }
        out.push_str("}\n");
        out
    }

    /// Mean shortest-path length (in hops) over all ordered node pairs.
    /// Useful for calibrating loss compounding.
    pub fn mean_path_hops(&self) -> f64 {
        let n = self.len();
        if n < 2 {
            return 0.0;
        }
        let mut total = 0u64;
        let mut pairs = 0u64;
        for a in self.nodes() {
            // BFS distances from a.
            let mut dist: Vec<Option<u32>> = vec![None; n];
            dist[a.index()] = Some(0);
            let mut queue = VecDeque::from([a]);
            while let Some(x) = queue.pop_front() {
                let d = dist[x.index()].expect("popped nodes have distances");
                for &m in self.neighbors(x) {
                    if dist[m.index()].is_none() {
                        dist[m.index()] = Some(d + 1);
                        queue.push_back(m);
                    }
                }
            }
            for b in self.nodes() {
                if b != a {
                    if let Some(d) = dist[b.index()] {
                        total += d as u64;
                        pairs += 1;
                    }
                }
            }
        }
        if pairs == 0 {
            0.0
        } else {
            total as f64 / pairs as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eps_sim::RngFactory;

    fn rng() -> Rng {
        RngFactory::new(42).stream("topology-test")
    }

    #[test]
    fn random_tree_is_a_degree_bounded_tree() {
        let topo = Topology::random_tree(100, 4, &mut rng());
        assert_eq!(topo.len(), 100);
        assert_eq!(topo.link_count(), 99);
        assert!(topo.is_tree());
        assert!(topo.nodes().all(|n| topo.degree(n) <= 4));
    }

    #[test]
    fn single_node_tree() {
        let topo = Topology::random_tree(1, 4, &mut rng());
        assert!(topo.is_tree());
        assert_eq!(topo.link_count(), 0);
    }

    #[test]
    fn add_link_rejects_duplicates_and_degree_violations() {
        let mut t = Topology::new(4, 2);
        let (a, b, c, d) = (
            NodeId::new(0),
            NodeId::new(1),
            NodeId::new(2),
            NodeId::new(3),
        );
        t.add_link(a, b).unwrap();
        assert!(matches!(
            t.add_link(b, a),
            Err(TopologyError::DuplicateLink(_))
        ));
        t.add_link(a, c).unwrap();
        assert!(matches!(
            t.add_link(a, d),
            Err(TopologyError::DegreeExceeded(n)) if n == a
        ));
    }

    #[test]
    fn remove_link_splits_tree() {
        let mut t = Topology::random_tree(20, 4, &mut rng());
        let link = t.links().next().unwrap();
        t.remove_link(link).unwrap();
        assert!(!t.is_connected());
        let comp_a = t.component_of(link.a());
        let comp_b = t.component_of(link.b());
        assert_eq!(comp_a.len() + comp_b.len(), 20);
        assert!(matches!(
            t.remove_link(link),
            Err(TopologyError::MissingLink(_))
        ));
    }

    #[test]
    fn path_endpoints_and_adjacency() {
        let t = Topology::random_tree(50, 4, &mut rng());
        let a = NodeId::new(3);
        let b = NodeId::new(47);
        let path = t.path(a, b).unwrap();
        assert_eq!(*path.first().unwrap(), a);
        assert_eq!(*path.last().unwrap(), b);
        for w in path.windows(2) {
            assert!(t.has_link(w[0], w[1]));
        }
    }

    #[test]
    fn path_to_self_is_singleton() {
        let t = Topology::random_tree(5, 4, &mut rng());
        assert_eq!(
            t.path(NodeId::new(2), NodeId::new(2)),
            Some(vec![NodeId::new(2)])
        );
    }

    #[test]
    fn path_is_none_across_components() {
        let mut t = Topology::new(2, 2);
        assert_eq!(t.path(NodeId::new(0), NodeId::new(1)), None);
        t.add_link(NodeId::new(0), NodeId::new(1)).unwrap();
        assert!(t.path(NodeId::new(0), NodeId::new(1)).is_some());
    }

    #[test]
    fn links_iterates_each_link_once() {
        let t = Topology::random_tree(30, 4, &mut rng());
        let links: Vec<LinkId> = t.links().collect();
        assert_eq!(links.len(), 29);
        let mut dedup = links.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), links.len());
    }

    #[test]
    fn mean_path_hops_is_positive_and_bounded() {
        let t = Topology::random_tree(100, 4, &mut rng());
        let hops = t.mean_path_hops();
        assert!(hops > 1.0, "hops = {hops}");
        assert!(hops < 20.0, "hops = {hops}");
    }

    #[test]
    fn barabasi_albert_is_connected_degree_capped_and_cyclic() {
        for n in [5, 50, 200] {
            let topo = Topology::barabasi_albert(n, 4, &mut rng());
            assert!(topo.is_connected(), "n={n}");
            assert!(topo.nodes().all(|x| topo.degree(x) <= 4), "n={n}");
            assert!(topo.link_count() > n - 1, "n={n} has cycles");
        }
    }

    #[test]
    fn barabasi_albert_prefers_high_degree_early_nodes() {
        let topo = Topology::barabasi_albert(400, 8, &mut rng());
        let early: usize = (0..20).map(|i| topo.degree(NodeId::new(i))).sum();
        let late: usize = (380..400).map(|i| topo.degree(NodeId::new(i))).sum();
        assert!(
            early > late,
            "preferential attachment favors old nodes: early {early} vs late {late}"
        );
    }

    #[test]
    fn watts_strogatz_is_connected_degree_capped_and_rewired() {
        let n = 100;
        let topo = Topology::watts_strogatz(n, 6, 0.2, &mut rng());
        assert!(topo.is_connected());
        assert!(topo.nodes().all(|x| topo.degree(x) <= 6));
        // The ±1 ring is never rewired.
        for i in 0..n {
            let a = NodeId::new(i as u32);
            assert!(topo.has_link(a, NodeId::new(((i + 1) % n) as u32)));
        }
        // Some +2 chord moved (β=0.2 over 100 chords).
        let moved = (0..n)
            .filter(|&i| !topo.has_link(NodeId::new(i as u32), NodeId::new(((i + 2) % n) as u32)))
            .count();
        assert!(moved > 0, "rewiring happened");
        // Rewiring conserves the link count: every removal re-adds one.
        assert_eq!(topo.link_count(), 2 * n);
    }

    #[test]
    fn builders_are_seed_deterministic() {
        for kind in OverlayKind::all() {
            let a = Topology::build(kind, 64, 6, &mut rng());
            let b = Topology::build(kind, 64, 6, &mut rng());
            let links_a: Vec<LinkId> = a.links().collect();
            let links_b: Vec<LinkId> = b.links().collect();
            assert_eq!(links_a, links_b, "{kind}");
        }
    }

    #[test]
    fn overlay_kind_round_trips_through_names() {
        for kind in OverlayKind::all() {
            assert_eq!(kind.name().parse::<OverlayKind>(), Ok(kind));
        }
        assert_eq!("barabasi-albert".parse(), Ok(OverlayKind::BarabasiAlbert));
        assert_eq!("WS".parse(), Ok(OverlayKind::WattsStrogatz));
        assert!("ring".parse::<OverlayKind>().is_err());
        assert!(OverlayKind::Tree.is_tree());
        assert!(!OverlayKind::BarabasiAlbert.is_tree());
    }

    #[test]
    fn tree_detection_rejects_cycles() {
        let mut t = Topology::new(3, 3);
        t.add_link(NodeId::new(0), NodeId::new(1)).unwrap();
        t.add_link(NodeId::new(1), NodeId::new(2)).unwrap();
        assert!(t.is_tree());
        t.add_link(NodeId::new(2), NodeId::new(0)).unwrap();
        assert!(!t.is_tree());
    }
}
