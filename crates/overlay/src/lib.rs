//! # eps-overlay — the dispatching overlay network
//!
//! Substrate crate for the reproduction of *“Epidemic Algorithms for
//! Reliable Content-Based Publish-Subscribe: An Evaluation”* (Costa et
//! al., ICDCS 2004). It models the overlay the dispatchers live on:
//!
//! - [`Topology`] — an undirected, degree-bounded graph: the paper's
//!   unrooted tree ([`Topology::random_tree`], max degree 4), plus the
//!   cyclic complex-network builders [`Topology::barabasi_albert`] and
//!   [`Topology::watts_strogatz`] selected via [`OverlayKind`];
//! - [`RoutingView`] — the spanning tree a run routes on, derived from
//!   the physical graph (identity on tree inputs, deterministic BFS
//!   otherwise);
//! - [`LinkSpec`]/[`LinkTable`] — 10 Mbit/s store-and-forward links
//!   with FIFO serialization and per-message Bernoulli loss `ε`;
//! - [`OutOfBandSpec`] — the direct unicast channel used by the gossip
//!   algorithms for requests, replies and retransmissions;
//! - [`plan_reconfiguration`] — the topological-reconfiguration event
//!   generator (break a random link, replace it after the repair delay
//!   with one that keeps the overlay connected).
//!
//! # Examples
//!
//! ```
//! use eps_overlay::{LinkSpec, LinkTable, Topology};
//! use eps_sim::{RngFactory, SimTime};
//!
//! let factory = RngFactory::new(42);
//! let topo = Topology::random_tree(100, 4, &mut factory.stream("topology"));
//! let spec = LinkSpec::ethernet_10mbps(0.1);
//! let mut links = LinkTable::new();
//! let mut loss_rng = factory.stream("loss");
//!
//! // Send 1 kbit along the first link of the tree.
//! let link = topo.links().next().unwrap();
//! let t = links.transmit(&spec, link.a(), link.b(), 1000, SimTime::ZERO, &mut loss_rng);
//! println!("outcome: {t:?}");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod link;
mod node;
mod reconfig;
mod topology;
mod transport;
mod view;

pub use link::{LinkSpec, LinkTable, OutOfBandSpec, Transmission};
pub use node::{LinkId, NodeId};
pub use reconfig::{plan_reconfiguration, plan_reconnection, ReconfigPlan};
pub use topology::{OverlayKind, Topology, TopologyError, BA_ATTACHMENTS, WS_BETA};
pub use transport::{NetTransport, ShardTransport, Transport};
pub use view::RoutingView;
