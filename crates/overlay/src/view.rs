//! The routing view: the spanning tree a run's dispatchers route on,
//! derived from (and layered over) the physical overlay graph.
//!
//! The dispatcher stack — subscription flooding, reverse-path event
//! forwarding, SourceSteering's recorded routes — assumes acyclicity.
//! Rather than teach every consumer about cycles, the harness derives
//! one [`RoutingView`] per run: a deterministic BFS spanning tree of
//! the physical [`Topology`]. Everything that *routes* (events,
//! subscriptions, steering) reads the view; everything *physical*
//! (link loss, delay, FIFO serialization, break/repair, the gossip
//! out-of-band channel, cross-link event replication) stays on the
//! graph.
//!
//! Two contracts make this refactor safe and deterministic:
//!
//! - **Identity on trees.** When the physical graph already is a tree,
//!   the view is a verbatim clone — same links *and the same neighbor
//!   order* — so every pinned tree-overlay golden stays byte-identical.
//! - **Deterministic BFS otherwise.** The spanning tree is a BFS from
//!   node 0 that visits neighbors in stored adjacency order, which the
//!   deterministic builders fix per seed.

use std::collections::VecDeque;

use crate::node::NodeId;
use crate::topology::Topology;

/// A spanning tree over a physical [`Topology`], used for routing.
///
/// The view is itself a `Topology` (always a tree on connected
/// inputs), so the subscription-flooding and route-rebuilding helpers
/// consume it unchanged.
///
/// # Examples
///
/// ```
/// use eps_overlay::{OverlayKind, RoutingView, Topology};
/// use eps_sim::RngFactory;
///
/// let factory = RngFactory::new(7);
/// let graph = Topology::build(OverlayKind::BarabasiAlbert, 50, 4, &mut factory.stream("topology"));
/// let view = RoutingView::derive(&graph);
/// assert!(view.tree().is_tree());
/// // Every view link is a physical link; the extra physical links are chords.
/// assert!(view.tree().links().all(|l| graph.has_link(l.a(), l.b())));
/// ```
#[derive(Clone, Debug)]
pub struct RoutingView {
    tree: Topology,
    identity: bool,
}

impl RoutingView {
    /// Derives the routing view of `graph`: a verbatim clone when the
    /// graph is already a tree (preserving neighbor order exactly), a
    /// deterministic BFS spanning tree from node 0 otherwise.
    ///
    /// On a disconnected input, the view spans node 0's component and
    /// leaves the rest isolated — the repair path re-derives after
    /// reconnection.
    pub fn derive(graph: &Topology) -> Self {
        if graph.is_tree() {
            return RoutingView {
                tree: graph.clone(),
                identity: true,
            };
        }
        let mut tree = Topology::new(graph.len(), graph.max_degree());
        let mut seen = vec![false; graph.len()];
        seen[0] = true;
        let mut queue = VecDeque::from([NodeId::new(0)]);
        while let Some(v) = queue.pop_front() {
            for &w in graph.neighbors(v) {
                if !seen[w.index()] {
                    seen[w.index()] = true;
                    tree.add_link(v, w)
                        .expect("a BFS tree never exceeds the graph's degree bound");
                    queue.push_back(w);
                }
            }
        }
        RoutingView {
            tree,
            identity: false,
        }
    }

    /// The spanning tree itself, in the shape every routing consumer
    /// already takes.
    pub fn tree(&self) -> &Topology {
        &self.tree
    }

    /// The routing neighbors of `n` — the subset of physical neighbors
    /// events and subscriptions flow over.
    pub fn neighbors(&self, n: NodeId) -> &[NodeId] {
        self.tree.neighbors(n)
    }

    /// `true` if the view is a verbatim clone of the physical graph
    /// (i.e. the graph was a tree): no cross links exist.
    pub fn is_identity(&self) -> bool {
        self.identity
    }

    /// The cross (chord) neighbors of `n`: physically adjacent nodes
    /// the routing tree does *not* connect `n` to, in physical
    /// adjacency order. Event copies replicated over these links are
    /// what makes redundant-delivery suppression necessary on cyclic
    /// overlays.
    pub fn cross_neighbors(&self, graph: &Topology, n: NodeId) -> Vec<NodeId> {
        graph
            .neighbors(n)
            .iter()
            .copied()
            .filter(|&m| !self.tree.has_link(n, m))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::OverlayKind;
    use eps_sim::RngFactory;

    fn stream(name: &str) -> eps_sim::Rng {
        RngFactory::new(11).stream(name)
    }

    #[test]
    fn view_of_a_tree_is_a_verbatim_clone() {
        let tree = Topology::random_tree(60, 4, &mut stream("t"));
        let view = RoutingView::derive(&tree);
        assert!(view.is_identity());
        for n in tree.nodes() {
            assert_eq!(view.neighbors(n), tree.neighbors(n), "order preserved");
            assert!(view.cross_neighbors(&tree, n).is_empty());
        }
    }

    #[test]
    fn view_of_a_cyclic_graph_is_a_spanning_tree_of_its_links() {
        for kind in [OverlayKind::BarabasiAlbert, OverlayKind::WattsStrogatz] {
            let graph = Topology::build(kind, 80, 6, &mut stream("g"));
            assert!(!graph.is_tree(), "{kind} is cyclic");
            let view = RoutingView::derive(&graph);
            assert!(!view.is_identity());
            assert!(view.tree().is_tree());
            assert!(view.tree().links().all(|l| graph.has_link(l.a(), l.b())));
            // Chords + tree links partition the physical adjacency.
            for n in graph.nodes() {
                let cross = view.cross_neighbors(&graph, n);
                assert_eq!(cross.len() + view.neighbors(n).len(), graph.degree(n));
                assert!(cross.iter().all(|&m| !view.tree().has_link(n, m)));
            }
        }
    }

    #[test]
    fn derivation_is_deterministic() {
        let graph = Topology::build(OverlayKind::BarabasiAlbert, 40, 4, &mut stream("g"));
        let a = RoutingView::derive(&graph);
        let b = RoutingView::derive(&graph);
        let links_a: Vec<_> = a.tree().links().collect();
        let links_b: Vec<_> = b.tree().links().collect();
        assert_eq!(links_a, links_b);
    }

    #[test]
    fn view_spans_the_root_component_of_a_disconnected_graph() {
        let mut graph = Topology::new(4, 3);
        graph.add_link(NodeId::new(0), NodeId::new(1)).unwrap();
        graph.add_link(NodeId::new(2), NodeId::new(3)).unwrap();
        let view = RoutingView::derive(&graph);
        assert!(view.tree().has_link(NodeId::new(0), NodeId::new(1)));
        assert_eq!(view.tree().degree(NodeId::new(2)), 0);
    }
}
