//! Topological reconfiguration: a link breaks and is later replaced by
//! another link that keeps the overlay connected.
//!
//! This reproduces the event-loss *generator* used by the paper's
//! Section IV-B reconfiguration scenarios (based on the protocol of
//! their reference \[7\]): a reconfiguration is "the breakage of a link,
//! and its replacement with another that maintains the network
//! connected", with the overlay repaired in 0.1 s. Reconfigurations
//! are triggered every `ρ` seconds.

use eps_sim::Rng;

use crate::node::{LinkId, NodeId};
use crate::topology::Topology;

/// A planned reconfiguration: which link breaks and which replaces it.
///
/// # Examples
///
/// ```
/// use eps_overlay::{plan_reconfiguration, Topology};
/// use eps_sim::RngFactory;
///
/// let mut rng = RngFactory::new(5).stream("reconfig");
/// let mut topo = Topology::random_tree(30, 4, &mut rng);
/// let plan = plan_reconfiguration(&topo, &mut rng).unwrap();
/// topo.remove_link(plan.broken).unwrap();
/// assert!(!topo.is_connected());
/// topo.add_link(plan.replacement.0, plan.replacement.1).unwrap();
/// assert!(topo.is_tree());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReconfigPlan {
    /// The link that breaks.
    pub broken: LinkId,
    /// The endpoints of the replacement link (one per component).
    pub replacement: (NodeId, NodeId),
}

/// Plans a random reconfiguration of a tree topology.
///
/// Picks a uniformly random link to break, and a replacement link
/// joining a uniformly random spare-degree node from each of the two
/// resulting components. Returns `None` if the topology has no links
/// (a single-node overlay cannot reconfigure).
///
/// The replacement is guaranteed to restore a tree with the same
/// degree bound; a node with spare degree always exists in a component
/// of a degree-bounded tree (every component with at least two nodes
/// has a leaf, and an isolated node has degree zero).
pub fn plan_reconfiguration(topo: &Topology, rng: &mut Rng) -> Option<ReconfigPlan> {
    let broken = rng.choose_iter(topo.links())?;
    let mut scratch = topo.clone();
    scratch
        .remove_link(broken)
        .expect("chosen link exists in the topology");
    let comp_a = scratch.component_of(broken.a());
    let comp_b = scratch.component_of(broken.b());
    debug_assert_eq!(comp_a.len() + comp_b.len(), topo.len());
    let pick = |comp: &[NodeId], rng: &mut Rng| -> NodeId {
        rng.choose_iter(
            comp.iter()
                .copied()
                .filter(|&n| scratch.degree(n) < scratch.max_degree()),
        )
        .expect("a degree-bounded tree component always has a spare-degree node")
    };
    let from_a = pick(&comp_a, rng);
    let from_b = pick(&comp_b, rng);
    Some(ReconfigPlan {
        broken,
        replacement: (from_a, from_b),
    })
}

/// Plans a link that joins two of the currently disconnected
/// components, or `None` if the topology is already connected.
///
/// Used by the *overlapping* reconfiguration scenario (ρ smaller than
/// the repair delay), where a repair may fire while other links are
/// still broken: each repair event reconnects two components chosen at
/// repair time, so the overlay converges back to a tree once all
/// pending repairs have fired.
pub fn plan_reconnection(topo: &Topology, rng: &mut Rng) -> Option<(NodeId, NodeId)> {
    // Label components by BFS.
    let mut label = vec![usize::MAX; topo.len()];
    let mut count = 0usize;
    for n in topo.nodes() {
        if label[n.index()] == usize::MAX {
            for m in topo.component_of(n) {
                label[m.index()] = count;
            }
            count += 1;
        }
    }
    if count < 2 {
        return None;
    }
    // Join two distinct random components at spare-degree nodes.
    let comp_x = rng.random_range(0..count);
    let comp_y = {
        let raw = rng.random_range(0..count - 1);
        if raw >= comp_x {
            raw + 1
        } else {
            raw
        }
    };
    let pick = |comp: usize, rng: &mut Rng| -> NodeId {
        rng.choose_iter(
            topo.nodes()
                .filter(|&n| label[n.index()] == comp && topo.degree(n) < topo.max_degree()),
        )
        .expect("a degree-bounded forest component always has a spare-degree node")
    };
    Some((pick(comp_x, rng), pick(comp_y, rng)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use eps_sim::RngFactory;

    #[test]
    fn reconnection_none_when_connected() {
        let mut rng = RngFactory::new(21).stream("reconfig");
        let topo = Topology::random_tree(20, 4, &mut rng);
        assert!(plan_reconnection(&topo, &mut rng).is_none());
    }

    #[test]
    fn reconnection_repairs_multi_break() {
        let mut rng = RngFactory::new(22).stream("reconfig");
        let mut topo = Topology::random_tree(60, 4, &mut rng);
        // Break three links before any repair (overlapping scenario).
        for _ in 0..3 {
            let link = rng.choose_iter(topo.links()).unwrap();
            topo.remove_link(link).unwrap();
        }
        assert!(!topo.is_connected());
        // Three repairs restore a tree.
        for _ in 0..3 {
            let (x, y) = plan_reconnection(&topo, &mut rng).unwrap();
            topo.add_link(x, y).unwrap();
        }
        assert!(topo.is_tree());
    }

    #[test]
    fn plan_restores_a_tree() {
        let mut rng = RngFactory::new(11).stream("reconfig");
        for trial in 0..50 {
            let mut topo = Topology::random_tree(50 + trial % 10, 4, &mut rng);
            let plan = plan_reconfiguration(&topo, &mut rng).unwrap();
            topo.remove_link(plan.broken).unwrap();
            assert!(!topo.is_connected());
            topo.add_link(plan.replacement.0, plan.replacement.1)
                .unwrap();
            assert!(topo.is_tree(), "trial {trial} did not restore a tree");
            assert!(topo.nodes().all(|n| topo.degree(n) <= 4));
        }
    }

    #[test]
    fn replacement_endpoints_span_the_cut() {
        let mut rng = RngFactory::new(12).stream("reconfig");
        let topo = Topology::random_tree(40, 4, &mut rng);
        let plan = plan_reconfiguration(&topo, &mut rng).unwrap();
        let mut scratch = topo.clone();
        scratch.remove_link(plan.broken).unwrap();
        let comp_a = scratch.component_of(plan.broken.a());
        let (x, y) = plan.replacement;
        assert_ne!(comp_a.contains(&x), comp_a.contains(&y));
    }

    #[test]
    fn single_node_topology_has_no_plan() {
        let mut rng = RngFactory::new(13).stream("reconfig");
        let topo = Topology::random_tree(1, 4, &mut rng);
        assert_eq!(plan_reconfiguration(&topo, &mut rng), None);
    }

    #[test]
    fn two_node_topology_replans_same_link() {
        let mut rng = RngFactory::new(14).stream("reconfig");
        let topo = Topology::random_tree(2, 4, &mut rng);
        let plan = plan_reconfiguration(&topo, &mut rng).unwrap();
        // Only one possible replacement: the same two nodes.
        let l = LinkId::new(plan.replacement.0, plan.replacement.1);
        assert_eq!(l, plan.broken);
    }

    #[test]
    fn repeated_reconfigurations_keep_invariants() {
        let mut rng = RngFactory::new(15).stream("reconfig");
        let mut topo = Topology::random_tree(100, 4, &mut rng);
        for _ in 0..500 {
            let plan = plan_reconfiguration(&topo, &mut rng).unwrap();
            topo.remove_link(plan.broken).unwrap();
            topo.add_link(plan.replacement.0, plan.replacement.1)
                .unwrap();
        }
        assert!(topo.is_tree());
        assert!(topo.nodes().all(|n| topo.degree(n) <= 4));
    }
}
