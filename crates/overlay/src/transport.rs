//! The transport abstraction: one object owns every source of
//! network delay and loss.
//!
//! A [`Transport`] answers exactly one question per send: *when does
//! this message arrive, if at all?* Callers (the scenario runner)
//! decide routing — which neighbor to hand a message to and whether
//! the overlay still has that link — and schedule the returned arrival
//! into their event queue. Keeping delay/loss/bandwidth behind this
//! trait is what allows alternative backends (fault injection,
//! recorded traces, a real network) without touching protocol logic.
//!
//! [`NetTransport`] is the default implementation, combining the
//! paper's link model ([`LinkTable`] — FIFO serialization at
//! 10 Mbit/s, propagation delay, Bernoulli loss) with the out-of-band
//! unicast channel ([`OutOfBandSpec`]). It owns the two RNG streams
//! that decide loss, so a given (spec, seed) pair always produces the
//! same loss pattern regardless of who drives it.

use eps_sim::{Rng, SimTime};

use crate::link::{LinkSpec, LinkTable, OutOfBandSpec, Transmission};
use crate::node::NodeId;

/// Owner of delay, loss, and bandwidth for both message channels.
///
/// Implementations must be deterministic: the same sequence of calls
/// yields the same sequence of results.
pub trait Transport {
    /// Sends `bits` from `from` to `to` on their overlay link at time
    /// `now`. Returns the absolute arrival time at `to`, or `None` if
    /// the message was lost in transit (it still occupied the queue).
    ///
    /// The caller is responsible for routing: this must only be called
    /// for links the caller believes exist.
    fn send_link(&mut self, from: NodeId, to: NodeId, bits: u64, now: SimTime) -> Option<SimTime>;

    /// Sends `bits` from `from` to `to` on the out-of-band unicast
    /// channel at time `now`. Returns the absolute arrival time, or
    /// `None` if lost.
    fn send_oob(&mut self, from: NodeId, to: NodeId, bits: u64, now: SimTime) -> Option<SimTime>;

    /// Discards queue state for both directions of the `a`–`b` link,
    /// so a later replacement link starts fresh.
    fn reset_link(&mut self, a: NodeId, b: NodeId);
}

/// The default transport: the paper's 10 Mbit/s FIFO links plus the
/// direct out-of-band channel, with loss decided by two owned RNG
/// streams.
#[derive(Debug)]
pub struct NetTransport {
    spec: LinkSpec,
    oob: OutOfBandSpec,
    links: LinkTable,
    loss_rng: Rng,
    oob_rng: Rng,
}

impl NetTransport {
    /// Creates a transport from the two channel specs and the RNG
    /// streams deciding link loss and out-of-band loss.
    pub fn new(spec: LinkSpec, oob: OutOfBandSpec, loss_rng: Rng, oob_rng: Rng) -> Self {
        NetTransport {
            spec,
            oob,
            links: LinkTable::new(),
            loss_rng,
            oob_rng,
        }
    }

    /// The link-layer statistics (messages transmitted and lost).
    pub fn links(&self) -> &LinkTable {
        &self.links
    }
}

impl Transport for NetTransport {
    fn send_link(&mut self, from: NodeId, to: NodeId, bits: u64, now: SimTime) -> Option<SimTime> {
        match self
            .links
            .transmit(&self.spec, from, to, bits, now, &mut self.loss_rng)
        {
            Transmission::Arrives(at) => Some(at),
            Transmission::Lost => None,
        }
    }

    fn send_oob(&mut self, from: NodeId, to: NodeId, bits: u64, now: SimTime) -> Option<SimTime> {
        let _ = (from, to); // the direct channel has no per-pair state
        self.oob.delay(bits, &mut self.oob_rng).map(|d| now + d)
    }

    fn reset_link(&mut self, a: NodeId, b: NodeId) {
        self.links.reset_link(a, b);
    }
}

/// The sharded runner's transport: the same link + out-of-band model
/// as [`NetTransport`], but loss is decided by a *caller-supplied* RNG
/// per send instead of two owned streams.
///
/// The sharded runner keeps one `ShardTransport` per shard and passes
/// the sending node's own random stream into every call, so each
/// node's loss draws depend only on that node's deterministic send
/// order — never on how the population was partitioned into shards.
/// Every directed link `(from, to)` is touched only by the shard that
/// owns `from`, which is what makes per-shard link queues sound.
#[derive(Clone, Debug)]
pub struct ShardTransport {
    spec: LinkSpec,
    oob: OutOfBandSpec,
    links: LinkTable,
}

impl ShardTransport {
    /// Creates a transport from the two channel specs.
    pub fn new(spec: LinkSpec, oob: OutOfBandSpec) -> Self {
        ShardTransport {
            spec,
            oob,
            links: LinkTable::new(),
        }
    }

    /// The smallest delay either channel can add to a message — the
    /// conservative lookahead of the windowed barrier: no send made at
    /// time `t` can arrive anywhere before `t + min_delay()`.
    pub fn min_delay(&self) -> SimTime {
        self.spec.propagation.min(self.oob.latency)
    }

    /// As [`Transport::send_link`], drawing loss from `rng`.
    pub fn send_link(
        &mut self,
        from: NodeId,
        to: NodeId,
        bits: u64,
        now: SimTime,
        rng: &mut Rng,
    ) -> Option<SimTime> {
        self.links
            .transmit(&self.spec, from, to, bits, now, rng)
            .arrival()
    }

    /// As [`Transport::send_oob`], drawing loss from `rng`.
    pub fn send_oob(
        &mut self,
        from: NodeId,
        to: NodeId,
        bits: u64,
        now: SimTime,
        rng: &mut Rng,
    ) -> Option<SimTime> {
        let _ = (from, to); // the direct channel has no per-pair state
        self.oob.delay(bits, rng).map(|d| now + d)
    }

    /// Discards queue state for both directions of the `a`–`b` link.
    pub fn reset_link(&mut self, a: NodeId, b: NodeId) {
        self.links.reset_link(a, b);
    }

    /// The link-layer statistics (messages transmitted and lost).
    pub fn links(&self) -> &LinkTable {
        &self.links
    }
}

#[cfg(test)]
mod tests {
    use eps_sim::RngFactory;

    use super::*;

    fn transport(loss_rate: f64) -> NetTransport {
        let factory = RngFactory::new(1);
        NetTransport::new(
            LinkSpec::ethernet_10mbps(loss_rate),
            OutOfBandSpec::default(),
            factory.stream("loss"),
            factory.stream("oob"),
        )
    }

    #[test]
    fn link_sends_match_the_raw_link_table() {
        let mut t = transport(0.0);
        let mut table = LinkTable::new();
        let mut rng = RngFactory::new(1).stream("loss");
        let spec = LinkSpec::ethernet_10mbps(0.0);
        let (a, b) = (NodeId::new(0), NodeId::new(1));
        for i in 0..10u64 {
            let now = SimTime::from_micros(i * 7);
            let expected = table.transmit(&spec, a, b, 1000, now, &mut rng).arrival();
            assert_eq!(t.send_link(a, b, 1000, now), expected);
        }
    }

    #[test]
    fn oob_arrival_is_absolute() {
        let mut t = transport(0.0);
        let now = SimTime::from_secs(2);
        let at = t
            .send_oob(NodeId::new(0), NodeId::new(5), 10_000, now)
            .unwrap();
        // 200 µs latency + 1 ms serialization at 10 Mbit/s.
        assert_eq!(at, now + SimTime::from_micros(1200));
    }

    #[test]
    fn reset_link_restarts_the_queue() {
        let mut t = transport(0.0);
        let (a, b) = (NodeId::new(0), NodeId::new(1));
        t.send_link(a, b, 1_000_000, SimTime::ZERO);
        t.reset_link(a, b);
        let spec = LinkSpec::ethernet_10mbps(0.0);
        let at = t.send_link(a, b, 1000, SimTime::ZERO).unwrap();
        assert_eq!(at, spec.serialization_delay(1000) + spec.propagation);
    }

    #[test]
    fn shard_transport_matches_net_transport_for_the_same_draws() {
        // Same specs, same RNG stream → identical arrival times.
        let mut net = transport(0.1);
        let mut shard =
            ShardTransport::new(LinkSpec::ethernet_10mbps(0.1), OutOfBandSpec::default());
        let mut rng = RngFactory::new(1).stream("loss");
        let (a, b) = (NodeId::new(0), NodeId::new(1));
        for i in 0..200u64 {
            let now = SimTime::from_micros(i * 13);
            let expected = net.send_link(a, b, 1000, now);
            assert_eq!(shard.send_link(a, b, 1000, now, &mut rng), expected);
        }
    }

    #[test]
    fn shard_transport_min_delay_is_the_lookahead() {
        let shard = ShardTransport::new(LinkSpec::ethernet_10mbps(0.0), OutOfBandSpec::default());
        assert_eq!(shard.min_delay(), SimTime::from_micros(50));
        let slow_links = ShardTransport::new(
            LinkSpec {
                propagation: SimTime::from_millis(5),
                ..LinkSpec::ethernet_10mbps(0.0)
            },
            OutOfBandSpec::default(),
        );
        assert_eq!(slow_links.min_delay(), SimTime::from_micros(200));
    }

    #[test]
    fn certain_loss_drops_every_link_message() {
        let mut t = transport(1.0);
        for _ in 0..100 {
            assert_eq!(
                t.send_link(NodeId::new(0), NodeId::new(1), 100, SimTime::ZERO),
                None
            );
        }
        assert_eq!(t.links().lost(), 100);
    }
}
