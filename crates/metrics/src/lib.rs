//! # eps-metrics — instrumentation for the reproduction
//!
//! Measures exactly what the evaluation section of *“Epidemic
//! Algorithms for Reliable Content-Based Publish-Subscribe: An
//! Evaluation”* (Costa et al., ICDCS 2004) reports:
//!
//! - [`DeliveryTracker`] — per-event intended recipients vs. actual
//!   deliveries; the overall and windowed delivery rate (Figures 3–6,
//!   8), receivers-per-event statistics (Figure 7);
//! - [`MessageCounters`] — per-class message counts: event forwarding
//!   vs. gossip vs. out-of-band requests/replies, per dispatcher and
//!   system-wide (Figures 9–10);
//! - [`DeliverySink`] / [`DeliveryLog`] — the recording abstraction
//!   behind the sharded runner: shards journal delivery records and
//!   the logs replay into one tracker in canonical order;
//! - [`NetCounters`] — socket-layer runtime counters (connect
//!   retries, queue drops, decode errors) for the real-socket runtime;
//! - [`CsvTable`] / [`ascii_chart`] — result export for the harness.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod counters;
mod delivery;
mod export;
mod net;
mod sink;

pub use counters::MessageCounters;
pub use delivery::DeliveryTracker;
pub use export::{ascii_chart, CsvTable, Series};
pub use net::NetCounters;
pub use sink::{DeliveryLog, DeliverySink};
