//! The delivery-sink abstraction: where delivery bookkeeping goes
//! while a run executes.
//!
//! The serial runner feeds a [`DeliveryTracker`] directly. The sharded
//! runner cannot — tracker state (running totals, the float latency
//! sums) would make results depend on the order shards happen to
//! interleave in. Each shard instead records into a [`DeliveryLog`],
//! a plain append-only journal, and the logs are replayed into one
//! tracker in a canonical order after the run
//! ([`DeliveryLog::replay_into`]) — so the assembled statistics are
//! bit-identical for every shard count.

use eps_overlay::NodeId;
use eps_pubsub::{ClientId, EventId};
use eps_sim::SimTime;

use crate::delivery::DeliveryTracker;

/// Consumer of per-event delivery bookkeeping, implemented by the live
/// [`DeliveryTracker`] and by the sharded runner's [`DeliveryLog`].
///
/// Deliveries are accounted at *client-subscription* granularity: one
/// record per `(node, client)` an event reaches. With one client per
/// dispatcher the client is always `c0` and the accounting coincides
/// with the paper's per-dispatcher model.
pub trait DeliverySink {
    /// A publication with its intended recipient count (matching
    /// `(node, client)` pairs at publish time).
    fn published(&mut self, id: EventId, at: SimTime, expected_recipients: u32);
    /// A delivery to one local client through normal event forwarding.
    fn delivered(&mut self, id: EventId, node: NodeId, client: ClientId, now: SimTime);
    /// A delivery to one local client through recovery.
    fn recovered(&mut self, id: EventId, node: NodeId, client: ClientId, now: SimTime);
}

impl DeliverySink for DeliveryTracker {
    fn published(&mut self, id: EventId, at: SimTime, expected_recipients: u32) {
        DeliveryTracker::published(self, id, at, expected_recipients);
    }
    fn delivered(&mut self, id: EventId, node: NodeId, _client: ClientId, _now: SimTime) {
        DeliveryTracker::delivered(self, id, node);
    }
    fn recovered(&mut self, id: EventId, node: NodeId, _client: ClientId, now: SimTime) {
        DeliveryTracker::recovered(self, id, node, now);
    }
}

/// An append-only journal of delivery bookkeeping, one per shard.
///
/// Recording is cheap (three `Vec::push` paths, no hashing) and
/// order-free: [`DeliveryLog::replay_into`] sorts every record class
/// by `(time, event, node, client)` before applying it, so the merged
/// tracker is a pure function of the record *multiset* — which is what
/// the shard-count-invariance guarantee of the sharded runner rests
/// on. With one client per dispatcher the client key is always `c0`,
/// so the canonical order (and every replayed statistic) is identical
/// to the pre-client-layer journal.
#[derive(Clone, Debug, Default)]
pub struct DeliveryLog {
    publishes: Vec<(SimTime, EventId, u32)>,
    deliveries: Vec<(SimTime, EventId, NodeId, ClientId)>,
    recoveries: Vec<(SimTime, EventId, NodeId, ClientId)>,
}

impl DeliveryLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of records of all classes.
    pub fn len(&self) -> usize {
        self.publishes.len() + self.deliveries.len() + self.recoveries.len()
    }

    /// `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Replays a set of per-shard logs into one tracker in canonical
    /// order: all publications sorted by `(time, event)`, then all
    /// forwarding deliveries sorted by `(time, event, node)`, then all
    /// recovered deliveries likewise. Registering every publication
    /// first is safe because virtual time already orders any delivery
    /// after its publication; sorting fixes the float summation order
    /// of the rate series and recovery latencies.
    pub fn replay_into(logs: Vec<DeliveryLog>, tracker: &mut DeliveryTracker) {
        let mut publishes = Vec::new();
        let mut deliveries = Vec::new();
        let mut recoveries = Vec::new();
        for log in logs {
            publishes.extend(log.publishes);
            deliveries.extend(log.deliveries);
            recoveries.extend(log.recoveries);
        }
        publishes.sort_unstable();
        deliveries.sort_unstable();
        recoveries.sort_unstable();
        for (at, id, expected) in publishes {
            DeliveryTracker::published(tracker, id, at, expected);
        }
        for (_, id, node, _client) in deliveries {
            DeliveryTracker::delivered(tracker, id, node);
        }
        for (at, id, node, _client) in recoveries {
            DeliveryTracker::recovered(tracker, id, node, at);
        }
    }
}

impl DeliverySink for DeliveryLog {
    fn published(&mut self, id: EventId, at: SimTime, expected_recipients: u32) {
        self.publishes.push((at, id, expected_recipients));
    }
    fn delivered(&mut self, id: EventId, node: NodeId, client: ClientId, now: SimTime) {
        self.deliveries.push((now, id, node, client));
    }
    fn recovered(&mut self, id: EventId, node: NodeId, client: ClientId, now: SimTime) {
        self.recoveries.push((now, id, node, client));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(seq: u64) -> EventId {
        EventId::new(NodeId::new(0), seq)
    }

    #[test]
    fn replay_matches_a_live_tracker() {
        let mut live = DeliveryTracker::new();
        let mut log = DeliveryLog::new();
        let sinks: [&mut dyn DeliverySink; 2] = [&mut live, &mut log];
        for sink in sinks {
            sink.published(id(0), SimTime::from_millis(10), 2);
            sink.published(id(1), SimTime::from_millis(20), 1);
            sink.delivered(
                id(0),
                NodeId::new(1),
                ClientId::new(0),
                SimTime::from_millis(11),
            );
            sink.recovered(
                id(0),
                NodeId::new(2),
                ClientId::new(0),
                SimTime::from_millis(30),
            );
        }
        let mut merged = DeliveryTracker::new();
        DeliveryLog::replay_into(vec![log], &mut merged);
        assert_eq!(merged.event_count(), live.event_count());
        assert_eq!(merged.delivered_total(), live.delivered_total());
        assert_eq!(merged.expected_total(), live.expected_total());
        assert_eq!(
            merged.recovery_latency().mean().to_bits(),
            live.recovery_latency().mean().to_bits()
        );
    }

    #[test]
    fn replay_is_order_invariant_across_logs() {
        // The same records split across shards in two different ways
        // must produce bit-identical trackers.
        let records: Vec<(SimTime, EventId, u32)> = (0..10)
            .map(|i| (SimTime::from_millis(100 + i), id(i), 2))
            .collect();
        let build = |split: usize| {
            let mut a = DeliveryLog::new();
            let mut b = DeliveryLog::new();
            for (i, &(at, eid, exp)) in records.iter().enumerate() {
                let log = if i < split { &mut a } else { &mut b };
                log.published(eid, at, exp);
                log.delivered(
                    eid,
                    NodeId::new(1),
                    ClientId::new(0),
                    at + SimTime::from_millis(1),
                );
                log.recovered(
                    eid,
                    NodeId::new(2),
                    ClientId::new(0),
                    at + SimTime::from_millis(5),
                );
            }
            let mut tracker = DeliveryTracker::new();
            DeliveryLog::replay_into(vec![a, b], &mut tracker);
            tracker
        };
        let x = build(3);
        let y = build(8);
        assert_eq!(x.delivered_total(), y.delivered_total());
        assert_eq!(
            x.recovery_latency().mean().to_bits(),
            y.recovery_latency().mean().to_bits()
        );
        let sx = x.rate_series(SimTime::from_millis(5));
        let sy = y.rate_series(SimTime::from_millis(5));
        assert_eq!(sx.bins().len(), sy.bins().len());
        for (a, b) in sx.bins().iter().zip(sy.bins()) {
            assert_eq!(a.ratio().to_bits(), b.ratio().to_bits());
        }
    }
}
