//! Runtime counters for the real-socket runtime (`eps-net`).
//!
//! The simulator's [`crate::MessageCounters`] track the *protocol*
//! traffic the paper reports. A socket runtime has an extra layer the
//! simulator does not: connections that retry, queues that overflow,
//! frames that fail to decode. [`NetCounters`] makes that layer
//! observable — every column in the `net_cluster` CSV beyond the
//! shared `ScenarioResult` schema comes from here, so a run that
//! "worked" with a saturated queue or a flapping link is visible
//! rather than silently degraded.

/// Per-run socket-layer counters, summed over all node threads.
///
/// All fields are plain totals; per-node instances are merged with
/// [`NetCounters::absorb`] after the run, mirroring how the protocol
/// counters are aggregated.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetCounters {
    /// TCP connect attempts made by dialer sides (first tries and
    /// retries alike).
    pub connect_attempts: u64,
    /// Connect attempts beyond the first per link session — non-zero
    /// means some peer was not yet listening (or restarted) and the
    /// backoff path was exercised.
    pub connect_retries: u64,
    /// TCP connections accepted by acceptor sides.
    pub accepted_conns: u64,
    /// Framed messages written to tree links (TCP).
    pub frames_sent: u64,
    /// Framed messages fully reassembled from tree links (TCP).
    pub frames_received: u64,
    /// Out-of-band datagrams sent (UDP).
    pub datagrams_sent: u64,
    /// Out-of-band datagrams received (UDP).
    pub datagrams_received: u64,
    /// Messages dropped because a link's bounded outbound queue was
    /// full — backpressure made visible instead of unbounded memory.
    pub queue_drops: u64,
    /// Received frames or datagrams the wire codec rejected. Always
    /// zero in a healthy cluster; non-zero means version skew or
    /// corruption.
    pub decode_errors: u64,
    /// Event/gossip frames deliberately discarded by receive-side loss
    /// injection (the net analogue of the simulator's link error
    /// rate ε).
    pub injected_drops: u64,
    /// Gossip digests trimmed by the codec's `fit` pass because they
    /// exceeded the one-event-payload budget the paper's accounting
    /// assumes.
    pub digest_truncations: u64,
    /// Digest entries removed by those truncations (a later gossip
    /// round re-announces what was trimmed).
    pub route_drops: u64,
    /// Payload bytes sent on sockets (frame bodies and datagram
    /// bodies, excluding length/sender prefixes — i.e. exactly the
    /// bytes `wire_bits` accounts for).
    pub bytes_sent: u64,
    /// Payload bytes received on sockets, same accounting as
    /// [`NetCounters::bytes_sent`].
    pub bytes_received: u64,
}

impl NetCounters {
    /// Folds `other`'s totals into `self`.
    pub fn absorb(&mut self, other: &NetCounters) {
        self.connect_attempts += other.connect_attempts;
        self.connect_retries += other.connect_retries;
        self.accepted_conns += other.accepted_conns;
        self.frames_sent += other.frames_sent;
        self.frames_received += other.frames_received;
        self.datagrams_sent += other.datagrams_sent;
        self.datagrams_received += other.datagrams_received;
        self.queue_drops += other.queue_drops;
        self.decode_errors += other.decode_errors;
        self.injected_drops += other.injected_drops;
        self.digest_truncations += other.digest_truncations;
        self.route_drops += other.route_drops;
        self.bytes_sent += other.bytes_sent;
        self.bytes_received += other.bytes_received;
    }

    /// The column names of [`NetCounters::csv_row`], in order. The
    /// `net_cluster` binary appends these after the shared
    /// `ScenarioResult` columns.
    pub fn csv_header() -> &'static [&'static str] {
        &[
            "connect_attempts",
            "connect_retries",
            "accepted_conns",
            "frames_sent",
            "frames_received",
            "datagrams_sent",
            "datagrams_received",
            "queue_drops",
            "decode_errors",
            "injected_drops",
            "digest_truncations",
            "route_drops",
            "bytes_sent",
            "bytes_received",
        ]
    }

    /// One CSV row of these counters, aligned with
    /// [`NetCounters::csv_header`].
    pub fn csv_row(&self) -> Vec<String> {
        vec![
            self.connect_attempts.to_string(),
            self.connect_retries.to_string(),
            self.accepted_conns.to_string(),
            self.frames_sent.to_string(),
            self.frames_received.to_string(),
            self.datagrams_sent.to_string(),
            self.datagrams_received.to_string(),
            self.queue_drops.to_string(),
            self.decode_errors.to_string(),
            self.injected_drops.to_string(),
            self.digest_truncations.to_string(),
            self.route_drops.to_string(),
            self.bytes_sent.to_string(),
            self.bytes_received.to_string(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_sums_every_field() {
        let mut a = NetCounters {
            connect_attempts: 1,
            frames_sent: 10,
            bytes_sent: 100,
            ..NetCounters::default()
        };
        let b = NetCounters {
            connect_attempts: 2,
            connect_retries: 1,
            accepted_conns: 3,
            frames_sent: 5,
            frames_received: 5,
            datagrams_sent: 4,
            datagrams_received: 4,
            queue_drops: 1,
            decode_errors: 1,
            injected_drops: 2,
            digest_truncations: 1,
            route_drops: 6,
            bytes_sent: 50,
            bytes_received: 50,
        };
        a.absorb(&b);
        assert_eq!(a.connect_attempts, 3);
        assert_eq!(a.connect_retries, 1);
        assert_eq!(a.accepted_conns, 3);
        assert_eq!(a.frames_sent, 15);
        assert_eq!(a.frames_received, 5);
        assert_eq!(a.datagrams_sent, 4);
        assert_eq!(a.datagrams_received, 4);
        assert_eq!(a.queue_drops, 1);
        assert_eq!(a.decode_errors, 1);
        assert_eq!(a.injected_drops, 2);
        assert_eq!(a.digest_truncations, 1);
        assert_eq!(a.route_drops, 6);
        assert_eq!(a.bytes_sent, 150);
        assert_eq!(a.bytes_received, 50);
    }

    #[test]
    fn csv_row_matches_header_arity() {
        let c = NetCounters::default();
        assert_eq!(c.csv_row().len(), NetCounters::csv_header().len());
        assert!(c.csv_row().iter().all(|v| v == "0"));
    }
}
