//! Result export: CSV files and quick ASCII charts for the terminal.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A rectangular results table destined for a CSV file.
///
/// # Examples
///
/// ```
/// use eps_metrics::CsvTable;
///
/// let mut table = CsvTable::new(vec!["x".into(), "y".into()]);
/// table.push_row(vec!["1".into(), "0.5".into()]);
/// assert!(table.to_csv().starts_with("x,y\n1,0.5\n"));
/// ```
#[derive(Clone, Debug)]
pub struct CsvTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl CsvTable {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    pub fn new(headers: Vec<String>) -> Self {
        assert!(!headers.is_empty(), "a table needs at least one column");
        CsvTable {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as CSV text (fields containing commas or
    /// quotes are quoted per RFC 4180).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let write_row = |out: &mut String, row: &[String]| {
            let mut first = true;
            for field in row {
                if !first {
                    out.push(',');
                }
                first = false;
                if field.contains(',') || field.contains('"') || field.contains('\n') {
                    let escaped = field.replace('"', "\"\"");
                    let _ = write!(out, "\"{escaped}\"");
                } else {
                    out.push_str(field);
                }
            }
            out.push('\n');
        };
        write_row(&mut out, &self.headers);
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Writes the table to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error.
    pub fn write_to<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        if let Some(parent) = path.as_ref().parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, self.to_csv())
    }
}

/// One named series for an [`ascii_chart`].
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// Y values, one per x position (NaN values are skipped).
    pub values: Vec<f64>,
}

/// Renders a quick multi-series ASCII line chart: y in `[y_min, y_max]`
/// over evenly spaced x positions. Each series is drawn with its own
/// glyph; the legend maps glyphs to names. Good enough to eyeball the
/// paper's curve shapes in a terminal.
pub fn ascii_chart(title: &str, series: &[Series], y_min: f64, y_max: f64) -> String {
    const HEIGHT: usize = 16;
    const GLYPHS: &[char] = &['*', '+', 'o', 'x', '#', '@', '%', '&'];
    let width = series.iter().map(|s| s.values.len()).max().unwrap_or(0);
    let mut out = format!("{title}\n");
    if width == 0 || y_max <= y_min {
        out.push_str("(no data)\n");
        return out;
    }
    let mut grid = vec![vec![' '; width]; HEIGHT];
    for (si, s) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for (x, &v) in s.values.iter().enumerate() {
            if !v.is_finite() {
                continue;
            }
            let clamped = v.clamp(y_min, y_max);
            let frac = (clamped - y_min) / (y_max - y_min);
            let row = ((1.0 - frac) * (HEIGHT - 1) as f64).round() as usize;
            grid[row][x] = glyph;
        }
    }
    for (i, row) in grid.iter().enumerate() {
        let y = y_max - (y_max - y_min) * i as f64 / (HEIGHT - 1) as f64;
        let line: String = row.iter().collect();
        let _ = writeln!(out, "{y:>8.2} |{line}");
    }
    let _ = writeln!(out, "{:>8} +{}", "", "-".repeat(width));
    for (si, s) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        let _ = writeln!(out, "{:>10} {} = {}", "", glyph, s.name);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_renders_headers_and_rows() {
        let mut t = CsvTable::new(vec!["a".into(), "b".into()]);
        t.push_row(vec!["1".into(), "2".into()]);
        t.push_row(vec!["3".into(), "4".into()]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n3,4\n");
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn csv_quotes_special_fields() {
        let mut t = CsvTable::new(vec!["a".into()]);
        t.push_row(vec!["x,y".into()]);
        t.push_row(vec!["say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic]
    fn mismatched_row_width_panics() {
        let mut t = CsvTable::new(vec!["a".into(), "b".into()]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_write_creates_directories() {
        let dir = std::env::temp_dir().join("eps-metrics-test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested/out.csv");
        let mut t = CsvTable::new(vec!["a".into()]);
        t.push_row(vec!["1".into()]);
        t.write_to(&path).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "a\n1\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn chart_contains_series_and_legend() {
        let chart = ascii_chart(
            "delivery",
            &[Series {
                name: "push".into(),
                values: vec![0.5, 0.75, 1.0],
            }],
            0.0,
            1.0,
        );
        assert!(chart.starts_with("delivery"));
        assert!(chart.contains('*'));
        assert!(chart.contains("push"));
    }

    #[test]
    fn chart_handles_empty_input() {
        let chart = ascii_chart("empty", &[], 0.0, 1.0);
        assert!(chart.contains("(no data)"));
    }
}
