//! Message counters: the overhead side of the evaluation
//! (paper, Figures 9 and 10).

use eps_overlay::NodeId;

/// Per-class, per-dispatcher message counts.
///
/// The paper presents overhead two ways: the number of gossip messages
/// sent *by each dispatcher* (load on a node), and the ratio between
/// gossip and event messages dispatched in the *overall system*
/// (impact on bandwidth). This type records both, plus the out-of-band
/// request/reply traffic so it can be reported separately.
///
/// # Examples
///
/// ```
/// use eps_metrics::MessageCounters;
/// use eps_overlay::NodeId;
///
/// let mut c = MessageCounters::new(4);
/// c.count_event(NodeId::new(0));
/// c.count_gossip(NodeId::new(1));
/// c.count_gossip(NodeId::new(1));
/// assert_eq!(c.event_total(), 1);
/// assert_eq!(c.gossip_total(), 2);
/// assert_eq!(c.gossip_per_dispatcher(), 0.5);
/// ```
#[derive(Clone, Debug)]
pub struct MessageCounters {
    event_sent: Vec<u64>,
    gossip_sent: Vec<u64>,
    request_sent: Vec<u64>,
    reply_sent: Vec<u64>,
    subscription_sent: Vec<u64>,
    events_retransmitted: u64,
    events_recovered: u64,
    lost_evictions: u64,
    duplicate_suppressed: u64,
    gossip_wire_bits: u64,
    request_wire_bits: u64,
    reply_wire_bits: u64,
}

impl MessageCounters {
    /// Creates counters for `n` dispatchers.
    pub fn new(n: usize) -> Self {
        MessageCounters {
            event_sent: vec![0; n],
            gossip_sent: vec![0; n],
            request_sent: vec![0; n],
            reply_sent: vec![0; n],
            subscription_sent: vec![0; n],
            events_retransmitted: 0,
            events_recovered: 0,
            lost_evictions: 0,
            duplicate_suppressed: 0,
            gossip_wire_bits: 0,
            request_wire_bits: 0,
            reply_wire_bits: 0,
        }
    }

    /// Number of dispatchers tracked.
    pub fn len(&self) -> usize {
        self.event_sent.len()
    }

    /// `true` if tracking no dispatchers.
    pub fn is_empty(&self) -> bool {
        self.event_sent.is_empty()
    }

    /// An event message was sent on an overlay link by `from`.
    pub fn count_event(&mut self, from: NodeId) {
        self.event_sent[from.index()] += 1;
    }

    /// A gossip message was sent on an overlay link by `from`.
    pub fn count_gossip(&mut self, from: NodeId) {
        self.gossip_sent[from.index()] += 1;
    }

    /// An out-of-band retransmission request was sent by `from`.
    pub fn count_request(&mut self, from: NodeId) {
        self.request_sent[from.index()] += 1;
    }

    /// An out-of-band reply carrying `events` event copies was sent by
    /// `from`.
    pub fn count_reply(&mut self, from: NodeId, events: u64) {
        self.reply_sent[from.index()] += 1;
        self.events_retransmitted += events;
    }

    /// A subscription/unsubscription message was sent by `from`.
    pub fn count_subscription(&mut self, from: NodeId) {
        self.subscription_sent[from.index()] += 1;
    }

    /// `bits` of gossip-digest traffic were put on an overlay link.
    /// Unlike the per-message counts, the bit counters separate a
    /// summary digest (size proportional to what it carries) from a
    /// linear one (a flat event payload regardless of content) — the
    /// axis the summary-reconciliation evaluation compares on.
    pub fn count_gossip_bits(&mut self, bits: u64) {
        self.gossip_wire_bits += bits;
    }

    /// `bits` of out-of-band request traffic (id requests and
    /// summary range-refinement requests) were put on the wire.
    pub fn count_request_bits(&mut self, bits: u64) {
        self.request_wire_bits += bits;
    }

    /// `bits` of out-of-band reply traffic were put on the wire.
    pub fn count_reply_bits(&mut self, bits: u64) {
        self.reply_wire_bits += bits;
    }

    /// An event copy delivered through recovery (was missing, arrived
    /// via the out-of-band channel, and was new to the receiver).
    pub fn count_recovered(&mut self) {
        self.events_recovered += 1;
    }

    /// `Lost` entries evicted under the buffers' capacity bound
    /// (summed over dispatchers at the end of a run).
    pub fn count_lost_evictions(&mut self, n: u64) {
        self.lost_evictions += n;
    }

    /// An event copy arrived at a node that had already seen the event
    /// and was suppressed. Structurally zero on tree overlays (one
    /// path per node pair); the redundancy cost of cyclic overlays,
    /// where tree forwards and cross-link copies overlap.
    pub fn count_duplicate_suppressed(&mut self) {
        self.duplicate_suppressed += 1;
    }

    /// Total event messages on overlay links.
    pub fn event_total(&self) -> u64 {
        self.event_sent.iter().sum()
    }

    /// Total gossip messages on overlay links.
    pub fn gossip_total(&self) -> u64 {
        self.gossip_sent.iter().sum()
    }

    /// Total out-of-band requests.
    pub fn request_total(&self) -> u64 {
        self.request_sent.iter().sum()
    }

    /// Total out-of-band replies.
    pub fn reply_total(&self) -> u64 {
        self.reply_sent.iter().sum()
    }

    /// Total subscription messages.
    pub fn subscription_total(&self) -> u64 {
        self.subscription_sent.iter().sum()
    }

    /// Total event copies retransmitted out-of-band.
    pub fn events_retransmitted(&self) -> u64 {
        self.events_retransmitted
    }

    /// Total events whose delivery happened through recovery.
    pub fn events_recovered(&self) -> u64 {
        self.events_recovered
    }

    /// Total `Lost` entries evicted by capacity bounds — non-zero means
    /// loss detection outpaced recovery badly enough to overflow the
    /// buffers (visible under heavy churn rather than silent).
    pub fn lost_evictions(&self) -> u64 {
        self.lost_evictions
    }

    /// Total redundant event arrivals suppressed by receivers.
    pub fn duplicate_suppressed(&self) -> u64 {
        self.duplicate_suppressed
    }

    /// Total bits of gossip digests put on overlay links.
    pub fn gossip_wire_bits(&self) -> u64 {
        self.gossip_wire_bits
    }

    /// Total bits of out-of-band requests (ids and range refinements).
    pub fn request_wire_bits(&self) -> u64 {
        self.request_wire_bits
    }

    /// Total bits of out-of-band replies.
    pub fn reply_wire_bits(&self) -> u64 {
        self.reply_wire_bits
    }

    /// Total bits of recovery-control traffic: gossip digests plus
    /// out-of-band requests, excluding the event copies replies carry.
    /// The headline axis of the summary-reconciliation evaluation —
    /// O(C) per linear digest versus O(log C + Δ) per summary digest.
    pub fn recovery_control_bits(&self) -> u64 {
        self.gossip_wire_bits + self.request_wire_bits
    }

    /// Mean gossip messages sent per dispatcher (Fig. 9 / 10, left).
    pub fn gossip_per_dispatcher(&self) -> f64 {
        if self.gossip_sent.is_empty() {
            0.0
        } else {
            self.gossip_total() as f64 / self.gossip_sent.len() as f64
        }
    }

    /// Ratio of gossip to event messages in the whole system
    /// (Fig. 9, right). Zero when no events flowed.
    pub fn gossip_event_ratio(&self) -> f64 {
        let events = self.event_total();
        if events == 0 {
            0.0
        } else {
            self.gossip_total() as f64 / events as f64
        }
    }

    /// Per-dispatcher gossip counts (for distribution checks: gossip
    /// load should be evenly spread).
    pub fn gossip_by_dispatcher(&self) -> &[u64] {
        &self.gossip_sent
    }

    /// Folds `other` into `self`, dispatcher by dispatcher. The
    /// real-socket runtime keeps one `MessageCounters` per node thread
    /// (no shared mutable state on the hot path) and merges them after
    /// the run; both sides must track the same dispatcher count.
    pub fn absorb(&mut self, other: &MessageCounters) {
        assert_eq!(
            self.len(),
            other.len(),
            "absorb requires counters over the same dispatcher set"
        );
        for (a, b) in self.event_sent.iter_mut().zip(&other.event_sent) {
            *a += b;
        }
        for (a, b) in self.gossip_sent.iter_mut().zip(&other.gossip_sent) {
            *a += b;
        }
        for (a, b) in self.request_sent.iter_mut().zip(&other.request_sent) {
            *a += b;
        }
        for (a, b) in self.reply_sent.iter_mut().zip(&other.reply_sent) {
            *a += b;
        }
        for (a, b) in self
            .subscription_sent
            .iter_mut()
            .zip(&other.subscription_sent)
        {
            *a += b;
        }
        self.events_retransmitted += other.events_retransmitted;
        self.events_recovered += other.events_recovered;
        self.lost_evictions += other.lost_evictions;
        self.duplicate_suppressed += other.duplicate_suppressed;
        self.gossip_wire_bits += other.gossip_wire_bits;
        self.request_wire_bits += other.request_wire_bits;
        self.reply_wire_bits += other.reply_wire_bits;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_accumulate_per_class() {
        let mut c = MessageCounters::new(3);
        c.count_event(NodeId::new(0));
        c.count_event(NodeId::new(1));
        c.count_gossip(NodeId::new(2));
        c.count_request(NodeId::new(0));
        c.count_reply(NodeId::new(1), 5);
        c.count_subscription(NodeId::new(2));
        assert_eq!(c.event_total(), 2);
        assert_eq!(c.gossip_total(), 1);
        assert_eq!(c.request_total(), 1);
        assert_eq!(c.reply_total(), 1);
        assert_eq!(c.subscription_total(), 1);
        assert_eq!(c.events_retransmitted(), 5);
    }

    #[test]
    fn ratios_handle_zero_denominators() {
        let c = MessageCounters::new(2);
        assert_eq!(c.gossip_event_ratio(), 0.0);
        assert_eq!(c.gossip_per_dispatcher(), 0.0);
    }

    #[test]
    fn per_dispatcher_views() {
        let mut c = MessageCounters::new(2);
        for _ in 0..4 {
            c.count_gossip(NodeId::new(0));
        }
        c.count_event(NodeId::new(1));
        assert_eq!(c.gossip_by_dispatcher(), &[4, 0]);
        assert_eq!(c.gossip_per_dispatcher(), 2.0);
        assert_eq!(c.gossip_event_ratio(), 4.0);
    }

    #[test]
    fn recovered_counter() {
        let mut c = MessageCounters::new(1);
        c.count_recovered();
        c.count_recovered();
        assert_eq!(c.events_recovered(), 2);
    }

    #[test]
    fn absorb_merges_every_class() {
        let mut a = MessageCounters::new(2);
        a.count_event(NodeId::new(0));
        a.count_gossip(NodeId::new(1));
        let mut b = MessageCounters::new(2);
        b.count_event(NodeId::new(0));
        b.count_request(NodeId::new(1));
        b.count_reply(NodeId::new(0), 3);
        b.count_subscription(NodeId::new(1));
        b.count_recovered();
        b.count_lost_evictions(2);
        b.count_duplicate_suppressed();
        b.count_gossip_bits(1000);
        b.count_request_bits(300);
        b.count_reply_bits(2000);
        a.count_gossip_bits(24);
        a.absorb(&b);
        assert_eq!(a.event_total(), 2);
        assert_eq!(a.gossip_total(), 1);
        assert_eq!(a.request_total(), 1);
        assert_eq!(a.reply_total(), 1);
        assert_eq!(a.subscription_total(), 1);
        assert_eq!(a.events_retransmitted(), 3);
        assert_eq!(a.events_recovered(), 1);
        assert_eq!(a.lost_evictions(), 2);
        assert_eq!(a.duplicate_suppressed(), 1);
        assert_eq!(a.gossip_by_dispatcher(), &[0, 1]);
        assert_eq!(a.gossip_wire_bits(), 1024);
        assert_eq!(a.request_wire_bits(), 300);
        assert_eq!(a.reply_wire_bits(), 2000);
        assert_eq!(a.recovery_control_bits(), 1324);
    }

    #[test]
    #[should_panic(expected = "same dispatcher set")]
    fn absorb_rejects_mismatched_sizes() {
        let mut a = MessageCounters::new(2);
        a.absorb(&MessageCounters::new(3));
    }

    #[test]
    fn lost_evictions_accumulate() {
        let mut c = MessageCounters::new(1);
        assert_eq!(c.lost_evictions(), 0);
        c.count_lost_evictions(3);
        c.count_lost_evictions(2);
        assert_eq!(c.lost_evictions(), 5);
    }
}
