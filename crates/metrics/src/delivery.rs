//! Delivery accounting: who should have received each event, who did,
//! and when — the source of every delivery-rate figure in the paper.

use std::collections::HashMap;

use eps_overlay::NodeId;
use eps_pubsub::EventId;
use eps_sim::{quantile, RatioSeries, SimTime, Summary};

#[derive(Clone, Debug)]
struct EventRecord {
    published: SimTime,
    expected: u32,
    delivered: u32,
}

/// Tracks, for every published event, its intended recipients (the
/// dispatchers locally subscribed to one of its patterns at publish
/// time) and the deliveries that actually happened.
///
/// The delivery rate is "the ratio between the number of events
/// correctly received by a process and those that would be received in
/// a fully reliable scenario" (paper, Section IV-B). Recovered events
/// count: the time series is binned by *publish* time, so a dip at
/// time `t` means events published around `t` were never delivered to
/// some subscribers, even after recovery.
///
/// # Examples
///
/// ```
/// use eps_metrics::DeliveryTracker;
/// use eps_pubsub::EventId;
/// use eps_overlay::NodeId;
/// use eps_sim::SimTime;
///
/// let mut tracker = DeliveryTracker::new();
/// let id = EventId::new(NodeId::new(0), 0);
/// tracker.published(id, SimTime::from_millis(100), 2);
/// tracker.delivered(id, NodeId::new(1));
/// assert!((tracker.delivery_rate(None) - 0.5).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, Default)]
pub struct DeliveryTracker {
    // Records in publication order; the map is only an index. Stable
    // iteration keeps every derived statistic bit-for-bit
    // reproducible (HashMap order varies across processes).
    records: Vec<EventRecord>,
    index: HashMap<EventId, usize>,
    expected_total: u64,
    delivered_total: u64,
    unexpected_total: u64,
    tolerant: bool,
    recovery_latencies: Vec<f64>,
}

impl DeliveryTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a tracker that tolerates deliveries beyond an event's
    /// expected recipient count instead of panicking. Needed when
    /// subscriptions churn: a dispatcher that subscribes between an
    /// event's publication and its arrival legitimately delivers it
    /// without having been counted. Such deliveries are tallied in
    /// [`DeliveryTracker::unexpected_total`] and excluded from rates.
    pub fn new_tolerant() -> Self {
        DeliveryTracker {
            tolerant: true,
            ..Self::default()
        }
    }

    /// Deliveries to dispatchers that were not subscribed at publish
    /// time (only nonzero in tolerant mode).
    pub fn unexpected_total(&self) -> u64 {
        self.unexpected_total
    }

    /// Registers a publication with its intended recipient count.
    ///
    /// # Panics
    ///
    /// Panics if the event id was already registered.
    pub fn published(&mut self, id: EventId, at: SimTime, expected_recipients: u32) {
        let prev = self.index.insert(id, self.records.len());
        assert!(prev.is_none(), "event {id} published twice");
        self.records.push(EventRecord {
            published: at,
            expected: expected_recipients,
            delivered: 0,
        });
        self.expected_total += expected_recipients as u64;
    }

    /// Registers a delivery. Deliveries of unknown events (published
    /// before tracking started) are ignored; over-deliveries of a
    /// known event panic, because the dispatcher layer deduplicates.
    pub fn delivered(&mut self, id: EventId, _node: NodeId) {
        if let Some(rec) = self.index.get(&id).map(|&i| &mut self.records[i]) {
            if rec.delivered == rec.expected {
                assert!(
                    self.tolerant,
                    "event {id} delivered more times than it has subscribers"
                );
                self.unexpected_total += 1;
                return;
            }
            rec.delivered += 1;
            self.delivered_total += 1;
        }
    }

    /// Registers a delivery that happened through recovery, recording
    /// its latency (now − publish time). The paper's Section IV-C
    /// observation — push has a larger recovery latency than pull —
    /// is measured through these samples.
    pub fn recovered(&mut self, id: EventId, node: NodeId, now: SimTime) {
        if let Some(&i) = self.index.get(&id) {
            let published = self.records[i].published;
            self.recovery_latencies
                .push(now.saturating_sub(published).as_secs_f64());
        }
        self.delivered(id, node);
    }

    /// Summary of recovery latencies, in seconds.
    pub fn recovery_latency(&self) -> Summary {
        let mut s = Summary::new();
        for &x in &self.recovery_latencies {
            s.record(x);
        }
        s
    }

    /// The `q`-quantile of recovery latency in seconds, if any
    /// recovery happened.
    pub fn recovery_latency_quantile(&self, q: f64) -> Option<f64> {
        quantile(&self.recovery_latencies, q)
    }

    /// Number of events registered.
    pub fn event_count(&self) -> usize {
        self.records.len()
    }

    /// Total expected deliveries (over all events, or within a publish
    /// window).
    pub fn expected_total(&self) -> u64 {
        self.expected_total
    }

    /// Total deliveries observed.
    pub fn delivered_total(&self) -> u64 {
        self.delivered_total
    }

    /// The overall delivery rate, optionally restricted to events
    /// published inside `window` = (start, end]. Events with no
    /// subscribers are excluded (nothing to deliver). Returns 1.0 when
    /// no event qualifies.
    pub fn delivery_rate(&self, window: Option<(SimTime, SimTime)>) -> f64 {
        let mut expected = 0u64;
        let mut delivered = 0u64;
        for rec in &self.records {
            if let Some((start, end)) = window {
                if rec.published < start || rec.published >= end {
                    continue;
                }
            }
            expected += rec.expected as u64;
            delivered += rec.delivered as u64;
        }
        if expected == 0 {
            1.0
        } else {
            delivered as f64 / expected as f64
        }
    }

    /// The delivery-rate time series, binned by publish time.
    pub fn rate_series(&self, bin_width: SimTime) -> RatioSeries {
        let mut series = RatioSeries::new(bin_width);
        for rec in &self.records {
            series.add(rec.published, rec.delivered as f64, rec.expected as f64);
        }
        series
    }

    /// Summary of the number of *intended* receivers per event
    /// (paper, Figure 7).
    pub fn receivers_per_event(&self) -> Summary {
        let mut s = Summary::new();
        for rec in &self.records {
            s.record(rec.expected as f64);
        }
        s
    }

    /// Summary of the number of *actual* deliveries per event.
    pub fn deliveries_per_event(&self) -> Summary {
        let mut s = Summary::new();
        for rec in &self.records {
            s.record(rec.delivered as f64);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(seq: u64) -> EventId {
        EventId::new(NodeId::new(0), seq)
    }

    #[test]
    fn rate_counts_delivered_over_expected() {
        let mut t = DeliveryTracker::new();
        t.published(id(0), SimTime::from_millis(10), 4);
        t.published(id(1), SimTime::from_millis(20), 2);
        for _ in 0..3 {
            t.delivered(id(0), NodeId::new(1));
        }
        assert!((t.delivery_rate(None) - 0.5).abs() < 1e-12);
        assert_eq!(t.expected_total(), 6);
        assert_eq!(t.delivered_total(), 3);
    }

    #[test]
    fn window_filters_by_publish_time() {
        let mut t = DeliveryTracker::new();
        t.published(id(0), SimTime::from_secs(1), 1);
        t.published(id(1), SimTime::from_secs(5), 1);
        t.delivered(id(0), NodeId::new(1));
        let early = t.delivery_rate(Some((SimTime::ZERO, SimTime::from_secs(2))));
        let late = t.delivery_rate(Some((SimTime::from_secs(2), SimTime::from_secs(10))));
        assert_eq!(early, 1.0);
        assert_eq!(late, 0.0);
    }

    #[test]
    fn unknown_deliveries_are_ignored() {
        let mut t = DeliveryTracker::new();
        t.delivered(id(42), NodeId::new(1));
        assert_eq!(t.delivered_total(), 0);
    }

    #[test]
    #[should_panic]
    fn double_publish_panics() {
        let mut t = DeliveryTracker::new();
        t.published(id(0), SimTime::ZERO, 1);
        t.published(id(0), SimTime::ZERO, 1);
    }

    #[test]
    #[should_panic]
    fn over_delivery_panics() {
        let mut t = DeliveryTracker::new();
        t.published(id(0), SimTime::ZERO, 1);
        t.delivered(id(0), NodeId::new(1));
        t.delivered(id(0), NodeId::new(2));
    }

    #[test]
    fn series_bins_by_publish_time() {
        let mut t = DeliveryTracker::new();
        t.published(id(0), SimTime::from_millis(500), 2);
        t.published(id(1), SimTime::from_millis(1500), 2);
        t.delivered(id(0), NodeId::new(1));
        t.delivered(id(0), NodeId::new(2));
        let series = t.rate_series(SimTime::from_secs(1));
        assert_eq!(series.bins().len(), 2);
        assert_eq!(series.bins()[0].ratio(), 1.0);
        assert_eq!(series.bins()[1].ratio(), 0.0);
    }

    #[test]
    fn receivers_summary_matches_registrations() {
        let mut t = DeliveryTracker::new();
        t.published(id(0), SimTime::ZERO, 3);
        t.published(id(1), SimTime::ZERO, 5);
        let s = t.receivers_per_event();
        assert_eq!(s.count(), 2);
        assert!((s.mean() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn events_with_no_subscribers_do_not_skew_rate() {
        let mut t = DeliveryTracker::new();
        t.published(id(0), SimTime::ZERO, 0);
        assert_eq!(t.delivery_rate(None), 1.0);
    }
}
